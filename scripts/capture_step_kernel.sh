#!/usr/bin/env bash
# Captures step-kernel benchmark numbers to BENCH_step_kernel.json at
# the repository root — the machine-readable perf trajectory for the
# zero-rebuild step kernel (incremental vs rebuild-and-diff, n in
# {256, 1000, 4000} x {low, mid, high} mobility, plus the sharded
# thread sweep at n=4000 and the density-preserving n=20000/n=100000
# scaling rows).
#
# Usage:
#   scripts/capture_step_kernel.sh               # full capture (committed numbers)
#   scripts/capture_step_kernel.sh --quick       # reduced grid, 1 repeat (CI smoke)
#   scripts/capture_step_kernel.sh --large-smoke # one n=20000 pair at 1/4 threads (CI)
#   scripts/capture_step_kernel.sh --skin-sweep  # Verlet skin cost curve at n=4000
#   scripts/capture_step_kernel.sh --out PATH    # write elsewhere
#   scripts/capture_step_kernel.sh --profile     # span-timer breakdown on stderr
#
# Each JSON row pairs ns/step with the kernel's deterministic path
# counters (incremental/bulk/cache-verify/fallback fractions, rescan
# and verify candidate volumes, cache rebuilds and arena sizes, grid
# cells touched, edge events) — identical across machines for a given
# grid, so only the timing columns move between captures.
#
# The full capture also acts as a regression gate: it fails loudly if
# the kernel's speedup at n=4000 on the low-churn scenario drops below
# 3x the rebuild path, or if the Verlet cache stops beating its own
# skin-off kernel on the all-moving mid regime (verify>rebuild counter
# check, the auto/off within-run ratio, and coarse absolute ceilings
# at 3 ms/step for mid n=4000 and 140 ms/step for n=100000).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="BENCH_step_kernel.json"
ARGS=()
while [ $# -gt 0 ]; do
  case "$1" in
    --quick) ARGS+=("--quick") ;;
    --large-smoke) ARGS+=("--large-smoke") ;;
    --skin-sweep) ARGS+=("--skin-sweep") ;;
    --profile) ARGS+=("--profile") ;;
    --out) OUT="$2"; shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
  shift
done

cargo build --release -p manet-bench --bin step_kernel_capture
./target/release/step_kernel_capture "${ARGS[@]:-}" --out "$OUT"
