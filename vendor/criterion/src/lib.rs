//! Vendored, dependency-free stand-in for the parts of `criterion`
//! this workspace uses: `criterion_group!`/`criterion_main!`,
//! `Criterion::bench_function`, benchmark groups, and `Bencher::iter`.
//!
//! Measurement is intentionally simple — warm up, then time batches
//! until a fixed budget elapses and report the mean ns/iteration —
//! because the workspace's perf tracking only needs stable relative
//! numbers from `cargo bench`, and `cargo bench --no-run` only needs
//! the targets to compile.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export for benches that use `criterion::black_box`.
pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(50);
const MEASURE: Duration = Duration::from_millis(200);

/// The benchmark driver handed to every target function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks (prefixes their names).
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id.into()), &mut f);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Times the closure handed to [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Measures `routine` repeatedly; the driver reports the mean.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up (and handle routines slower than the whole budget).
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            self.iters += 1;
            if warm_start.elapsed() >= WARMUP {
                break;
            }
        }
        let batch = self.iters.max(1);
        self.iters = 0;
        let measure_start = Instant::now();
        while measure_start.elapsed() < MEASURE {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.total += t0.elapsed();
            self.iters += batch;
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, f: &mut F) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("{id:<48} (no iterations)");
        return;
    }
    let ns = bencher.total.as_nanos() as f64 / bencher.iters as f64;
    println!("{id:<48} {ns:>14.1} ns/iter ({} iters)", bencher.iters);
}

/// Declares a group-runner function from benchmark target functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        $crate::criterion_group!($group, $($target),+);
    };
}

/// Declares `main` from one or more group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
