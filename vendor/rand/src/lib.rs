//! Vendored, dependency-free stand-in for the parts of the `rand`
//! crate this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! ships the small API surface it needs: [`SeedableRng`],
//! [`RngCore`]/[`Rng`] (object-safe, usable as `&mut dyn Rng`), the
//! [`RngExt`] extension methods `random_range`/`random_bool`, and a
//! deterministic [`rngs::StdRng`] (SplitMix64-seeded xoshiro256++).
//!
//! Determinism is a feature here: every simulation in the workspace is
//! reproducible from a `u64` seed, and nothing depends on matching the
//! stream of the upstream `rand::StdRng`.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// The raw source of randomness. Object-safe.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Marker trait for random generators; object-safe so mobility models
/// can take `&mut dyn Rng`.
pub trait Rng: RngCore {}
impl<R: RngCore + ?Sized> Rng for R {}

/// Convenience sampling methods, available on every [`Rng`] (including
/// `dyn Rng`) once the trait is in scope.
pub trait RngExt: RngCore {
    /// Uniform sample from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or not finite.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "random_bool: p = {p} not in [0, 1]"
        );
        unit_f64_exclusive(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// `u64` random bits -> uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64_exclusive(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// `u64` random bits -> uniform `f64` in `[0, 1]`.
#[inline]
fn unit_f64_inclusive(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
}

/// Ranges that [`RngExt::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end && self.start.is_finite() && self.end.is_finite(),
            "random_range: invalid f64 range {:?}..{:?}",
            self.start,
            self.end
        );
        let span = self.end - self.start;
        // Resample the (measure-zero, fp-rounding) case that lands on `end`.
        loop {
            let x = self.start + span * unit_f64_exclusive(rng.next_u64());
            if x < self.end {
                return x;
            }
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(
            start <= end && start.is_finite() && end.is_finite(),
            "random_range: invalid f64 range {start:?}..={end:?}"
        );
        let x = start + (end - start) * unit_f64_inclusive(rng.next_u64());
        x.clamp(start, end)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = mul_shift(rng.next_u64(), span);
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "random_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span == 0 {
                    // Full-width range: every value is fair game.
                    return rng.next_u64() as $t;
                }
                let offset = mul_shift(rng.next_u64(), span);
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Lemire-style bounded sample: `floor(x * span / 2^64)` without bias
/// correction (span is tiny compared to 2^64 everywhere we sample).
#[inline]
fn mul_shift(x: u64, span: u128) -> u128 {
    (x as u128 * span) >> 64
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded through SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0.0..1.0), b.random_range(0.0..1.0));
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(
            a.random_range(0u64..=u64::MAX),
            c.random_range(0u64..=u64::MAX)
        );
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let y: f64 = rng.random_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&y));
            let k: usize = rng.random_range(0..7);
            assert!(k < 7);
            let m: i64 = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&m));
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((1_900..3_100).contains(&hits), "hits = {hits}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn dyn_rng_usable() {
        let mut rng = StdRng::seed_from_u64(3);
        let dyn_rng: &mut dyn super::Rng = &mut rng;
        let x = dyn_rng.random_range(0.0..1.0);
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        super::RngCore::fill_bytes(&mut rng, &mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
