//! The owned JSON tree the deserializer walks.

/// A parsed JSON number, preserving integerness for exact roundtrips.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// Everything else.
    Float(f64),
}

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// A short noun for error messages.
    pub(crate) fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::Number(_) => "a number",
            Value::String(_) => "a string",
            Value::Array(_) => "an array",
            Value::Object(_) => "an object",
        }
    }
}
