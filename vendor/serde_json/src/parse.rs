//! A small recursive-descent JSON parser producing [`Value`] trees.

use crate::{Error, Number, Value};

pub(crate) fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at offset {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are out of scope for this
                            // workspace's data (plain identifiers and floats).
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if integral {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::Float(v)))
            .map_err(|_| self.err("invalid number"))
    }
}
