//! Vendored, dependency-free stand-in for the parts of `serde_json`
//! this workspace uses: [`to_string`] and [`from_str`] over the
//! vendored serde data model.
//!
//! Serialization streams straight into a `String`; deserialization
//! parses into an owned [`Value`] tree and walks it. Float output uses
//! Rust's shortest-roundtrip `{:?}` formatting, which matches
//! serde_json's ryu output on the values this workspace exercises
//! (`1.5`, `1e-9`, `100.0`, ...).

#![forbid(unsafe_code)]

use core::fmt::{self, Display};

use serde::de::{self, Visitor};
use serde::ser::{self, Serialize};

mod parse;
mod value;

pub use value::{Number, Value};

/// Error type shared by serialization and deserialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl ser::Error for Error {
    fn custom<T: Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

impl de::Error for Error {
    fn custom<T: Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Fails on non-finite floats, like upstream serde_json.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize(Writer { out: &mut out })?;
    Ok(out)
}

/// Deserializes a `T` from a JSON string.
///
/// # Errors
///
/// Fails on malformed JSON or a shape mismatch.
pub fn from_str<'de, T: de::Deserialize<'de>>(s: &str) -> Result<T, Error> {
    let value = parse::parse(s)?;
    T::deserialize(value)
}

// ---------------------------------------------------------------------------
// Serializer: stream directly into a String.
// ---------------------------------------------------------------------------

struct Writer<'a> {
    out: &'a mut String,
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, v: f64) -> Result<(), Error> {
    if !v.is_finite() {
        return Err(Error::new("JSON cannot represent a non-finite float"));
    }
    // `{:?}` is Rust's shortest-roundtrip form: "1.5", "1e-9", "100.0".
    out.push_str(&format!("{v:?}"));
    Ok(())
}

/// Comma-separated aggregate writer shared by seq/tuple/map/struct.
struct Aggregate<'a> {
    out: &'a mut String,
    first: bool,
    /// Extra closing text after the aggregate's own bracket (used by
    /// `{"Variant":...}` wrappers).
    suffix: &'static str,
}

impl<'a> Aggregate<'a> {
    fn new(out: &'a mut String, open: char, suffix: &'static str) -> Self {
        out.push(open);
        Aggregate {
            out,
            first: true,
            suffix,
        }
    }

    fn element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        value.serialize(Writer { out: self.out })
    }

    fn entry<T: Serialize + ?Sized>(&mut self, key: &str, value: &T) -> Result<(), Error> {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        write_escaped(self.out, key);
        self.out.push(':');
        value.serialize(Writer { out: self.out })
    }

    fn finish(self, close: char) -> Result<(), Error> {
        self.out.push(close);
        self.out.push_str(self.suffix);
        Ok(())
    }
}

impl<'a> ser::Serializer for Writer<'a> {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = Aggregate<'a>;
    type SerializeTuple = Aggregate<'a>;
    type SerializeTupleVariant = Aggregate<'a>;
    type SerializeMap = Aggregate<'a>;
    type SerializeStruct = Aggregate<'a>;
    type SerializeStructVariant = Aggregate<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), Error> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    fn serialize_i64(self, v: i64) -> Result<(), Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_u64(self, v: u64) -> Result<(), Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<(), Error> {
        write_f64(self.out, v)
    }

    fn serialize_str(self, v: &str) -> Result<(), Error> {
        write_escaped(self.out, v);
        Ok(())
    }

    fn serialize_none(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), Error> {
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<(), Error> {
        write_escaped(self.out, variant);
        Ok(())
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.out.push('{');
        write_escaped(self.out, variant);
        self.out.push(':');
        value.serialize(Writer { out: self.out })?;
        self.out.push('}');
        Ok(())
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<Aggregate<'a>, Error> {
        Ok(Aggregate::new(self.out, '[', ""))
    }

    fn serialize_tuple(self, _len: usize) -> Result<Aggregate<'a>, Error> {
        Ok(Aggregate::new(self.out, '[', ""))
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Aggregate<'a>, Error> {
        self.out.push('{');
        write_escaped(self.out, variant);
        self.out.push(':');
        Ok(Aggregate::new(self.out, '[', "}"))
    }

    fn serialize_map(self, _len: Option<usize>) -> Result<Aggregate<'a>, Error> {
        Ok(Aggregate::new(self.out, '{', ""))
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Aggregate<'a>, Error> {
        Ok(Aggregate::new(self.out, '{', ""))
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Aggregate<'a>, Error> {
        self.out.push('{');
        write_escaped(self.out, variant);
        self.out.push(':');
        Ok(Aggregate::new(self.out, '{', "}"))
    }
}

impl ser::SerializeSeq for Aggregate<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        self.element(value)
    }
    fn end(self) -> Result<(), Error> {
        self.finish(']')
    }
}

impl ser::SerializeTuple for Aggregate<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        self.element(value)
    }
    fn end(self) -> Result<(), Error> {
        self.finish(']')
    }
}

impl ser::SerializeTupleVariant for Aggregate<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        self.element(value)
    }
    fn end(self) -> Result<(), Error> {
        self.finish(']')
    }
}

impl ser::SerializeMap for Aggregate<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Error> {
        // JSON keys must be strings: serialize through a probe writer and
        // require the output to be a JSON string.
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        let start = self.out.len();
        key.serialize(Writer { out: self.out })?;
        if !self.out[start..].starts_with('"') {
            return Err(Error::new("map key must serialize to a string"));
        }
        Ok(())
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        self.out.push(':');
        value.serialize(Writer { out: self.out })
    }
    fn end(self) -> Result<(), Error> {
        self.finish('}')
    }
}

impl ser::SerializeStruct for Aggregate<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.entry(key, value)
    }
    fn end(self) -> Result<(), Error> {
        self.finish('}')
    }
}

impl ser::SerializeStructVariant for Aggregate<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.entry(key, value)
    }
    fn end(self) -> Result<(), Error> {
        self.finish('}')
    }
}

// ---------------------------------------------------------------------------
// Deserializer: walk an owned Value tree.
// ---------------------------------------------------------------------------

impl<'de> de::Deserializer<'de> for Value {
    type Error = Error;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        match self {
            Value::Null => visitor.visit_unit(),
            Value::Bool(b) => visitor.visit_bool(b),
            Value::Number(Number::PosInt(v)) => visitor.visit_u64(v),
            Value::Number(Number::NegInt(v)) => visitor.visit_i64(v),
            Value::Number(Number::Float(v)) => visitor.visit_f64(v),
            Value::String(s) => visitor.visit_string(s),
            Value::Array(items) => visitor.visit_seq(SeqDeserializer {
                iter: items.into_iter(),
            }),
            Value::Object(entries) => visitor.visit_map(MapDeserializer {
                iter: entries.into_iter(),
                pending: None,
            }),
        }
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        match self {
            Value::Null => visitor.visit_none(),
            other => visitor.visit_some(other),
        }
    }

    fn deserialize_tuple<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value, Error> {
        match self {
            Value::Array(items) => {
                if items.len() > len {
                    return Err(Error::new(format!(
                        "expected an array of at most {len} elements, got {}",
                        items.len()
                    )));
                }
                visitor.visit_seq(SeqDeserializer {
                    iter: items.into_iter(),
                })
            }
            other => Err(Error::new(format!(
                "expected an array of {len} elements, got {}",
                other.kind()
            ))),
        }
    }
}

struct SeqDeserializer {
    iter: std::vec::IntoIter<Value>,
}

impl<'de> de::SeqAccess<'de> for SeqDeserializer {
    type Error = Error;

    fn next_element<T: de::Deserialize<'de>>(&mut self) -> Result<Option<T>, Error> {
        match self.iter.next() {
            Some(value) => T::deserialize(value).map(Some),
            None => Ok(None),
        }
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.iter.len())
    }
}

struct MapDeserializer {
    iter: std::vec::IntoIter<(String, Value)>,
    pending: Option<Value>,
}

impl<'de> de::MapAccess<'de> for MapDeserializer {
    type Error = Error;

    fn next_key<K: de::Deserialize<'de>>(&mut self) -> Result<Option<K>, Error> {
        match self.iter.next() {
            Some((key, value)) => {
                self.pending = Some(value);
                K::deserialize(Value::String(key)).map(Some)
            }
            None => Ok(None),
        }
    }

    fn next_value<V: de::Deserialize<'de>>(&mut self) -> Result<V, Error> {
        let value = self
            .pending
            .take()
            .ok_or_else(|| Error::new("next_value called before next_key"))?;
        V::deserialize(value)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.iter.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip_textually() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&1e-9f64).unwrap(), "1e-9");
        assert_eq!(to_string(&100.0f64).unwrap(), "100.0");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("a\"b").unwrap(), "\"a\\\"b\"");
        assert_eq!(to_string(&vec![1.0f64, 2.5]).unwrap(), "[1.0,2.5]");
        assert_eq!(to_string(&Option::<f64>::None).unwrap(), "null");
    }

    #[test]
    fn non_finite_floats_error() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }

    #[test]
    fn parse_and_extract() {
        let v: Vec<f64> = from_str("[1.0, 2.5, 1e-9]").unwrap();
        assert_eq!(v, vec![1.0, 2.5, 1e-9]);
        let n: u64 = from_str("42").unwrap();
        assert_eq!(n, 42);
        let s: String = from_str("\"hi\\n\"").unwrap();
        assert_eq!(s, "hi\n");
        let o: Option<f64> = from_str("null").unwrap();
        assert_eq!(o, None);
    }

    #[test]
    fn malformed_json_errors() {
        assert!(from_str::<f64>("[1.0").is_err());
        assert!(from_str::<f64>("nope").is_err());
        assert!(from_str::<Vec<f64>>("[1.0,]").is_err());
        assert!(from_str::<f64>("1.0 trailing").is_err());
    }
}
