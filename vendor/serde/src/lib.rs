//! Vendored, dependency-free stand-in for the parts of `serde` this
//! workspace uses: the `Serialize`/`Deserialize` traits, the
//! serializer/deserializer plumbing the derives and the manual
//! `Point` impls rely on, and re-exported derive macros.
//!
//! The build environment has no access to crates.io; this crate keeps
//! the *API names* of real serde so the workspace sources stay
//! idiomatic and can switch back to upstream serde unchanged.

#![forbid(unsafe_code)]

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};
pub use serde_derive::{Deserialize, Serialize};
