//! Deserialization half of the vendored serde API.

use core::fmt::{self, Display};
use core::marker::PhantomData;

/// Errors produced while deserializing.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;

    /// A sequence had too few elements.
    fn invalid_length(len: usize, expected: &dyn Expected) -> Self {
        Self::custom(format_args!(
            "invalid length {len}, expected {}",
            ExpectedDisplay(expected)
        ))
    }

    /// A value had the wrong type.
    fn invalid_type(unexpected: &str, expected: &dyn Expected) -> Self {
        Self::custom(format_args!(
            "invalid type: {unexpected}, expected {}",
            ExpectedDisplay(expected)
        ))
    }

    /// A struct field was missing.
    fn missing_field(field: &'static str) -> Self {
        Self::custom(format_args!("missing field `{field}`"))
    }

    /// A struct field appeared twice.
    fn duplicate_field(field: &'static str) -> Self {
        Self::custom(format_args!("duplicate field `{field}`"))
    }

    /// An enum variant was not recognized.
    fn unknown_variant(variant: &str, expected: &'static [&'static str]) -> Self {
        Self::custom(format_args!(
            "unknown variant `{variant}`, expected one of {expected:?}"
        ))
    }

    /// A struct field was not recognized.
    fn unknown_field(field: &str, expected: &'static [&'static str]) -> Self {
        Self::custom(format_args!(
            "unknown field `{field}`, expected one of {expected:?}"
        ))
    }
}

/// What a [`Visitor`] expected; used in error messages.
pub trait Expected {
    /// Formats the expectation ("an integer between 0 and 10").
    fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;
}

impl<'de, T: Visitor<'de>> Expected for T {
    fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.expecting(formatter)
    }
}

struct ExpectedDisplay<'a>(&'a dyn Expected);

impl Display for ExpectedDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Expected::fmt(self.0, f)
    }
}

/// A data structure that can be deserialized.
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A data format that can deserialize the serde data model.
///
/// The vendored formats are self-describing (JSON), so the `deserialize_*`
/// hints default to [`Deserializer::deserialize_any`].
pub trait Deserializer<'de>: Sized {
    /// Error type of this deserializer.
    type Error: Error;

    /// Dispatches on whatever the input contains.
    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;

    /// Hint: a `bool` is expected.
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Hint: a signed integer is expected.
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Hint: an unsigned integer is expected.
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Hint: a float is expected.
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Hint: a string is expected.
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Hint: an owned string is expected.
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Hint: an optional value is expected.
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: a unit is expected.
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Hint: a sequence is expected.
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Hint: a fixed-arity tuple is expected.
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Hint: a map is expected.
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Hint: a struct with the given fields is expected.
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        let _ = (name, fields);
        self.deserialize_any(visitor)
    }
    /// Hint: an enum with the given variants is expected.
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        let _ = (name, variants);
        self.deserialize_any(visitor)
    }
    /// Hint: a struct field name is expected.
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Hint: the value is irrelevant and may be skipped.
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
}

/// Walks the values a [`Deserializer`] produces.
pub trait Visitor<'de>: Sized {
    /// What this visitor builds.
    type Value;

    /// Formats what this visitor expects ("a point", "an integer").
    fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

    /// Visits a `bool`.
    fn visit_bool<E: Error>(self, v: bool) -> Result<Self::Value, E> {
        Err(E::invalid_type(&format!("boolean `{v}`"), &self))
    }
    /// Visits a signed integer.
    fn visit_i64<E: Error>(self, v: i64) -> Result<Self::Value, E> {
        Err(E::invalid_type(&format!("integer `{v}`"), &self))
    }
    /// Visits an unsigned integer.
    fn visit_u64<E: Error>(self, v: u64) -> Result<Self::Value, E> {
        Err(E::invalid_type(&format!("integer `{v}`"), &self))
    }
    /// Visits a float.
    fn visit_f64<E: Error>(self, v: f64) -> Result<Self::Value, E> {
        Err(E::invalid_type(&format!("floating point `{v}`"), &self))
    }
    /// Visits a borrowed string.
    fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
        Err(E::invalid_type(&format!("string {v:?}"), &self))
    }
    /// Visits an owned string.
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }
    /// Visits a unit (`null`).
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::invalid_type("unit", &self))
    }
    /// Visits a missing optional value.
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::invalid_type("none", &self))
    }
    /// Visits a present optional value.
    fn visit_some<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(Error::invalid_type("some", &self))
    }
    /// Visits a sequence.
    fn visit_seq<A: SeqAccess<'de>>(self, seq: A) -> Result<Self::Value, A::Error> {
        let _ = seq;
        Err(Error::invalid_type("sequence", &self))
    }
    /// Visits a map.
    fn visit_map<A: MapAccess<'de>>(self, map: A) -> Result<Self::Value, A::Error> {
        let _ = map;
        Err(Error::invalid_type("map", &self))
    }
}

/// Element-by-element access to a sequence.
pub trait SeqAccess<'de> {
    /// Error type.
    type Error: Error;
    /// Returns the next element, or `None` at the end.
    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error>;
    /// Number of remaining elements, when known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Entry-by-entry access to a map.
pub trait MapAccess<'de> {
    /// Error type.
    type Error: Error;
    /// Returns the next key, or `None` at the end.
    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error>;
    /// Returns the value of the entry whose key was just read.
    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error>;
    /// Number of remaining entries, when known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Accepts and discards any value.
#[derive(Debug, Clone, Copy, Default)]
pub struct IgnoredAny;

impl<'de> Deserialize<'de> for IgnoredAny {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = IgnoredAny;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("anything")
            }
            fn visit_bool<E: Error>(self, _: bool) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_i64<E: Error>(self, _: i64) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_u64<E: Error>(self, _: u64) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_f64<E: Error>(self, _: f64) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_str<E: Error>(self, _: &str) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_unit<E: Error>(self) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_none<E: Error>(self) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_some<D: Deserializer<'de>>(self, d: D) -> Result<IgnoredAny, D::Error> {
                IgnoredAny::deserialize(d)
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<IgnoredAny, A::Error> {
                while seq.next_element::<IgnoredAny>()?.is_some() {}
                Ok(IgnoredAny)
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<IgnoredAny, A::Error> {
                while map.next_key::<IgnoredAny>()?.is_some() {
                    map.next_value::<IgnoredAny>()?;
                }
                Ok(IgnoredAny)
            }
        }
        deserializer.deserialize_ignored_any(V)
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for primitives and std containers.
// ---------------------------------------------------------------------------

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V;
                impl<'de> Visitor<'de> for V {
                    type Value = $t;
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        write!(f, concat!("a ", stringify!($t)))
                    }
                    fn visit_u64<E: Error>(self, v: u64) -> Result<$t, E> {
                        <$t>::try_from(v).map_err(|_| {
                            E::custom(format_args!(
                                concat!("integer `{}` out of range for ", stringify!($t)),
                                v
                            ))
                        })
                    }
                    fn visit_i64<E: Error>(self, v: i64) -> Result<$t, E> {
                        <$t>::try_from(v).map_err(|_| {
                            E::custom(format_args!(
                                concat!("integer `{}` out of range for ", stringify!($t)),
                                v
                            ))
                        })
                    }
                }
                deserializer.deserialize_any(V)
            }
        }
    )*};
}

impl_deserialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_deserialize_float {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V;
                impl<'de> Visitor<'de> for V {
                    type Value = $t;
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        write!(f, concat!("an ", stringify!($t)))
                    }
                    fn visit_f64<E: Error>(self, v: f64) -> Result<$t, E> {
                        Ok(v as $t)
                    }
                    fn visit_u64<E: Error>(self, v: u64) -> Result<$t, E> {
                        Ok(v as $t)
                    }
                    fn visit_i64<E: Error>(self, v: i64) -> Result<$t, E> {
                        Ok(v as $t)
                    }
                }
                deserializer.deserialize_any(V)
            }
        }
    )*};
}

impl_deserialize_float!(f32, f64);

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = bool;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a boolean")
            }
            fn visit_bool<E: Error>(self, v: bool) -> Result<bool, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_any(V)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = String;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a string")
            }
            fn visit_str<E: Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_any(V)
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = ();
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a unit")
            }
            fn visit_unit<E: Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(V)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Option<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an optional value")
            }
            fn visit_none<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_unit<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(self, d: D) -> Result<Option<T>, D::Error> {
                T::deserialize(d).map(Some)
            }
        }
        deserializer.deserialize_option(V(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Vec<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a sequence")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Vec<T>, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0));
                while let Some(item) = seq.next_element()? {
                    out.push(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(V(PhantomData))
    }
}

macro_rules! impl_deserialize_tuple {
    ($(($len:literal: $($n:tt $t:ident),+))*) => {$(
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<De: Deserializer<'de>>(deserializer: De) -> Result<Self, De::Error> {
                struct V<$($t),+>(PhantomData<($($t,)+)>);
                impl<'de, $($t: Deserialize<'de>),+> Visitor<'de> for V<$($t),+> {
                    type Value = ($($t,)+);
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        write!(f, "a tuple of length {}", $len)
                    }
                    fn visit_seq<Acc: SeqAccess<'de>>(
                        self,
                        mut seq: Acc,
                    ) -> Result<Self::Value, Acc::Error> {
                        Ok(($(
                            seq.next_element::<$t>()?
                                .ok_or_else(|| Error::invalid_length($n, &self))?,
                        )+))
                    }
                }
                deserializer.deserialize_tuple($len, V(PhantomData))
            }
        }
    )*};
}

impl_deserialize_tuple! {
    (1: 0 A)
    (2: 0 A, 1 B)
    (3: 0 A, 1 B, 2 C)
    (4: 0 A, 1 B, 2 C, 3 D)
}
