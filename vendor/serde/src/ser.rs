//! Serialization half of the vendored serde API.

use core::fmt::Display;

/// Errors produced while serializing.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data structure that can be serialized.
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A data format that can serialize the serde data model.
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error type of this serializer.
    type Error: Error;
    /// Sequence sub-serializer.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Tuple sub-serializer.
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// Tuple-variant sub-serializer.
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    /// Map sub-serializer.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Struct sub-serializer.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Struct-variant sub-serializer.
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i8`.
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error> {
        self.serialize_i64(v as i64)
    }
    /// Serializes an `i16`.
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error> {
        self.serialize_i64(v as i64)
    }
    /// Serializes an `i32`.
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error> {
        self.serialize_i64(v as i64)
    }
    /// Serializes an `i64`.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u8`.
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error> {
        self.serialize_u64(v as u64)
    }
    /// Serializes a `u16`.
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error> {
        self.serialize_u64(v as u64)
    }
    /// Serializes a `u32`.
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error> {
        self.serialize_u64(v as u64)
    }
    /// Serializes a `u64`.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `f32`.
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error> {
        self.serialize_f64(v as f64)
    }
    /// Serializes an `f64`.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `char`.
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error> {
        let mut buf = [0u8; 4];
        self.serialize_str(v.encode_utf8(&mut buf))
    }
    /// Serializes a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Option::None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Option::Some(value)`.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serializes `()`.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit struct.
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error> {
        let _ = name;
        self.serialize_unit()
    }
    /// Serializes a unit enum variant.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a newtype struct as its inner value.
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error> {
        let _ = name;
        value.serialize(self)
    }
    /// Serializes a newtype enum variant.
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begins serializing a sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begins serializing a tuple.
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    /// Begins serializing a tuple enum variant.
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    /// Begins serializing a map.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begins serializing a struct.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begins serializing a struct enum variant.
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;
}

/// Sub-serializer for sequences.
pub trait SerializeSeq {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Sub-serializer for tuples.
pub trait SerializeTuple {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the tuple.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Sub-serializer for tuple variants.
pub trait SerializeTupleVariant {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one field.
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Sub-serializer for maps.
pub trait SerializeMap {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one key.
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Self::Error>;
    /// Serializes one value.
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Sub-serializer for structs.
pub trait SerializeStruct {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Sub-serializer for struct variants.
pub trait SerializeStructVariant {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for primitives and std containers.
// ---------------------------------------------------------------------------

macro_rules! impl_serialize_prim {
    ($($t:ty => $method:ident),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self)
            }
        }
    )*};
}

impl_serialize_prim! {
    bool => serialize_bool,
    i8 => serialize_i8, i16 => serialize_i16, i32 => serialize_i32, i64 => serialize_i64,
    u8 => serialize_u8, u16 => serialize_u16, u32 => serialize_u32, u64 => serialize_u64,
    f32 => serialize_f32, f64 => serialize_f64,
    char => serialize_char
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut tuple = serializer.serialize_tuple(N)?;
        for item in self {
            tuple.serialize_element(item)?;
        }
        tuple.end()
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let len = [$(stringify!($n)),+].len();
                let mut tuple = serializer.serialize_tuple(len)?;
                $(tuple.serialize_element(&self.$n)?;)+
                tuple.end()
            }
        }
    )*};
}

impl_serialize_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}
