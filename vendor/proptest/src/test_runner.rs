//! The case-running loop behind `proptest!`.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The generator handed to strategies.
pub type TestRng = StdRng;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a case did not succeed.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case's inputs violated a `prop_assume!`; try another case.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// An assertion failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Runs up to `config.cases` accepted cases of `case`, panicking on the
/// first failure. Case seeds derive from the test name, so runs are
/// deterministic and failures reproduce.
pub fn run_cases<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name.as_bytes());
    let mut accepted = 0u32;
    let mut attempts = 0u64;
    let max_attempts = config.cases as u64 * 16 + 64;
    while accepted < config.cases {
        if attempts >= max_attempts {
            panic!(
                "proptest `{name}`: gave up after {attempts} attempts \
                 ({accepted}/{} cases accepted; overly strict prop_assume?)",
                config.cases
            );
        }
        let seed = base ^ (attempts.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = TestRng::seed_from_u64(seed);
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed at case {accepted} (seed {seed:#x}):\n{msg}");
            }
        }
        attempts += 1;
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_the_requested_cases() {
        let mut n = 0;
        run_cases("counter", &ProptestConfig::with_cases(10), |_| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 10);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failure_panics() {
        run_cases("boomtest", &ProptestConfig::with_cases(4), |_| {
            Err(TestCaseError::fail("boom"))
        });
    }

    #[test]
    fn rejects_retry() {
        let mut total = 0u32;
        let mut accepted = 0u32;
        run_cases("rejecting", &ProptestConfig::with_cases(8), |_| {
            total += 1;
            if total.is_multiple_of(2) {
                accepted += 1;
                Ok(())
            } else {
                Err(TestCaseError::Reject)
            }
        });
        assert_eq!(accepted, 8);
        assert_eq!(total, 16);
    }
}
