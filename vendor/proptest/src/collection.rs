//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::ops::Range;
use rand::RngExt;

/// Acceptable sizes for a generated collection.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty vec size range");
        SizeRange {
            min: range.start,
            max: range.end,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.min + 1 == self.size.max {
            self.size.min
        } else {
            rng.random_range(self.size.min..self.size.max)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
