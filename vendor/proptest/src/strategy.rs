//! Value-generation strategies.

use crate::test_runner::TestRng;
use core::ops::{Range, RangeInclusive};
use rand::RngExt;

/// Generates values of `Self::Value` from a deterministic RNG.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `f`, retrying a bounded number of
    /// times before panicking.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let candidate = self.inner.generate(rng);
            if (self.f)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 candidates in a row",
            self.whence
        );
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}
