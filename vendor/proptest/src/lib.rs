//! Vendored, dependency-free stand-in for the parts of `proptest` this
//! workspace uses: the `proptest!` macro, range/`any`/tuple/`vec`
//! strategies, `prop_map`, and the `prop_assert*` family.
//!
//! No shrinking: on failure the test panics with the failing case's
//! inputs left to the assertion message and the (deterministic) case
//! seed. Every run replays the identical case sequence — test names
//! seed the generator — so failures reproduce exactly.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob import every property test starts with.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace mirror of upstream proptest's `prop::` module.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests.
///
/// ```text
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn addition_commutes(a in 0.0..1.0e6, b in 0.0..1.0e6) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                $crate::test_runner::run_cases(stringify!($name), &__config, |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body;
                            ::core::result::Result::Ok(())
                        })();
                    __outcome
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Rejects the current case (not a failure) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
