//! `any::<T>()` — whole-domain strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::marker::PhantomData;
use rand::{RngCore, RngExt};

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    /// Finite floats spanning a wide magnitude range.
    fn arbitrary(rng: &mut TestRng) -> f64 {
        let mantissa = rng.random_range(-1.0..=1.0);
        let exponent: i32 = rng.random_range(-64..=64);
        mantissa * (exponent as f64).exp2()
    }
}
