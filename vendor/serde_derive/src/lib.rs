//! Vendored `serde_derive`: `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! for the type shapes this workspace actually uses — named-field structs
//! (optionally with const generics) and enums with unit, tuple, and
//! struct variants.
//!
//! Written against `proc_macro` only (no `syn`/`quote`: the build
//! environment is offline), so parsing is a small hand-rolled walk over
//! the token trees and code generation is string-based.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = gen_serialize(&item);
    code.parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = gen_deserialize(&item);
    code.parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// A tiny AST.
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    /// Verbatim generic parameter list (without the angle brackets), e.g.
    /// `const D : usize`. Empty when the type is not generic.
    generic_decls: String,
    /// The matching argument list, e.g. `D`.
    generic_args: String,
    /// Names of type (not const/lifetime) parameters, for PhantomData.
    type_params: Vec<String>,
    kind: Kind,
}

enum Kind {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    ty: String,
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(Vec<String>),
    Struct(Vec<Field>),
}

// ---------------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn skip_attributes(&mut self) {
        loop {
            match self.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    self.next();
                    if let Some(TokenTree::Group(_)) = self.peek() {
                        self.next();
                    }
                }
                _ => break,
            }
        }
    }

    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected identifier, found {other:?}"),
        }
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.next();
                return true;
            }
        }
        false
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.skip_attributes();
    c.skip_visibility();
    let keyword = c.expect_ident();
    let name = c.expect_ident();

    let mut generic_decls = String::new();
    let mut generic_args = String::new();
    let mut type_params = Vec::new();
    if c.eat_punct('<') {
        let mut depth = 1usize;
        let mut params: Vec<Vec<TokenTree>> = vec![Vec::new()];
        loop {
            let t = c.next().expect("serde_derive: unterminated generics");
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    ',' if depth == 1 => {
                        params.push(Vec::new());
                        continue;
                    }
                    _ => {}
                }
            }
            params.last_mut().unwrap().push(t);
        }
        let mut decls = Vec::new();
        let mut args = Vec::new();
        for param in params.iter().filter(|p| !p.is_empty()) {
            decls.push(tokens_to_string(param));
            // The "argument" is the parameter's own name: the ident after
            // `const`, a bare ident, or a lifetime.
            let mut iter = param.iter();
            let first = iter.next().unwrap();
            match first {
                TokenTree::Ident(id) if id.to_string() == "const" => {
                    if let Some(TokenTree::Ident(n)) = iter.next() {
                        args.push(n.to_string());
                    }
                }
                TokenTree::Ident(id) => {
                    args.push(id.to_string());
                    type_params.push(id.to_string());
                }
                TokenTree::Punct(p) if p.as_char() == '\'' => {
                    if let Some(TokenTree::Ident(n)) = iter.next() {
                        args.push(format!("'{n}"));
                    }
                }
                other => panic!("serde_derive: unsupported generic parameter {other:?}"),
            }
        }
        generic_decls = decls.join(", ");
        generic_args = args.join(", ");
    }

    // Skip a `where` clause, if any, up to the body.
    while let Some(t) = c.peek() {
        if let TokenTree::Group(g) = t {
            if g.delimiter() == Delimiter::Brace || g.delimiter() == Delimiter::Parenthesis {
                break;
            }
        }
        if let Some(TokenTree::Punct(p)) = c.peek() {
            if p.as_char() == ';' {
                break;
            }
        }
        c.next();
    }

    let body = match c.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => {
            panic!("serde_derive: only braced {keyword} bodies are supported, found {other:?}")
        }
    };

    let kind = match keyword.as_str() {
        "struct" => Kind::Struct(parse_named_fields(body)),
        "enum" => Kind::Enum(parse_variants(body)),
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };

    Item {
        name,
        generic_decls,
        generic_args,
        type_params,
        kind,
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    loop {
        c.skip_attributes();
        if c.peek().is_none() {
            break;
        }
        c.skip_visibility();
        let name = c.expect_ident();
        assert!(
            c.eat_punct(':'),
            "serde_derive: expected `:` after field `{name}`"
        );
        let ty = collect_type(&mut c);
        fields.push(Field { name, ty });
    }
    fields
}

/// Collects type tokens until a top-level `,` (or the end), tracking
/// angle-bracket depth so `Foo<A, B>` stays intact.
fn collect_type(c: &mut Cursor) -> String {
    let mut depth = 0usize;
    let mut out: Vec<TokenTree> = Vec::new();
    while let Some(t) = c.peek() {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => {
                    c.next();
                    break;
                }
                _ => {}
            }
        }
        out.push(c.next().unwrap());
    }
    tokens_to_string(&out)
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        c.skip_attributes();
        if c.peek().is_none() {
            break;
        }
        let name = c.expect_ident();
        let shape = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner = g.stream();
                c.next();
                Shape::Tuple(parse_tuple_types(inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                c.next();
                Shape::Struct(parse_named_fields(inner))
            }
            _ => Shape::Unit,
        };
        c.eat_punct(',');
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_tuple_types(stream: TokenStream) -> Vec<String> {
    let mut c = Cursor::new(stream);
    let mut types = Vec::new();
    loop {
        c.skip_attributes();
        if c.peek().is_none() {
            break;
        }
        c.skip_visibility();
        types.push(collect_type(&mut c));
    }
    types
}

fn tokens_to_string(tokens: &[TokenTree]) -> String {
    let mut s = String::new();
    for t in tokens {
        if !s.is_empty() {
            s.push(' ');
        }
        s.push_str(&t.to_string());
    }
    s
}

// ---------------------------------------------------------------------------
// Code generation.
// ---------------------------------------------------------------------------

impl Item {
    fn impl_header(&self, trait_path: &str, extra_lifetime: bool) -> String {
        let mut decls = String::new();
        if extra_lifetime {
            decls.push_str("'de");
        }
        if !self.generic_decls.is_empty() {
            if !decls.is_empty() {
                decls.push_str(", ");
            }
            decls.push_str(&self.generic_decls);
        }
        let generics = if decls.is_empty() {
            String::new()
        } else {
            format!("<{decls}>")
        };
        format!(
            "impl{generics} {trait_path} for {}{}",
            self.name,
            self.ty_args()
        )
    }

    fn ty_args(&self) -> String {
        if self.generic_args.is_empty() {
            String::new()
        } else {
            format!("<{}>", self.generic_args)
        }
    }

    /// `__Visitor` declaration plus the expression that constructs it.
    fn visitor_decl(&self) -> (String, String) {
        if self.generic_decls.is_empty() {
            ("struct __Visitor;".to_owned(), "__Visitor".to_owned())
        } else if self.type_params.is_empty() {
            (
                format!("struct __Visitor<{}>;", self.generic_decls),
                "__Visitor".to_owned(),
            )
        } else {
            let phantom = format!(
                "::core::marker::PhantomData<({},)>",
                self.type_params.join(", ")
            );
            (
                format!("struct __Visitor<{}>({phantom});", self.generic_decls),
                "__Visitor(::core::marker::PhantomData)".to_owned(),
            )
        }
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let header = item.impl_header("::serde::Serialize", false);
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let mut out = format!(
                "let mut __st = ::serde::Serializer::serialize_struct(__serializer, \"{name}\", {})?;\n",
                fields.len()
            );
            for f in fields {
                out.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut __st, \"{0}\", &self.{0})?;\n",
                    f.name
                ));
            }
            out.push_str("::serde::ser::SerializeStruct::end(__st)\n");
            out
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Serializer::serialize_unit_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\"),\n"
                    )),
                    Shape::Tuple(tys) if tys.len() == 1 => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => ::serde::Serializer::serialize_newtype_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\", __f0),\n"
                    )),
                    Shape::Tuple(tys) => {
                        let binders: Vec<String> =
                            (0..tys.len()).map(|i| format!("__f{i}")).collect();
                        let mut arm = format!(
                            "{name}::{vname}({}) => {{ let mut __tv = ::serde::Serializer::serialize_tuple_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\", {})?;\n",
                            binders.join(", "),
                            tys.len()
                        );
                        for b in &binders {
                            arm.push_str(&format!(
                                "::serde::ser::SerializeTupleVariant::serialize_field(&mut __tv, {b})?;\n"
                            ));
                        }
                        arm.push_str("::serde::ser::SerializeTupleVariant::end(__tv) }\n");
                        arms.push_str(&arm);
                    }
                    Shape::Struct(fields) => {
                        let binders: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        let mut arm = format!(
                            "{name}::{vname} {{ {} }} => {{ let mut __sv = ::serde::Serializer::serialize_struct_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\", {})?;\n",
                            binders.join(", "),
                            fields.len()
                        );
                        for f in fields {
                            arm.push_str(&format!(
                                "::serde::ser::SerializeStructVariant::serialize_field(&mut __sv, \"{0}\", {0})?;\n",
                                f.name
                            ));
                        }
                        arm.push_str("::serde::ser::SerializeStructVariant::end(__sv) }\n");
                        arms.push_str(&arm);
                    }
                }
            }
            format!("match self {{\n{arms}}}\n")
        }
    };
    format!(
        "#[automatically_derived]\n{header} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S) \
         -> ::core::result::Result<__S::Ok, __S::Error> {{\n{body}}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let header = item.impl_header("::serde::Deserialize<'de>", true);
    let (visitor_decl, visitor_expr) = item.visitor_decl();
    let visitor_impl_generics = if item.generic_decls.is_empty() {
        "<'de>".to_owned()
    } else {
        format!("<'de, {}>", item.generic_decls)
    };
    let ty_args = item.ty_args();

    let (visitor_methods, helpers, driver) = match &item.kind {
        Kind::Struct(fields) => {
            // Bare name (no generic args): `Name { .. }` struct literals
            // infer their generics from the visitor's Value type.
            let method = gen_struct_visit_map(name, fields);
            let field_names: Vec<String> =
                fields.iter().map(|f| format!("\"{}\"", f.name)).collect();
            let driver = format!(
                "::serde::Deserializer::deserialize_struct(__deserializer, \"{name}\", &[{}], {visitor_expr})",
                field_names.join(", ")
            );
            (method, String::new(), driver)
        }
        Kind::Enum(variants) => {
            let variant_names: Vec<String> =
                variants.iter().map(|v| format!("\"{}\"", v.name)).collect();
            let all = variant_names.join(", ");

            let mut str_arms = String::new();
            for v in variants {
                if matches!(v.shape, Shape::Unit) {
                    str_arms.push_str(&format!(
                        "\"{0}\" => ::core::result::Result::Ok({name}::{0}),\n",
                        v.name
                    ));
                }
            }
            let visit_str = format!(
                "fn visit_str<__E: ::serde::de::Error>(self, __v: &str) -> ::core::result::Result<Self::Value, __E> {{\n\
                 match __v {{\n{str_arms}\
                 _ => ::core::result::Result::Err(::serde::de::Error::unknown_variant(__v, &[{all}])),\n}}\n}}\n"
            );

            let mut helpers = String::new();
            let mut map_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => map_arms.push_str(&format!(
                        "\"{vname}\" => {{ let _ = ::serde::de::MapAccess::next_value::<::serde::de::IgnoredAny>(&mut __map)?; {name}::{vname} }}\n"
                    )),
                    Shape::Tuple(tys) if tys.len() == 1 => map_arms.push_str(&format!(
                        "\"{vname}\" => {name}::{vname}(::serde::de::MapAccess::next_value(&mut __map)?),\n"
                    )),
                    Shape::Tuple(tys) => {
                        let tuple_ty = format!("({},)", tys.join(", "));
                        let fields: Vec<String> =
                            (0..tys.len()).map(|i| format!("__h.{i}")).collect();
                        map_arms.push_str(&format!(
                            "\"{vname}\" => {{ let __h: {tuple_ty} = ::serde::de::MapAccess::next_value(&mut __map)?; {name}::{vname}({}) }}\n",
                            fields.join(", ")
                        ));
                    }
                    Shape::Struct(fields) => {
                        let helper_name = format!("__{name}{vname}Fields");
                        let decls: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{}: {}", f.name, f.ty))
                            .collect();
                        helpers.push_str(&format!(
                            "#[allow(non_camel_case_types)]\nstruct {helper_name} {{ {} }}\n",
                            decls.join(", ")
                        ));
                        helpers.push_str(&gen_helper_deserialize(&helper_name, fields));
                        let moves: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{0}: __h.{0}", f.name))
                            .collect();
                        map_arms.push_str(&format!(
                            "\"{vname}\" => {{ let __h: {helper_name} = ::serde::de::MapAccess::next_value(&mut __map)?; {name}::{vname} {{ {} }} }}\n",
                            moves.join(", ")
                        ));
                    }
                }
            }
            let visit_map = format!(
                "fn visit_map<__A: ::serde::de::MapAccess<'de>>(self, mut __map: __A) -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                 let __key: ::std::string::String = match ::serde::de::MapAccess::next_key(&mut __map)? {{\n\
                 ::core::option::Option::Some(__k) => __k,\n\
                 ::core::option::Option::None => return ::core::result::Result::Err(::serde::de::Error::custom(\"expected an externally tagged variant map\")),\n}};\n\
                 let __value = match __key.as_str() {{\n{map_arms}\
                 __other => return ::core::result::Result::Err(::serde::de::Error::unknown_variant(__other, &[{all}])),\n}};\n\
                 ::core::result::Result::Ok(__value)\n}}\n"
            );
            let driver = format!(
                "::serde::Deserializer::deserialize_enum(__deserializer, \"{name}\", &[{all}], {visitor_expr})"
            );
            (format!("{visit_str}{visit_map}"), helpers, driver)
        }
    };

    format!(
        "const _: () = {{\n\
         {helpers}\
         {header} {{\n\
         fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D) \
         -> ::core::result::Result<Self, __D::Error> {{\n\
         #[allow(non_camel_case_types)]\n{visitor_decl}\n\
         impl{visitor_impl_generics} ::serde::de::Visitor<'de> for __Visitor{ty_args} {{\n\
         type Value = {name}{ty_args};\n\
         fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
         __f.write_str(\"{name}\")\n}}\n\
         {visitor_methods}\
         }}\n\
         {driver}\n}}\n}}\n}};\n"
    )
}

/// `visit_map` for a named-field struct: collect fields into Options,
/// ignore unknown keys, then require every declared field.
fn gen_struct_visit_map(self_ty: &str, fields: &[Field]) -> String {
    let mut out = String::from(
        "fn visit_map<__A: ::serde::de::MapAccess<'de>>(self, mut __map: __A) -> ::core::result::Result<Self::Value, __A::Error> {\n",
    );
    for f in fields {
        out.push_str(&format!(
            "let mut __f_{}: ::core::option::Option<{}> = ::core::option::Option::None;\n",
            f.name, f.ty
        ));
    }
    out.push_str(
        "while let ::core::option::Option::Some(__key) = ::serde::de::MapAccess::next_key::<::std::string::String>(&mut __map)? {\nmatch __key.as_str() {\n",
    );
    for f in fields {
        out.push_str(&format!(
            "\"{0}\" => {{ __f_{0} = ::core::option::Option::Some(::serde::de::MapAccess::next_value(&mut __map)?); }}\n",
            f.name
        ));
    }
    out.push_str(
        "_ => { let _ = ::serde::de::MapAccess::next_value::<::serde::de::IgnoredAny>(&mut __map)?; }\n}\n}\n",
    );
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{0}: __f_{0}.ok_or_else(|| <__A::Error as ::serde::de::Error>::missing_field(\"{0}\"))?",
                f.name
            )
        })
        .collect();
    out.push_str(&format!(
        "::core::result::Result::Ok({self_ty} {{ {} }})\n}}\n",
        inits.join(", ")
    ));
    out
}

/// A full `Deserialize` impl for a (non-generic) helper struct that
/// mirrors a struct variant's fields.
fn gen_helper_deserialize(helper_name: &str, fields: &[Field]) -> String {
    let visit_map = gen_struct_visit_map(helper_name, fields);
    let field_names: Vec<String> = fields.iter().map(|f| format!("\"{}\"", f.name)).collect();
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {helper_name} {{\n\
         fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D) \
         -> ::core::result::Result<Self, __D::Error> {{\n\
         #[allow(non_camel_case_types)]\nstruct __HelperVisitor;\n\
         impl<'de> ::serde::de::Visitor<'de> for __HelperVisitor {{\n\
         type Value = {helper_name};\n\
         fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
         __f.write_str(\"{helper_name}\")\n}}\n\
         {visit_map}\
         }}\n\
         ::serde::Deserializer::deserialize_struct(__deserializer, \"{helper_name}\", &[{}], __HelperVisitor)\n\
         }}\n}}\n",
        field_names.join(", ")
    )
}
