//! Dimensioning an airborne sensor deployment (paper §1's motivating
//! scenario): sensors dropped from a plane, some snagging in obstacles,
//! a hard energy budget.
//!
//! Answers the designer's questions with the library:
//! * given the radio, how many sensors for a 99%-likely connected
//!   field? (the paper's alternate MTR formulation)
//! * what does the stationary fraction do to the always-connected
//!   range? (Figure 7's threshold phenomenon)
//! * is the field robust to a single sensor failure? (k-connectivity
//!   extension)
//!
//! Run with `cargo run --release --example sensor_deployment`.

use manet::graph::kconn;
use manet::graph::AdjacencyList;
use manet::mobility::RandomWaypoint;
use manet::{MtrProblem, MtrmProblem};
use rand::SeedableRng;

fn main() -> Result<(), manet::CoreError> {
    let l = 1024.0; // 1 km² field
    let radio = 150.0; // fixed transceiver technology

    // --- How many sensors to be 99% sure the field is connected?
    println!("fixed radio range {radio} m over a {l} m square:");
    let mut needed = None;
    for n in [16, 32, 48, 64, 96, 128] {
        let problem = MtrProblem::<2>::new(n, l)?;
        let p = problem
            .stationary_analysis(400, 11)?
            .connectivity_probability(radio);
        println!("  n = {n:3}: P(connected) = {p:.3}");
        if p >= 0.99 && needed.is_none() {
            needed = Some(n);
        }
    }
    match needed {
        Some(n) => println!("-> deploy at least {n} sensors"),
        None => println!("-> even 128 sensors are not enough; a stronger radio is needed"),
    }

    // --- Entangled sensors: the Figure 7 threshold phenomenon.
    // Drop 64 sensors; a fraction p_s lands in bushes and never moves,
    // the rest drift (animals, water) as random waypoints.
    let n = 64;
    println!("\n64 sensors, drifting unless entangled (random waypoint):");
    let mut r100_all_mobile = None;
    for p_stationary in [0.0, 0.25, 0.5, 0.75] {
        let problem = MtrmProblem::<2>::builder()
            .nodes(n)
            .side(l)
            .iterations(8)
            .steps(800)
            .seed(23)
            .model(RandomWaypoint::new(0.1, 0.01 * l, 160, p_stationary)?)
            .build()?;
        let r100 = problem.solve()?.ranges.r100.mean();
        if p_stationary == 0.0 {
            r100_all_mobile = Some(r100);
        }
        let vs = r100 / r100_all_mobile.expect("first iteration sets the baseline");
        println!("  p_stationary = {p_stationary:.2}: r100 = {r100:6.1} m ({vs:.2}x all-mobile)");
    }
    println!("-> roughly half the nodes being stuck makes mobility harmless (paper Fig. 7)");

    // --- Single-failure robustness of one concrete deployment.
    let problem = MtrProblem::<2>::new(n, l)?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let region = manet::geom::Region::<2>::new(l)?;
    let placement = region.place_uniform(n, &mut rng);
    let ctr = problem.critical_range_of(&placement)?;
    println!("\none concrete drop of {n} sensors: critical range = {ctr:.1} m");
    for factor in [1.0, 1.3, 1.6] {
        let g = AdjacencyList::from_points(&placement, l, ctr * factor);
        let kappa = kconn::vertex_connectivity(&g);
        println!(
            "  at {factor:.1}x the critical range: vertex connectivity = {kappa} \
             ({})",
            if kappa >= 2 {
                "survives any single sensor failure"
            } else {
                "a single failure can split the field"
            }
        );
    }
    Ok(())
}
