//! Quickstart: the two questions the paper answers, in twenty lines.
//!
//! 1. **MTR** — how large must the transmitting range be for `n`
//!    randomly placed nodes to form a connected network?
//! 2. **MTRM** — and if the nodes move, how much larger to *stay*
//!    connected for a required fraction of the time?
//!
//! Run with `cargo run --release --example quickstart`.

use manet::mobility::RandomWaypoint;
use manet::{energy, MtrProblem, MtrmProblem};

fn main() -> Result<(), manet::CoreError> {
    // --- Stationary: 64 sensors scattered over a 4096 x 4096 field.
    let (n, l) = (64, 4096.0);
    let mtr = MtrProblem::<2>::new(n, l)?;
    let analysis = mtr.stationary_analysis(500, 1)?;
    let r_stationary = analysis.r_stationary(0.99)?;
    println!("stationary: n = {n}, l = {l}");
    println!("  r_stationary (99% of placements connected) = {r_stationary:.1}");
    println!(
        "  worst-case (adversarial) placement would need    {:.1}",
        mtr.worst_case_range()
    );

    // --- Mobile: the same network under random waypoint mobility.
    let problem = MtrmProblem::<2>::builder()
        .nodes(n)
        .side(l)
        .iterations(10)
        .steps(1000)
        .seed(7)
        .model(RandomWaypoint::new(0.1, 0.01 * l, 200, 0.0)?)
        .build()?;
    let solution = problem.solve()?;
    let r100 = solution.ranges.r100.mean();
    let r90 = solution.ranges.r90.mean();
    println!("mobile (random waypoint):");
    println!("  r100 (connected 100% of the time) = {r100:.1}");
    println!("  r90  (connected  90% of the time) = {r90:.1}");

    // --- The paper's punchline: tolerate 10% downtime, save energy.
    let saving = energy::energy_saving(r90, r100, 2.0)?;
    println!(
        "  tolerating 10% disconnection cuts transmit power by {:.0}%",
        saving * 100.0
    );
    Ok(())
}
