//! Occupancy theory, hands on: the mathematics behind Section 3's
//! tight 1-D connectivity threshold, demonstrated numerically.
//!
//! Walks the whole chain: exact moments of the empty-cell count, the
//! Theorem 2 limit law, Lemma 2's conditional gap probability, and the
//! Theorem 4 conclusion that the `{10*1}` gap — hence disconnection —
//! persists throughout the critical window.
//!
//! Run with `cargo run --release --example occupancy_demo`.

use manet::occupancy::{asymptotic, montecarlo, patterns, LimitLaw, Occupancy, OccupancyDomain};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1978); // Random Allocations, 1978

    // 400 balls into 100 cells (α = 4).
    let occ = Occupancy::new(400, 100)?;
    println!(
        "µ(n, C): {} balls into {} cells (α = {})",
        400,
        100,
        occ.alpha()
    );
    println!("  domain: {}", OccupancyDomain::classify(400, 100));
    println!(
        "  E[µ]: exact {:.4} | asymptotic {:.4} | bound C·e^-α = {:.4}",
        occ.expected_empty(),
        asymptotic::expected_empty_asymptotic(&occ),
        asymptotic::expected_empty_upper_bound(&occ),
    );
    println!(
        "  Var[µ]: exact {:.4} | asymptotic {:.4}",
        occ.variance_empty(),
        asymptotic::variance_empty_asymptotic(&occ),
    );

    // Empirical check with 20 000 throws.
    let trials = 20_000;
    let counts = montecarlo::empirical_empty_distribution(400, 100, trials, &mut rng);
    let mean: f64 = counts
        .iter()
        .enumerate()
        .map(|(k, &c)| k as f64 * c as f64)
        .sum::<f64>()
        / trials as f64;
    println!("  Monte Carlo over {trials} throws: mean µ = {mean:.4}");

    // The limit law and how closely the exact pmf already follows it.
    let law = LimitLaw::for_occupancy(&occ, None)?;
    println!("  Theorem 2 limit law: {}", law.describe());
    let pmf = occ.distribution();
    let k_mode = (0..pmf.len())
        .max_by(|&a, &b| pmf[a].total_cmp(&pmf[b]))
        .unwrap();
    println!(
        "  mode of exact pmf: k = {k_mode} with P = {:.4} (limit law mean {:.2})",
        pmf[k_mode],
        law.mean()
    );

    // Lemma 2: given k empty cells, how likely is a disconnecting gap?
    println!("\nLemma 2, C = 100 cells: P(gap | µ = k)");
    for k in [1u64, 2, 5, 10, 20] {
        println!(
            "  k = {k:2}: {:.6}",
            patterns::prob_gap_given_empty(100, k)?
        );
    }

    // Theorem 4's message: in the critical window the gap persists.
    println!("\nP(10*1 gap) by load factor (C = 1024 cells):");
    let ln_c = 1024f64.ln();
    for (label, alpha) in [
        ("α = √(ln C)  (critical window)", ln_c.sqrt()),
        ("α = ln C     (threshold)", ln_c),
        ("α = 2 ln C   (connected regime)", 2.0 * ln_c),
    ] {
        let n = (alpha * 1024.0) as u64;
        let occ = Occupancy::new(n, 1024)?;
        println!("  {label}: {:.6}", patterns::gap_probability(&occ)?);
    }
    println!("-> bounded away from zero inside the window, vanishing above: Theorem 5 is tight");
    Ok(())
}
