//! The freeway scenario (paper §1 and Figure 1): cars on a highway as a
//! 1-dimensional ad hoc network relaying congestion warnings backwards.
//!
//! Demonstrates the 1-D machinery: the max-gap critical range, Lemma
//! 1's occupancy-gap disconnection witness, the Theorem 5 threshold,
//! and multi-hop relay depth over the car-to-car graph.
//!
//! Run with `cargo run --release --example freeway`.

use manet::geom::Point;
use manet::graph::{bfs, AdjacencyList};
use manet::occupancy::patterns;
use manet::{one_dim, theorems};
use rand::{RngExt, SeedableRng};

fn main() -> Result<(), manet::CoreError> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2002);

    // A 16 km stretch of freeway with 200 cars at random milestones.
    let l = 16_000.0;
    let n = 200;
    let cars: Vec<f64> = (0..n).map(|_| rng.random_range(0.0..l)).collect();

    // How strong must each car's radio be for the whole stretch to be
    // one connected relay chain?
    let ctr = one_dim::critical_range_1d(&cars)?;
    println!("{n} cars on {l} m of freeway");
    println!("  largest inter-car gap (exact MTR) = {ctr:.0} m");

    // Theorem 5 predicts the scale of that answer for random traffic:
    let r_star = theorems::threshold_range(n, l)?;
    println!("  Theorem 5 threshold r* = l ln(l)/n  = {r_star:.0} m");
    println!(
        "  regime at r*: {}",
        theorems::ConnectivityRegime::classify(n, r_star, l)?
    );

    // Lemma 1 in action: chop the road into r-sized cells and look for
    // an empty cell between occupied ones.
    let r_radio = 0.8 * r_star;
    let witnessed = patterns::is_disconnected_by_gap(&cars, l, r_radio);
    let connected = one_dim::is_connected_1d(&cars, r_radio)?;
    println!("with weaker {r_radio:.0} m radios:");
    println!("  Lemma 1 gap witness fired: {witnessed}");
    println!("  network actually connected: {connected}");
    if witnessed {
        assert!(!connected, "Lemma 1 is a sufficient condition");
    }

    // An accident at the far end: how many car-to-car hops until the
    // warning reaches the start of the stretch?
    let r_radio = 1.2 * ctr; // strong enough to connect everyone
    let pts: Vec<Point<1>> = cars.iter().map(|&x| Point::new([x])).collect();
    let graph = AdjacencyList::from_points(&pts, l, r_radio);
    let accident_car = (0..n).max_by(|&a, &b| cars[a].total_cmp(&cars[b])).unwrap();
    let last_car = (0..n).min_by(|&a, &b| cars[a].total_cmp(&cars[b])).unwrap();
    let hops = bfs::hop_distances(&graph, accident_car)[last_car]
        .expect("graph connected at 1.2x the critical range");
    println!("accident warning relayed end-to-end in {hops} hops at r = {r_radio:.0} m");
    Ok(())
}
