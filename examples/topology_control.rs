//! Topology control: from a common range to per-node ranges.
//!
//! The paper motivates MTR partly as guidance for topology-control
//! protocols, which "dynamically adjust transmitting ranges in order to
//! minimize energy consumption". This example quantifies the next step
//! beyond the paper: moving from the optimal **common** range (the
//! critical transmitting range) to the MST-based **per-node** range
//! assignment of the companion Range Assignment problem, and what that
//! buys in total transmit power.
//!
//! Run with `cargo run --release --example topology_control`.

use manet::geom::Region;
use manet::graph::kconn;
use manet::RangeAssignment;
use rand::SeedableRng;

fn main() -> Result<(), manet::CoreError> {
    let region: Region<2> = Region::new(1000.0)?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(64);

    println!("MST-based per-node ranges vs the optimal common range (beta = 2):");
    println!(
        "{:>5}  {:>12}  {:>12}  {:>10}  {:>8}",
        "n", "common r", "max r_u", "saving", "kappa"
    );
    for n in [16usize, 32, 64, 128, 256] {
        let pts = region.place_uniform(n, &mut rng);
        let uniform = RangeAssignment::uniform(&pts);
        let mst = RangeAssignment::mst_based(&pts);
        assert!(mst.connects(&pts), "MST assignment must connect");

        let saving = mst.power_saving_vs(&uniform, 2.0)?;
        let graph = mst.symmetric_graph(&pts);
        let kappa = kconn::vertex_connectivity(&graph);
        println!(
            "{n:>5}  {:>12.1}  {:>12.1}  {:>9.1}%  {kappa:>8}",
            uniform.ranges()[0],
            mst.max_range(),
            saving * 100.0,
        );
    }
    println!(
        "\nthe per-node assignment connects the same nodes at a fraction of the\n\
         power — but its connectivity is exactly 1 (the MST is a tree), so the\n\
         dependability margin of the paper's r100-style provisioning is lost.\n\
         Topology control trades energy against failure tolerance."
    );

    // Show the margin explicitly for one deployment.
    let pts = region.place_uniform(64, &mut rng);
    let mst = RangeAssignment::mst_based(&pts);
    let mut boosted = RangeAssignment::uniform(&pts);
    // Uniform at 1.4x the CTR: costs more, survives node failures.
    let factor = 1.4;
    let boosted_ranges: Vec<f64> = boosted.ranges().iter().map(|r| r * factor).collect();
    boosted = RangeAssignment::from_ranges(boosted_ranges)?;
    let g_mst = mst.symmetric_graph(&pts);
    let g_boost = boosted.symmetric_graph(&pts);
    println!(
        "64 nodes: MST assignment kappa = {}, uniform 1.4x-CTR kappa = {}",
        kconn::vertex_connectivity(&g_mst),
        kconn::vertex_connectivity(&g_boost),
    );
    Ok(())
}
