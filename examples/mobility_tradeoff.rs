//! The energy-versus-quality-of-communication trade-off (paper §4.2)
//! and the "pattern of motion barely matters" headline (§5), on one
//! screen.
//!
//! Compares four mobility models at matched displacement scales, then
//! prices the paper's dependability tiers (always connected / 90% /
//! 10% / half the nodes) in transmit-power terms.
//!
//! Run with `cargo run --release --example mobility_tradeoff`.

use manet::availability::Availability;
use manet::mobility::{Drunkard, RandomDirection, RandomWalk, RandomWaypoint};
use manet::{energy, AnyModel, MtrmProblem};

fn solve(model: AnyModel<2>, l: f64, n: usize) -> Result<(f64, f64, f64), manet::CoreError> {
    let problem = MtrmProblem::<2>::builder()
        .nodes(n)
        .side(l)
        .iterations(10)
        .steps(1000)
        .seed(31)
        .model(model)
        .build()?;
    let sol = problem.solve()?;
    Ok((
        sol.ranges.r100.mean(),
        sol.ranges.r90.mean(),
        sol.ranges.r10.mean(),
    ))
}

fn main() -> Result<(), manet::CoreError> {
    let (l, n) = (1024.0, 32);
    let step = 0.01 * l; // matched displacement scale for all models
    println!("four mobility models, n = {n}, l = {l}, matched speed {step}/step:");
    println!("{:>18}  {:>8}  {:>8}  {:>8}", "model", "r100", "r90", "r10");
    let models: Vec<(&str, AnyModel<2>)> = vec![
        (
            "random waypoint",
            RandomWaypoint::new(0.1, step, 200, 0.0)?.into(),
        ),
        ("drunkard", Drunkard::new(0.1, 0.3, step)?.into()),
        ("random walk", RandomWalk::new(step, 0.0)?.into()),
        (
            "random direction",
            RandomDirection::new(0.1, step, 200, 0.0)?.into(),
        ),
    ];
    let mut waypoint_r100 = None;
    for (name, model) in models {
        let (r100, r90, r10) = solve(model, l, n)?;
        println!("{name:>18}  {r100:8.1}  {r90:8.1}  {r10:8.1}");
        match waypoint_r100 {
            None => waypoint_r100 = Some(r100),
            Some(baseline) => {
                let ratio = r100 / baseline;
                assert!(
                    (0.5..2.0).contains(&ratio),
                    "models should agree within 2x (paper: pattern barely matters)"
                );
            }
        }
    }
    println!("-> the *pattern* of motion moves the answer far less than its *quantity*\n");

    // Price the dependability tiers in energy.
    let problem = MtrmProblem::<2>::builder()
        .nodes(n)
        .side(l)
        .iterations(10)
        .steps(1000)
        .seed(31)
        .model(RandomWaypoint::new(0.1, step, 200, 0.0)?)
        .build()?;
    let sol = problem.solve()?;
    let r100 = sol.ranges.r100.mean();
    let tiers = [
        ("life-critical: up 100% of the time", sol.ranges.r100.mean()),
        ("field crew: up 90% of the time", sol.ranges.r90.mean()),
        ("data mule: up 10% of the time", sol.ranges.r10.mean()),
    ];
    println!("dependability tiers priced at path-loss exponent 2:");
    for (what, r) in tiers {
        let saving = energy::energy_saving(r, r100, 2.0)?;
        let availability = Availability::new(problem.availability_at(r)?)?;
        println!(
            "  {what:<38} r = {r:6.1}  power saving {:>4.0}%  ({availability})",
            saving * 100.0
        );
    }

    // Half-the-nodes tier (the paper's rl50): cheap and often enough.
    let rl = problem.ranges_for_component_fractions(&[0.5])?;
    let saving = energy::energy_saving(rl[0].1.min(r100), r100, 2.0)?;
    println!(
        "  {:<38} r = {:6.1}  power saving {:>4.0}%",
        "best effort: half the nodes connected",
        rl[0].1,
        saving * 100.0
    );
    Ok(())
}
