//! Kernel benches: the inner loops every experiment leans on.

use criterion::{criterion_group, criterion_main, Criterion};
use manet_bench::placement;
use manet_core::graph::{components, critical_range, AdjacencyList, MergeProfile, UnionFind};
use manet_core::occupancy::Occupancy;
use manet_core::one_dim;
use manet_core::stats::FrozenSeries;
use std::hint::black_box;

fn bench_mst(c: &mut Criterion) {
    let mut group = c.benchmark_group("critical_range_prim");
    for &n in &[16usize, 64, 128, 256] {
        let pts = placement(n, 1000.0, 7);
        group.bench_function(format!("n={n}"), |b| {
            b.iter(|| black_box(critical_range(black_box(&pts))))
        });
    }
    group.finish();
}

fn bench_merge_profile(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_profile_kruskal");
    for &n in &[16usize, 64, 128] {
        let pts = placement(n, 1000.0, 8);
        group.bench_function(format!("n={n}"), |b| {
            b.iter(|| black_box(MergeProfile::of(black_box(&pts))))
        });
    }
    group.finish();
}

fn bench_graph_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_build");
    let pts = placement(128, 1000.0, 9);
    group.bench_function("brute_force_n=128", |b| {
        b.iter(|| {
            black_box(AdjacencyList::from_points_brute_force(
                black_box(&pts),
                150.0,
            ))
        })
    });
    group.bench_function("grid_n=128", |b| {
        b.iter(|| {
            black_box(AdjacencyList::from_points_grid(black_box(&pts), 1000.0, 150.0).unwrap())
        })
    });
    group.finish();
}

fn bench_components(c: &mut Criterion) {
    let pts = placement(128, 1000.0, 10);
    let g = AdjacencyList::from_points_brute_force(&pts, 120.0);
    c.bench_function("connected_components_n=128", |b| {
        b.iter(|| black_box(components::largest_component_size(black_box(&g))))
    });
}

fn bench_union_find(c: &mut Criterion) {
    c.bench_function("union_find_chain_10k", |b| {
        b.iter(|| {
            let mut uf = UnionFind::new(10_000);
            for i in 0..9_999 {
                uf.union(i, i + 1);
            }
            black_box(uf.largest_component())
        })
    });
}

fn bench_one_dim_fast_path(c: &mut Criterion) {
    let xs: Vec<f64> = placement(4096, 4096.0, 11)
        .into_iter()
        .map(|p| p.coord(0))
        .collect();
    c.bench_function("critical_range_1d_n=4096", |b| {
        b.iter(|| black_box(one_dim::critical_range_1d(black_box(&xs)).unwrap()))
    });
}

fn bench_occupancy_exact(c: &mut Criterion) {
    c.bench_function("occupancy_pmf_n=500_C=100", |b| {
        b.iter(|| {
            let occ = Occupancy::new(500, 100).unwrap();
            black_box(occ.distribution())
        })
    });
}

fn bench_quantiles(c: &mut Criterion) {
    let values: Vec<f64> = placement(10_000, 1e6, 12)
        .into_iter()
        .map(|p| p.coord(0))
        .collect();
    c.bench_function("frozen_series_build_10k", |b| {
        b.iter(|| black_box(FrozenSeries::new(black_box(values.clone())).unwrap()))
    });
}

criterion_group!(
    kernels,
    bench_mst,
    bench_merge_profile,
    bench_graph_build,
    bench_components,
    bench_union_find,
    bench_one_dim_fast_path,
    bench_occupancy_exact,
    bench_quantiles,
);
criterion_main!(kernels);
