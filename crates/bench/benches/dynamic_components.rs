//! Incremental components vs full rebuild-and-relabel.
//!
//! The connectivity spine's bet is that maintaining the component
//! summary under edge deltas (`DynamicGraph::step` +
//! `DynamicComponents::apply`) beats rebuilding the adjacency list and
//! relabeling from scratch (`AdjacencyList::from_points` +
//! `ComponentSummary::of`) at every step. This target prices that bet
//! across node counts and mobility speeds, and the `churn_crossover`
//! group sweeps speed until the delta path loses — the measurement
//! behind `manet_graph::FULL_REBUILD_CHURN_FRACTION` (update that
//! constant's comment if these numbers move).
//!
//! Seeds are pinned (like every fixture in `manet-bench`) so perf
//! series stay comparable across commits.

use criterion::{criterion_group, criterion_main, Criterion};
use manet_bench::placement;
use manet_core::geom::{Point, Region};
use manet_core::graph::{AdjacencyList, ComponentSummary, DynamicComponents, DynamicGraph};
use manet_core::mobility::{Mobility, RandomWaypoint};
use rand::SeedableRng;
use std::hint::black_box;

// Sparse regime (side >> range): bounded-degree graphs where the
// grid/delta path is O(n + E) per step; the interesting contest is
// then delta-apply vs relabel, not graph construction alone.
const SIDE: f64 = 1000.0;
const RANGE: f64 = 30.0;
const TRAJ_STEPS: usize = 60;

/// A pinned-seed random-waypoint trajectory at top speed `v_max`.
fn trajectory(n: usize, v_max: f64, seed: u64) -> Vec<Vec<Point<2>>> {
    let region: Region<2> = Region::new(SIDE).expect("positive side");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut positions = placement(n, SIDE, seed);
    let mut model = RandomWaypoint::new(v_max * 0.5, v_max, 0, 0.0).expect("valid parameters");
    model.init(&positions, &region, &mut rng);
    let mut out = vec![positions.clone()];
    for _ in 1..TRAJ_STEPS {
        model.step(&mut positions, &region, &mut rng);
        out.push(positions.clone());
    }
    out
}

/// Mean per-step churn as a fraction of `n` (printed into the bench id
/// so the ns/iter numbers can be read against the crossover constant).
fn churn_per_node(traj: &[Vec<Point<2>>]) -> f64 {
    manet_bench::step_kernel::churn_per_node(traj, SIDE, RANGE)
}

/// The delta path: advance the graph and apply the diff to the
/// incrementally-maintained components, reading the per-step answers.
fn run_delta(traj: &[Vec<Point<2>>]) -> (usize, usize) {
    let mut dg = DynamicGraph::new(black_box(&traj[0]), SIDE, RANGE);
    let mut dc = DynamicComponents::new(traj[0].len());
    dc.apply(dg.last_diff(), dg.graph());
    let mut acc = (dc.count(), dc.largest_size());
    for pts in &traj[1..] {
        dg.step(black_box(pts));
        dc.apply(dg.last_diff(), dg.graph());
        acc = (acc.0 ^ dc.count(), acc.1 ^ dc.largest_size());
    }
    acc
}

/// The from-scratch path: rebuild the snapshot and relabel it fully at
/// every step.
fn run_rebuild(traj: &[Vec<Point<2>>]) -> (usize, usize) {
    let mut acc = (0usize, 0usize);
    for pts in traj {
        let graph = AdjacencyList::from_points(black_box(pts), SIDE, RANGE);
        let comps = ComponentSummary::of(&graph);
        acc = (acc.0 ^ comps.count(), acc.1 ^ comps.largest_size());
    }
    acc
}

fn bench_delta_vs_rebuild(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic_components");
    for &n in &[100usize, 500, 1000] {
        for (label, v_max) in [("low", 2.0), ("high", 40.0)] {
            let traj = trajectory(n, v_max, 21);
            let churn = churn_per_node(&traj);
            group.bench_function(
                format!("delta_apply_n={n}_speed={label}_churn={churn:.3}n"),
                |b| b.iter(|| run_delta(&traj)),
            );
            group.bench_function(
                format!("rebuild_relabel_n={n}_speed={label}_churn={churn:.3}n"),
                |b| b.iter(|| run_rebuild(&traj)),
            );
        }
    }
    group.finish();
}

/// Precomputes one trajectory's `(diff, snapshot)` stream so the apply
/// strategies can be timed without the (shared, dominant) cost of
/// graph reconstruction.
fn delta_stream(traj: &[Vec<Point<2>>]) -> Vec<(manet_core::graph::EdgeDiff, AdjacencyList)> {
    let mut dg = DynamicGraph::new(&traj[0], SIDE, RANGE);
    let mut out = vec![(dg.initial_diff(), dg.graph().clone())];
    for pts in &traj[1..] {
        dg.step(pts);
        out.push((dg.last_diff().clone(), dg.graph().clone()));
    }
    out
}

/// Sweeps mobility speed at fixed n so per-step churn crosses the
/// full-rebuild threshold, isolating exactly the decision
/// `FULL_REBUILD_CHURN_FRACTION` encodes: incremental apply
/// (DSU unions + epoch partial rebuilds) versus one full relabeling of
/// the already-built snapshot. Graph construction is precomputed and
/// excluded from both sides.
fn bench_apply_strategy_crossover(c: &mut Criterion) {
    let mut group = c.benchmark_group("apply_strategy_n=500");
    for &v_max in &[1.0, 5.0, 10.0, 20.0, 40.0, 80.0] {
        let traj = trajectory(500, v_max, 22);
        let churn = churn_per_node(&traj);
        let stream = delta_stream(&traj);
        group.bench_function(
            format!("incremental_apply_v={v_max}_churn={churn:.3}n"),
            |b| {
                b.iter(|| {
                    let mut dc = DynamicComponents::new(500);
                    let mut acc = 0usize;
                    for (diff, graph) in &stream {
                        dc.apply(black_box(diff), graph);
                        acc ^= dc.count() ^ dc.largest_size();
                    }
                    acc
                })
            },
        );
        group.bench_function(format!("full_relabel_v={v_max}_churn={churn:.3}n"), |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for (_, graph) in &stream {
                    let comps = ComponentSummary::of(black_box(graph));
                    acc ^= comps.count() ^ comps.largest_size();
                }
                acc
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_delta_vs_rebuild,
    bench_apply_strategy_crossover
);
criterion_main!(benches);
