//! Ablation benches for the design choices called out in DESIGN.md §6:
//! each compares the chosen implementation against its alternative on
//! identical inputs, so the speedup claims stay measured, not asserted.

use criterion::{criterion_group, criterion_main, Criterion};
use manet_bench::{bench_waypoint, placement, small_problem};
use manet_core::geom::BoundaryPolicy;
use manet_core::graph::{critical_range, MergeProfile};
use manet_core::mobility::Drunkard;
use manet_core::occupancy::Occupancy;
use manet_core::sim::search::find_range_for_connectivity_fraction;
use manet_core::sim::{simulate_critical_ranges, SimConfig};
use std::hint::black_box;

/// CTR-quantile method vs bisection search for `r90` (identical
/// answers; the quantile path reuses one simulation for all fractions).
fn quantile_vs_bisection(c: &mut Criterion) {
    let mut group = c.benchmark_group("r90_extraction");
    let mut b = SimConfig::<2>::builder();
    b.nodes(16)
        .side(256.0)
        .iterations(2)
        .steps(30)
        .seed(77)
        .threads(1);
    let cfg = b.build().unwrap();
    let model = bench_waypoint();
    group.bench_function("fast_quantile", |bch| {
        bch.iter(|| {
            let res = simulate_critical_ranges(&cfg, &model).unwrap();
            black_box(res.mean_range_for_fraction(0.9).unwrap())
        })
    });
    group.bench_function("slow_bisection", |bch| {
        bch.iter(|| {
            black_box(find_range_for_connectivity_fraction(&cfg, &model, 0.9, 1.0).unwrap())
        })
    });
    group.finish();
}

/// Prim bottleneck vs full Kruskal profile when only the CTR is needed.
fn prim_vs_kruskal_for_ctr(c: &mut Criterion) {
    let mut group = c.benchmark_group("ctr_only");
    let pts = placement(128, 1000.0, 13);
    group.bench_function("prim_bottleneck", |b| {
        b.iter(|| black_box(critical_range(black_box(&pts))))
    });
    group.bench_function("kruskal_full_profile", |b| {
        b.iter(|| black_box(MergeProfile::of(black_box(&pts)).critical_range()))
    });
    group.finish();
}

/// Drunkard boundary policies: rejection resampling vs reflection.
fn drunkard_boundary_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("drunkard_boundary");
    for (name, policy) in [
        ("resample", BoundaryPolicy::Resample),
        ("reflect", BoundaryPolicy::Reflect),
        ("clamp", BoundaryPolicy::Clamp),
    ] {
        group.bench_function(name, |bch| {
            let model = Drunkard::with_boundary(0.0, 0.0, 64.0, policy).unwrap();
            let p = small_problem(model);
            bch.iter(|| black_box(p.solve().unwrap()))
        });
    }
    group.finish();
}

/// Profile grid resolutions: accuracy/cost trade of the rl inversion.
fn profile_resolutions(c: &mut Criterion) {
    let mut group = c.benchmark_group("profile_bins");
    for &bins in &[128usize, 1024, 4096] {
        group.bench_function(format!("bins={bins}"), |bch| {
            let p = manet_core::MtrmProblem::<2>::builder()
                .nodes(16)
                .side(256.0)
                .iterations(2)
                .steps(30)
                .seed(5)
                .threads(1)
                .profile_bins(bins)
                .model(bench_waypoint())
                .build()
                .unwrap();
            bch.iter(|| black_box(p.component_profiles().unwrap()))
        });
    }
    group.finish();
}

/// Stirling DP vs inclusion–exclusion for the occupancy pmf.
fn occupancy_pmf_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("occupancy_pmf");
    let occ = Occupancy::new(300, 60).unwrap();
    group.bench_function("stirling_full_pmf", |b| {
        b.iter(|| black_box(occ.distribution()))
    });
    group.bench_function("inclusion_exclusion_single_k", |b| {
        b.iter(|| black_box(occ.pmf_empty_inclusion_exclusion(10).unwrap()))
    });
    group.finish();
}

criterion_group!(
    ablations,
    quantile_vs_bisection,
    prim_vs_kruskal_for_ctr,
    drunkard_boundary_policies,
    profile_resolutions,
    occupancy_pmf_paths,
);
criterion_main!(ablations);
