//! Temporal-trace benches: the delta-stream path versus from-scratch
//! rebuilds, and the end-to-end trace pipeline.
//!
//! Seeds are pinned (like every fixture in `manet-bench`) so perf
//! series stay comparable across commits.

use criterion::{criterion_group, criterion_main, Criterion};
use manet_bench::placement;
use manet_core::geom::{Point, Region};
use manet_core::graph::{AdjacencyList, DynamicGraph};
use manet_core::mobility::{Mobility, RandomWaypoint};
use manet_core::sim::{simulate_trace, SimConfig};
use manet_core::trace::TraceRecorder;
use rand::SeedableRng;
use std::hint::black_box;

// Sparse regime (side >> range): the communication graph has bounded
// degree, so the grid/delta path is O(n + E) per step against the
// brute-force O(n²) rebuild. This is where scaling the node count
// actually lives; the dense regime (side ~ a few·range) stays on the
// brute-force branch of `from_points` by design.
const SIDE: f64 = 1000.0;
const RANGE: f64 = 30.0;
const TRAJ_STEPS: usize = 100;

/// A pinned-seed random-waypoint trajectory: `steps` position
/// snapshots of `n` nodes.
fn trajectory(n: usize, steps: usize, seed: u64) -> Vec<Vec<Point<2>>> {
    let region: Region<2> = Region::new(SIDE).expect("positive side");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut positions = placement(n, SIDE, seed);
    let mut model = RandomWaypoint::new(1.0, 10.0, 5, 0.0).expect("valid parameters");
    model.init(&positions, &region, &mut rng);
    let mut out = vec![positions.clone()];
    for _ in 1..steps {
        model.step(&mut positions, &region, &mut rng);
        out.push(positions.clone());
    }
    out
}

fn bench_delta_stream_vs_rebuild(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_graph_maintenance");
    for &n in &[256usize, 1024] {
        let traj = trajectory(n, TRAJ_STEPS, 12);
        group.bench_function(format!("dynamic_diff_n={n}"), |b| {
            b.iter(|| {
                let mut dg = DynamicGraph::new(black_box(&traj[0]), SIDE, RANGE);
                let mut churn = dg.last_diff().churn();
                for pts in &traj[1..] {
                    dg.step(black_box(pts));
                    churn += dg.last_diff().churn();
                }
                black_box(churn)
            })
        });
        group.bench_function(format!("rebuild_brute_n={n}"), |b| {
            b.iter(|| {
                let mut edges = 0usize;
                for pts in &traj {
                    edges +=
                        AdjacencyList::from_points_brute_force(black_box(pts), RANGE).edge_count();
                }
                black_box(edges)
            })
        });
    }
    group.finish();
}

fn bench_recorder_fold(c: &mut Criterion) {
    let traj = trajectory(128, TRAJ_STEPS, 13);
    c.bench_function("trace_recorder_fold_n=128", |b| {
        b.iter(|| {
            let mut dg = DynamicGraph::new(&traj[0], SIDE, RANGE);
            let mut rec = TraceRecorder::new(128, traj.len());
            rec.observe(dg.last_diff(), dg.graph());
            for pts in &traj[1..] {
                dg.step(pts);
                rec.observe(dg.last_diff(), dg.graph());
            }
            black_box(rec.finish())
        })
    });
}

fn bench_trace_pipeline(c: &mut Criterion) {
    let mut b = SimConfig::<2>::builder();
    b.nodes(16)
        .side(256.0)
        .iterations(2)
        .steps(50)
        .seed(404)
        .threads(1);
    let config = b.build().expect("valid bench configuration");
    let model = RandomWaypoint::new(0.1, 2.56, 10, 0.0).expect("valid parameters");
    c.bench_function("simulate_trace_16x50", |b| {
        b.iter(|| black_box(simulate_trace(&config, &model, 64.0).unwrap()))
    });
}

criterion_group!(
    traces,
    bench_delta_stream_vs_rebuild,
    bench_recorder_fold,
    bench_trace_pipeline
);
criterion_main!(traces);
