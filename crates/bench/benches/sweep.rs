//! Sweep scheduler: fan-out overhead and critical-range sweep scaling.
//!
//! Two questions. First, what does the scheduler itself cost —
//! claiming job ids off the atomic cursor, tagging results, and the
//! job-id-ordered merge — relative to the work it schedules? The
//! `overhead` group runs grids of near-empty jobs, so any gap between
//! thread counts is pure scheduling. Second, how does the
//! critical-scaling workload (the `manet-repro critical-scaling`
//! spine: one stochastic bisection per cell) scale with workers? Cells
//! are independent campaigns, so the `critical_cells` group should
//! approach linear speedup until cells run out.
//!
//! Seeds are pinned (like every fixture in `manet-bench`) so perf
//! series stay comparable across commits.

use criterion::{criterion_group, criterion_main, Criterion};
use manet_core::mobility::RandomWaypoint;
use manet_core::sim::{find_critical_range, CriticalRangeSearch, SimConfig, SweepScheduler};
use std::hint::black_box;

fn scheduler_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_overhead");
    let jobs: Vec<u64> = (0..256).collect();
    for threads in [1usize, 2, 4, 8] {
        let scheduler = SweepScheduler::new(threads);
        group.bench_function(format!("jobs=256_threads={threads}"), |b| {
            b.iter(|| {
                let run = scheduler
                    .run(
                        black_box(&jobs),
                        jobs.iter().map(|_| None).collect(),
                        |_, &x| Ok(x.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    )
                    .expect("pure jobs cannot fail");
                black_box(run.into_complete().expect("no budget"))
            });
        });
    }
    group.finish();
}

fn critical_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_critical_cells");
    // A 12-cell grid of small bisection campaigns (the critical-scaling
    // workload shape at bench scale).
    let cells: Vec<(usize, u64)> = (0..12).map(|i| (10 + (i % 3) * 2, i as u64)).collect();
    let search = CriticalRangeSearch::new().with_target(0.95);
    for threads in [1usize, 2, 4] {
        let scheduler = SweepScheduler::new(threads);
        group.bench_function(format!("cells=12_threads={threads}"), |b| {
            b.iter(|| {
                let run = scheduler
                    .run(
                        black_box(&cells),
                        cells.iter().map(|_| None).collect(),
                        |_, &(n, seed)| {
                            let mut builder = SimConfig::<2>::builder();
                            builder
                                .nodes(n)
                                .side(100.0)
                                .iterations(2)
                                .steps(20)
                                .seed(seed)
                                .threads(1);
                            let config = builder.build()?;
                            let model =
                                RandomWaypoint::new(0.5, 2.0, 1, 0.0).expect("valid parameters");
                            find_critical_range(&config, &model, &search).map(|p| p.range.to_bits())
                        },
                    )
                    .expect("cells cannot fail");
                black_box(run.into_complete().expect("no budget"))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, scheduler_overhead, critical_cells);
criterion_main!(benches);
