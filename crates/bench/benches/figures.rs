//! One bench per paper figure: the exact experiment pipelines at a
//! scaled-down cell (`l = 256`, `n = 16`, 2 iterations × 50 steps), so
//! regressions in any figure's critical path show up in CI timing.

use criterion::{criterion_group, criterion_main, Criterion};
use manet_bench::{bench_drunkard, bench_waypoint, small_problem};
use manet_core::sim::StationaryAnalysis;
use std::hint::black_box;

/// Figure 2 pipeline: waypoint critical-range quantiles.
fn fig2(c: &mut Criterion) {
    c.bench_function("fig2_waypoint_ranges", |b| {
        let p = small_problem(bench_waypoint());
        b.iter(|| black_box(p.solve().unwrap()))
    });
}

/// Figure 3 pipeline: drunkard critical-range quantiles.
fn fig3(c: &mut Criterion) {
    c.bench_function("fig3_drunkard_ranges", |b| {
        let p = small_problem(bench_drunkard());
        b.iter(|| black_box(p.solve().unwrap()))
    });
}

/// Figure 4 pipeline: waypoint component profiles.
fn fig4(c: &mut Criterion) {
    c.bench_function("fig4_waypoint_profiles", |b| {
        let p = small_problem(bench_waypoint());
        b.iter(|| black_box(p.component_profiles().unwrap()))
    });
}

/// Figure 5 pipeline: drunkard component profiles.
fn fig5(c: &mut Criterion) {
    c.bench_function("fig5_drunkard_profiles", |b| {
        let p = small_problem(bench_drunkard());
        b.iter(|| black_box(p.component_profiles().unwrap()))
    });
}

/// Figure 6 pipeline: rl-target inversion.
fn fig6(c: &mut Criterion) {
    c.bench_function("fig6_component_targets", |b| {
        let p = small_problem(bench_waypoint());
        b.iter(|| black_box(p.ranges_for_component_fractions(&[0.9, 0.75, 0.5]).unwrap()))
    });
}

/// Figure 7 pipeline: one p_stationary sweep point.
fn fig7(c: &mut Criterion) {
    c.bench_function("fig7_pstationary_point", |b| {
        let p =
            small_problem(manet_core::mobility::RandomWaypoint::new(0.1, 2.56, 10, 0.5).unwrap());
        b.iter(|| black_box(p.solve().unwrap()))
    });
}

/// Figure 8 pipeline: one t_pause sweep point.
fn fig8(c: &mut Criterion) {
    c.bench_function("fig8_tpause_point", |b| {
        let p =
            small_problem(manet_core::mobility::RandomWaypoint::new(0.1, 2.56, 25, 0.0).unwrap());
        b.iter(|| black_box(p.solve().unwrap()))
    });
}

/// Figure 9 pipeline: one v_max sweep point.
fn fig9(c: &mut Criterion) {
    c.bench_function("fig9_vmax_point", |b| {
        let p =
            small_problem(manet_core::mobility::RandomWaypoint::new(0.1, 128.0, 10, 0.0).unwrap());
        b.iter(|| black_box(p.solve().unwrap()))
    });
}

/// S1 pipeline: the stationary calibration behind every figure.
fn stationary(c: &mut Criterion) {
    c.bench_function("stationary_calibration", |b| {
        b.iter(|| black_box(StationaryAnalysis::run::<2>(16, 256.0, 100, 5).unwrap()))
    });
}

criterion_group!(figures, fig2, fig3, fig4, fig5, fig6, fig7, fig8, fig9, stationary);
criterion_main!(figures);
