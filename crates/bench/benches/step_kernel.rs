//! The zero-rebuild step kernel vs the rebuild-and-diff path.
//!
//! This target prices the tentpole bet of the incremental kernel: that
//! deriving each step's `EdgeDiff` from moved-node rescans over a
//! `MovingCellGrid` (`DynamicGraph::step`) beats rebuilding the
//! snapshot with `AdjacencyList::from_points` and diffing two full
//! snapshots — especially at large `n` and low churn, where the
//! rebuild path's per-step allocations and full-graph merges dominate.
//!
//! `n ∈ {256, 1000, 4000} × {low, high}` waypoint speed, sparse regime
//! (side ≫ range). Seeds are pinned (like every fixture in
//! `manet-bench`) so perf series stay comparable across commits. The
//! committed `BENCH_step_kernel.json` numbers come from the
//! `step-kernel-capture` binary, which times these exact workloads.

use criterion::{criterion_group, criterion_main, Criterion};
use manet_bench::step_kernel::{
    churn_per_node, run_cached_threads, run_incremental, run_incremental_threads, run_rebuild_diff,
    trajectory, RANGE, SCENARIOS, SIDE,
};
use manet_core::graph::Skin;
use std::hint::black_box;

fn bench_step_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("step_kernel");
    for &n in &[256usize, 1000, 4000] {
        for scenario in &SCENARIOS {
            let steps = if n >= 4000 { 30 } else { 60 };
            let traj = trajectory(n, scenario, steps, 31);
            let churn = churn_per_node(&traj, SIDE, RANGE);
            let label = scenario.label;
            group.bench_function(
                format!("incremental_n={n}_scenario={label}_churn={churn:.3}n"),
                |b| b.iter(|| run_incremental(black_box(&traj), SIDE, RANGE)),
            );
            group.bench_function(
                format!("rebuild_diff_n={n}_scenario={label}_churn={churn:.3}n"),
                |b| b.iter(|| run_rebuild_diff(black_box(&traj), SIDE, RANGE)),
            );
        }
    }
    group.finish();
}

/// Self-speedup of the sharded bulk rescan: the all-moving `mid`
/// regime at `n = 4000`, intra-step threads 1/2/4. Checksums (hence
/// every observable) are identical across the sweep; only wall clock
/// moves.
fn bench_step_kernel_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("step_kernel_threads");
    let scenario = SCENARIOS
        .iter()
        .find(|s| s.label == "mid")
        .expect("mid scenario");
    let traj = trajectory(4000, scenario, 30, 31);
    for &threads in &[1usize, 2, 4] {
        group.bench_function(format!("incremental_n=4000_mid_threads={threads}"), |b| {
            b.iter(|| run_incremental_threads(black_box(&traj), SIDE, RANGE, threads))
        });
    }
    group.finish();
}

/// The Verlet cache's win on its target regime: `mid` (all-moving,
/// bounded per-step displacement) at `n ∈ {1000, 4000}`, the skin
/// pinned off vs auto-tuned vs a fixed radius near the optimum. The
/// checksum — hence every observable — is identical across the sweep;
/// the committed capture gates the auto/off ratio.
fn bench_step_kernel_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("step_kernel_cache");
    let scenario = SCENARIOS
        .iter()
        .find(|s| s.label == "mid")
        .expect("mid scenario");
    for &n in &[1000usize, 4000] {
        let steps = if n >= 4000 { 30 } else { 60 };
        let traj = trajectory(n, scenario, steps, 31);
        for (label, skin) in [
            ("off", Skin::Off),
            ("auto", Skin::Auto),
            ("fixed12", Skin::Fixed(12.0)),
        ] {
            group.bench_function(format!("cached_n={n}_mid_skin={label}"), |b| {
                b.iter(|| {
                    run_cached_threads(black_box(&traj), SIDE, RANGE, scenario.v_max, skin, 1)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_step_kernel,
    bench_step_kernel_threads,
    bench_step_kernel_cache
);
criterion_main!(benches);
