//! Per-step cost of every mobility model in the registry zoo.
//!
//! The incremental connectivity spine (PR 3) made the *graph* side of
//! a simulation step cheap; this target watches the *motion* side so a
//! new model family cannot silently dominate the step budget. One
//! bench per registry name at the paper cell `l = 1024`, `n ∈ {32,
//! 256}`: `step` advances all nodes once (RNG and positions reused
//! across iterations, so the measurement is the steady-state per-step
//! cost, boundary interactions included).

use criterion::{criterion_group, criterion_main, Criterion};
use manet_core::geom::Region;
use manet_core::mobility::Mobility;
use manet_core::{ModelRegistry, PaperScale};
use rand::SeedableRng;
use std::hint::black_box;

fn mobility_step(c: &mut Criterion) {
    let side = 1024.0;
    let region: Region<2> = Region::new(side).expect("positive side");
    let registry = ModelRegistry::<2>::with_builtins();
    let scale = PaperScale::new(side).with_pause(50);
    for &n in &[32usize, 256] {
        let mut group = c.benchmark_group(format!("mobility_step/n={n}"));
        for name in registry.names() {
            group.bench_function(name, |b| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(20020623);
                let mut positions = region.place_uniform(n, &mut rng);
                let mut model = registry.build(name, &scale).expect("builtin builds");
                model.init(&positions, &region, &mut rng);
                b.iter(|| {
                    model.step(&mut positions, &region, &mut rng);
                    black_box(&positions);
                })
            });
        }
        group.finish();
    }
}

criterion_group!(mobility, mobility_step);
criterion_main!(mobility);
