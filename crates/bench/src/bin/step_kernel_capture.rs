//! Captures step-kernel benchmark numbers to machine-readable JSON.
//!
//! `cargo bench` prints human-readable ns/iter lines; nothing was
//! recording the perf trajectory. This binary times the exact
//! workloads of the `step_kernel` Criterion target — the incremental
//! `DynamicGraph::step` kernel vs the rebuild-and-diff path at
//! `n ∈ {256, 1000, 4000} × {low, mid, high}` mobility — and writes
//! the results as JSON (committed as `BENCH_step_kernel.json` at the
//! repository root; see `scripts/capture_step_kernel.sh`).
//!
//! Usage: `step_kernel_capture [--quick] [--profile] [--out PATH]`
//!
//! `--quick` runs a reduced grid with one repeat (the CI smoke: proves
//! the capture path works and the kernel still wins, without paying
//! for stable numbers). `--profile` arms the span timer and prints a
//! wall-clock breakdown (trajectory generation vs timing passes) to
//! stderr. Without `--out`, JSON goes to stdout.
//!
//! Besides ns/step, every row carries the kernel's deterministic path
//! counters (incremental vs bulk-rescan vs fallback step fractions,
//! rescan candidate volumes, grid cells touched, edge events) captured
//! by one untimed pass — the diagnostic data for *why* the speedup
//! moves with churn, byte-identical across machines and thread counts.

use manet_bench::step_kernel::{
    churn_per_node, measure_kernel_counters, run_incremental, run_rebuild_diff, trajectory,
    Scenario, RANGE, SCENARIOS, SIDE,
};
use manet_core::geom::Point;
use manet_core::obs::{KernelMetrics, SpanTimer};
use std::hint::black_box;
use std::time::Instant;

struct Cell {
    n: usize,
    scenario: &'static str,
    moved_fraction: f64,
    steps: usize,
    churn_per_node: f64,
    incremental_ns_per_step: f64,
    rebuild_ns_per_step: f64,
    kernel: KernelMetrics,
}

/// Median wall time of `repeats` timed passes over the trajectory,
/// in nanoseconds per mobility step.
fn time_ns_per_step<F: FnMut() -> usize>(mut f: F, steps: usize, repeats: usize) -> f64 {
    // One untimed pass warms caches and the allocator.
    black_box(f());
    let mut samples: Vec<f64> = (0..repeats)
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed().as_nanos() as f64 / steps as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn measure(
    n: usize,
    scenario: &'static Scenario,
    steps: usize,
    repeats: usize,
    timer: &mut SpanTimer,
) -> Cell {
    timer.enter("cell");
    timer.enter("trajectory");
    let traj: Vec<Vec<Point<2>>> = trajectory(n, scenario, steps, 31);
    timer.exit();
    let churn = churn_per_node(&traj, SIDE, RANGE);
    let kernel = measure_kernel_counters(&traj, SIDE, RANGE);
    // Mean fraction of nodes that move per step (bitwise position
    // comparison), the quantity the moved-node kernel scales with.
    let mut moved = 0usize;
    for w in traj.windows(2) {
        moved += w[0].iter().zip(&w[1]).filter(|(a, b)| a != b).count();
    }
    let moved_fraction = moved as f64 / ((traj.len() - 1) as f64 * n as f64);
    timer.enter("time_incremental");
    let inc = time_ns_per_step(|| run_incremental(&traj, SIDE, RANGE), steps - 1, repeats);
    timer.exit();
    timer.enter("time_rebuild");
    let reb = time_ns_per_step(|| run_rebuild_diff(&traj, SIDE, RANGE), steps - 1, repeats);
    timer.exit();
    timer.exit();
    Cell {
        n,
        scenario: scenario.label,
        moved_fraction,
        steps,
        churn_per_node: churn,
        incremental_ns_per_step: inc,
        rebuild_ns_per_step: reb,
        kernel,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let profile = args.iter().any(|a| a == "--profile");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let (sizes, repeats): (&[usize], usize) = if quick {
        (&[256, 1000], 1)
    } else {
        (&[256, 1000, 4000], 5)
    };

    let mut timer = if profile {
        SpanTimer::armed()
    } else {
        SpanTimer::disarmed()
    };
    let mut cells = Vec::new();
    for &n in sizes {
        for scenario in &SCENARIOS {
            let steps = if quick {
                16
            } else if n >= 4000 {
                30
            } else {
                60
            };
            let cell = measure(n, scenario, steps, repeats, &mut timer);
            eprintln!(
                "n={:<5} scenario={:<4} moved={:.2}n churn={:.3}n  incremental {:>12.0} ns/step  rebuild {:>12.0} ns/step  speedup {:.2}x  paths {}i/{}b/{}f",
                cell.n,
                cell.scenario,
                cell.moved_fraction,
                cell.churn_per_node,
                cell.incremental_ns_per_step,
                cell.rebuild_ns_per_step,
                cell.rebuild_ns_per_step / cell.incremental_ns_per_step,
                cell.kernel.step.incremental_steps,
                cell.kernel.step.bulk_rescan_steps,
                cell.kernel.step.fallback_steps,
            );
            cells.push(cell);
        }
    }
    let report = timer.report();
    if !report.spans.is_empty() {
        eprint!("{}", report.render_table());
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"step_kernel\",\n");
    json.push_str(&format!("  \"side\": {SIDE},\n  \"range\": {RANGE},\n"));
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    json.push_str(&format!("  \"repeats\": {repeats},\n"));
    json.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let k = &c.kernel;
        json.push_str(&format!(
            "    {{\"n\": {}, \"scenario\": \"{}\", \"steps\": {}, \
             \"moved_fraction\": {:.4}, \"churn_per_node\": {:.4}, \
             \"incremental_ns_per_step\": {:.1}, \
             \"rebuild_ns_per_step\": {:.1}, \"speedup\": {:.2}, \
             \"incremental_fraction\": {:.4}, \"bulk_rescan_fraction\": {:.4}, \
             \"fallback_steps\": {}, \
             \"moved_rescan_candidates\": {}, \"bulk_rescan_candidates\": {}, \
             \"cells_touched\": {}, \
             \"edges_added\": {}, \"edges_removed\": {}}}{}\n",
            c.n,
            c.scenario,
            c.steps,
            c.moved_fraction,
            c.churn_per_node,
            c.incremental_ns_per_step,
            c.rebuild_ns_per_step,
            c.rebuild_ns_per_step / c.incremental_ns_per_step,
            k.step.incremental_fraction(),
            k.step.bulk_fraction(),
            k.step.fallback_steps,
            k.step.moved_rescan_candidates,
            k.step.bulk_rescan_candidates,
            k.grid.cells_touched,
            k.step.edges_added,
            k.step.edges_removed,
            if i + 1 < cells.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");

    match out_path {
        Some(path) => {
            std::fs::write(&path, &json).expect("write bench JSON");
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }

    // The capture doubles as a loud regression check: the kernel's
    // raison d'être is beating the rebuild path at scale. Quick mode
    // (tiny trajectories, 1 repeat) only reports.
    if !quick {
        let worst = cells
            .iter()
            .filter(|c| c.n >= 4000 && c.scenario == "low")
            .map(|c| c.rebuild_ns_per_step / c.incremental_ns_per_step)
            .fold(f64::INFINITY, f64::min);
        assert!(
            worst >= 3.0,
            "step kernel speedup regressed below 3x at n=4000 low churn: {worst:.2}x"
        );
    }
}
