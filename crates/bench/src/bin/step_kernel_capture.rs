//! Captures step-kernel benchmark numbers to machine-readable JSON.
//!
//! `cargo bench` prints human-readable ns/iter lines; nothing was
//! recording the perf trajectory. This binary times the exact
//! workloads of the `step_kernel` Criterion target — the incremental
//! `DynamicGraph::step` kernel vs the rebuild-and-diff path at
//! `n ∈ {256, 1000, 4000} × {low, mid, high}` mobility — and writes
//! the results as JSON (committed as `BENCH_step_kernel.json` at the
//! repository root; see `scripts/capture_step_kernel.sh`).
//!
//! Three row families beyond the base grid:
//!
//! * a **thread sweep** at `n = 4000` (`--step-threads`-style intra-step
//!   sharding at 2/4/8 workers, `mid`/`high` all-moving regimes), the
//!   self-speedup series of the sharded bulk rescan;
//! * **scaling rows** at `n = 20000` and `n = 100000` over a
//!   density-preserving region (`side_for(n)`), threads 1 and 4 — the
//!   push toward 10⁵ nodes;
//! * `--large-smoke` replaces the grid with one cheap `n = 20000` pair
//!   of rows (threads 1 vs 4, checksum-asserted equal) for CI;
//! * `--skin-sweep` replaces the grid with the Verlet-skin cost curve:
//!   `n = 4000` `mid`/`high` serial, skin ∈ {off, auto, fixed radii}.
//!
//! Every row runs with the scenario's declared displacement bound and
//! a Verlet skin policy (the base grid pins `auto`, the kernel
//! default; one `mid` row pins `off` as the before/after contrast),
//! and carries the cache-path counters (verify fraction, rebuilds,
//! arena size, verify candidates) next to the legacy path split.
//!
//! Usage: `step_kernel_capture [--quick | --large-smoke | --skin-sweep] [--profile] [--out PATH]`
//!
//! `--quick` runs a reduced grid with one repeat (the CI smoke: proves
//! the capture path works and the kernel still wins, without paying
//! for stable numbers). `--profile` arms the span timer and prints a
//! wall-clock breakdown (trajectory generation vs timing passes) to
//! stderr. Without `--out`, JSON goes to stdout.
//!
//! Besides ns/step, every row carries the kernel's deterministic path
//! counters (incremental vs bulk-rescan vs fallback step fractions,
//! rescan candidate volumes, grid cells touched, edge events) captured
//! by one untimed pass — the diagnostic data for *why* the speedup
//! moves with churn, byte-identical across machines and thread counts.

use manet_bench::step_kernel::{
    churn_per_node, measure_cached_kernel_counters, run_cached_threads, run_rebuild_diff, side_for,
    trajectory_in, Scenario, RANGE, SCENARIOS, SIDE,
};
use manet_core::geom::Point;
use manet_core::graph::Skin;
use manet_core::obs::{KernelMetrics, SpanTimer};
use std::hint::black_box;
use std::time::Instant;

/// One row of the capture grid, before timing.
struct Spec {
    n: usize,
    side: f64,
    scenario: &'static Scenario,
    steps: usize,
    repeats: usize,
    threads: usize,
    skin: Skin,
}

struct Cell {
    n: usize,
    side: f64,
    scenario: &'static str,
    threads: usize,
    skin: Skin,
    moved_fraction: f64,
    steps: usize,
    churn_per_node: f64,
    incremental_ns_per_step: f64,
    rebuild_ns_per_step: f64,
    kernel: KernelMetrics,
}

/// Median wall time of `repeats` timed passes over the trajectory,
/// in nanoseconds per mobility step.
fn time_ns_per_step<F: FnMut() -> usize>(mut f: F, steps: usize, repeats: usize) -> f64 {
    // One untimed pass warms caches and the allocator.
    black_box(f());
    let mut samples: Vec<f64> = (0..repeats)
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed().as_nanos() as f64 / steps as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn measure(spec: &Spec, timer: &mut SpanTimer) -> Cell {
    let &Spec {
        n,
        side,
        scenario,
        steps,
        repeats,
        threads,
        skin,
    } = spec;
    timer.enter("cell");
    timer.enter("trajectory");
    let traj: Vec<Vec<Point<2>>> = trajectory_in(n, side, scenario, steps, 31);
    timer.exit();
    let churn = churn_per_node(&traj, side, RANGE);
    // Waypoint legs travel at most `v_max` per step — the declared
    // bound the Verlet cache's arming soundness rests on.
    let bound = scenario.v_max;
    let kernel = measure_cached_kernel_counters(&traj, side, RANGE, bound, skin);
    // Mean fraction of nodes that move per step (bitwise position
    // comparison), the quantity the moved-node kernel scales with.
    let mut moved = 0usize;
    for w in traj.windows(2) {
        moved += w[0].iter().zip(&w[1]).filter(|(a, b)| a != b).count();
    }
    let moved_fraction = moved as f64 / ((traj.len() - 1) as f64 * n as f64);
    timer.enter("time_incremental");
    let inc = time_ns_per_step(
        || run_cached_threads(&traj, side, RANGE, bound, skin, threads),
        steps - 1,
        repeats,
    );
    timer.exit();
    timer.enter("time_rebuild");
    let reb = time_ns_per_step(|| run_rebuild_diff(&traj, side, RANGE), steps - 1, repeats);
    timer.exit();
    timer.exit();
    Cell {
        n,
        side,
        scenario: scenario.label,
        threads,
        skin,
        moved_fraction,
        steps,
        churn_per_node: churn,
        incremental_ns_per_step: inc,
        rebuild_ns_per_step: reb,
        kernel,
    }
}

/// The scenario with `label` (the sweep/scaling rows pin `mid`/`high`).
fn scenario(label: &str) -> &'static Scenario {
    SCENARIOS
        .iter()
        .find(|s| s.label == label)
        .expect("known scenario label")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let large_smoke = args.iter().any(|a| a == "--large-smoke");
    let skin_sweep = args.iter().any(|a| a == "--skin-sweep");
    let profile = args.iter().any(|a| a == "--profile");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let mut specs: Vec<Spec> = Vec::new();
    if large_smoke {
        // CI's large-n smoke: one n = 20000 step-kernel pass at 1 and
        // 4 intra-step threads, checksum-asserted identical below.
        for threads in [1usize, 4] {
            specs.push(Spec {
                n: 20_000,
                side: side_for(20_000),
                scenario: scenario("mid"),
                steps: 6,
                repeats: 1,
                threads,
                skin: Skin::Auto,
            });
        }
    } else if skin_sweep {
        // The skin cost curve: n = 4000 all-moving serial, the Verlet
        // skin swept from off through auto to fixed radii around the
        // auto-tuned optimum. Reads as a U-shape: small skins rebuild
        // too often, large skins verify too many candidate pairs.
        for label in ["mid", "high"] {
            for skin in [
                Skin::Off,
                Skin::Auto,
                Skin::Fixed(3.0),
                Skin::Fixed(6.0),
                Skin::Fixed(12.0),
                Skin::Fixed(24.0),
                Skin::Fixed(48.0),
            ] {
                specs.push(Spec {
                    n: 4000,
                    side: SIDE,
                    scenario: scenario(label),
                    steps: 30,
                    repeats: 3,
                    threads: 1,
                    skin,
                });
            }
        }
    } else if quick {
        for &n in &[256usize, 1000] {
            for scenario in &SCENARIOS {
                specs.push(Spec {
                    n,
                    side: SIDE,
                    scenario,
                    steps: 16,
                    repeats: 1,
                    threads: 1,
                    skin: Skin::Auto,
                });
            }
        }
        // One sharded row proves the parallel bulk path in CI.
        specs.push(Spec {
            n: 1000,
            side: SIDE,
            scenario: scenario("mid"),
            steps: 16,
            repeats: 1,
            threads: 3,
            skin: Skin::Auto,
        });
    } else {
        for &n in &[256usize, 1000, 4000] {
            for scenario in &SCENARIOS {
                specs.push(Spec {
                    n,
                    side: SIDE,
                    scenario,
                    steps: if n >= 4000 { 30 } else { 60 },
                    repeats: 5,
                    threads: 1,
                    skin: Skin::Auto,
                });
            }
        }
        // The mid regime with the cache pinned off: the before/after
        // pair for the Verlet rows above, kept in the committed JSON
        // so the cache's win is readable from one artifact.
        specs.push(Spec {
            n: 4000,
            side: SIDE,
            scenario: scenario("mid"),
            steps: 30,
            repeats: 5,
            threads: 1,
            skin: Skin::Off,
        });
        // Thread sweep: self-speedup of the sharded bulk rescan in the
        // all-moving regimes (threads = 1 is the base grid above).
        for label in ["mid", "high"] {
            for threads in [2usize, 4, 8] {
                specs.push(Spec {
                    n: 4000,
                    side: SIDE,
                    scenario: scenario(label),
                    steps: 30,
                    repeats: 5,
                    threads,
                    skin: Skin::Auto,
                });
            }
        }
        // Scaling rows: density-preserving push toward n = 10^5.
        // Step counts amortize the one-time constructor (a full build)
        // the incremental pass pays before its first step.
        for (n, steps) in [(20_000usize, 20usize), (100_000, 10)] {
            for threads in [1usize, 4] {
                specs.push(Spec {
                    n,
                    side: side_for(n),
                    scenario: scenario("mid"),
                    steps,
                    repeats: 2,
                    threads,
                    skin: Skin::Auto,
                });
            }
        }
    }

    let mut timer = if profile {
        SpanTimer::armed()
    } else {
        SpanTimer::disarmed()
    };
    let mut cells = Vec::new();
    for spec in &specs {
        let cell = measure(spec, &mut timer);
        eprintln!(
            "n={:<6} scenario={:<4} threads={} skin={:<4} moved={:.2}n churn={:.3}n  incremental {:>12.0} ns/step  rebuild {:>12.0} ns/step  speedup {:.2}x  paths {}i/{}b/{}v/{}f ({}rb)",
            cell.n,
            cell.scenario,
            cell.threads,
            cell.skin.to_string(),
            cell.moved_fraction,
            cell.churn_per_node,
            cell.incremental_ns_per_step,
            cell.rebuild_ns_per_step,
            cell.rebuild_ns_per_step / cell.incremental_ns_per_step,
            cell.kernel.step.incremental_steps,
            cell.kernel.step.bulk_rescan_steps,
            cell.kernel.step.cache_verify_steps,
            cell.kernel.step.fallback_steps,
            cell.kernel.step.cache_rebuilds,
        );
        cells.push(cell);
    }
    let report = timer.report();
    if !report.spans.is_empty() {
        eprint!("{}", report.render_table());
    }

    let mode = if large_smoke {
        "large-smoke"
    } else if skin_sweep {
        "skin-sweep"
    } else if quick {
        "quick"
    } else {
        "full"
    };
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"step_kernel\",\n");
    json.push_str(&format!("  \"side\": {SIDE},\n  \"range\": {RANGE},\n"));
    json.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    json.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let k = &c.kernel;
        json.push_str(&format!(
            "    {{\"n\": {}, \"scenario\": \"{}\", \"threads\": {}, \"skin\": \"{}\", \
             \"side\": {:.1}, \"steps\": {}, \
             \"moved_fraction\": {:.4}, \"churn_per_node\": {:.4}, \
             \"incremental_ns_per_step\": {:.1}, \
             \"rebuild_ns_per_step\": {:.1}, \"speedup\": {:.2}, \
             \"incremental_fraction\": {:.4}, \"bulk_rescan_fraction\": {:.4}, \
             \"cache_verify_fraction\": {:.4}, \"cache_rebuilds\": {}, \
             \"cached_pairs\": {}, \"verify_candidates\": {}, \
             \"fallback_steps\": {}, \
             \"moved_rescan_candidates\": {}, \"bulk_rescan_candidates\": {}, \
             \"cells_touched\": {}, \
             \"edges_added\": {}, \"edges_removed\": {}}}{}\n",
            c.n,
            c.scenario,
            c.threads,
            c.skin,
            c.side,
            c.steps,
            c.moved_fraction,
            c.churn_per_node,
            c.incremental_ns_per_step,
            c.rebuild_ns_per_step,
            c.rebuild_ns_per_step / c.incremental_ns_per_step,
            k.step.incremental_fraction(),
            k.step.bulk_fraction(),
            k.step.cache_verify_fraction(),
            k.step.cache_rebuilds,
            k.step.cached_pairs,
            k.step.verify_candidates,
            k.step.fallback_steps,
            k.step.moved_rescan_candidates,
            k.step.bulk_rescan_candidates,
            k.grid.cells_touched,
            k.step.edges_added,
            k.step.edges_removed,
            if i + 1 < cells.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");

    match out_path {
        Some(path) => {
            std::fs::write(&path, &json).expect("write bench JSON");
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }

    // Any mode that runs the sharded path doubles as a determinism
    // check: the fold checksum must not move with the thread count
    // (cache armed and all — the arena and verify path are sharded
    // over the same `run_jobs` fan-out as the bulk rescan).
    for c in cells.iter().filter(|c| c.threads > 1) {
        let traj = trajectory_in(c.n, c.side, scenario(c.scenario), c.steps, 31);
        let bound = scenario(c.scenario).v_max;
        let serial = run_cached_threads(&traj, c.side, RANGE, bound, c.skin, 1);
        let sharded = run_cached_threads(&traj, c.side, RANGE, bound, c.skin, c.threads);
        assert_eq!(
            serial, sharded,
            "sharded checksum diverged at n={} threads={}",
            c.n, c.threads
        );
    }

    // The capture doubles as a loud regression check: the kernel's
    // raison d'être is beating the rebuild path at scale. Quick,
    // large-smoke and skin-sweep modes (tiny trajectories / 1 repeat /
    // deliberately pessimal skins) only report.
    if !quick && !large_smoke && !skin_sweep {
        let worst = cells
            .iter()
            .filter(|c| c.n == 4000 && c.threads == 1 && c.scenario == "low")
            .map(|c| c.rebuild_ns_per_step / c.incremental_ns_per_step)
            .fold(f64::INFINITY, f64::min);
        assert!(
            worst >= 3.0,
            "step kernel speedup regressed below 3x at n=4000 low churn: {worst:.2}x"
        );
        // The SoA + forward-half-neighborhood scan must keep the serial
        // kernel well ahead of rebuild in the all-moving regimes too
        // (up from ~1.0-1.35x before the sharded/SoA kernel; typical
        // captures land 1.8-2.2x on `mid`). The floors leave headroom
        // for run-to-run noise on shared machines; `high` shares its
        // dominant cost (edge-churn diffing) with the rebuild path, so
        // its serial ceiling is lower.
        for (label, floor) in [("mid", 1.6), ("high", 1.3)] {
            let worst_bulk = cells
                .iter()
                .filter(|c| c.n == 4000 && c.threads == 1 && c.scenario == label)
                .map(|c| c.rebuild_ns_per_step / c.incremental_ns_per_step)
                .fold(f64::INFINITY, f64::min);
            assert!(
                worst_bulk >= floor,
                "step kernel speedup regressed below {floor}x at n=4000 {label}: {worst_bulk:.2}x"
            );
        }
        // Verlet-cache gates, all on the `mid` all-moving regime (the
        // cache's target; `high` moves ≥ `range` per step, where auto
        // soundly declines to arm and the legacy floors above apply).
        let cell = |scenario: &str, n: usize, skin_off: bool| {
            cells
                .iter()
                .find(|c| {
                    c.n == n
                        && c.threads == 1
                        && c.scenario == scenario
                        && (c.skin == Skin::Off) == skin_off
                })
                .expect("full grid carries the gated cells")
        };
        let mid_auto = cell("mid", 4000, false);
        let mid_off = cell("mid", 4000, true);
        assert!(
            mid_auto.kernel.step.cache_verify_steps > mid_auto.kernel.step.cache_rebuilds,
            "auto skin should spend most armed steps verifying, not rebuilding: {:?}",
            mid_auto.kernel.step
        );
        // Absolute ceilings are coarse backstops only: the same capture
        // on the same host has been observed drifting 1.59 -> 2.03
        // ms/step on mid (global load, not a code change), so the
        // ceilings sit above the worst observed run and well below the
        // rebuild-class cost they guard against (~4.4 ms at n=4000,
        // ~170 ms at n=100000). The within-run ratios below carry the
        // real regression signal — both sides move together under host
        // noise.
        assert!(
            mid_auto.incremental_ns_per_step <= 3_000_000.0,
            "cached mid serial regressed above 3 ms/step at n=4000: {:.0} ns",
            mid_auto.incremental_ns_per_step
        );
        assert!(
            mid_auto.rebuild_ns_per_step / mid_auto.incremental_ns_per_step >= 1.8,
            "cached mid serial speedup vs rebuild regressed below 1.8x at n=4000: {:.2}x",
            mid_auto.rebuild_ns_per_step / mid_auto.incremental_ns_per_step
        );
        // The before/after pair from one capture run: the cache must
        // not lose to its own kernel with the skin pinned off.
        // Observed auto/off spans 0.80-0.92 across captures; <= 1.0
        // tolerates that spread while still catching a cache that turns
        // into pure overhead. The counter gate above is the
        // deterministic proof the cache is actually doing the work.
        let self_win = mid_auto.incremental_ns_per_step / mid_off.incremental_ns_per_step;
        assert!(
            self_win <= 1.0,
            "Verlet cache stopped paying for itself on mid at n=4000: auto/off = {self_win:.3}"
        );
        let large = cell("mid", 100_000, false);
        assert!(
            large.incremental_ns_per_step <= 140_000_000.0,
            "cached mid serial regressed above 140 ms/step at n=100000: {:.0} ns",
            large.incremental_ns_per_step
        );
    }
}
