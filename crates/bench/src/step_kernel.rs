//! Shared workloads for the step-kernel benchmarks.
//!
//! The `step_kernel` Criterion target and the `step-kernel-capture`
//! binary (which writes `BENCH_step_kernel.json`) time the exact same
//! two routines over the exact same pinned-seed trajectories, so the
//! committed JSON numbers and the interactive bench output are
//! directly comparable.

use crate::placement;
use manet_core::geom::{Point, Region};
use manet_core::graph::{AdjacencyList, DynamicGraph, Skin};
use manet_core::mobility::{Mobility, RandomWaypoint};
use manet_core::obs::KernelMetrics;
use rand::SeedableRng;

/// Region side of the step-kernel workloads (sparse regime: the
/// communication graph has bounded degree at [`RANGE`]).
pub const SIDE: f64 = 1000.0;
/// Transmitting range of the step-kernel workloads.
pub const RANGE: f64 = 30.0;

/// One mobility regime of the step-kernel grid.
pub struct Scenario {
    /// Bench label (`low` / `mid` / `high`).
    pub label: &'static str,
    /// Waypoint speed range (distance per step).
    pub v_min: f64,
    /// Waypoint speed range (distance per step).
    pub v_max: f64,
    /// Pause steps at each reached destination.
    pub pause: u32,
    /// Fraction of permanently stationary nodes.
    pub p_stationary: f64,
}

/// The benched regimes. `low` is the paper-style low-churn scenario —
/// a mixed deployment (waypoint's `p_stationary`, §4.1) where most
/// nodes are fixed sensors and the movers are slow with pauses; this
/// is the regime the paper's long-pause defaults (`t_pause = 2000` of
/// 10000 steps) spend most of their time in, and where per-step work
/// proportional to the *moved set* pays off. `mid` keeps every node
/// moving slowly (low edge churn, full moved set); `high` is fast,
/// pauseless motion — the adversarial regime for any incremental
/// kernel, served by the bulk-rescan path.
pub const SCENARIOS: [Scenario; 3] = [
    Scenario {
        label: "low",
        v_min: 1.0,
        v_max: 2.0,
        pause: 20,
        p_stationary: 0.8,
    },
    Scenario {
        label: "mid",
        v_min: 1.0,
        v_max: 2.0,
        pause: 3,
        p_stationary: 0.0,
    },
    Scenario {
        label: "high",
        v_min: 20.0,
        v_max: 40.0,
        pause: 0,
        p_stationary: 0.0,
    },
];

/// Density-preserving region side for the large-n scaling rows: keeps
/// the area-per-node of the committed `n = 4000` grid (250 units², the
/// [`SIDE`]²`/4000` density), so per-cell occupancy — hence the
/// per-node step cost — stays constant as `n` grows toward 10⁵.
pub fn side_for(n: usize) -> f64 {
    (250.0 * n as f64).sqrt()
}

/// A pinned-seed random-waypoint trajectory under `scenario`: `steps`
/// position snapshots of `n` nodes.
pub fn trajectory(n: usize, scenario: &Scenario, steps: usize, seed: u64) -> Vec<Vec<Point<2>>> {
    trajectory_in(n, SIDE, scenario, steps, seed)
}

/// [`trajectory`] over an explicit region side (the large-n scaling
/// rows pair it with [`side_for`]; the committed grid keeps [`SIDE`]).
pub fn trajectory_in(
    n: usize,
    side: f64,
    scenario: &Scenario,
    steps: usize,
    seed: u64,
) -> Vec<Vec<Point<2>>> {
    let region: Region<2> = Region::new(side).expect("positive side");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut positions = placement(n, side, seed);
    let mut model = RandomWaypoint::new(
        scenario.v_min,
        scenario.v_max,
        scenario.pause,
        scenario.p_stationary,
    )
    .expect("valid parameters");
    model.init(&positions, &region, &mut rng);
    let mut out = vec![positions.clone()];
    for _ in 1..steps {
        model.step(&mut positions, &region, &mut rng);
        out.push(positions.clone());
    }
    out
}

/// Mean per-step churn of a trajectory as a fraction of `n` (printed
/// into bench ids / the JSON so numbers can be read against regime).
/// Shared by the `step_kernel` and `dynamic_components` benches.
pub fn churn_per_node(traj: &[Vec<Point<2>>], side: f64, range: f64) -> f64 {
    let mut dg = DynamicGraph::new(&traj[0], side, range);
    let mut churn = 0usize;
    for pts in &traj[1..] {
        dg.step(pts);
        churn += dg.last_diff().churn();
    }
    churn as f64 / ((traj.len() - 1) as f64 * traj[0].len() as f64)
}

/// The incremental path: one `DynamicGraph` stepped through the
/// trajectory, folding a checksum over the held diff. Allocation-free
/// after the constructor.
pub fn run_incremental(traj: &[Vec<Point<2>>], side: f64, range: f64) -> usize {
    run_incremental_threads(traj, side, range, 1)
}

/// [`run_incremental`] with the sharded bulk rescan pinned to
/// `threads` intra-step workers. The checksum is identical across
/// thread counts — only the wall clock moves.
pub fn run_incremental_threads(
    traj: &[Vec<Point<2>>],
    side: f64,
    range: f64,
    threads: usize,
) -> usize {
    let mut dg = DynamicGraph::new(&traj[0], side, range).with_step_threads(threads);
    let mut acc = dg.last_diff().churn();
    for pts in &traj[1..] {
        dg.step(pts);
        acc ^= dg.last_diff().churn() ^ dg.graph().edge_count();
    }
    acc
}

/// The cached path: [`run_incremental_threads`] with the scenario's
/// per-step displacement bound declared (waypoint moves at most
/// `v_max` per step) and a Verlet skin policy. With `Skin::Off` this
/// is byte-identical to the legacy kernel; with `Skin::Auto`/`Fixed`
/// the all-moving regimes commit most steps through the cache-verify
/// path instead of bulk rescans. The checksum is invariant across
/// every `(skin, threads)` combination — only the wall clock moves.
pub fn run_cached_threads(
    traj: &[Vec<Point<2>>],
    side: f64,
    range: f64,
    bound: f64,
    skin: Skin,
    threads: usize,
) -> usize {
    let mut dg = DynamicGraph::new(&traj[0], side, range)
        .with_step_threads(threads)
        .with_displacement_bound(Some(bound))
        .with_skin(skin);
    let mut acc = dg.last_diff().churn();
    for pts in &traj[1..] {
        dg.step(pts);
        acc ^= dg.last_diff().churn() ^ dg.graph().edge_count();
    }
    acc
}

/// [`measure_kernel_counters`] for the cached path: bound declared,
/// skin policy applied. Deterministic like its legacy sibling.
pub fn measure_cached_kernel_counters(
    traj: &[Vec<Point<2>>],
    side: f64,
    range: f64,
    bound: f64,
    skin: Skin,
) -> KernelMetrics {
    let mut dg = DynamicGraph::new(&traj[0], side, range)
        .with_displacement_bound(Some(bound))
        .with_skin(skin);
    for pts in &traj[1..] {
        dg.step(pts);
    }
    KernelMetrics {
        grid: dg.grid_metrics().copied().unwrap_or_default(),
        step: *dg.metrics(),
        components: Default::default(),
    }
}

/// The incremental path run once for its deterministic counters
/// (grid + step-kernel planes; the component plane stays zero — this
/// workload drives no `DynamicComponents`). A pure function of the
/// trajectory, so the numbers committed to `BENCH_step_kernel.json`
/// are reproducible bit-for-bit.
pub fn measure_kernel_counters(traj: &[Vec<Point<2>>], side: f64, range: f64) -> KernelMetrics {
    let mut dg = DynamicGraph::new(&traj[0], side, range);
    for pts in &traj[1..] {
        dg.step(pts);
    }
    KernelMetrics {
        grid: dg.grid_metrics().copied().unwrap_or_default(),
        step: *dg.metrics(),
        components: Default::default(),
    }
}

/// The pre-kernel path: rebuild the snapshot from scratch each step
/// and diff the two full snapshots (`from_points` + `diff`), exactly
/// what `DynamicGraph::advance` did before the incremental kernel.
pub fn run_rebuild_diff(traj: &[Vec<Point<2>>], side: f64, range: f64) -> usize {
    let mut graph = AdjacencyList::from_points(&traj[0], side, range);
    let mut acc = graph.edge_count();
    for pts in &traj[1..] {
        let next = AdjacencyList::from_points(pts, side, range);
        let diff = graph.diff(&next);
        graph = next;
        acc ^= diff.churn() ^ graph.edge_count();
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Both timed routines must do the same logical work — identical
    /// checksums — or the bench compares apples to oranges.
    #[test]
    fn incremental_and_rebuild_paths_fold_identical_checksums() {
        for scenario in &SCENARIOS {
            let traj = trajectory(96, scenario, 20, 5);
            assert_eq!(
                run_incremental(&traj, SIDE, RANGE),
                run_rebuild_diff(&traj, SIDE, RANGE),
                "scenario {}",
                scenario.label
            );
        }
    }

    /// The sharded path folds the same checksum at every thread count
    /// (byte-identity of the underlying graph stream, seen through the
    /// bench's own lens).
    #[test]
    fn incremental_checksums_are_thread_invariant() {
        for scenario in &SCENARIOS {
            let traj = trajectory(96, scenario, 20, 5);
            let serial = run_incremental(&traj, SIDE, RANGE);
            for threads in [2, 4, 7] {
                assert_eq!(
                    serial,
                    run_incremental_threads(&traj, SIDE, RANGE, threads),
                    "scenario {} threads {threads}",
                    scenario.label
                );
            }
        }
    }

    /// The cached path folds the same checksum as the rebuild oracle
    /// at every skin policy and thread count, and `mid` (all-moving,
    /// bounded steps) actually arms under `Skin::Auto` — the workload
    /// the capture's cache gates time.
    #[test]
    fn cached_checksums_match_rebuild_across_skins_and_threads() {
        for scenario in &SCENARIOS {
            let traj = trajectory(96, scenario, 20, 5);
            let want = run_rebuild_diff(&traj, SIDE, RANGE);
            for skin in [Skin::Off, Skin::Auto, Skin::Fixed(12.0)] {
                for threads in [1usize, 4] {
                    assert_eq!(
                        want,
                        run_cached_threads(&traj, SIDE, RANGE, scenario.v_max, skin, threads),
                        "scenario {} skin {skin:?} threads {threads}",
                        scenario.label
                    );
                }
            }
        }
        let mid = SCENARIOS.iter().find(|s| s.label == "mid").unwrap();
        let traj = trajectory(96, mid, 20, 5);
        let k = measure_cached_kernel_counters(&traj, SIDE, RANGE, mid.v_max, Skin::Auto);
        assert!(
            k.step.cache_verify_steps > 0,
            "mid should verify through the Verlet cache under auto skin: {:?}",
            k.step
        );
        let off = measure_cached_kernel_counters(&traj, SIDE, RANGE, mid.v_max, Skin::Off);
        assert_eq!(
            off.step.cache_verify_steps + off.step.cache_rebuilds,
            0,
            "skin off must keep the cache out of the loop"
        );
    }

    /// `side_for` preserves the committed grid's density and anchors
    /// at the n = 4000 cell.
    #[test]
    fn side_for_preserves_density() {
        assert!((side_for(4000) - SIDE).abs() < 1e-9);
        let d = |n: usize| side_for(n) * side_for(n) / n as f64;
        assert!((d(20_000) - 250.0).abs() < 1e-9);
        assert!((d(100_000) - 250.0).abs() < 1e-9);
    }

    /// The counter capture is deterministic and accounts for every
    /// post-build step of the trajectory.
    #[test]
    fn kernel_counters_are_reproducible_and_cover_all_steps() {
        for scenario in &SCENARIOS {
            let traj = trajectory(96, scenario, 20, 5);
            let a = measure_kernel_counters(&traj, SIDE, RANGE);
            let b = measure_kernel_counters(&traj, SIDE, RANGE);
            assert_eq!(a, b, "scenario {}", scenario.label);
            assert_eq!(a.step.steps, 19, "scenario {}", scenario.label);
            assert_eq!(
                a.step.incremental_steps + a.step.bulk_rescan_steps + a.step.fallback_steps,
                a.step.steps,
                "scenario {}",
                scenario.label
            );
            assert_eq!(a.components, Default::default());
        }
    }
}
