//! Shared fixtures for the Criterion benches.
//!
//! Everything here is deterministic (fixed seeds) so bench runs are
//! comparable across machines and commits.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use manet_core::geom::{Point, Region};
use manet_core::mobility::{Drunkard, RandomWaypoint};
use manet_core::{AnyModel, ModelRegistry, MtrmProblem, PaperScale};
use rand::SeedableRng;

pub mod step_kernel;

/// Deterministic uniform placement of `n` nodes in `[0, side]^2`.
pub fn placement(n: usize, side: f64, seed: u64) -> Vec<Point<2>> {
    let region: Region<2> = Region::new(side).expect("positive side");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    region.place_uniform(n, &mut rng)
}

/// A scaled-down paper cell (`l = 256`, `n = 16`) for pipeline benches:
/// small enough for Criterion's sampling, same code path as Figure 2.
pub fn small_problem(model: impl Into<AnyModel<2>>) -> MtrmProblem<2> {
    MtrmProblem::<2>::builder()
        .nodes(16)
        .side(256.0)
        .iterations(2)
        .steps(50)
        .seed(404)
        .profile_stride(5)
        .threads(1)
        .model(model)
        .build()
        .expect("valid bench configuration")
}

/// The paper's random waypoint model at bench scale (pause scaled to
/// the 50-step horizon).
pub fn bench_waypoint() -> AnyModel<2> {
    RandomWaypoint::new(0.1, 2.56, 10, 0.0)
        .expect("valid parameters")
        .into()
}

/// The paper's drunkard model at bench scale.
pub fn bench_drunkard() -> AnyModel<2> {
    Drunkard::new(0.1, 0.3, 2.56)
        .expect("valid parameters")
        .into()
}

/// The registry scale matching [`small_problem`]'s bench cell
/// (`l = 256`, pauses scaled to its 50-step horizon).
pub fn bench_scale() -> PaperScale {
    PaperScale::new(256.0).with_pause(10)
}

/// Builds a registry model at [`bench_scale`], panicking on unknown
/// names (bench targets pin their model lists).
pub fn bench_model(name: &str) -> AnyModel<2> {
    ModelRegistry::<2>::with_builtins()
        .build(name, &bench_scale())
        .expect("registered bench model")
}
