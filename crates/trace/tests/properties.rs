//! Property tests: the delta-stream recorder agrees with a
//! from-scratch oracle that recomputes every temporal metric from the
//! full per-step edge sets.

use manet_geom::Point;
use manet_graph::{AdjacencyList, ComponentSummary, DynamicGraph};
use manet_trace::{TraceRecorder, TraceSummary};
use proptest::prelude::*;
use std::collections::BTreeSet;

const SIDE: f64 = 50.0;

/// Chunks a flat coordinate stream into a trajectory of `n`-node steps.
fn trajectory(n: usize, flat: &[(f64, f64)]) -> Vec<Vec<Point<2>>> {
    flat.chunks_exact(n)
        .map(|c| c.iter().map(|&(x, y)| Point::new([x, y])).collect())
        .collect()
}

/// Oracle: recompute lifetimes/inter-contacts/outages/isolation by
/// scanning full edge sets per step, no deltas involved.
struct Oracle {
    lifetimes: Vec<usize>,
    lifetimes_censored: usize,
    intercontacts: Vec<usize>,
    outages: Vec<usize>,
    connected_steps: usize,
    isolation_spells: Vec<usize>,
    isolation_censored: usize,
    time_to_repair: Option<usize>,
}

fn oracle(steps: &[Vec<Point<2>>], r: f64) -> Oracle {
    let n = steps[0].len();
    let graphs: Vec<AdjacencyList> = steps
        .iter()
        .map(|pts| AdjacencyList::from_points_brute_force(pts, r))
        .collect();
    let edge_sets: Vec<BTreeSet<(usize, usize)>> =
        graphs.iter().map(|g| g.edges().collect()).collect();

    let mut lifetimes = Vec::new();
    let mut lifetimes_censored = 0;
    let mut intercontacts = Vec::new();
    // Per-pair up/down scan.
    for a in 0..n {
        for b in (a + 1)..n {
            let series: Vec<bool> = edge_sets.iter().map(|s| s.contains(&(a, b))).collect();
            let mut run_start = 0usize;
            for t in 1..=series.len() {
                if t == series.len() || series[t] != series[t - 1] {
                    let len = t - run_start;
                    if series[t - 1] {
                        if t == series.len() {
                            lifetimes_censored += 1;
                        } else {
                            lifetimes.push(len);
                        }
                    } else if run_start > 0 && t < series.len() {
                        // A completed gap between two contacts.
                        intercontacts.push(len);
                    }
                    run_start = t;
                }
            }
        }
    }

    // Connectivity episodes.
    let connected: Vec<bool> = graphs
        .iter()
        .map(|g| ComponentSummary::of(g).is_connected())
        .collect();
    let mut outages = Vec::new();
    let mut time_to_repair = None;
    let mut run_start = 0usize;
    for t in 1..=connected.len() {
        if t == connected.len() || connected[t] != connected[t - 1] {
            if !connected[t - 1] && t < connected.len() {
                outages.push(t - run_start);
                if time_to_repair.is_none() {
                    time_to_repair = Some(t - run_start);
                }
            }
            run_start = t;
        }
    }

    // Isolation spells.
    let mut isolation_spells = Vec::new();
    let mut isolation_censored = 0;
    for i in 0..n {
        let series: Vec<bool> = graphs.iter().map(|g| g.degree(i) == 0).collect();
        let mut run_start = 0usize;
        for t in 1..=series.len() {
            if t == series.len() || series[t] != series[t - 1] {
                if series[t - 1] {
                    if t == series.len() {
                        isolation_censored += 1;
                    } else {
                        isolation_spells.push(t - run_start);
                    }
                }
                run_start = t;
            }
        }
    }

    Oracle {
        lifetimes,
        lifetimes_censored,
        intercontacts,
        outages,
        connected_steps: connected.iter().filter(|&&c| c).count(),
        isolation_spells,
        isolation_censored,
        time_to_repair,
    }
}

fn record(steps: &[Vec<Point<2>>], r: f64) -> manet_trace::TemporalRecord {
    let mut dg = DynamicGraph::new(&steps[0], SIDE, r);
    let mut rec = TraceRecorder::new(steps[0].len(), steps.len());
    rec.observe(&dg.initial_diff(), dg.graph());
    for pts in &steps[1..] {
        let diff = dg.advance(pts);
        rec.observe(&diff, dg.graph());
    }
    rec.finish()
}

fn mean(xs: &[usize]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<usize>() as f64 / xs.len() as f64)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn recorder_matches_full_rescan_oracle(
        n in 2usize..10,
        flat in prop::collection::vec((0.0..SIDE, 0.0..SIDE), 30..240),
        r in 3.0..25.0f64,
    ) {
        let steps = trajectory(n, &flat);
        prop_assume!(steps.len() >= 2);
        let got = record(&steps, r);
        let want = oracle(&steps, r);

        prop_assert_eq!(got.lifetimes.count() as usize, want.lifetimes.len());
        prop_assert_eq!(got.lifetimes.censored() as usize, want.lifetimes_censored);
        prop_assert_eq!(got.intercontacts.count() as usize, want.intercontacts.len());
        prop_assert_eq!(got.outages.count() as usize, want.outages.len());
        prop_assert_eq!(got.isolation.count() as usize, want.isolation_spells.len());
        prop_assert_eq!(got.isolation.censored() as usize, want.isolation_censored);
        prop_assert_eq!(got.connected_steps, want.connected_steps);
        prop_assert_eq!(got.time_to_repair, want.time_to_repair);

        for (label, got_mean, want_mean) in [
            ("lifetime", got.lifetimes.mean(), mean(&want.lifetimes)),
            ("intercontact", got.intercontacts.mean(), mean(&want.intercontacts)),
            ("outage", got.outages.mean(), mean(&want.outages)),
            ("isolation", got.isolation.mean(), mean(&want.isolation_spells)),
        ] {
            match (got_mean, want_mean) {
                (None, None) => {}
                (Some(g), Some(w)) => prop_assert!(
                    (g - w).abs() < 1e-9,
                    "{} mean: recorder {} oracle {}", label, g, w
                ),
                other => prop_assert!(false, "{} mean mismatch: {:?}", label, other),
            }
        }
    }

    #[test]
    fn availability_bounds_and_aggregation(
        n in 2usize..8,
        flat in prop::collection::vec((0.0..SIDE, 0.0..SIDE), 16..160),
        r in 3.0..30.0f64,
    ) {
        let steps = trajectory(n, &flat);
        prop_assume!(!steps.is_empty());
        let rec = record(&steps, r);
        prop_assert!((0.0..=1.0).contains(&rec.availability));
        prop_assert!((0.0..=1.0 + 1e-12).contains(&rec.path_availability));
        // Path availability dominates the connectivity indicator.
        prop_assert!(rec.path_availability >= rec.availability - 1e-12);
        // Every up event is accounted for exactly once.
        prop_assert_eq!(
            rec.link_up_events,
            rec.lifetimes.count() + rec.lifetimes.censored()
        );
        prop_assert_eq!(
            rec.link_down_events,
            rec.intercontacts.count() + rec.intercontacts.censored()
        );
        // Aggregating the single record reproduces its headline values.
        let availability = rec.availability;
        let s = TraceSummary::aggregate(&[rec]).unwrap();
        prop_assert_eq!(s.availability, availability);
        prop_assert_eq!(s.iterations, 1);
    }
}
