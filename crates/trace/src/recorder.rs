//! The per-trajectory event folder.
//!
//! A [`TraceRecorder`] consumes one trajectory's stream of edge deltas
//! (from [`manet_graph::DynamicGraph`]) plus the per-step snapshot, and
//! folds it into a [`TemporalRecord`]: link lifetimes, inter-contact
//! times, per-node isolation spells, connectivity episodes (partition
//! outages, time-to-repair) and path availability. All bookkeeping on
//! the edge stream is proportional to the number of *changed* edges,
//! which is what makes tracing cheap enough to run at every step.

use crate::intervals::IntervalAccumulator;
use manet_graph::{AdjacencyList, DynamicComponents, EdgeDiff};
use manet_obs::KernelMetrics;
use std::collections::BTreeMap;

/// Packs an undirected edge `(a, b)`, `a < b`, into one map key.
fn pair_key(a: u32, b: u32) -> u64 {
    debug_assert!(a < b, "edge endpoints must be ordered");
    ((a as u64) << 32) | b as u64
}

/// Fraction of ordered node pairs connected by some path: the paper's
/// per-step connectivity indicator refined to a `[0, 1]` measure
/// (1 iff connected). Networks with fewer than two nodes count as
/// fully path-available.
fn pair_connectivity(components: &DynamicComponents, n: usize) -> f64 {
    if n < 2 {
        return 1.0;
    }
    components.ordered_reachable_pairs() as f64 / (n as u64 * (n as u64 - 1)) as f64
}

/// Folds one trajectory's link events and connectivity episodes into
/// temporal metrics.
///
/// Drive it with [`TraceRecorder::observe`] once per step — the step-0
/// delta is the initial snapshot's edges reported as added (see
/// [`manet_graph::DynamicGraph::initial_diff`]) — then call
/// [`TraceRecorder::finish`].
///
/// # Example
///
/// ```
/// use manet_geom::Point;
/// use manet_graph::DynamicGraph;
/// use manet_trace::TraceRecorder;
///
/// let steps = vec![
///     vec![Point::new([0.0]), Point::new([1.0])], // linked
///     vec![Point::new([0.0]), Point::new([5.0])], // apart
///     vec![Point::new([0.0]), Point::new([1.0])], // linked again
/// ];
/// let mut dg = DynamicGraph::new(&steps[0], 10.0, 2.0);
/// let mut rec = TraceRecorder::new(2, steps.len());
/// rec.observe(&dg.initial_diff(), dg.graph());
/// for pts in &steps[1..] {
///     let diff = dg.advance(pts);
///     rec.observe(&diff, dg.graph());
/// }
/// let record = rec.finish();
/// assert_eq!(record.lifetimes.count(), 1);      // one completed lifetime
/// assert_eq!(record.intercontacts.count(), 1);  // one reconnection
/// assert_eq!(record.time_to_repair, Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    nodes: usize,
    steps_seen: usize,
    /// Open link intervals: pair key -> step the link came up.
    up_since: BTreeMap<u64, usize>,
    /// Open contact gaps: pair key -> step the link went down.
    down_since: BTreeMap<u64, usize>,
    /// Open isolation spells, per node.
    isolated_since: Vec<Option<usize>>,
    lifetimes: IntervalAccumulator,
    intercontacts: IntervalAccumulator,
    isolation: IntervalAccumulator,
    outages: IntervalAccumulator,
    link_up_events: u64,
    link_down_events: u64,
    /// Largest single-step churn (added + removed edges) seen so far.
    peak_churn: usize,
    connected_steps: usize,
    path_connectivity_sum: f64,
    /// Step the current partition outage began (None while connected).
    down_run_start: Option<usize>,
    first_disconnect_at: Option<usize>,
    time_to_repair: Option<usize>,
    /// Incremental component summary maintained by [`TraceRecorder::observe`]
    /// for standalone (non-stream) drivers; `None` until first use.
    /// [`TraceRecorder::observe_with`] clears it, so `observe` can
    /// detect (and refuse) resuming from state that missed a delta.
    components: Option<DynamicComponents>,
    /// The driving kernel's cumulative counters, overwritten per step
    /// via [`TraceRecorder::set_kernel_metrics`]; zero when the driver
    /// reports none (standalone recorder use).
    kernel: KernelMetrics,
}

impl TraceRecorder {
    /// Creates a recorder for `nodes` nodes observed over `steps`
    /// mobility steps (the horizon fixes histogram geometry so records
    /// from parallel iterations merge).
    pub fn new(nodes: usize, steps: usize) -> Self {
        TraceRecorder {
            nodes,
            steps_seen: 0,
            up_since: BTreeMap::new(),
            down_since: BTreeMap::new(),
            isolated_since: vec![None; nodes],
            lifetimes: IntervalAccumulator::new(steps),
            intercontacts: IntervalAccumulator::new(steps),
            isolation: IntervalAccumulator::new(steps),
            outages: IntervalAccumulator::new(steps),
            link_up_events: 0,
            link_down_events: 0,
            peak_churn: 0,
            connected_steps: 0,
            path_connectivity_sum: 0.0,
            down_run_start: None,
            first_disconnect_at: None,
            time_to_repair: None,
            components: None,
            kernel: KernelMetrics::default(),
        }
    }

    /// Records the driving kernel's *cumulative* deterministic
    /// counters as of the step just observed. Call once per step with
    /// the stream's latest roll-up (see `LinkView::kernel_metrics` in
    /// `manet-sim`) — each call overwrites the previous one, so
    /// [`TraceRecorder::finish`] carries the trajectory's totals into
    /// the [`TemporalRecord`]. Never calling it leaves the record's
    /// counters zero (standalone recorder use).
    pub fn set_kernel_metrics(&mut self, kernel: &KernelMetrics) {
        self.kernel = *kernel;
    }

    /// Folds in one step: the edge delta that produced `graph` from
    /// the previous snapshot, plus the snapshot itself (for degrees
    /// and components). Maintains an internal [`DynamicComponents`]
    /// under the delta stream — no per-step relabeling. Drivers that
    /// already maintain components (the `manet-sim` connectivity
    /// stream) should call [`TraceRecorder::observe_with`] instead to
    /// avoid the duplicate apply.
    ///
    /// # Panics
    ///
    /// Panics when `graph` has a different node count than the
    /// recorder was created with, or when the recorder was previously
    /// driven through [`TraceRecorder::observe_with`] — the internal
    /// component state would have missed those deltas, so the two
    /// entry points must not be mixed on one recorder.
    pub fn observe(&mut self, diff: &EdgeDiff, graph: &AdjacencyList) {
        assert!(
            self.steps_seen == 0 || self.components.is_some(),
            "observe() cannot follow observe_with(): internal components missed earlier deltas"
        );
        let mut components = self
            .components
            .take()
            .unwrap_or_else(|| DynamicComponents::new(self.nodes));
        components.apply(diff, graph);
        self.observe_with(diff, graph, &components);
        self.components = Some(components);
    }

    /// Folds in one step using a caller-maintained component summary
    /// (which must already reflect `diff` applied onto `graph`).
    ///
    /// # Panics
    ///
    /// Panics when `graph` or `components` has a different node count
    /// than the recorder was created with.
    pub fn observe_with(
        &mut self,
        diff: &EdgeDiff,
        graph: &AdjacencyList,
        components: &DynamicComponents,
    ) {
        // Drop any internal component state: it has not seen this
        // delta, so a later `observe` must not resume from it (its
        // guard refuses once this is None past step 0). `observe`
        // itself restores its state right after delegating here.
        self.components = None;
        assert_eq!(graph.len(), self.nodes, "node count changed mid-trace");
        assert_eq!(components.len(), self.nodes, "component summary mismatch");
        let t = self.steps_seen;

        // Link events — work proportional to the changed edges.
        for &(a, b) in &diff.removed {
            let key = pair_key(a, b);
            if let Some(up) = self.up_since.remove(&key) {
                self.lifetimes.record(t - up);
            }
            self.down_since.insert(key, t);
            self.link_down_events += 1;
        }
        for &(a, b) in &diff.added {
            let key = pair_key(a, b);
            if let Some(down) = self.down_since.remove(&key) {
                self.intercontacts.record(t - down);
            }
            self.up_since.insert(key, t);
            self.link_up_events += 1;
        }
        // Peak link-dynamics intensity. Step 0's delta is the whole
        // initial snapshot reported as added (`initial_diff`) — that's
        // placement, not dynamics, so it is excluded from the peak
        // (unlike the event totals, which the docs define as including
        // the initial edges).
        if t > 0 {
            self.peak_churn = self.peak_churn.max(diff.churn());
        }

        // Isolation spells (degree-0 runs per node).
        for i in 0..self.nodes {
            let isolated = graph.degree(i) == 0;
            match (self.isolated_since[i], isolated) {
                (None, true) => self.isolated_since[i] = Some(t),
                (Some(since), false) => {
                    self.isolation.record(t - since);
                    self.isolated_since[i] = None;
                }
                _ => {}
            }
        }

        // Connectivity episodes and path availability, read off the
        // incrementally-maintained components.
        let connected = components.is_connected();
        self.path_connectivity_sum += pair_connectivity(components, self.nodes);
        if connected {
            self.connected_steps += 1;
            if let Some(start) = self.down_run_start.take() {
                let outage = t - start;
                self.outages.record(outage);
                if self.time_to_repair.is_none() {
                    self.time_to_repair = Some(outage);
                }
            }
        } else if self.down_run_start.is_none() {
            self.down_run_start = Some(t);
            if self.first_disconnect_at.is_none() {
                self.first_disconnect_at = Some(t);
            }
        }

        self.steps_seen += 1;
    }

    /// Steps observed so far.
    pub fn steps_seen(&self) -> usize {
        self.steps_seen
    }

    /// Closes the trajectory: intervals still open are censored, and
    /// the accumulated metrics become a [`TemporalRecord`].
    pub fn finish(mut self) -> TemporalRecord {
        for _ in 0..self.up_since.len() {
            self.lifetimes.record_censored();
        }
        for _ in 0..self.down_since.len() {
            self.intercontacts.record_censored();
        }
        let open_isolation = self.isolated_since.iter().filter(|s| s.is_some()).count();
        for _ in 0..open_isolation {
            self.isolation.record_censored();
        }
        if self.down_run_start.is_some() {
            self.outages.record_censored();
        }
        let steps = self.steps_seen.max(1); // guard the zero-step degenerate case
        TemporalRecord {
            nodes: self.nodes,
            steps: self.steps_seen,
            lifetimes: self.lifetimes,
            intercontacts: self.intercontacts,
            isolation: self.isolation,
            outages: self.outages,
            link_up_events: self.link_up_events,
            link_down_events: self.link_down_events,
            peak_churn: self.peak_churn,
            connected_steps: self.connected_steps,
            availability: self.connected_steps as f64 / steps as f64,
            path_availability: self.path_connectivity_sum / steps as f64,
            first_disconnect_at: self.first_disconnect_at,
            time_to_repair: self.time_to_repair,
            kernel: self.kernel,
        }
    }
}

/// One trajectory's temporal metrics, mergeable across iterations into
/// a [`crate::TraceSummary`].
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TemporalRecord {
    /// Node count.
    pub nodes: usize,
    /// Steps observed.
    pub steps: usize,
    /// Completed link lifetimes (up-interval lengths).
    pub lifetimes: IntervalAccumulator,
    /// Completed inter-contact times (down-interval lengths per pair).
    pub intercontacts: IntervalAccumulator,
    /// Completed per-node isolation spells (degree-0 runs).
    pub isolation: IntervalAccumulator,
    /// Completed partition outages (disconnected runs).
    pub outages: IntervalAccumulator,
    /// Total edge-up events (including the initial snapshot's edges).
    pub link_up_events: u64,
    /// Total edge-down events.
    pub link_down_events: u64,
    /// Largest single-step edge churn (added + removed links) over
    /// steps `t > 0` — the peak link-dynamics intensity of the
    /// trajectory. Step 0's delta (the initial placement's edges) is
    /// excluded: it measures density, not dynamics.
    pub peak_churn: usize,
    /// Steps whose graph was connected.
    pub connected_steps: usize,
    /// Fraction of steps connected.
    pub availability: f64,
    /// Mean fraction of node pairs joined by some path.
    pub path_availability: f64,
    /// Step of the first disconnection (`None` if never disconnected).
    pub first_disconnect_at: Option<usize>,
    /// Duration of the first outage, in steps (`None` if the network
    /// never disconnected, or never repaired within the horizon).
    pub time_to_repair: Option<usize>,
    /// The driving kernel's deterministic counter totals for this
    /// trajectory (all-zero when the driver never reported any, e.g.
    /// a standalone recorder outside the `manet-sim` stream).
    pub kernel: KernelMetrics,
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_geom::Point;
    use manet_graph::DynamicGraph;

    /// Replays a 1-D trajectory through DynamicGraph into a recorder.
    fn record_trajectory(steps: &[Vec<f64>], range: f64) -> TemporalRecord {
        let pts =
            |xs: &Vec<f64>| -> Vec<Point<1>> { xs.iter().map(|&x| Point::new([x])).collect() };
        let first = pts(&steps[0]);
        let mut dg = DynamicGraph::new(&first, 100.0, range);
        let mut rec = TraceRecorder::new(first.len(), steps.len());
        rec.observe(&dg.initial_diff(), dg.graph());
        for xs in &steps[1..] {
            let diff = dg.advance(&pts(xs));
            rec.observe(&diff, dg.graph());
        }
        rec.finish()
    }

    #[test]
    fn static_connected_pair_has_one_censored_lifetime() {
        let record = record_trajectory(&[vec![0.0, 1.0], vec![0.0, 1.0], vec![0.0, 1.0]], 2.0);
        assert_eq!(record.lifetimes.count(), 0);
        assert_eq!(record.lifetimes.censored(), 1);
        assert_eq!(record.link_up_events, 1);
        assert_eq!(record.link_down_events, 0);
        assert_eq!(record.availability, 1.0);
        assert_eq!(record.path_availability, 1.0);
        assert_eq!(record.time_to_repair, None);
        assert_eq!(record.first_disconnect_at, None);
        assert_eq!(record.outages.count(), 0);
    }

    #[test]
    fn flapping_link_produces_lifetimes_and_intercontacts() {
        // Pair linked at t=0,1, apart at t=2,3, linked at t=4.
        let record = record_trajectory(
            &[
                vec![0.0, 1.0],
                vec![0.0, 1.0],
                vec![0.0, 50.0],
                vec![0.0, 50.0],
                vec![0.0, 1.0],
            ],
            2.0,
        );
        assert_eq!(record.lifetimes.count(), 1);
        assert_eq!(record.lifetimes.mean(), Some(2.0)); // up at 0, down at 2
        assert_eq!(record.intercontacts.count(), 1);
        assert_eq!(record.intercontacts.mean(), Some(2.0)); // down at 2, up at 4
        assert_eq!(record.lifetimes.censored(), 1); // final up interval open
                                                    // Outage structure: disconnected at t=2..3, repaired at t=4.
        assert_eq!(record.outages.count(), 1);
        assert_eq!(record.outages.mean(), Some(2.0));
        assert_eq!(record.time_to_repair, Some(2));
        assert_eq!(record.first_disconnect_at, Some(2));
        assert!((record.availability - 0.6).abs() < 1e-12);
    }

    #[test]
    fn isolation_spells_follow_degree_zero_runs() {
        // Node 2 starts isolated for 2 steps, then joins.
        let record = record_trajectory(
            &[
                vec![0.0, 1.0, 50.0],
                vec![0.0, 1.0, 50.0],
                vec![0.0, 1.0, 2.0],
            ],
            2.0,
        );
        assert_eq!(record.isolation.count(), 1);
        assert_eq!(record.isolation.mean(), Some(2.0));
        assert_eq!(record.isolation.censored(), 0);
        // Path availability: steps 0-1 have 2/6 of ordered pairs
        // reachable, step 2 has all.
        let expected = (2.0 / 6.0 + 2.0 / 6.0 + 1.0) / 3.0;
        assert!((record.path_availability - expected).abs() < 1e-12);
    }

    #[test]
    fn never_connected_network_has_censored_outage() {
        let record = record_trajectory(&[vec![0.0, 50.0], vec![0.0, 50.0]], 1.0);
        assert_eq!(record.availability, 0.0);
        assert_eq!(record.outages.count(), 0);
        assert_eq!(record.outages.censored(), 1);
        assert_eq!(record.first_disconnect_at, Some(0));
        assert_eq!(record.time_to_repair, None);
        // Both nodes isolated throughout: two censored spells.
        assert_eq!(record.isolation.censored(), 2);
    }

    #[test]
    fn single_node_network_is_trivially_available() {
        let record = record_trajectory(&[vec![5.0], vec![6.0]], 1.0);
        assert_eq!(record.availability, 1.0);
        assert_eq!(record.path_availability, 1.0);
        assert_eq!(record.link_up_events, 0);
    }

    #[test]
    fn zero_step_recorder_finishes_without_panicking() {
        let record = TraceRecorder::new(4, 10).finish();
        assert_eq!(record.steps, 0);
        assert_eq!(record.availability, 0.0);
        assert_eq!(record.lifetimes.count(), 0);
    }

    #[test]
    #[should_panic(expected = "node count changed")]
    fn observe_rejects_wrong_node_count() {
        let mut rec = TraceRecorder::new(3, 5);
        rec.observe(&EdgeDiff::default(), &AdjacencyList::empty(2));
    }

    #[test]
    fn event_counts_balance_interval_counts() {
        // Invariant: every up event either completes (a recorded
        // lifetime) or stays open (censored); same for down events and
        // inter-contacts.
        let record = record_trajectory(
            &[
                vec![0.0, 1.0, 3.0, 50.0],
                vec![0.0, 2.5, 3.0, 50.0],
                vec![0.0, 50.0, 3.0, 49.5],
                vec![0.0, 1.0, 3.0, 49.5],
            ],
            2.0,
        );
        assert_eq!(
            record.link_up_events,
            record.lifetimes.count() + record.lifetimes.censored()
        );
        assert_eq!(
            record.link_down_events,
            record.intercontacts.count() + record.intercontacts.censored()
        );
    }

    #[test]
    fn peak_churn_excludes_the_initial_placement() {
        // Step 0 brings up 3 links at once (placement density); the
        // only dynamics afterwards is one link flapping down then up.
        let record = record_trajectory(
            &[
                vec![0.0, 1.0, 2.0, 3.0], // 3 initial links
                vec![0.0, 1.0, 2.0, 9.0], // link 2-3 down
                vec![0.0, 1.0, 2.0, 3.0], // link 2-3 up
            ],
            1.5,
        );
        assert_eq!(record.link_up_events, 4); // 3 initial + 1 re-up
        assert_eq!(record.peak_churn, 1, "placement must not set the peak");

        // A static network has zero peak churn however dense it is.
        let still = record_trajectory(&[vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 2.0]], 1.5);
        assert_eq!(still.peak_churn, 0);
    }

    #[test]
    #[should_panic(expected = "cannot follow observe_with")]
    fn mixing_observe_with_then_observe_panics() {
        let pts: Vec<Point<1>> = vec![Point::new([0.0]), Point::new([1.0])];
        let dg = DynamicGraph::new(&pts, 10.0, 2.0);
        let mut external = manet_graph::DynamicComponents::new(2);
        external.apply(&dg.initial_diff(), dg.graph());
        let mut rec = TraceRecorder::new(2, 5);
        rec.observe_with(&dg.initial_diff(), dg.graph(), &external);
        // The internal component state missed the first delta; folding
        // through `observe` now must be refused, not silently wrong.
        rec.observe(&EdgeDiff::default(), dg.graph());
    }

    #[test]
    #[should_panic(expected = "cannot follow observe_with")]
    fn interleaving_observe_with_between_observes_panics() {
        let pts: Vec<Point<1>> = vec![Point::new([0.0]), Point::new([1.0])];
        let dg = DynamicGraph::new(&pts, 10.0, 2.0);
        let mut external = manet_graph::DynamicComponents::new(2);
        external.apply(&dg.initial_diff(), dg.graph());
        let mut rec = TraceRecorder::new(2, 5);
        rec.observe(&dg.initial_diff(), dg.graph());
        // An interleaved external step invalidates the internal state…
        rec.observe_with(&EdgeDiff::default(), dg.graph(), &external);
        // …so resuming the internal path must panic, not drift.
        rec.observe(&EdgeDiff::default(), dg.graph());
    }
}
