//! Temporal connectivity for mobile ad hoc networks.
//!
//! Santi & Blough (DSN 2002) evaluate connectivity as per-step
//! snapshots: the probability that the communication graph is
//! connected, the size of its largest component, the fraction of
//! *time* the network is up. What the snapshots hide is the
//! *persistence* structure — how long an individual link survives, how
//! long a node pair waits between contacts, how long a partition lasts
//! and how quickly the network heals — the quantities that routing and
//! data-mule protocols actually provision against (cf. Bostelmann 2005
//! on MANET quality measures; Döring, Faraud & König 2015 on
//! connection times).
//!
//! This crate is that missing analysis layer. It sits between the
//! graph/statistics substrates and the simulation engine:
//!
//! * [`manet_graph::DynamicGraph`] (in `manet-graph`) turns a
//!   trajectory into a stream of **edge deltas** — `O(changed edges)`
//!   per step instead of `O(n²)` rebuilds — and
//!   [`manet_graph::DynamicComponents`] maintains the component
//!   summary under that stream, so connectivity episodes need no
//!   per-step relabeling either;
//! * [`TraceRecorder`] folds one trajectory's delta stream into link
//!   **events** (edge up/down, plus mean/peak per-step churn) and
//!   connectivity **episodes** (connected/partitioned runs, per-node
//!   isolation spells);
//! * [`IntervalAccumulator`] turns each family of interval durations
//!   into moments + histogram + survival curve (`manet-stats`), with
//!   censoring for intervals still open at the horizon;
//! * [`TemporalRecord`] is one trajectory's folded metrics;
//!   [`TraceSummary::aggregate`] pools them across iterations.
//!
//! `manet-sim` drives this from its connectivity stream
//! (`ConnectivityStream` → `TraceObserver` / `simulate_trace`, sharing
//! one incrementally-maintained component summary per iteration), and
//! `manet-repro trace` sweeps range × mobility model into JSON/CSV
//! artifacts.
//!
//! # Example
//!
//! ```
//! use manet_geom::Point;
//! use manet_graph::DynamicGraph;
//! use manet_trace::{TraceRecorder, TraceSummary};
//!
//! // A two-node network that flaps: up, down, up.
//! let steps = vec![
//!     vec![Point::new([0.0]), Point::new([1.0])],
//!     vec![Point::new([0.0]), Point::new([9.0])],
//!     vec![Point::new([0.0]), Point::new([1.0])],
//! ];
//! let mut dg = DynamicGraph::new(&steps[0], 10.0, 2.0);
//! let mut rec = TraceRecorder::new(2, steps.len());
//! rec.observe(&dg.initial_diff(), dg.graph());
//! for pts in &steps[1..] {
//!     let diff = dg.advance(pts);
//!     rec.observe(&diff, dg.graph());
//! }
//! let summary = TraceSummary::aggregate(&[rec.finish()])?;
//! assert_eq!(summary.link_lifetime.count, 1);
//! assert_eq!(summary.repair.mean_time_to_repair, Some(1.0));
//! # Ok::<(), manet_trace::TraceError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod intervals;
pub mod recorder;
pub mod summary;

pub use intervals::{IntervalAccumulator, IntervalSummary, SurvivalPoint};
pub use recorder::{TemporalRecord, TraceRecorder};
pub use summary::{RepairSummary, TraceSummary};

/// Errors produced by the temporal-trace subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceError {
    /// Aggregation was asked for zero iterations.
    EmptyCampaign,
    /// Records with different node counts or horizons were mixed.
    MismatchedRecords,
}

impl core::fmt::Display for TraceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TraceError::EmptyCampaign => write!(f, "trace aggregation requires >= 1 record"),
            TraceError::MismatchedRecords => {
                write!(f, "temporal records disagree on node count or horizon")
            }
        }
    }
}

impl std::error::Error for TraceError {}

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn error_display_nonempty() {
        assert!(!TraceError::EmptyCampaign.to_string().is_empty());
        assert!(!TraceError::MismatchedRecords.to_string().is_empty());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TraceError>();
    }
}
