//! Duration accumulators shared by every temporal metric.
//!
//! Link lifetimes, inter-contact times, isolation spells and partition
//! outages are all streams of **interval lengths** (in steps) with a
//! tail of *censored* intervals still open when observation ends. An
//! [`IntervalAccumulator`] folds such a stream into moments plus a
//! fixed-geometry histogram (`manet-stats`), merges across iterations,
//! and summarizes into the distribution record the artifacts carry:
//! mean/extrema, median and p90, and a survival curve.

use manet_stats::{Histogram, RunningMoments};

/// Number of histogram bins an accumulator uses (capped by the
/// horizon, so one-step campaigns still build a valid histogram).
pub const DEFAULT_BINS: usize = 64;

/// Streaming accumulator for one family of interval durations.
///
/// Completed intervals feed the moments and the histogram; intervals
/// still open at the end of observation are *censored* — counted, but
/// excluded from the distribution (their true length is unknown, only
/// bounded below). The histogram spans `[0, steps + 1)` so every
/// possible completed duration lands in a real bin.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IntervalAccumulator {
    moments: RunningMoments,
    histogram: Histogram,
    censored: u64,
}

impl IntervalAccumulator {
    /// Creates an accumulator for a campaign of `steps` mobility steps.
    pub fn new(steps: usize) -> Self {
        let hi = (steps.max(1) + 1) as f64;
        let bins = steps.clamp(1, DEFAULT_BINS);
        IntervalAccumulator {
            moments: RunningMoments::new(),
            histogram: Histogram::new(0.0, hi, bins).expect("hi > 0 and bins >= 1 by construction"), // lint:allow(R3): hi > 0 and bins >= 1 by construction
            censored: 0,
        }
    }

    /// Records one completed interval of `len` steps.
    pub fn record(&mut self, len: usize) {
        self.moments.push(len as f64);
        self.histogram.record(len as f64);
    }

    /// Counts one interval still open when observation ended.
    pub fn record_censored(&mut self) {
        self.censored += 1;
    }

    /// Completed intervals observed.
    pub fn count(&self) -> u64 {
        self.moments.count()
    }

    /// Censored (still-open) intervals observed.
    pub fn censored(&self) -> u64 {
        self.censored
    }

    /// Mean completed-interval length (`None` when none completed).
    pub fn mean(&self) -> Option<f64> {
        (!self.moments.is_empty()).then(|| self.moments.mean())
    }

    /// Merges another accumulator (same campaign geometry) into this
    /// one.
    ///
    /// # Panics
    ///
    /// Panics when the histogram geometries differ — merging traces of
    /// different horizons is a logic error.
    pub fn merge(&mut self, other: &IntervalAccumulator) {
        self.moments.merge(&other.moments);
        self.histogram.merge(&other.histogram);
        self.censored += other.censored;
    }

    /// Folds the accumulator into the serializable summary record.
    pub fn summarize(&self) -> IntervalSummary {
        let (mean, min, max) = if self.moments.is_empty() {
            (None, None, None)
        } else {
            (
                Some(self.moments.mean()),
                Some(self.moments.min()),
                Some(self.moments.max()),
            )
        };
        // The sample std dev divides by n - 1: defined (and finite,
        // which JSON artifacts require) only from two observations.
        let std_dev = (self.moments.count() >= 2).then(|| self.moments.sample_std_dev());
        let quantile = |q: f64| self.histogram.quantile(q).ok();
        let mut survival = Vec::new();
        if self.count() > 0 {
            // S(0) = 1 by definition; thereafter, `Histogram::survival`
            // evaluated at a bin's left edge is the fraction of
            // intervals outliving that whole bin, i.e. S at its right
            // edge. Truncate once the curve hits zero (every completed
            // interval lands in some bin, so it always does).
            survival.push(SurvivalPoint {
                t: 0.0,
                survival: 1.0,
            });
            for i in 0..self.histogram.bins() {
                let t = self.histogram.bin_right(i);
                let s = self.histogram.survival(self.histogram.bin_left(i));
                survival.push(SurvivalPoint { t, survival: s });
                if s == 0.0 {
                    break;
                }
            }
        }
        IntervalSummary {
            count: self.count(),
            censored: self.censored,
            mean,
            std_dev,
            min,
            max,
            p50: quantile(0.5),
            p90: quantile(0.9),
            survival,
        }
    }
}

/// One point of a survival curve: the fraction of intervals lasting
/// `t` steps or longer.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SurvivalPoint {
    /// Duration, in steps (a histogram bin edge).
    pub t: f64,
    /// Fraction of completed intervals with length exceeding `t`
    /// (at bin resolution).
    pub survival: f64,
}

/// Serializable distribution record of one interval family.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IntervalSummary {
    /// Completed intervals observed.
    pub count: u64,
    /// Intervals still open when observation ended.
    pub censored: u64,
    /// Mean completed length in steps (`None` when `count == 0`).
    pub mean: Option<f64>,
    /// Sample standard deviation of completed lengths (`None` below
    /// two observations).
    pub std_dev: Option<f64>,
    /// Shortest completed interval.
    pub min: Option<f64>,
    /// Longest completed interval.
    pub max: Option<f64>,
    /// Median completed length (histogram bin edge).
    pub p50: Option<f64>,
    /// 90th-percentile completed length (histogram bin edge).
    pub p90: Option<f64>,
    /// Survival curve, truncated once it reaches zero.
    pub survival: Vec<SurvivalPoint>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_accumulator_summarizes_cleanly() {
        let acc = IntervalAccumulator::new(100);
        let s = acc.summarize();
        assert_eq!(s.count, 0);
        assert_eq!(s.censored, 0);
        assert_eq!(s.mean, None);
        assert_eq!(s.p50, None);
        assert!(s.survival.is_empty());
    }

    #[test]
    fn record_updates_all_views() {
        let mut acc = IntervalAccumulator::new(100);
        for len in [2, 4, 6] {
            acc.record(len);
        }
        acc.record_censored();
        let s = acc.summarize();
        assert_eq!(s.count, 3);
        assert_eq!(s.censored, 1);
        assert_eq!(s.mean, Some(4.0));
        assert_eq!(s.min, Some(2.0));
        assert_eq!(s.max, Some(6.0));
        assert!(s.p50.is_some() && s.p90.is_some());
    }

    #[test]
    fn single_observation_has_finite_summary() {
        let mut acc = IntervalAccumulator::new(20);
        acc.record(7);
        let s = acc.summarize();
        assert_eq!(s.mean, Some(7.0));
        assert_eq!(s.std_dev, None, "n=1 sample std dev is undefined");
        assert!(s.survival.iter().all(|p| p.survival.is_finite()));
    }

    #[test]
    fn survival_curve_is_monotone_from_one() {
        let mut acc = IntervalAccumulator::new(50);
        for len in [1, 1, 5, 20, 45] {
            acc.record(len);
        }
        let s = acc.summarize();
        assert!(!s.survival.is_empty());
        assert_eq!(s.survival[0].survival, 1.0);
        for w in s.survival.windows(2) {
            assert!(w[1].survival <= w[0].survival, "survival must not increase");
        }
        assert_eq!(s.survival.last().unwrap().survival, 0.0);
    }

    #[test]
    fn merge_equals_single_stream() {
        let mut a = IntervalAccumulator::new(30);
        let mut b = IntervalAccumulator::new(30);
        let mut both = IntervalAccumulator::new(30);
        for len in [1, 2, 3] {
            a.record(len);
            both.record(len);
        }
        for len in [10, 20] {
            b.record(len);
            both.record(len);
        }
        b.record_censored();
        both.record_censored();
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.censored(), both.censored());
        assert_eq!(a.summarize().p90, both.summarize().p90);
        assert!((a.mean().unwrap() - both.mean().unwrap()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "differ")]
    fn merge_rejects_different_horizons() {
        let mut a = IntervalAccumulator::new(10);
        let b = IntervalAccumulator::new(500);
        a.merge(&b);
    }

    #[test]
    fn one_step_horizon_is_valid() {
        let mut acc = IntervalAccumulator::new(1);
        acc.record(1);
        assert_eq!(acc.summarize().count, 1);
        // Horizon 0 (degenerate) must not panic either.
        let mut z = IntervalAccumulator::new(0);
        z.record(0);
        assert_eq!(z.count(), 1);
    }
}
