//! Campaign-level aggregation of per-trajectory temporal records.

use crate::intervals::IntervalSummary;
use crate::recorder::TemporalRecord;
use crate::TraceError;
use manet_obs::KernelMetrics;
use manet_stats::RunningMoments;

/// Repair behavior across a campaign: how quickly the network heals
/// after its first disconnection.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RepairSummary {
    /// Iterations that disconnected at least once.
    pub disconnected_iterations: usize,
    /// Iterations that never disconnected within the horizon.
    pub never_disconnected: usize,
    /// Iterations that disconnected but never repaired.
    pub never_repaired: usize,
    /// Mean duration of the first outage over iterations that
    /// repaired (`None` when none did).
    pub mean_time_to_repair: Option<f64>,
    /// Worst first-outage duration over iterations that repaired.
    pub max_time_to_repair: Option<f64>,
}

/// Aggregated temporal metrics of one simulation campaign.
///
/// Built by [`TraceSummary::aggregate`] from the per-iteration
/// [`TemporalRecord`]s; this is the JSON artifact the `manet-repro
/// trace` subcommand emits per (model, range) cell.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TraceSummary {
    /// Iterations aggregated.
    pub iterations: usize,
    /// Node count (identical across iterations).
    pub nodes: usize,
    /// Steps per iteration (identical across iterations).
    pub steps: usize,
    /// Mean fraction of connected steps.
    pub availability: f64,
    /// Mean fraction of node pairs joined by some path.
    pub path_availability: f64,
    /// Mean link up/down events per step — the average edge churn
    /// ([`manet_graph::EdgeDiff::churn`]) over all steps of all
    /// iterations.
    pub link_events_per_step: f64,
    /// Largest single-step edge churn observed in any iteration over
    /// steps `t > 0` (the initial placement's edges are excluded) —
    /// the peak link-dynamics intensity behind the mean.
    pub peak_churn: usize,
    /// Link-lifetime distribution (pooled over iterations).
    pub link_lifetime: IntervalSummary,
    /// Inter-contact-time distribution (pooled).
    pub inter_contact: IntervalSummary,
    /// Per-node isolation-spell distribution (pooled).
    pub isolation: IntervalSummary,
    /// Partition-outage-duration distribution (pooled).
    pub outage: IntervalSummary,
    /// Time-to-repair after the first disconnection.
    pub repair: RepairSummary,
    /// The kernel's deterministic counters summed over all iterations
    /// (`u64` sums commute, so the total is independent of iteration
    /// scheduling and thread count).
    pub kernel: KernelMetrics,
}

impl TraceSummary {
    /// Pools per-iteration records into one campaign summary.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::EmptyCampaign`] for an empty slice and
    /// [`TraceError::MismatchedRecords`] when records disagree on node
    /// count or horizon (they then came from different campaigns).
    pub fn aggregate(records: &[TemporalRecord]) -> Result<Self, TraceError> {
        let first = records.first().ok_or(TraceError::EmptyCampaign)?;
        if records
            .iter()
            .any(|r| r.nodes != first.nodes || r.steps != first.steps)
        {
            return Err(TraceError::MismatchedRecords);
        }

        let mut lifetimes = first.lifetimes.clone();
        let mut intercontacts = first.intercontacts.clone();
        let mut isolation = first.isolation.clone();
        let mut outages = first.outages.clone();
        let mut kernel = first.kernel;
        for r in &records[1..] {
            lifetimes.merge(&r.lifetimes);
            intercontacts.merge(&r.intercontacts);
            isolation.merge(&r.isolation);
            outages.merge(&r.outages);
            kernel.merge(&r.kernel);
        }

        let n = records.len() as f64;
        let availability = records.iter().map(|r| r.availability).sum::<f64>() / n;
        let path_availability = records.iter().map(|r| r.path_availability).sum::<f64>() / n;
        let total_steps: usize = records.iter().map(|r| r.steps).sum();
        let total_events: u64 = records
            .iter()
            .map(|r| r.link_up_events + r.link_down_events)
            .sum();
        let link_events_per_step = total_events as f64 / total_steps.max(1) as f64;
        let peak_churn = records.iter().map(|r| r.peak_churn).max().unwrap_or(0);

        let mut repair_moments = RunningMoments::new();
        let mut disconnected_iterations = 0usize;
        let mut never_repaired = 0usize;
        for r in records {
            if r.first_disconnect_at.is_some() {
                disconnected_iterations += 1;
                match r.time_to_repair {
                    Some(steps) => repair_moments.push(steps as f64),
                    None => never_repaired += 1,
                }
            }
        }
        let repair = RepairSummary {
            disconnected_iterations,
            never_disconnected: records.len() - disconnected_iterations,
            never_repaired,
            mean_time_to_repair: (!repair_moments.is_empty()).then(|| repair_moments.mean()),
            max_time_to_repair: (!repair_moments.is_empty()).then(|| repair_moments.max()),
        };

        Ok(TraceSummary {
            iterations: records.len(),
            nodes: first.nodes,
            steps: first.steps,
            availability,
            path_availability,
            link_events_per_step,
            peak_churn,
            link_lifetime: lifetimes.summarize(),
            inter_contact: intercontacts.summarize(),
            isolation: isolation.summarize(),
            outage: outages.summarize(),
            repair,
            kernel,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceRecorder;
    use manet_geom::Point;
    use manet_graph::DynamicGraph;

    fn record(xs_steps: &[Vec<f64>], range: f64) -> TemporalRecord {
        let pts =
            |xs: &Vec<f64>| -> Vec<Point<1>> { xs.iter().map(|&x| Point::new([x])).collect() };
        let first = pts(&xs_steps[0]);
        let mut dg = DynamicGraph::new(&first, 100.0, range);
        let mut rec = TraceRecorder::new(first.len(), xs_steps.len());
        rec.observe(&dg.initial_diff(), dg.graph());
        for xs in &xs_steps[1..] {
            let diff = dg.advance(&pts(xs));
            rec.observe(&diff, dg.graph());
        }
        rec.finish()
    }

    #[test]
    fn aggregate_requires_records() {
        assert_eq!(
            TraceSummary::aggregate(&[]).unwrap_err(),
            TraceError::EmptyCampaign
        );
    }

    #[test]
    fn aggregate_rejects_mixed_campaigns() {
        let a = record(&[vec![0.0, 1.0]], 2.0);
        let b = record(&[vec![0.0, 1.0], vec![0.0, 1.0]], 2.0); // different horizon
        assert_eq!(
            TraceSummary::aggregate(&[a, b]).unwrap_err(),
            TraceError::MismatchedRecords
        );
    }

    #[test]
    fn aggregate_pools_and_averages() {
        // Iteration A: always connected. Iteration B: flaps once.
        let a = record(&[vec![0.0, 1.0], vec![0.0, 1.0], vec![0.0, 1.0]], 2.0);
        let b = record(&[vec![0.0, 1.0], vec![0.0, 50.0], vec![0.0, 1.0]], 2.0);
        let s = TraceSummary::aggregate(&[a, b]).unwrap();
        assert_eq!(s.iterations, 2);
        assert_eq!(s.nodes, 2);
        assert_eq!(s.steps, 3);
        assert!((s.availability - (1.0 + 2.0 / 3.0) / 2.0).abs() < 1e-12);
        assert_eq!(s.link_lifetime.count, 1); // B's first up interval
        assert_eq!(s.link_lifetime.censored, 2); // one open per iteration
        assert_eq!(s.inter_contact.count, 1);
        assert_eq!(s.outage.count, 1);
        assert_eq!(s.repair.disconnected_iterations, 1);
        assert_eq!(s.repair.never_disconnected, 1);
        assert_eq!(s.repair.never_repaired, 0);
        assert_eq!(s.repair.mean_time_to_repair, Some(1.0));
    }

    #[test]
    fn never_repaired_iterations_are_counted_not_averaged() {
        let stuck = record(&[vec![0.0, 50.0], vec![0.0, 50.0]], 1.0);
        let s = TraceSummary::aggregate(&[stuck]).unwrap();
        assert_eq!(s.repair.disconnected_iterations, 1);
        assert_eq!(s.repair.never_repaired, 1);
        assert_eq!(s.repair.mean_time_to_repair, None);
        assert_eq!(s.availability, 0.0);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn summary_serializes_with_stable_keys() {
        let a = record(&[vec![0.0, 1.0], vec![0.0, 50.0], vec![0.0, 1.0]], 2.0);
        let s = TraceSummary::aggregate(&[a]).unwrap();
        let json = serde_json::to_string(&s).unwrap();
        for key in [
            "link_lifetime",
            "inter_contact",
            "outage",
            "repair",
            "path_availability",
            "survival",
        ] {
            assert!(json.contains(key), "missing key `{key}` in {json}");
        }
        // Identical input -> identical bytes (the determinism the
        // artifact tests lean on).
        let again = serde_json::to_string(&s).unwrap();
        assert_eq!(json, again);
    }
}
