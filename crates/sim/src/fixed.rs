//! The paper's literal simulator: fixed transmitting range, per-step
//! connectivity and largest-component statistics.
//!
//! §4.1: "The simulator returns the percentage of connected graphs
//! generated, the average size of the largest connected component
//! (averaged over the runs that yield a disconnected graph) and the
//! minimum size of the largest connected component. All of these
//! parameters are reported with reference both to a single iteration
//! [...] and to all the iterations."

use crate::{
    config::SimConfig,
    stream::{run_connectivity_stream, ConnectivityObserver, StepView},
    SimError,
};
use manet_mobility::Mobility;
use manet_stats::RunningMoments;

/// Per-iteration statistics at a fixed transmitting range.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IterationStats {
    /// Steps simulated in this iteration.
    pub steps: usize,
    /// Steps whose communication graph was connected.
    pub connected_steps: usize,
    /// Mean largest-component size over the **disconnected** steps
    /// (`None` when every step was connected), per the paper's
    /// reporting convention.
    pub avg_largest_when_disconnected: Option<f64>,
    /// Mean largest-component size over all steps.
    pub avg_largest: f64,
    /// Minimum largest-component size over all steps.
    pub min_largest: usize,
    /// Mean number of isolated (degree-0) nodes per step.
    pub avg_isolated: f64,
    /// Mean number of connected components per step.
    pub avg_components: f64,
}

impl IterationStats {
    /// Fraction of steps with a connected graph.
    pub fn connectivity_fraction(&self) -> f64 {
        self.connected_steps as f64 / self.steps as f64
    }
}

/// Whole-campaign report at a fixed transmitting range.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FixedRangeReport {
    /// The transmitting range simulated.
    pub range: f64,
    /// Number of nodes.
    pub nodes: usize,
    /// Per-iteration statistics, ordered by iteration index.
    pub iterations: Vec<IterationStats>,
}

impl FixedRangeReport {
    /// Overall fraction of connected steps (pooled over iterations).
    pub fn connectivity_fraction(&self) -> f64 {
        let connected: usize = self.iterations.iter().map(|i| i.connected_steps).sum();
        let steps: usize = self.iterations.iter().map(|i| i.steps).sum();
        connected as f64 / steps as f64
    }

    /// Overall mean largest-component size over disconnected steps,
    /// `None` when every step everywhere was connected. Iterations are
    /// weighted by their number of disconnected steps, so the result
    /// equals the pooled per-step mean.
    pub fn avg_largest_when_disconnected(&self) -> Option<f64> {
        let mut num = 0.0;
        let mut den = 0usize;
        for it in &self.iterations {
            if let Some(avg) = it.avg_largest_when_disconnected {
                let disconnected = it.steps - it.connected_steps;
                num += avg * disconnected as f64;
                den += disconnected;
            }
        }
        if den == 0 {
            None
        } else {
            Some(num / den as f64)
        }
    }

    /// Step-weighted pooled mean of a per-iteration, per-step metric —
    /// equals the mean over all steps of all iterations.
    fn pooled(&self, metric: impl Fn(&IterationStats) -> f64) -> f64 {
        let mut num = 0.0;
        let mut den = 0usize;
        for it in &self.iterations {
            num += metric(it) * it.steps as f64;
            den += it.steps;
        }
        num / den as f64
    }

    /// Overall mean largest-component size over **all** steps.
    pub fn avg_largest(&self) -> f64 {
        self.pooled(|it| it.avg_largest)
    }

    /// Overall mean number of isolated (degree-0) nodes per step,
    /// pooled over iterations (weighted by step count).
    pub fn avg_isolated(&self) -> f64 {
        self.pooled(|it| it.avg_isolated)
    }

    /// Overall mean number of connected components per step, pooled
    /// over iterations (weighted by step count).
    pub fn avg_components(&self) -> f64 {
        self.pooled(|it| it.avg_components)
    }

    /// Overall minimum largest-component size.
    pub fn min_largest(&self) -> usize {
        self.iterations
            .iter()
            .map(|i| i.min_largest)
            .min()
            .unwrap_or(0)
    }

    /// Mean largest-component size as a fraction of `n`.
    pub fn avg_largest_fraction(&self) -> f64 {
        self.avg_largest() / self.nodes as f64
    }
}

impl core::fmt::Display for FixedRangeReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "r={:.4}: {:.2}% connected, avg largest component {:.2} ({:.1}% of n={}), min {}",
            self.range,
            100.0 * self.connectivity_fraction(),
            self.avg_largest(),
            100.0 * self.avg_largest_fraction(),
            self.nodes,
            self.min_largest()
        )
    }
}

/// Observer computing connectivity and largest-component size at one
/// fixed range, reading every quantity off the stream's incremental
/// component summary — no per-step rebuild or relabeling.
struct FixedRangeObserver {
    connected_steps: usize,
    steps: usize,
    largest_all: RunningMoments,
    largest_disconnected: RunningMoments,
    min_largest: usize,
    isolated: RunningMoments,
    components: RunningMoments,
}

impl<const D: usize> ConnectivityObserver<D> for FixedRangeObserver {
    type Output = IterationStats;

    fn observe(&mut self, view: &StepView<'_, D>) {
        let comps = view.components();
        let largest = comps.largest_size();
        self.steps += 1;
        self.largest_all.push(largest as f64);
        if comps.is_connected() {
            self.connected_steps += 1;
        } else {
            self.largest_disconnected.push(largest as f64);
        }
        self.min_largest = self.min_largest.min(largest);
        // Isolated (degree-0) nodes are exactly the singleton
        // components.
        self.isolated.push(comps.singleton_count() as f64);
        self.components.push(comps.count() as f64);
    }

    fn finish(self) -> IterationStats {
        IterationStats {
            steps: self.steps,
            connected_steps: self.connected_steps,
            avg_largest_when_disconnected: if self.largest_disconnected.is_empty() {
                None
            } else {
                Some(self.largest_disconnected.mean())
            },
            avg_largest: self.largest_all.mean(),
            min_largest: self.min_largest,
            avg_isolated: self.isolated.mean(),
            avg_components: self.components.mean(),
        }
    }
}

/// Runs the paper's simulator at a fixed transmitting range.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] when `range` is not positive
/// and finite, and propagates engine errors.
pub fn simulate_fixed_range<const D: usize, M>(
    config: &SimConfig<D>,
    model: &M,
    range: f64,
) -> Result<FixedRangeReport, SimError>
where
    M: Mobility<D> + Clone + Send + Sync,
{
    let iterations = run_connectivity_stream(config, model, Some(range), |_| FixedRangeObserver {
        connected_steps: 0,
        steps: 0,
        largest_all: RunningMoments::new(),
        largest_disconnected: RunningMoments::new(),
        min_largest: usize::MAX,
        isolated: RunningMoments::new(),
        components: RunningMoments::new(),
    })?;
    Ok(FixedRangeReport {
        range,
        nodes: config.nodes(),
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_mobility::{RandomWaypoint, StationaryModel};

    fn config(nodes: usize, side: f64, iterations: usize, steps: usize) -> SimConfig<2> {
        let mut b = SimConfig::<2>::builder();
        b.nodes(nodes)
            .side(side)
            .iterations(iterations)
            .steps(steps)
            .seed(5);
        b.build().unwrap()
    }

    #[test]
    fn range_is_validated() {
        let cfg = config(5, 50.0, 1, 1);
        let m = StationaryModel::new();
        assert!(simulate_fixed_range(&cfg, &m, 0.0).is_err());
        assert!(simulate_fixed_range(&cfg, &m, -1.0).is_err());
        assert!(simulate_fixed_range(&cfg, &m, f64::NAN).is_err());
    }

    #[test]
    fn huge_range_always_connected() {
        let cfg = config(10, 50.0, 3, 5);
        let model = RandomWaypoint::new(0.5, 2.0, 0, 0.0).unwrap();
        let report = simulate_fixed_range(&cfg, &model, 1000.0).unwrap();
        assert_eq!(report.connectivity_fraction(), 1.0);
        assert_eq!(report.avg_largest(), 10.0);
        assert_eq!(report.min_largest(), 10);
        assert_eq!(report.avg_largest_when_disconnected(), None);
        for it in &report.iterations {
            assert_eq!(it.connectivity_fraction(), 1.0);
            assert_eq!(it.avg_largest_when_disconnected, None);
        }
    }

    #[test]
    fn tiny_range_never_connected() {
        let cfg = config(10, 1000.0, 2, 5);
        let report = simulate_fixed_range(&cfg, &StationaryModel::new(), 1e-6).unwrap();
        assert_eq!(report.connectivity_fraction(), 0.0);
        // Nodes essentially isolated: largest component is 1.
        assert_eq!(report.min_largest(), 1);
        assert_eq!(report.avg_largest_when_disconnected(), Some(1.0));
    }

    #[test]
    fn connectivity_fraction_matches_critical_range_series() {
        // Cross-check the fixed-range path against the quantile path.
        let cfg = config(10, 120.0, 4, 30);
        let model = RandomWaypoint::new(0.5, 3.0, 1, 0.0).unwrap();
        let crit = crate::critical::simulate_critical_ranges(&cfg, &model).unwrap();
        for r in [10.0, 25.0, 40.0, 70.0] {
            let report = simulate_fixed_range(&cfg, &model, r).unwrap();
            let from_crit = crit.connectivity_fraction_at(r);
            assert!(
                (report.connectivity_fraction() - from_crit).abs() < 1e-12,
                "mismatch at r={r}: fixed={} critical={}",
                report.connectivity_fraction(),
                from_crit
            );
        }
    }

    #[test]
    fn stationary_iterations_are_all_or_nothing() {
        let cfg = config(8, 100.0, 6, 10);
        let report = simulate_fixed_range(&cfg, &StationaryModel::new(), 40.0).unwrap();
        for it in &report.iterations {
            // A stationary iteration's graph never changes.
            assert!(
                it.connected_steps == 0 || it.connected_steps == it.steps,
                "stationary iteration partially connected: {it:?}"
            );
        }
    }

    #[test]
    fn display_is_informative() {
        let cfg = config(5, 50.0, 1, 2);
        let report = simulate_fixed_range(&cfg, &StationaryModel::new(), 100.0).unwrap();
        let text = report.to_string();
        assert!(text.contains("connected"));
        assert!(text.contains("n=5"));
    }

    #[test]
    fn avg_largest_weighted_over_iterations() {
        let cfg = config(6, 80.0, 3, 7);
        let model = RandomWaypoint::new(0.5, 2.0, 0, 0.0).unwrap();
        let report = simulate_fixed_range(&cfg, &model, 30.0).unwrap();
        let manual: f64 = report
            .iterations
            .iter()
            .map(|i| i.avg_largest * i.steps as f64)
            .sum::<f64>()
            / report.iterations.iter().map(|i| i.steps).sum::<usize>() as f64;
        assert!((report.avg_largest() - manual).abs() < 1e-12);
    }
}

#[cfg(test)]
mod straggler_tests {
    use super::*;
    use crate::config::SimConfig;
    use manet_mobility::RandomWaypoint;

    /// Paper §4.2 (Figures 4–5 discussion): "on the average
    /// disconnection is caused by only a few isolated nodes" — at a
    /// range near r90 the stragglers outside the giant component are
    /// mostly isolated singletons.
    #[test]
    fn disconnection_near_r90_is_mostly_isolated_singletons() {
        let mut b = SimConfig::<2>::builder();
        b.nodes(32).side(512.0).iterations(5).steps(200).seed(71);
        let cfg = b.build().unwrap();
        let model = RandomWaypoint::new(0.5, 5.12, 40, 0.0).unwrap();
        // Locate r90 from the critical series, then inspect structure.
        let crit = crate::critical::simulate_critical_ranges(&cfg, &model).unwrap();
        let r90 = crit.pooled().unwrap().smallest_covering(0.9).unwrap();
        let report = simulate_fixed_range(&cfg, &model, r90).unwrap();
        let stragglers = 32.0 - report.avg_largest();
        let isolated: f64 = report
            .iterations
            .iter()
            .map(|i| i.avg_isolated * i.steps as f64)
            .sum::<f64>()
            / report.iterations.iter().map(|i| i.steps).sum::<usize>() as f64;
        assert!(
            stragglers < 2.0,
            "near r90 only a couple of nodes should be detached, got {stragglers}"
        );
        // Most detached nodes are singletons: the isolated count
        // accounts for the bulk of the straggler mass.
        assert!(
            isolated >= stragglers * 0.5,
            "stragglers {stragglers} vs isolated {isolated}"
        );
        // Component count stays barely above 1.
        let comps: f64 = report
            .iterations
            .iter()
            .map(|i| i.avg_components * i.steps as f64)
            .sum::<f64>()
            / report.iterations.iter().map(|i| i.steps).sum::<usize>() as f64;
        assert!(comps < 3.0, "avg components {comps}");
    }

    #[test]
    fn isolated_and_component_counts_consistent() {
        let mut b = SimConfig::<2>::builder();
        b.nodes(12).side(400.0).iterations(3).steps(30).seed(72);
        let cfg = b.build().unwrap();
        let model = RandomWaypoint::new(0.5, 4.0, 0, 0.0).unwrap();
        let report = simulate_fixed_range(&cfg, &model, 60.0).unwrap();
        for it in &report.iterations {
            // Components at least 1; isolated nodes each form their own
            // component, so components >= isolated (when n > isolated).
            assert!(it.avg_components >= 1.0);
            assert!(it.avg_components >= it.avg_isolated / 12.0);
            assert!(it.avg_isolated >= 0.0 && it.avg_isolated <= 12.0);
        }
    }
}
