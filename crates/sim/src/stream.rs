//! The incremental connectivity spine: one step-driver for every
//! pipeline.
//!
//! Before this module, each observer re-derived its own graph state
//! per step — the fixed-range pipeline rebuilt an adjacency list and
//! re-ran full component labeling, the trace pipeline maintained its
//! own [`DynamicGraph`], and the rest worked from raw positions — six
//! copies of the per-step setup code. [`ConnectivityStream`] owns that
//! loop once: it drives [`DynamicGraph::step`] and
//! [`DynamicComponents::apply`] per step and hands each
//! [`ConnectivityObserver`] a [`StepView`] with the positions plus (when
//! a transmitting range is configured) the snapshot graph, the
//! incrementally-maintained components, and the step's [`EdgeDiff`] —
//! so the hot loop is delta-apply, never rebuild-and-relabel. Since
//! the zero-rebuild step kernel landed, the graph side is incremental
//! too: the kernel rescans only moved nodes over a
//! [`MovingCellGrid`](manet_geom::MovingCellGrid) and reuses every
//! buffer, so a whole iteration runs allocation-free after its first
//! step, with the model's declared displacement bound
//! ([`Mobility::max_step_displacement`]) policed on every step.
//!
//! # Determinism contract
//!
//! The stream adds no randomness and no cross-iteration state: it is a
//! per-iteration adapter over [`run_simulation`], so results remain
//! bit-identical across thread counts for a fixed master seed. The
//! incremental components are property-tested bit-identical to the
//! [`manet_graph::ComponentSummary::of`] oracle at every step, which is
//! what licenses the byte-identical experiment goldens in
//! `tests/goldens/`.

use crate::{
    config::SimConfig,
    engine::{run_simulation, StepObserver},
    SimError,
};
use manet_geom::Point;
use manet_graph::{AdjacencyList, DynamicComponents, DynamicGraph, EdgeDiff, Skin};
use manet_mobility::Mobility;
use manet_obs::KernelMetrics;

/// Per-step link-layer state maintained by the stream when a
/// transmitting range is configured.
pub struct LinkView<'a> {
    range: f64,
    graph: &'a AdjacencyList,
    components: &'a DynamicComponents,
    diff: &'a EdgeDiff,
    kernel: KernelMetrics,
}

impl LinkView<'_> {
    /// The transmitting range the snapshot is built at.
    pub fn range(&self) -> f64 {
        self.range
    }

    /// The step's communication-graph snapshot.
    pub fn graph(&self) -> &AdjacencyList {
        self.graph
    }

    /// The incrementally-maintained component summary of the snapshot.
    pub fn components(&self) -> &DynamicComponents {
        self.components
    }

    /// The edge delta from the previous step (step 0 reports every
    /// initial edge as added, per [`DynamicGraph::initial_diff`]).
    pub fn diff(&self) -> &EdgeDiff {
        self.diff
    }

    /// The kernel's deterministic counters, *cumulative since the
    /// iteration's first step* — grid commits, step-kernel path
    /// decisions and rescan volumes, component-tracker rebuild events.
    /// The value at the final step is the iteration's total; observers
    /// that want it fold the latest view (see
    /// `TraceRecorder::set_kernel_metrics`). Pure event counts:
    /// identical across thread counts for a fixed seed.
    pub fn kernel_metrics(&self) -> &KernelMetrics {
        &self.kernel
    }
}

/// Everything a [`ConnectivityObserver`] may consume about one step.
pub struct StepView<'a, const D: usize> {
    step: usize,
    positions: &'a [Point<D>],
    link: Option<LinkView<'a>>,
}

impl<const D: usize> StepView<'_, D> {
    /// The step index (0 is the initial placement).
    pub fn step(&self) -> usize {
        self.step
    }

    /// The node positions at this step.
    pub fn positions(&self) -> &[Point<D>] {
        self.positions
    }

    /// The link-layer state, when the stream was configured with a
    /// transmitting range; `None` for positions-only pipelines.
    pub fn link(&self) -> Option<&LinkView<'_>> {
        self.link.as_ref()
    }

    fn link_expected(&self) -> &LinkView<'_> {
        self.link
            .as_ref()
            // lint:allow(R3): documented panic: observers require a range-bound stream
            .expect("observer requires a ConnectivityStream built with a transmitting range")
    }

    /// The step's graph snapshot.
    ///
    /// # Panics
    ///
    /// Panics when the stream was built without a range.
    pub fn graph(&self) -> &AdjacencyList {
        self.link_expected().graph()
    }

    /// The step's incremental component summary.
    ///
    /// # Panics
    ///
    /// Panics when the stream was built without a range.
    pub fn components(&self) -> &DynamicComponents {
        self.link_expected().components()
    }

    /// The step's edge delta.
    ///
    /// # Panics
    ///
    /// Panics when the stream was built without a range.
    pub fn diff(&self) -> &EdgeDiff {
        self.link_expected().diff()
    }

    /// The kernel's cumulative deterministic counters (see
    /// [`LinkView::kernel_metrics`]).
    ///
    /// # Panics
    ///
    /// Panics when the stream was built without a range.
    pub fn kernel_metrics(&self) -> &KernelMetrics {
        self.link_expected().kernel_metrics()
    }
}

/// Consumes the per-step [`StepView`]s of one trajectory and produces
/// a per-iteration output — the connectivity-spine counterpart of the
/// engine's raw [`StepObserver`].
pub trait ConnectivityObserver<const D: usize> {
    /// The per-iteration result this observer produces.
    type Output: Send;

    /// Called once per step, in step order.
    fn observe(&mut self, view: &StepView<'_, D>);

    /// Consumes the observer, yielding the iteration's result.
    fn finish(self) -> Self::Output;
}

/// Adapter owning the per-step `DynamicGraph::step` +
/// `DynamicComponents::apply` loop for one iteration, delegating each
/// assembled [`StepView`] to an inner [`ConnectivityObserver`].
///
/// All per-step scratch (the moving grid, the diff buffers, the
/// component bookkeeping) lives inside the held kernel state, so after
/// the first step of an iteration the stream performs no allocation.
///
/// Built per iteration by [`run_connectivity_stream`]; constructable
/// directly for replaying hand-rolled trajectories in tests.
pub struct ConnectivityStream<O, const D: usize> {
    side: f64,
    range: Option<f64>,
    /// The mobility model's declared per-step displacement bound,
    /// handed to the kernel's contract check.
    displacement_bound: Option<f64>,
    /// Intra-step worker threads handed to the kernel's sharded bulk
    /// rescan (`>= 1`; a performance knob, never a semantic one).
    step_threads: usize,
    /// Verlet skin policy handed to the kernel's candidate cache
    /// (default [`Skin::Auto`]; a performance knob, never a semantic
    /// one).
    skin: Skin,
    state: Option<(DynamicGraph<D>, DynamicComponents)>,
    inner: O,
}

impl<O, const D: usize> ConnectivityStream<O, D> {
    /// Creates a stream over `[0, side]^D`; `range = None` runs the
    /// positions-only fast path (no graph maintenance at all).
    ///
    /// # Panics
    ///
    /// Panics when `range` is `Some` but not positive and finite —
    /// the same inputs [`run_connectivity_stream`] rejects with
    /// [`SimError::InvalidConfig`]; a NaN range would otherwise build
    /// silently-edgeless snapshots.
    pub fn new(side: f64, range: Option<f64>, inner: O) -> Self {
        Self::with_displacement_bound(side, range, None, inner)
    }

    /// [`ConnectivityStream::new`] plus the mobility model's declared
    /// per-step displacement bound (see
    /// [`Mobility::max_step_displacement`]): the incremental kernel
    /// polices it every step and falls back to the full
    /// rebuild-and-diff path on violation.
    ///
    /// # Panics
    ///
    /// Panics on an invalid range (as [`ConnectivityStream::new`]) or
    /// a NaN/infinite/negative bound.
    pub fn with_displacement_bound(
        side: f64,
        range: Option<f64>,
        displacement_bound: Option<f64>,
        inner: O,
    ) -> Self {
        if let Some(r) = range {
            assert!(
                r.is_finite() && r > 0.0,
                "transmitting range must be positive and finite, got {r}"
            );
        }
        if let Some(b) = displacement_bound {
            assert!(
                b.is_finite() && b >= 0.0,
                "displacement bound must be finite and non-negative, got {b}"
            );
        }
        ConnectivityStream {
            side,
            range,
            displacement_bound,
            step_threads: 1,
            skin: Skin::default(),
            state: None,
            inner,
        }
    }

    /// Sets the intra-step worker-thread count for the kernel's
    /// sharded bulk rescan (chainable; default 1 = serial). Every
    /// observable — snapshots, diffs, counters, artifacts — is
    /// bit-identical across values (see
    /// [`DynamicGraph::set_step_threads`]).
    ///
    /// # Panics
    ///
    /// Panics when `threads` is zero.
    pub fn with_step_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "step_threads must be at least 1");
        self.step_threads = threads;
        self
    }

    /// Sets the kernel's Verlet skin policy (chainable; default
    /// [`Skin::Auto`]). Like the thread knob, purely a performance
    /// setting: every observable is bit-identical across values (see
    /// [`DynamicGraph::with_skin`]).
    ///
    /// # Panics
    ///
    /// Panics when `skin` is [`Skin::Fixed`] with a non-finite or
    /// non-positive radius.
    pub fn with_skin(mut self, skin: Skin) -> Self {
        if let Skin::Fixed(s) = skin {
            assert!(
                s.is_finite() && s > 0.0,
                "fixed skin must be positive and finite, got {s}"
            );
        }
        self.skin = skin;
        self
    }
}

impl<const D: usize, O: ConnectivityObserver<D>> StepObserver<D> for ConnectivityStream<O, D> {
    type Output = O::Output;

    fn observe(&mut self, step: usize, positions: &[Point<D>]) {
        let Some(range) = self.range else {
            self.inner.observe(&StepView {
                step,
                positions,
                link: None,
            });
            return;
        };
        match self.state.as_mut() {
            None => {
                let dg = DynamicGraph::new(positions, self.side, range)
                    .with_displacement_bound(self.displacement_bound)
                    .with_step_threads(self.step_threads)
                    .with_skin(self.skin);
                self.state = Some((dg, DynamicComponents::new(positions.len())));
            }
            Some((dg, _)) => dg.step(positions),
        }
        let (dg, dc) = self.state.as_mut().expect("state initialized above"); // lint:allow(R3): state initialized earlier in this call
        dc.apply(dg.last_diff(), dg.graph());
        // End-to-end oracle check: the incrementally-maintained
        // components must match a from-scratch labeling of the
        // snapshot at every step (the module-level determinism
        // contract), not just stay self-consistent.
        #[cfg(feature = "strict-invariants")]
        {
            let oracle = manet_graph::ComponentSummary::of(dg.graph());
            debug_assert_eq!(
                dc.count(),
                oracle.count(),
                "strict-invariants: incremental component count diverged from the oracle"
            );
            debug_assert_eq!(
                dc.largest_size(),
                oracle.largest_size(),
                "strict-invariants: incremental largest component diverged from the oracle"
            );
        }
        self.inner.observe(&StepView {
            step,
            positions,
            link: Some(LinkView {
                range,
                graph: dg.graph(),
                components: dc,
                diff: dg.last_diff(),
                kernel: KernelMetrics {
                    grid: dg.grid_metrics().copied().unwrap_or_default(),
                    step: *dg.metrics(),
                    components: *dc.metrics(),
                },
            }),
        });
    }

    fn finish(self) -> O::Output {
        self.inner.finish()
    }
}

/// Runs a campaign through the connectivity spine: every iteration's
/// steps flow `DynamicGraph::advance → DynamicComponents::apply →
/// observer`, in parallel over iterations with the engine's
/// deterministic seeding.
///
/// `range = Some(r)` maintains the graph/components at transmitting
/// range `r` for the observers; `None` skips graph maintenance for
/// positions-only pipelines (critical range, merge profiles,
/// displacement statistics).
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] when `range` is `Some` but not
/// positive and finite, and propagates engine errors.
pub fn run_connectivity_stream<const D: usize, M, O, F>(
    config: &SimConfig<D>,
    model: &M,
    range: Option<f64>,
    make_observer: F,
) -> Result<Vec<O::Output>, SimError>
where
    M: Mobility<D> + Clone + Send + Sync,
    O: ConnectivityObserver<D>,
    F: Fn(usize) -> O + Send + Sync,
{
    if let Some(r) = range {
        if !(r.is_finite() && r > 0.0) {
            return Err(SimError::InvalidConfig {
                reason: format!("transmitting range must be positive and finite, got {r}"),
            });
        }
    }
    let side = config.side();
    // The model's declared per-step displacement bound arms the step
    // kernel's contract check in every iteration's stream.
    let bound = model.max_step_displacement();
    let step_threads = config.step_threads().unwrap_or(1);
    let skin = config.skin();
    run_simulation(config, model, move |iteration| {
        ConnectivityStream::with_displacement_bound(side, range, bound, make_observer(iteration))
            .with_step_threads(step_threads)
            .with_skin(skin)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_graph::ComponentSummary;
    use manet_mobility::{RandomWaypoint, StationaryModel};

    fn config(iterations: usize, steps: usize, threads: Option<usize>) -> SimConfig<2> {
        let mut b = SimConfig::<2>::builder();
        b.nodes(10)
            .side(120.0)
            .iterations(iterations)
            .steps(steps)
            .seed(808);
        if let Some(t) = threads {
            b.threads(t);
        }
        b.build().unwrap()
    }

    /// Observer asserting the stream's incremental state matches the
    /// from-scratch oracle at every step.
    struct OracleObserver {
        steps_seen: usize,
        expect_link: bool,
    }

    impl<const D: usize> ConnectivityObserver<D> for OracleObserver {
        type Output = usize;

        fn observe(&mut self, view: &StepView<'_, D>) {
            assert_eq!(view.step(), self.steps_seen);
            assert_eq!(view.link().is_some(), self.expect_link);
            if let Some(link) = view.link() {
                let oracle = ComponentSummary::of(link.graph());
                assert_eq!(link.components().count(), oracle.count());
                assert_eq!(link.components().largest_size(), oracle.largest_size());
                let mut sizes = oracle.sizes().to_vec();
                sizes.sort_unstable();
                assert_eq!(link.components().sizes_sorted(), sizes);
                // The diff stream balances against the snapshot.
                assert_eq!(link.graph().len(), view.positions().len());
            }
            self.steps_seen += 1;
        }

        fn finish(self) -> usize {
            self.steps_seen
        }
    }

    #[test]
    fn linked_stream_matches_oracle_every_step() {
        let model = RandomWaypoint::new(1.0, 8.0, 0, 0.0).unwrap();
        let outs = run_connectivity_stream(&config(3, 40, None), &model, Some(40.0), |_| {
            OracleObserver {
                steps_seen: 0,
                expect_link: true,
            }
        })
        .unwrap();
        assert_eq!(outs, vec![40, 40, 40]);
    }

    #[test]
    fn positions_only_stream_has_no_link_state() {
        let outs =
            run_connectivity_stream(&config(2, 10, None), &StationaryModel::new(), None, |_| {
                OracleObserver {
                    steps_seen: 0,
                    expect_link: false,
                }
            })
            .unwrap();
        assert_eq!(outs, vec![10, 10]);
    }

    #[test]
    fn range_is_validated_centrally() {
        let m = StationaryModel::new();
        for bad in [0.0, -2.0, f64::NAN, f64::INFINITY] {
            let err =
                run_connectivity_stream(&config(1, 1, None), &m, Some(bad), |_| OracleObserver {
                    steps_seen: 0,
                    expect_link: true,
                });
            assert!(matches!(err, Err(SimError::InvalidConfig { .. })), "{bad}");
        }
    }

    #[test]
    fn outputs_identical_across_thread_counts() {
        /// Records (count, largest) per step — a full connectivity fingerprint.
        struct Fingerprint(Vec<(usize, usize)>);
        impl<const D: usize> ConnectivityObserver<D> for Fingerprint {
            type Output = Vec<(usize, usize)>;
            fn observe(&mut self, view: &StepView<'_, D>) {
                let c = view.components();
                self.0.push((c.count(), c.largest_size()));
            }
            fn finish(self) -> Self::Output {
                self.0
            }
        }
        let model = RandomWaypoint::new(0.5, 5.0, 1, 0.25).unwrap();
        let single = run_connectivity_stream(&config(6, 30, Some(1)), &model, Some(35.0), |_| {
            Fingerprint(Vec::new())
        })
        .unwrap();
        let multi = run_connectivity_stream(&config(6, 30, Some(4)), &model, Some(35.0), |_| {
            Fingerprint(Vec::new())
        })
        .unwrap();
        assert_eq!(single, multi);
    }

    /// The intra-step knob must be as invisible as the iteration-level
    /// one: identical connectivity fingerprints at any `step_threads`.
    #[test]
    fn outputs_identical_across_step_thread_counts() {
        struct Fingerprint(Vec<(usize, usize, usize)>);
        impl<const D: usize> ConnectivityObserver<D> for Fingerprint {
            type Output = Vec<(usize, usize, usize)>;
            fn observe(&mut self, view: &StepView<'_, D>) {
                let c = view.components();
                let churn = view.diff().churn();
                self.0.push((c.count(), c.largest_size(), churn));
            }
            fn finish(self) -> Self::Output {
                self.0
            }
        }
        let model = RandomWaypoint::new(0.5, 5.0, 1, 0.25).unwrap();
        let run = |step_threads: Option<usize>| {
            let mut b = SimConfig::<2>::builder();
            b.nodes(24).side(120.0).iterations(3).steps(25).seed(808);
            if let Some(t) = step_threads {
                b.step_threads(t);
            }
            let cfg = b.build().unwrap();
            run_connectivity_stream(&cfg, &model, Some(35.0), |_| Fingerprint(Vec::new())).unwrap()
        };
        let serial = run(None);
        for t in [2usize, 4, 7] {
            assert_eq!(run(Some(t)), serial, "step_threads={t} changed the stream");
        }
    }

    /// The Verlet skin is a throughput knob, not a semantic one: the
    /// per-step connectivity fingerprint (components, largest, churn)
    /// is identical whether the candidate cache is off, auto-armed, or
    /// oversized.
    #[test]
    fn outputs_identical_across_skin_settings() {
        use manet_graph::Skin;
        struct Fingerprint(Vec<(usize, usize, usize)>);
        impl<const D: usize> ConnectivityObserver<D> for Fingerprint {
            type Output = Vec<(usize, usize, usize)>;
            fn observe(&mut self, view: &StepView<'_, D>) {
                let c = view.components();
                let churn = view.diff().churn();
                self.0.push((c.count(), c.largest_size(), churn));
            }
            fn finish(self) -> Self::Output {
                self.0
            }
        }
        // Zero pause: all-moving, the regime where the cache arms.
        let model = RandomWaypoint::new(0.8, 6.0, 0, 0.0).unwrap();
        let run = |skin: Skin| {
            let mut b = SimConfig::<2>::builder();
            b.nodes(24).side(120.0).iterations(3).steps(25).seed(808);
            b.skin(skin);
            let cfg = b.build().unwrap();
            run_connectivity_stream(&cfg, &model, Some(35.0), |_| Fingerprint(Vec::new())).unwrap()
        };
        let off = run(Skin::Off);
        assert_eq!(run(Skin::Auto), off, "auto skin changed the stream");
        assert_eq!(
            run(Skin::Fixed(20.0)),
            off,
            "oversized fixed skin changed the stream"
        );
    }

    #[test]
    #[should_panic(expected = "transmitting range")]
    fn graph_accessor_panics_without_range() {
        struct Touch;
        impl<const D: usize> ConnectivityObserver<D> for Touch {
            type Output = ();
            fn observe(&mut self, view: &StepView<'_, D>) {
                let _ = view.graph();
            }
            fn finish(self) {}
        }
        let mut stream = ConnectivityStream::new(10.0, None, Touch);
        StepObserver::<2>::observe(&mut stream, 0, &[]);
    }
}
