//! Stationary-case analysis: the distribution of the critical
//! transmitting range over random placements, and `r_stationary`.
//!
//! The paper's mobile results are all reported as ratios to
//! `r_stationary`, "the value of the transmitting range ensuring
//! connected graphs in the stationary case" (quoted there from the
//! companion simulations of [1, 11], which were never released). The
//! reproduction recomputes it: draw many placements, compute each
//! placement's critical range, and report a high quantile of that
//! distribution (default 0.99 — the range connecting 99% of random
//! placements). See DESIGN.md "Substitutions".

use crate::{config::SimConfig, critical::simulate_critical_ranges, SimError};
use manet_mobility::StationaryModel;
use manet_stats::FrozenSeries;

/// Distribution of the stationary critical transmitting range.
#[derive(Debug, Clone)]
pub struct StationaryAnalysis {
    ctr: FrozenSeries,
    nodes: usize,
    side: f64,
}

impl StationaryAnalysis {
    /// Samples `placements` stationary deployments of `nodes` nodes in
    /// `[0, side]^D` and records each critical range.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from configuration validation and the
    /// engine.
    pub fn run<const D: usize>(
        nodes: usize,
        side: f64,
        placements: usize,
        seed: u64,
    ) -> Result<Self, SimError> {
        let mut builder = SimConfig::<D>::builder();
        builder
            .nodes(nodes)
            .side(side)
            .iterations(placements)
            .steps(1)
            .seed(seed);
        let config = builder.build()?;
        let results = simulate_critical_ranges(&config, &StationaryModel::new())?;
        let mut all = Vec::with_capacity(placements);
        for s in results.per_iteration() {
            debug_assert_eq!(s.len(), 1);
            all.push(s.min());
        }
        Ok(StationaryAnalysis {
            ctr: FrozenSeries::new(all)?,
            nodes,
            side,
        })
    }

    /// The sampled critical-range distribution.
    pub fn ctr_distribution(&self) -> &FrozenSeries {
        &self.ctr
    }

    /// Number of nodes per placement.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Region side `l`.
    pub fn side(&self) -> f64 {
        self.side
    }

    /// `r_stationary` at connection probability `quantile` — the
    /// smallest sampled range connecting at least that fraction of
    /// placements. The reproduction's headline value uses `0.99`.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::Stats`] for `quantile` outside `[0, 1]`.
    pub fn r_stationary(&self, quantile: f64) -> Result<f64, SimError> {
        Ok(self.ctr.smallest_covering(quantile)?)
    }

    /// Estimated probability that a fresh random placement is connected
    /// at range `r` (the empirical CDF of the CTR distribution).
    pub fn connectivity_probability(&self, r: f64) -> f64 {
        self.ctr.fraction_at_most(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_has_requested_placements() {
        let a = StationaryAnalysis::run::<2>(10, 100.0, 50, 7).unwrap();
        assert_eq!(a.ctr_distribution().len(), 50);
        assert_eq!(a.nodes(), 10);
        assert_eq!(a.side(), 100.0);
    }

    #[test]
    fn r_stationary_monotone_in_quantile() {
        let a = StationaryAnalysis::run::<2>(12, 150.0, 80, 3).unwrap();
        let r50 = a.r_stationary(0.5).unwrap();
        let r90 = a.r_stationary(0.9).unwrap();
        let r99 = a.r_stationary(0.99).unwrap();
        assert!(r50 <= r90);
        assert!(r90 <= r99);
        assert!(a.r_stationary(1.5).is_err());
    }

    #[test]
    fn connectivity_probability_is_cdf() {
        let a = StationaryAnalysis::run::<2>(10, 100.0, 60, 11).unwrap();
        let r = a.r_stationary(0.9).unwrap();
        assert!(a.connectivity_probability(r) >= 0.9);
        assert!(a.connectivity_probability(0.0) == 0.0);
        assert!(a.connectivity_probability(1e9) == 1.0);
    }

    #[test]
    fn more_nodes_reduce_ctr_at_fixed_side() {
        // Denser networks connect at shorter ranges (law of large
        // numbers over 60 placements keeps this stable).
        let sparse = StationaryAnalysis::run::<2>(8, 200.0, 60, 5).unwrap();
        let dense = StationaryAnalysis::run::<2>(64, 200.0, 60, 5).unwrap();
        assert!(
            dense.r_stationary(0.9).unwrap() < sparse.r_stationary(0.9).unwrap(),
            "denser placements should connect at smaller ranges"
        );
    }

    #[test]
    fn one_dimensional_ctr_is_max_gap() {
        // In 1-D the CTR of a placement equals its largest inter-node
        // gap, which is at most l.
        let a = StationaryAnalysis::run::<1>(5, 100.0, 40, 9).unwrap();
        assert!(a.ctr_distribution().max() <= 100.0);
        assert!(a.ctr_distribution().min() > 0.0);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = StationaryAnalysis::run::<2>(10, 100.0, 30, 21).unwrap();
        let b = StationaryAnalysis::run::<2>(10, 100.0, 30, 21).unwrap();
        assert_eq!(
            a.ctr_distribution().as_sorted(),
            b.ctr_distribution().as_sorted()
        );
    }
}
