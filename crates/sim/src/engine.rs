//! The parallel trajectory runner.
//!
//! [`run_simulation`] drives `iterations` independent trajectories of
//! `steps` mobility steps each, feeding every step's node positions to
//! a per-iteration [`StepObserver`]. Iterations are distributed over
//! worker threads; each iteration's RNG seed is derived from the master
//! seed and the iteration index, so results are **bit-identical across
//! thread counts**.

use crate::{config::SimConfig, SimError};
use manet_geom::Point;
use manet_mobility::Mobility;
use manet_stats::SeedSequence;
use rand::SeedableRng;

/// Consumes the node positions of each step of one trajectory and
/// produces a per-iteration output.
///
/// Observers are created per iteration by the factory passed to
/// [`run_simulation`], observe steps `0..steps` in order (step 0 is the
/// initial placement), and are folded into their output at the end.
pub trait StepObserver<const D: usize> {
    /// The per-iteration result this observer produces.
    type Output: Send;

    /// Called once per step with the current positions.
    fn observe(&mut self, step: usize, positions: &[Point<D>]);

    /// Consumes the observer, yielding the iteration's result.
    fn finish(self) -> Self::Output;
}

/// Runs the configured number of iterations in parallel and returns
/// the per-iteration observer outputs **ordered by iteration index**.
///
/// `make_observer(iteration)` must be cheap and thread-safe; the model
/// is cloned per iteration and re-initialized on the fresh placement.
///
/// # Errors
///
/// Propagates [`SimError::Geometry`] if the region cannot be built
/// (cannot happen for a validated [`SimConfig`], but kept for
/// defense in depth).
///
/// # Determinism
///
/// Iteration `i` draws all randomness from
/// `StdRng::seed_from_u64(SeedSequence::new(config.seed()).seed_for(i))`,
/// independent of which worker thread executes it.
#[allow(clippy::disallowed_methods)] // thread::scope/spawn: the sanctioned iteration fan-out site (see clippy.toml)
pub fn run_simulation<const D: usize, M, O, F>(
    config: &SimConfig<D>,
    model: &M,
    make_observer: F,
) -> Result<Vec<O::Output>, SimError>
where
    M: Mobility<D> + Clone + Send + Sync,
    O: StepObserver<D>,
    F: Fn(usize) -> O + Send + Sync,
{
    let region = config.region();
    let seq = SeedSequence::new(config.seed());
    let iterations = config.iterations();
    let threads = config
        .threads()
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .min(iterations)
        .max(1);

    let run_iteration = |iteration: usize| -> O::Output {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seq.seed_for(iteration as u64));
        let mut positions = region.place_uniform(config.nodes(), &mut rng);
        let mut model = model.clone();
        model.init(&positions, &region, &mut rng);
        let mut observer = make_observer(iteration);
        observer.observe(0, &positions);
        for step in 1..config.steps() {
            model.step(&mut positions, &region, &mut rng);
            observer.observe(step, &positions);
        }
        observer.finish()
    };

    if threads == 1 {
        return Ok((0..iterations).map(run_iteration).collect());
    }

    let mut slots: Vec<Option<O::Output>> = Vec::with_capacity(iterations);
    slots.resize_with(iterations, || None);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let run_iteration = &run_iteration;
            handles.push(scope.spawn(move || {
                let mut outs = Vec::new();
                let mut i = t;
                while i < iterations {
                    outs.push((i, run_iteration(i)));
                    i += threads;
                }
                outs
            }));
        }
        for handle in handles {
            let outs = handle.join().expect("simulation worker panicked"); // lint:allow(R3): a worker panic must propagate, not be swallowed
            for (i, out) in outs {
                slots[i] = Some(out);
            }
        }
    });
    Ok(slots
        .into_iter()
        .map(|s| s.expect("every iteration produced an output")) // lint:allow(R3): the dispatch loop above fills every iteration slot
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_mobility::{RandomWaypoint, StationaryModel};

    /// Observer recording the first node's trajectory.
    struct TraceObserver {
        trace: Vec<Point<2>>,
    }

    impl StepObserver<2> for TraceObserver {
        type Output = Vec<Point<2>>;

        fn observe(&mut self, _step: usize, positions: &[Point<2>]) {
            self.trace.push(positions[0]);
        }

        fn finish(self) -> Vec<Point<2>> {
            self.trace
        }
    }

    fn config(iterations: usize, steps: usize, threads: Option<usize>) -> SimConfig<2> {
        let mut b = SimConfig::<2>::builder();
        b.nodes(8)
            .side(100.0)
            .iterations(iterations)
            .steps(steps)
            .seed(1234);
        if let Some(t) = threads {
            b.threads(t);
        }
        b.build().unwrap()
    }

    #[test]
    fn observer_sees_every_step() {
        let cfg = config(3, 17, Some(1));
        let model = StationaryModel::new();
        let outs = run_simulation(&cfg, &model, |_| TraceObserver { trace: Vec::new() }).unwrap();
        assert_eq!(outs.len(), 3);
        for trace in outs {
            assert_eq!(trace.len(), 17);
        }
    }

    #[test]
    fn stationary_model_yields_constant_trajectories() {
        let cfg = config(2, 10, None);
        let model = StationaryModel::new();
        let outs = run_simulation(&cfg, &model, |_| TraceObserver { trace: Vec::new() }).unwrap();
        for trace in outs {
            assert!(trace.windows(2).all(|w| w[0] == w[1]));
        }
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let model = RandomWaypoint::new(0.5, 3.0, 2, 0.25).unwrap();
        let single = run_simulation(&config(6, 40, Some(1)), &model, |_| TraceObserver {
            trace: Vec::new(),
        })
        .unwrap();
        let multi = run_simulation(&config(6, 40, Some(4)), &model, |_| TraceObserver {
            trace: Vec::new(),
        })
        .unwrap();
        assert_eq!(single, multi);
    }

    #[test]
    fn iterations_have_distinct_placements() {
        let cfg = config(4, 1, None);
        let outs = run_simulation(&cfg, &StationaryModel::new(), |_| TraceObserver {
            trace: Vec::new(),
        })
        .unwrap();
        // First node's position should differ across iterations.
        let firsts: Vec<_> = outs.iter().map(|t| t[0]).collect();
        for i in 0..firsts.len() {
            for j in (i + 1)..firsts.len() {
                assert_ne!(firsts[i], firsts[j]);
            }
        }
    }

    #[test]
    fn different_seeds_differ_same_seed_repeats() {
        let model = StationaryModel::new();
        let a = run_simulation(&config(2, 1, None), &model, |_| TraceObserver {
            trace: Vec::new(),
        })
        .unwrap();
        let b = run_simulation(&config(2, 1, None), &model, |_| TraceObserver {
            trace: Vec::new(),
        })
        .unwrap();
        assert_eq!(a, b);
        let cfg2 = config(2, 1, None).with_seed(777);
        let c = run_simulation(&cfg2, &model, |_| TraceObserver { trace: Vec::new() }).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn observer_factory_receives_iteration_index() {
        struct IndexObserver(usize);
        impl StepObserver<2> for IndexObserver {
            type Output = usize;
            fn observe(&mut self, _: usize, _: &[Point<2>]) {}
            fn finish(self) -> usize {
                self.0
            }
        }
        let cfg = config(5, 1, Some(3));
        let outs = run_simulation(&cfg, &StationaryModel::new(), IndexObserver).unwrap();
        assert_eq!(outs, vec![0, 1, 2, 3, 4]);
    }
}
