//! Up/down run analysis: MTBF, MTTR and outage structure.
//!
//! The paper's introduction frames connectivity as availability: the
//! network is "up" when connected and "down" otherwise. Availability
//! alone hides the *structure* of the downtime — a network that is up
//! 90% of the time in one contiguous block behaves very differently
//! from one that flaps every few steps. This module analyzes the
//! **time-ordered** connectivity sequence (the critical-range series
//! *before* sorting) into up/down runs, yielding the dependability
//! quantities engineers actually provision against: mean time between
//! failures, mean time to repair, and the longest outage.

use crate::{
    config::SimConfig,
    stream::{run_connectivity_stream, ConnectivityObserver, StepView},
    SimError,
};
use manet_graph::critical_range;
use manet_mobility::Mobility;

/// Observer recording the critical range of every step **in time
/// order** (unlike [`crate::simulate_critical_ranges`], which freezes
/// sorted series for quantile queries). Positions-only stream lane.
struct RawSeriesObserver {
    series: Vec<f64>,
}

impl<const D: usize> ConnectivityObserver<D> for RawSeriesObserver {
    type Output = Vec<f64>;

    fn observe(&mut self, view: &StepView<'_, D>) {
        self.series.push(critical_range(view.positions()));
    }

    fn finish(self) -> Vec<f64> {
        self.series
    }
}

/// Runs the campaign and returns each iteration's critical-range
/// series in time order.
///
/// # Errors
///
/// Propagates engine errors.
pub fn simulate_raw_critical_series<const D: usize, M>(
    config: &SimConfig<D>,
    model: &M,
) -> Result<Vec<Vec<f64>>, SimError>
where
    M: Mobility<D> + Clone + Send + Sync,
{
    run_connectivity_stream(config, model, None, |_| RawSeriesObserver {
        series: Vec::with_capacity(config.steps()),
    })
}

/// Up/down run statistics of one iteration at a fixed range.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct UptimeReport {
    /// Steps observed.
    pub steps: usize,
    /// Fraction of steps connected ("up").
    pub availability: f64,
    /// Number of up→down transitions (failures).
    pub failures: usize,
    /// Mean length of up runs, in steps (`None` when never up).
    pub mean_up_run: Option<f64>,
    /// Mean length of down runs, in steps (`None` when never down).
    pub mean_down_run: Option<f64>,
    /// Longest contiguous outage, in steps (0 when never down).
    pub longest_outage: usize,
}

impl UptimeReport {
    /// Analyzes a time-ordered critical-range series at range `r`
    /// (step `t` is up iff `series[t] <= r`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for an empty series or a
    /// non-positive/non-finite range.
    pub fn from_series(series: &[f64], r: f64) -> Result<Self, SimError> {
        if series.is_empty() {
            return Err(SimError::InvalidConfig {
                reason: "uptime analysis requires a non-empty series".into(),
            });
        }
        if !(r.is_finite() && r > 0.0) {
            return Err(SimError::InvalidConfig {
                reason: format!("range must be positive and finite, got {r}"),
            });
        }
        let mut up_runs: Vec<usize> = Vec::new();
        let mut down_runs: Vec<usize> = Vec::new();
        let mut current_up = series[0] <= r;
        let mut run_len = 0usize;
        let mut up_steps = 0usize;
        let mut failures = 0usize;
        for &c in series {
            let up = c <= r;
            if up {
                up_steps += 1;
            }
            if up == current_up {
                run_len += 1;
            } else {
                if current_up {
                    up_runs.push(run_len);
                    failures += 1;
                } else {
                    down_runs.push(run_len);
                }
                current_up = up;
                run_len = 1;
            }
        }
        if current_up {
            up_runs.push(run_len);
        } else {
            down_runs.push(run_len);
        }
        let mean = |runs: &[usize]| {
            if runs.is_empty() {
                None
            } else {
                Some(runs.iter().sum::<usize>() as f64 / runs.len() as f64)
            }
        };
        Ok(UptimeReport {
            steps: series.len(),
            availability: up_steps as f64 / series.len() as f64,
            failures,
            mean_up_run: mean(&up_runs),
            mean_down_run: mean(&down_runs),
            longest_outage: down_runs.iter().copied().max().unwrap_or(0),
        })
    }
}

/// Campaign-level aggregation of [`UptimeReport`]s.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct UptimeSummary {
    /// Mean availability across iterations.
    pub availability: f64,
    /// Mean up-run length (MTBF proxy, steps) over iterations that had
    /// any uptime.
    pub mtbf_steps: Option<f64>,
    /// Mean down-run length (MTTR proxy, steps) over iterations that
    /// had any downtime.
    pub mttr_steps: Option<f64>,
    /// Worst outage across all iterations, in steps.
    pub longest_outage: usize,
    /// Mean number of failures per iteration.
    pub failures_per_iteration: f64,
}

/// Runs the campaign and summarizes up/down structure at range `r`.
///
/// # Errors
///
/// Propagates engine and validation errors.
pub fn simulate_uptime<const D: usize, M>(
    config: &SimConfig<D>,
    model: &M,
    r: f64,
) -> Result<UptimeSummary, SimError>
where
    M: Mobility<D> + Clone + Send + Sync,
{
    let series = simulate_raw_critical_series(config, model)?;
    let reports = series
        .iter()
        .map(|s| UptimeReport::from_series(s, r))
        .collect::<Result<Vec<_>, _>>()?;
    let n = reports.len() as f64;
    let availability = reports.iter().map(|x| x.availability).sum::<f64>() / n;
    let mean_over = |get: fn(&UptimeReport) -> Option<f64>| {
        let vals: Vec<f64> = reports.iter().filter_map(get).collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    };
    Ok(UptimeSummary {
        availability,
        mtbf_steps: mean_over(|x| x.mean_up_run),
        mttr_steps: mean_over(|x| x.mean_down_run),
        longest_outage: reports.iter().map(|x| x.longest_outage).max().unwrap_or(0),
        failures_per_iteration: reports.iter().map(|x| x.failures).sum::<usize>() as f64 / n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_mobility::{RandomWaypoint, StationaryModel};

    #[test]
    fn from_series_validates() {
        assert!(UptimeReport::from_series(&[], 1.0).is_err());
        assert!(UptimeReport::from_series(&[1.0], 0.0).is_err());
        assert!(UptimeReport::from_series(&[1.0], f64::NAN).is_err());
    }

    #[test]
    fn always_up_series() {
        let r = UptimeReport::from_series(&[1.0, 2.0, 1.5], 5.0).unwrap();
        assert_eq!(r.availability, 1.0);
        assert_eq!(r.failures, 0);
        assert_eq!(r.mean_up_run, Some(3.0));
        assert_eq!(r.mean_down_run, None);
        assert_eq!(r.longest_outage, 0);
    }

    #[test]
    fn always_down_series() {
        let r = UptimeReport::from_series(&[10.0, 20.0], 5.0).unwrap();
        assert_eq!(r.availability, 0.0);
        assert_eq!(r.failures, 0);
        assert_eq!(r.mean_up_run, None);
        assert_eq!(r.mean_down_run, Some(2.0));
        assert_eq!(r.longest_outage, 2);
    }

    #[test]
    fn alternating_series_counts_runs() {
        // up, down, down, up, up, down at r = 5.
        let series = [1.0, 9.0, 9.0, 1.0, 1.0, 9.0];
        let r = UptimeReport::from_series(&series, 5.0).unwrap();
        assert!((r.availability - 0.5).abs() < 1e-12);
        assert_eq!(r.failures, 2); // up->down at t=1 and t=5
        assert_eq!(r.mean_up_run, Some(1.5)); // runs of 1 and 2
        assert_eq!(r.mean_down_run, Some(1.5)); // runs of 2 and 1
        assert_eq!(r.longest_outage, 2);
    }

    #[test]
    fn boundary_inclusive() {
        // Exactly at the threshold counts as up (connected iff c <= r).
        let r = UptimeReport::from_series(&[5.0], 5.0).unwrap();
        assert_eq!(r.availability, 1.0);
    }

    fn config() -> SimConfig<2> {
        let mut b = SimConfig::<2>::builder();
        b.nodes(10).side(150.0).iterations(4).steps(60).seed(33);
        b.build().unwrap()
    }

    #[test]
    fn stationary_model_never_transitions() {
        let summary = simulate_uptime(&config(), &StationaryModel::new(), 60.0).unwrap();
        assert_eq!(summary.failures_per_iteration, 0.0);
        // Each iteration is entirely up or entirely down.
        assert!(
            summary.availability == 0.0
                || summary.availability == 1.0
                || (summary.availability * 4.0).fract().abs() < 1e-12
        );
    }

    #[test]
    fn availability_matches_quantile_path() {
        let model = RandomWaypoint::new(0.5, 3.0, 2, 0.0).unwrap();
        let cfg = config();
        let r = 55.0;
        let summary = simulate_uptime(&cfg, &model, r).unwrap();
        let crit = crate::critical::simulate_critical_ranges(&cfg, &model).unwrap();
        assert!(
            (summary.availability - crit.connectivity_fraction_at(r)).abs() < 1e-12,
            "uptime {} vs quantile {}",
            summary.availability,
            crit.connectivity_fraction_at(r)
        );
    }

    #[test]
    fn larger_range_fewer_failures() {
        let model = RandomWaypoint::new(0.5, 3.0, 0, 0.0).unwrap();
        let cfg = config();
        let crit = crate::critical::simulate_critical_ranges(&cfg, &model).unwrap();
        let pooled = crit.pooled().unwrap();
        let r_small = pooled.smallest_covering(0.5).unwrap();
        let r_large = pooled.smallest_covering(0.98).unwrap();
        let small = simulate_uptime(&cfg, &model, r_small).unwrap();
        let large = simulate_uptime(&cfg, &model, r_large).unwrap();
        assert!(large.availability > small.availability);
        assert!(large.longest_outage <= small.longest_outage);
    }

    #[test]
    fn raw_series_is_time_ordered_not_sorted() {
        let model = RandomWaypoint::new(0.5, 3.0, 0, 0.0).unwrap();
        let raw = simulate_raw_critical_series(&config(), &model).unwrap();
        assert_eq!(raw.len(), 4);
        // At least one iteration should NOT be sorted (motion makes the
        // series wander); a sorted result would mean we lost time order.
        let any_unsorted = raw.iter().any(|s| s.windows(2).any(|w| w[0] > w[1]));
        assert!(any_unsorted, "raw series suspiciously sorted");
        for s in &raw {
            assert_eq!(s.len(), 60);
        }
    }
}
