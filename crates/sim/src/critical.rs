//! Critical-range time series and the `r100/r90/r10/r0` metrics.
//!
//! The paper defines `r_f` as the minimum transmitting range keeping
//! the network connected during a fraction `f` of the operational time,
//! and `r0` as the largest range that yields *no* connected graphs.
//! With the per-step critical range `c_t` in hand these are order
//! statistics of `{c_t}`:
//!
//! * connected at step `t` and range `r` ⟺ `c_t <= r`;
//! * `r_f` = the `f`-th order statistic ([`manet_stats::FrozenSeries::smallest_covering`]);
//! * `r100 = max_t c_t`, `r0 = min_t c_t` (at any `r < min c_t` no
//!   step is connected, and `min c_t` is the supremum of such ranges).

use crate::{
    config::SimConfig,
    stream::{run_connectivity_stream, ConnectivityObserver, StepView},
    SimError,
};
use manet_graph::critical_range;
use manet_mobility::Mobility;
use manet_stats::{FrozenSeries, RunningMoments};

/// Observer computing the critical transmitting range of every step
/// (positions-only lane of the connectivity stream: the MST bottleneck
/// needs no fixed-range snapshot).
struct CriticalRangeObserver {
    series: Vec<f64>,
}

impl<const D: usize> ConnectivityObserver<D> for CriticalRangeObserver {
    type Output = Vec<f64>;

    fn observe(&mut self, view: &StepView<'_, D>) {
        self.series.push(critical_range(view.positions()));
    }

    fn finish(self) -> Vec<f64> {
        self.series
    }
}

/// Runs the campaign and records the critical range of every step of
/// every iteration.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine and from series
/// construction (a critical range is always finite, so the latter is
/// defensive).
pub fn simulate_critical_ranges<const D: usize, M>(
    config: &SimConfig<D>,
    model: &M,
) -> Result<CriticalRangeResults, SimError>
where
    M: Mobility<D> + Clone + Send + Sync,
{
    let raw = run_connectivity_stream(config, model, None, |_| CriticalRangeObserver {
        series: Vec::with_capacity(config.steps()),
    })?;
    let per_iteration = raw
        .into_iter()
        .map(FrozenSeries::new)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(CriticalRangeResults { per_iteration })
}

/// Critical-range series of a whole campaign, one frozen series per
/// iteration.
#[derive(Debug, Clone)]
pub struct CriticalRangeResults {
    per_iteration: Vec<FrozenSeries>,
}

impl CriticalRangeResults {
    /// Builds results from pre-computed per-iteration series (exposed
    /// for tests and tools; [`simulate_critical_ranges`] is the normal
    /// entry point).
    pub fn from_series(per_iteration: Vec<FrozenSeries>) -> Self {
        CriticalRangeResults { per_iteration }
    }

    /// Per-iteration sorted critical-range series.
    pub fn per_iteration(&self) -> &[FrozenSeries] {
        &self.per_iteration
    }

    /// The paper's range metrics for each iteration.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::Stats`] (defensive; fractions are valid).
    pub fn quantiles_per_iteration(&self) -> Result<Vec<RangeQuantiles>, SimError> {
        self.per_iteration
            .iter()
            .map(RangeQuantiles::from_series)
            .collect()
    }

    /// Mean/spread of each range metric across iterations — the
    /// paper's "averaged over 50 simulations" aggregation.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::Stats`] when there are no iterations.
    pub fn summary(&self) -> Result<MobileRangeSummary, SimError> {
        if self.per_iteration.is_empty() {
            return Err(SimError::Stats(manet_stats::StatsError::EmptySample));
        }
        let mut r100 = RunningMoments::new();
        let mut r90 = RunningMoments::new();
        let mut r10 = RunningMoments::new();
        let mut r0 = RunningMoments::new();
        for q in self.quantiles_per_iteration()? {
            r100.push(q.r100);
            r90.push(q.r90);
            r10.push(q.r10);
            r0.push(q.r0);
        }
        Ok(MobileRangeSummary { r100, r90, r10, r0 })
    }

    /// The smallest range keeping the network connected for at least
    /// `fraction` of the steps, averaged across iterations.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Stats`] for `fraction` outside `[0, 1]` or
    /// an empty campaign.
    pub fn mean_range_for_fraction(&self, fraction: f64) -> Result<f64, SimError> {
        if self.per_iteration.is_empty() {
            return Err(SimError::Stats(manet_stats::StatsError::EmptySample));
        }
        let mut acc = RunningMoments::new();
        for s in &self.per_iteration {
            acc.push(s.smallest_covering(fraction)?);
        }
        Ok(acc.mean())
    }

    /// Fraction of steps connected at range `r`, averaged across
    /// iterations (the availability estimate of the introduction).
    pub fn connectivity_fraction_at(&self, r: f64) -> f64 {
        if self.per_iteration.is_empty() {
            return f64::NAN;
        }
        self.per_iteration
            .iter()
            .map(|s| s.fraction_at_most(r))
            .sum::<f64>()
            / self.per_iteration.len() as f64
    }

    /// All steps of all iterations pooled into one series (the
    /// alternative aggregation ablated in DESIGN.md §6).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Stats`] for an empty campaign.
    pub fn pooled(&self) -> Result<FrozenSeries, SimError> {
        let mut all = Vec::new();
        for s in &self.per_iteration {
            all.extend_from_slice(s.as_sorted());
        }
        Ok(FrozenSeries::new(all)?)
    }
}

/// The paper's four range metrics for one iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RangeQuantiles {
    /// Minimum range connected during 100% of the time (max `c_t`).
    pub r100: f64,
    /// Minimum range connected during 90% of the time.
    pub r90: f64,
    /// Minimum range connected during 10% of the time.
    pub r10: f64,
    /// Largest range with **no** connected step (min `c_t`).
    pub r0: f64,
}

impl RangeQuantiles {
    /// Extracts the metrics from a sorted critical-range series.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::Stats`] (defensive; the fractions used
    /// are valid constants).
    pub fn from_series(series: &FrozenSeries) -> Result<Self, SimError> {
        Ok(RangeQuantiles {
            r100: series.max(),
            r90: series.smallest_covering(0.9)?,
            r10: series.smallest_covering(0.1)?,
            r0: series.min(),
        })
    }
}

/// Across-iteration aggregation of [`RangeQuantiles`].
#[derive(Debug, Clone, Copy)]
pub struct MobileRangeSummary {
    /// Moments of `r100` across iterations.
    pub r100: RunningMoments,
    /// Moments of `r90` across iterations.
    pub r90: RunningMoments,
    /// Moments of `r10` across iterations.
    pub r10: RunningMoments,
    /// Moments of `r0` across iterations.
    pub r0: RunningMoments,
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_mobility::{RandomWaypoint, StationaryModel};

    fn config(nodes: usize, side: f64, iterations: usize, steps: usize) -> SimConfig<2> {
        let mut b = SimConfig::<2>::builder();
        b.nodes(nodes)
            .side(side)
            .iterations(iterations)
            .steps(steps)
            .seed(42);
        b.build().unwrap()
    }

    #[test]
    fn quantiles_are_ordered() {
        let cfg = config(12, 200.0, 5, 60);
        let model = RandomWaypoint::new(0.5, 2.0, 3, 0.0).unwrap();
        let res = simulate_critical_ranges(&cfg, &model).unwrap();
        for q in res.quantiles_per_iteration().unwrap() {
            assert!(q.r100 >= q.r90, "{q:?}");
            assert!(q.r90 >= q.r10, "{q:?}");
            assert!(q.r10 >= q.r0, "{q:?}");
            assert!(q.r0 > 0.0);
        }
    }

    #[test]
    fn stationary_series_is_constant() {
        let cfg = config(10, 100.0, 3, 20);
        let res = simulate_critical_ranges(&cfg, &StationaryModel::new()).unwrap();
        for (i, s) in res.per_iteration().iter().enumerate() {
            assert!(
                (s.max() - s.min()).abs() < 1e-12,
                "iteration {i}: stationary CTR must not vary"
            );
        }
        // And the quantile metrics all coincide.
        for q in res.quantiles_per_iteration().unwrap() {
            assert!((q.r100 - q.r0).abs() < 1e-12);
        }
    }

    #[test]
    fn connectivity_fraction_is_monotone_in_r() {
        let cfg = config(12, 200.0, 4, 50);
        let model = RandomWaypoint::new(0.5, 2.0, 0, 0.0).unwrap();
        let res = simulate_critical_ranges(&cfg, &model).unwrap();
        let q = res.summary().unwrap();
        let probe = [
            q.r0.mean() * 0.5,
            q.r0.mean(),
            q.r10.mean(),
            q.r90.mean(),
            q.r100.mean(),
            q.r100.mean() * 2.0,
        ];
        let mut prev = -1.0;
        for r in probe {
            let f = res.connectivity_fraction_at(r);
            assert!(f >= prev - 1e-12, "fraction dropped at r={r}");
            prev = f;
        }
        assert_eq!(res.connectivity_fraction_at(q.r100.max() * 2.0), 1.0);
        assert_eq!(res.connectivity_fraction_at(0.0), 0.0);
    }

    #[test]
    fn fraction_definition_matches_quantile() {
        let cfg = config(10, 150.0, 3, 40);
        let model = RandomWaypoint::new(0.3, 1.5, 2, 0.0).unwrap();
        let res = simulate_critical_ranges(&cfg, &model).unwrap();
        for s in res.per_iteration() {
            let r90 = s.smallest_covering(0.9).unwrap();
            // At r90, at least 90% of steps are connected...
            assert!(s.fraction_at_most(r90) >= 0.9);
            // ...and this is the smallest such observed range.
            let idx = s.as_sorted().partition_point(|&v| v < r90);
            if idx > 0 {
                let below = s.as_sorted()[idx - 1];
                assert!(s.fraction_at_most(below) < 0.9 || below == r90);
            }
        }
    }

    #[test]
    fn pooled_has_all_observations() {
        let cfg = config(8, 100.0, 4, 25);
        let res = simulate_critical_ranges(&cfg, &StationaryModel::new()).unwrap();
        assert_eq!(res.pooled().unwrap().len(), 4 * 25);
    }

    #[test]
    fn summary_counts_iterations() {
        let cfg = config(8, 100.0, 7, 10);
        let model = RandomWaypoint::new(0.5, 2.0, 0, 0.0).unwrap();
        let res = simulate_critical_ranges(&cfg, &model).unwrap();
        let sum = res.summary().unwrap();
        assert_eq!(sum.r100.count(), 7);
        assert!(sum.r100.mean() >= sum.r90.mean());
        assert!(sum.r90.mean() >= sum.r10.mean());
        assert!(sum.r10.mean() >= sum.r0.mean());
    }

    #[test]
    fn mean_range_for_fraction_interpolates_between_metrics() {
        let cfg = config(10, 150.0, 3, 50);
        let model = RandomWaypoint::new(0.3, 2.0, 0, 0.0).unwrap();
        let res = simulate_critical_ranges(&cfg, &model).unwrap();
        let r50 = res.mean_range_for_fraction(0.5).unwrap();
        let s = res.summary().unwrap();
        assert!(r50 <= s.r90.mean() + 1e-12);
        assert!(r50 >= s.r10.mean() - 1e-12);
        assert!(res.mean_range_for_fraction(1.5).is_err());
    }

    #[test]
    fn empty_results_error() {
        let res = CriticalRangeResults::from_series(vec![]);
        assert!(res.summary().is_err());
        assert!(res.mean_range_for_fraction(0.5).is_err());
        assert!(res.connectivity_fraction_at(1.0).is_nan());
    }
}
