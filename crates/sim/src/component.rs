//! Per-step ranges for **partial** connectivity targets.
//!
//! The paper's introduction frames availability two ways: the fraction
//! of time the whole network is connected, and — "since, in some
//! applications, the network might be functional if at least a given
//! fraction of nodes are connected" — the fraction of time the largest
//! component reaches a target size. The critical-range series answers
//! the first; this module answers the second by recording, per step,
//! the smallest range at which the largest component reaches
//! `ceil(fraction · n)` nodes (an order statistic of the Kruskal merge
//! process, exact, no grid).

use crate::{
    config::SimConfig,
    stream::{run_connectivity_stream, ConnectivityObserver, StepView},
    SimError,
};
use manet_graph::MergeProfile;
use manet_mobility::Mobility;
use manet_stats::FrozenSeries;

/// Observer recording the per-step range needed for a component of
/// `target` nodes (positions-only stream lane: the Kruskal merge
/// process answers for every range at once).
struct ComponentRangeObserver {
    target: usize,
    series: Vec<f64>,
}

impl<const D: usize> ConnectivityObserver<D> for ComponentRangeObserver {
    type Output = Vec<f64>;

    fn observe(&mut self, view: &StepView<'_, D>) {
        let profile = MergeProfile::of(view.positions());
        let r = profile
            .range_for_size(self.target)
            .expect("target validated against n at config time"); // lint:allow(R3): target validated against n at config time
        self.series.push(r);
    }

    fn finish(self) -> Vec<f64> {
        self.series
    }
}

/// Per-iteration series of "range needed for a component of
/// `fraction·n` nodes".
#[derive(Debug, Clone)]
pub struct ComponentRangeResults {
    per_iteration: Vec<FrozenSeries>,
    target: usize,
}

impl ComponentRangeResults {
    /// Per-iteration sorted series.
    pub fn per_iteration(&self) -> &[FrozenSeries] {
        &self.per_iteration
    }

    /// The absolute component-size target `ceil(fraction · n)`.
    pub fn target(&self) -> usize {
        self.target
    }

    /// Fraction of steps (averaged over iterations) in which the
    /// largest component reaches the target at range `r` — the
    /// introduction's partial-connectivity availability estimate.
    pub fn availability_at(&self, r: f64) -> f64 {
        if self.per_iteration.is_empty() {
            return f64::NAN;
        }
        self.per_iteration
            .iter()
            .map(|s| s.fraction_at_most(r))
            .sum::<f64>()
            / self.per_iteration.len() as f64
    }

    /// Mean (across iterations) of the smallest range achieving the
    /// target during at least `time_fraction` of the steps.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::Stats`] for an invalid fraction or an
    /// empty campaign.
    pub fn mean_range_for_time_fraction(&self, time_fraction: f64) -> Result<f64, SimError> {
        if self.per_iteration.is_empty() {
            return Err(SimError::Stats(manet_stats::StatsError::EmptySample));
        }
        let mut sum = 0.0;
        for s in &self.per_iteration {
            sum += s.smallest_covering(time_fraction)?;
        }
        Ok(sum / self.per_iteration.len() as f64)
    }
}

/// Runs the campaign recording, per step, the smallest range at which
/// the largest component reaches `ceil(fraction · n)` nodes.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] when `fraction` is outside
/// `(0, 1]`, and propagates engine errors.
pub fn simulate_component_ranges<const D: usize, M>(
    config: &SimConfig<D>,
    model: &M,
    fraction: f64,
) -> Result<ComponentRangeResults, SimError>
where
    M: Mobility<D> + Clone + Send + Sync,
{
    if !(fraction > 0.0 && fraction <= 1.0) {
        return Err(SimError::InvalidConfig {
            reason: format!("component fraction must be in (0, 1], got {fraction}"),
        });
    }
    let target = ((fraction * config.nodes() as f64).ceil() as usize).clamp(1, config.nodes());
    let raw = run_connectivity_stream(config, model, None, |_| ComponentRangeObserver {
        target,
        series: Vec::with_capacity(config.steps()),
    })?;
    let per_iteration = raw
        .into_iter()
        .map(FrozenSeries::new)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ComponentRangeResults {
        per_iteration,
        target,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_mobility::{RandomWaypoint, StationaryModel};

    fn config(nodes: usize, side: f64, iterations: usize, steps: usize) -> SimConfig<2> {
        let mut b = SimConfig::<2>::builder();
        b.nodes(nodes)
            .side(side)
            .iterations(iterations)
            .steps(steps)
            .seed(1001);
        b.build().unwrap()
    }

    #[test]
    fn fraction_validation() {
        let cfg = config(10, 100.0, 1, 1);
        let m = StationaryModel::new();
        assert!(simulate_component_ranges(&cfg, &m, 0.0).is_err());
        assert!(simulate_component_ranges(&cfg, &m, 1.1).is_err());
        assert!(simulate_component_ranges(&cfg, &m, 0.5).is_ok());
    }

    #[test]
    fn full_fraction_equals_critical_range() {
        let cfg = config(10, 100.0, 3, 10);
        let model = RandomWaypoint::new(0.5, 2.0, 0, 0.0).unwrap();
        let comp = simulate_component_ranges(&cfg, &model, 1.0).unwrap();
        let crit = crate::critical::simulate_critical_ranges(&cfg, &model).unwrap();
        for (a, b) in comp.per_iteration().iter().zip(crit.per_iteration()) {
            for (x, y) in a.as_sorted().iter().zip(b.as_sorted()) {
                assert!((x - y).abs() < 1e-9, "target n must equal the CTR");
            }
        }
    }

    #[test]
    fn partial_targets_need_smaller_ranges() {
        let cfg = config(16, 200.0, 3, 15);
        let model = RandomWaypoint::new(0.5, 2.0, 0, 0.0).unwrap();
        let half = simulate_component_ranges(&cfg, &model, 0.5).unwrap();
        let full = simulate_component_ranges(&cfg, &model, 1.0).unwrap();
        let r_half = half.mean_range_for_time_fraction(0.9).unwrap();
        let r_full = full.mean_range_for_time_fraction(0.9).unwrap();
        assert!(
            r_half < r_full,
            "half-network target should need less range: {r_half} vs {r_full}"
        );
        assert_eq!(half.target(), 8);
        assert_eq!(full.target(), 16);
    }

    #[test]
    fn availability_monotone_in_range() {
        let cfg = config(12, 150.0, 3, 20);
        let model = RandomWaypoint::new(0.5, 2.0, 0, 0.0).unwrap();
        let res = simulate_component_ranges(&cfg, &model, 0.75).unwrap();
        let mut prev = -1.0;
        for r in [5.0, 20.0, 40.0, 80.0, 160.0] {
            let a = res.availability_at(r);
            assert!(a >= prev);
            prev = a;
        }
        assert_eq!(res.availability_at(1000.0), 1.0);
    }

    #[test]
    fn singleton_target_is_free() {
        let cfg = config(10, 100.0, 2, 5);
        // fraction small enough that target = 1 node.
        let res = simulate_component_ranges(&cfg, &StationaryModel::new(), 0.05).unwrap();
        assert_eq!(res.target(), 1);
        for s in res.per_iteration() {
            assert!(s.max() <= 0.0 + 1e-12, "a single node needs no range");
        }
    }
}
