//! Simulation configuration.

use crate::SimError;
use manet_geom::Region;
use manet_graph::Skin;

/// Parameters of one simulation campaign, mirroring the inputs of the
/// paper's simulator (`r` is *not* part of the config: the fixed-range
/// path takes it as an argument, and the critical-range path does not
/// need one).
///
/// Construct with [`SimConfig::builder`].
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimConfig<const D: usize> {
    nodes: usize,
    side: f64,
    iterations: usize,
    steps: usize,
    seed: u64,
    threads: Option<usize>,
    /// Intra-step worker threads for the sharded step kernel
    /// (`None` = serial).
    step_threads: Option<usize>,
    profile_stride: usize,
    profile_bins: usize,
    profile_max_range: Option<f64>,
    /// Verlet skin policy for the step kernel's candidate cache
    /// (default [`Skin::Auto`]; a performance knob only — every
    /// artifact is byte-identical across settings).
    skin: Skin,
}

impl<const D: usize> SimConfig<D> {
    /// Starts building a configuration. Defaults: 1 iteration, 1 step
    /// (the stationary case), seed 0, automatic thread count, profile
    /// stride 1, 1024 profile bins, profile grid up to `side / 2`.
    pub fn builder() -> SimConfigBuilder<D> {
        SimConfigBuilder::default()
    }

    /// Number of nodes `n`.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Region side `l`.
    pub fn side(&self) -> f64 {
        self.side
    }

    /// The deployment region `[0, l]^D`.
    pub fn region(&self) -> Region<D> {
        Region::new(self.side).expect("side validated at build time") // lint:allow(R3): side validated at build time
    }

    /// Number of independent iterations (fresh placements).
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Mobility steps per iteration (1 = stationary).
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Master RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Worker thread count (`None` = use available parallelism).
    pub fn threads(&self) -> Option<usize> {
        self.threads
    }

    /// Intra-step worker threads for the step kernel's sharded bulk
    /// rescan (`None` = serial). A performance knob only: every
    /// artifact is byte-identical across values.
    pub fn step_threads(&self) -> Option<usize> {
        self.step_threads
    }

    /// Merge profiles are collected every `profile_stride`-th step.
    pub fn profile_stride(&self) -> usize {
        self.profile_stride
    }

    /// Resolution of the range grid used by component profiles.
    pub fn profile_bins(&self) -> usize {
        self.profile_bins
    }

    /// Upper end of the profile range grid (defaults to `side / 2`).
    pub fn profile_max_range(&self) -> f64 {
        self.profile_max_range.unwrap_or(self.side / 2.0)
    }

    /// The step kernel's Verlet skin policy (see
    /// [`DynamicGraph::with_skin`](manet_graph::DynamicGraph::with_skin)).
    /// A performance knob only: every artifact is byte-identical
    /// across settings.
    pub fn skin(&self) -> Skin {
        self.skin
    }

    /// A copy of this config with a different seed — convenient for
    /// sensitivity checks across seeds.
    pub fn with_seed(&self, seed: u64) -> Self {
        let mut c = self.clone();
        c.seed = seed;
        c
    }
}

/// Builder for [`SimConfig`] (non-consuming, per C-BUILDER).
#[derive(Debug, Clone)]
pub struct SimConfigBuilder<const D: usize> {
    nodes: usize,
    side: f64,
    iterations: usize,
    steps: usize,
    seed: u64,
    threads: Option<usize>,
    step_threads: Option<usize>,
    profile_stride: usize,
    profile_bins: usize,
    profile_max_range: Option<f64>,
    skin: Skin,
}

impl<const D: usize> Default for SimConfigBuilder<D> {
    fn default() -> Self {
        SimConfigBuilder {
            nodes: 0,
            side: 0.0,
            iterations: 1,
            steps: 1,
            seed: 0,
            threads: None,
            step_threads: None,
            profile_stride: 1,
            profile_bins: 1024,
            profile_max_range: None,
            skin: Skin::Auto,
        }
    }
}

impl<const D: usize> SimConfigBuilder<D> {
    /// Sets the number of nodes `n` (required, `>= 1`).
    pub fn nodes(&mut self, n: usize) -> &mut Self {
        self.nodes = n;
        self
    }

    /// Sets the region side `l` (required, positive and finite).
    pub fn side(&mut self, l: f64) -> &mut Self {
        self.side = l;
        self
    }

    /// Sets the iteration count (default 1).
    pub fn iterations(&mut self, it: usize) -> &mut Self {
        self.iterations = it;
        self
    }

    /// Sets the mobility steps per iteration (default 1 = stationary).
    pub fn steps(&mut self, steps: usize) -> &mut Self {
        self.steps = steps;
        self
    }

    /// Sets the master seed (default 0).
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Pins the worker thread count (default: available parallelism).
    pub fn threads(&mut self, threads: usize) -> &mut Self {
        self.threads = Some(threads);
        self
    }

    /// Pins the intra-step worker-thread count of the step kernel's
    /// sharded bulk rescan (default: serial).
    pub fn step_threads(&mut self, threads: usize) -> &mut Self {
        self.step_threads = Some(threads);
        self
    }

    /// Collect merge profiles every `stride` steps (default 1).
    pub fn profile_stride(&mut self, stride: usize) -> &mut Self {
        self.profile_stride = stride;
        self
    }

    /// Range-grid resolution for component profiles (default 1024).
    pub fn profile_bins(&mut self, bins: usize) -> &mut Self {
        self.profile_bins = bins;
        self
    }

    /// Upper end of the profile range grid (default `side / 2`).
    pub fn profile_max_range(&mut self, hi: f64) -> &mut Self {
        self.profile_max_range = Some(hi);
        self
    }

    /// Sets the step kernel's Verlet skin policy (default
    /// [`Skin::Auto`]).
    pub fn skin(&mut self, skin: Skin) -> &mut Self {
        self.skin = skin;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when any parameter fails
    /// validation (zero nodes/iterations/steps, non-positive side,
    /// degenerate profile grid, zero thread count or stride).
    pub fn build(&self) -> Result<SimConfig<D>, SimError> {
        if D == 0 {
            return Err(SimError::InvalidConfig {
                reason: "dimension must be at least 1".into(),
            });
        }
        if self.nodes == 0 {
            return Err(SimError::InvalidConfig {
                reason: "nodes must be at least 1".into(),
            });
        }
        if !(self.side.is_finite() && self.side > 0.0) {
            return Err(SimError::InvalidConfig {
                reason: format!("side must be positive and finite, got {}", self.side),
            });
        }
        if self.iterations == 0 {
            return Err(SimError::InvalidConfig {
                reason: "iterations must be at least 1".into(),
            });
        }
        if self.steps == 0 {
            return Err(SimError::InvalidConfig {
                reason: "steps must be at least 1".into(),
            });
        }
        if self.threads == Some(0) {
            return Err(SimError::InvalidConfig {
                reason: "threads must be at least 1 when set".into(),
            });
        }
        if self.step_threads == Some(0) {
            return Err(SimError::InvalidConfig {
                reason: "step_threads must be at least 1 when set".into(),
            });
        }
        if self.profile_stride == 0 {
            return Err(SimError::InvalidConfig {
                reason: "profile_stride must be at least 1".into(),
            });
        }
        if self.profile_bins < 2 {
            return Err(SimError::InvalidConfig {
                reason: "profile_bins must be at least 2".into(),
            });
        }
        if let Some(hi) = self.profile_max_range {
            if !(hi.is_finite() && hi > 0.0) {
                return Err(SimError::InvalidConfig {
                    reason: format!("profile_max_range must be positive, got {hi}"),
                });
            }
        }
        if let Skin::Fixed(s) = self.skin {
            if !(s.is_finite() && s > 0.0) {
                return Err(SimError::InvalidConfig {
                    reason: format!("fixed skin must be positive and finite, got {s}"),
                });
            }
        }
        Ok(SimConfig {
            nodes: self.nodes,
            side: self.side,
            iterations: self.iterations,
            steps: self.steps,
            seed: self.seed,
            threads: self.threads,
            step_threads: self.step_threads,
            profile_stride: self.profile_stride,
            profile_bins: self.profile_bins,
            profile_max_range: self.profile_max_range,
            skin: self.skin,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SimConfigBuilder<2> {
        let mut b = SimConfig::<2>::builder();
        b.nodes(10).side(100.0);
        b
    }

    #[test]
    fn minimal_build_succeeds_with_defaults() {
        let c = base().build().unwrap();
        assert_eq!(c.nodes(), 10);
        assert_eq!(c.side(), 100.0);
        assert_eq!(c.iterations(), 1);
        assert_eq!(c.steps(), 1);
        assert_eq!(c.seed(), 0);
        assert_eq!(c.threads(), None);
        assert_eq!(c.step_threads(), None);
        assert_eq!(c.profile_stride(), 1);
        assert_eq!(c.profile_bins(), 1024);
        assert_eq!(c.profile_max_range(), 50.0);
        assert_eq!(c.skin(), Skin::Auto);
    }

    #[test]
    fn validation_rejects_bad_values() {
        assert!(SimConfig::<2>::builder().side(10.0).build().is_err());
        assert!(SimConfig::<2>::builder().nodes(5).build().is_err());
        assert!(base().iterations(0).build().is_err());
        assert!(base().steps(0).build().is_err());
        assert!(base().threads(0).build().is_err());
        assert!(base().step_threads(0).build().is_err());
        assert!(base().profile_stride(0).build().is_err());
        assert!(base().profile_bins(1).build().is_err());
        assert!(base().profile_max_range(-1.0).build().is_err());
        assert!(base().skin(Skin::Fixed(0.0)).build().is_err());
        assert!(base().skin(Skin::Fixed(f64::NAN)).build().is_err());
        assert!(base().skin(Skin::Fixed(3.5)).build().is_ok());
        let mut b = SimConfig::<2>::builder();
        b.nodes(5).side(f64::INFINITY);
        assert!(b.build().is_err());
    }

    #[test]
    fn builder_is_chainable_and_reusable() {
        let mut b = base();
        b.iterations(5)
            .steps(100)
            .seed(9)
            .threads(2)
            .step_threads(4);
        let c1 = b.build().unwrap();
        let c2 = b.build().unwrap();
        assert_eq!(c1, c2);
        assert_eq!(c1.iterations(), 5);
        assert_eq!(c1.steps(), 100);
        assert_eq!(c1.threads(), Some(2));
        assert_eq!(c1.step_threads(), Some(4));
    }

    #[test]
    fn with_seed_changes_only_seed() {
        let c = base().build().unwrap();
        let c2 = c.with_seed(99);
        assert_eq!(c2.seed(), 99);
        assert_eq!(c2.nodes(), c.nodes());
        assert_eq!(c2.side(), c.side());
    }

    #[test]
    fn region_matches_side() {
        let c = base().build().unwrap();
        assert_eq!(c.region().side(), 100.0);
        assert_eq!(c.region().dimension(), 2);
    }
}
