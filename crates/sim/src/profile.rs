//! Largest-component-size profiles over the transmitting range.
//!
//! For each observed step, the Kruskal merge process
//! ([`manet_graph::MergeProfile`]) gives the largest-component size as
//! an exact step function of the range. [`RangeSizeProfile`]
//! accumulates those step functions on a uniform range grid, so that
//! after a campaign the **average largest-component size at any range**
//! (paper Figures 4–5) and its inverses `rl90/rl75/rl50` (Figure 6)
//! are grid lookups.
//!
//! Accumulation uses difference arrays: a merge event "size grows from
//! `s` to `s'` at range `x`" adds `s' - s` to the first grid boundary
//! `>= x`. The average at boundary `r_j` is then exact for the
//! quantized event ranges; quantization error is bounded by one bin
//! width (`profile_max_range / profile_bins`).

use crate::{
    config::SimConfig,
    stream::{run_connectivity_stream, ConnectivityObserver, StepView},
    SimError,
};
use manet_graph::MergeProfile;
use manet_mobility::Mobility;
use manet_stats::RunningMoments;

/// Average largest-component size as a function of the range, on a
/// uniform grid over `[0, max_range]`.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RangeSizeProfile {
    max_range: f64,
    bins: usize,
    /// `diff[j]` = total size increase attributed to boundary `j`
    /// (events with range in `((j-1)·w, j·w]`).
    diff: Vec<f64>,
    /// Events beyond `max_range` (clamped into the last boundary).
    overflow_events: u64,
    samples: usize,
    nodes: usize,
}

impl RangeSizeProfile {
    /// Creates an empty profile for `nodes` nodes on a grid of `bins`
    /// bins over `[0, max_range]`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for a non-positive
    /// `max_range`, fewer than 2 bins, or zero nodes.
    pub fn new(nodes: usize, max_range: f64, bins: usize) -> Result<Self, SimError> {
        if !(max_range.is_finite() && max_range > 0.0) {
            return Err(SimError::InvalidConfig {
                reason: format!("max_range must be positive, got {max_range}"),
            });
        }
        if bins < 2 {
            return Err(SimError::InvalidConfig {
                reason: "bins must be at least 2".into(),
            });
        }
        if nodes == 0 {
            return Err(SimError::InvalidConfig {
                reason: "nodes must be at least 1".into(),
            });
        }
        Ok(RangeSizeProfile {
            max_range,
            bins,
            diff: vec![0.0; bins + 1],
            overflow_events: 0,
            samples: 0,
            nodes,
        })
    }

    /// Width of one grid bin.
    pub fn bin_width(&self) -> f64 {
        self.max_range / self.bins as f64
    }

    /// Number of step functions accumulated.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Number of merge events that fell beyond `max_range` (their size
    /// contribution is clamped into the last boundary, so queries below
    /// `max_range` remain exact).
    pub fn overflow_events(&self) -> u64 {
        self.overflow_events
    }

    /// Node count `n` the sizes are measured against.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Accumulates one step's merge profile.
    ///
    /// # Panics
    ///
    /// Panics when the profile's node count differs from this grid's
    /// (a driver logic error).
    pub fn accumulate(&mut self, profile: &MergeProfile) {
        assert_eq!(
            profile.node_count(),
            self.nodes,
            "merge profile node count mismatch"
        );
        self.samples += 1;
        let w = self.bin_width();
        let mut prev = 1u32;
        for &(range, size) in profile.events() {
            let delta = (size - prev) as f64;
            prev = size;
            let mut j = (range / w).ceil() as usize;
            if j > self.bins {
                j = self.bins;
                self.overflow_events += 1;
            }
            self.diff[j] += delta;
        }
    }

    /// Average largest-component size at range `r` (clamped to the
    /// grid; `NaN` when no samples were accumulated).
    ///
    /// The value at `r` uses all events with range `<= ` the greatest
    /// grid boundary `<= r`, making it a (tight) lower bound on the
    /// true average at `r`.
    pub fn average_size_at(&self, r: f64) -> f64 {
        if self.samples == 0 {
            return f64::NAN;
        }
        let j_max = ((r / self.bin_width()).floor() as usize).min(self.bins);
        let total: f64 = self.diff[..=j_max].iter().sum();
        1.0 + total / self.samples as f64
    }

    /// Average size at `r` as a fraction of `n`.
    pub fn average_fraction_at(&self, r: f64) -> f64 {
        self.average_size_at(r) / self.nodes as f64
    }

    /// The smallest grid boundary at which the average size reaches
    /// `target` nodes, or `None` when the target is never reached on
    /// the grid.
    pub fn range_for_average_size(&self, target: f64) -> Option<f64> {
        if self.samples == 0 {
            return None;
        }
        let mut total = 0.0;
        let w = self.bin_width();
        for j in 0..=self.bins {
            total += self.diff[j];
            if 1.0 + total / self.samples as f64 >= target {
                return Some(j as f64 * w);
            }
        }
        None
    }

    /// The smallest grid boundary at which the average size reaches
    /// `fraction * n`.
    pub fn range_for_average_fraction(&self, fraction: f64) -> Option<f64> {
        self.range_for_average_size(fraction * self.nodes as f64)
    }

    /// Merges another profile with identical geometry.
    ///
    /// # Panics
    ///
    /// Panics when geometry (nodes, bins, max range) differs.
    pub fn merge(&mut self, other: &RangeSizeProfile) {
        assert_eq!(self.nodes, other.nodes, "node counts differ");
        assert_eq!(self.bins, other.bins, "bin counts differ");
        assert_eq!(self.max_range, other.max_range, "max ranges differ");
        for (a, b) in self.diff.iter_mut().zip(&other.diff) {
            *a += b;
        }
        self.samples += other.samples;
        self.overflow_events += other.overflow_events;
    }
}

/// Observer accumulating merge profiles every `stride`-th step
/// (positions-only stream lane).
struct ProfileObserver {
    stride: usize,
    profile: RangeSizeProfile,
}

impl<const D: usize> ConnectivityObserver<D> for ProfileObserver {
    type Output = RangeSizeProfile;

    fn observe(&mut self, view: &StepView<'_, D>) {
        if view.step().is_multiple_of(self.stride) {
            self.profile.accumulate(&MergeProfile::of(view.positions()));
        }
    }

    fn finish(self) -> RangeSizeProfile {
        self.profile
    }
}

/// Per-iteration component-size profiles of a campaign.
#[derive(Debug, Clone)]
pub struct ProfileResults {
    per_iteration: Vec<RangeSizeProfile>,
}

impl ProfileResults {
    /// Builds results from pre-computed profiles (tests/tools).
    pub fn from_profiles(per_iteration: Vec<RangeSizeProfile>) -> Self {
        ProfileResults { per_iteration }
    }

    /// Per-iteration profiles.
    pub fn per_iteration(&self) -> &[RangeSizeProfile] {
        &self.per_iteration
    }

    /// All iterations merged into a single pooled profile.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Stats`] for an empty campaign.
    pub fn pooled(&self) -> Result<RangeSizeProfile, SimError> {
        let mut iter = self.per_iteration.iter();
        let first = iter
            .next()
            .ok_or(SimError::Stats(manet_stats::StatsError::EmptySample))?;
        let mut acc = first.clone();
        for p in iter {
            acc.merge(p);
        }
        Ok(acc)
    }

    /// Mean (across iterations) of the smallest range at which the
    /// average largest component reaches `fraction * n` — the paper's
    /// `rl90/rl75/rl50` for `fraction` 0.9/0.75/0.5.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Stats`] when no iteration reaches the
    /// target on its grid (e.g. `fraction > 1`).
    pub fn mean_range_for_average_fraction(&self, fraction: f64) -> Result<f64, SimError> {
        let mut acc = RunningMoments::new();
        for p in &self.per_iteration {
            if let Some(r) = p.range_for_average_fraction(fraction) {
                acc.push(r);
            }
        }
        if acc.is_empty() {
            return Err(SimError::Stats(manet_stats::StatsError::EmptySample));
        }
        Ok(acc.mean())
    }

    /// Mean (across iterations) of the average largest-component
    /// fraction at range `r` — the paper's Figures 4–5 ordinate.
    pub fn mean_average_fraction_at(&self, r: f64) -> f64 {
        if self.per_iteration.is_empty() {
            return f64::NAN;
        }
        self.per_iteration
            .iter()
            .map(|p| p.average_fraction_at(r))
            .sum::<f64>()
            / self.per_iteration.len() as f64
    }
}

/// Runs the campaign collecting merge profiles (every
/// `config.profile_stride()`-th step) on the configured grid.
///
/// # Errors
///
/// Propagates configuration and engine errors.
pub fn simulate_profiles<const D: usize, M>(
    config: &SimConfig<D>,
    model: &M,
) -> Result<ProfileResults, SimError>
where
    M: Mobility<D> + Clone + Send + Sync,
{
    // Validate grid construction once up front.
    RangeSizeProfile::new(
        config.nodes(),
        config.profile_max_range(),
        config.profile_bins(),
    )?;
    let per_iteration = run_connectivity_stream(config, model, None, |_| ProfileObserver {
        stride: config.profile_stride(),
        profile: RangeSizeProfile::new(
            config.nodes(),
            config.profile_max_range(),
            config.profile_bins(),
        )
        .expect("grid validated above"), // lint:allow(R3): grid parameters validated just above
    })?;
    Ok(ProfileResults { per_iteration })
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_geom::Point;
    use manet_mobility::{RandomWaypoint, StationaryModel};

    #[test]
    fn grid_validation() {
        assert!(RangeSizeProfile::new(5, 0.0, 10).is_err());
        assert!(RangeSizeProfile::new(5, 10.0, 1).is_err());
        assert!(RangeSizeProfile::new(0, 10.0, 10).is_err());
        assert!(RangeSizeProfile::new(5, f64::NAN, 10).is_err());
    }

    #[test]
    fn single_profile_matches_merge_profile() {
        let pts = vec![
            Point::new([0.0]),
            Point::new([1.0]),
            Point::new([3.0]),
            Point::new([7.0]),
        ];
        let merge = MergeProfile::of(&pts);
        let mut grid = RangeSizeProfile::new(4, 10.0, 1000).unwrap();
        grid.accumulate(&merge);
        assert_eq!(grid.samples(), 1);
        for r in [0.5, 1.0, 2.0, 3.9, 4.0, 5.0, 9.0] {
            let exact = merge.largest_component_at(r) as f64;
            let approx = grid.average_size_at(r);
            // Grid value may lag by at most one bin; probing off
            // event boundaries they agree exactly.
            assert!(
                (approx - exact).abs() <= 1.0 + 1e-12,
                "r={r}: {approx} vs {exact}"
            );
        }
        // Far beyond all events: everyone connected.
        assert_eq!(grid.average_size_at(10.0), 4.0);
    }

    #[test]
    fn average_is_monotone_in_r() {
        let cfg = {
            let mut b = SimConfig::<2>::builder();
            b.nodes(10)
                .side(100.0)
                .iterations(3)
                .steps(20)
                .seed(3)
                .profile_bins(256);
            b.build().unwrap()
        };
        let model = RandomWaypoint::new(0.5, 2.0, 0, 0.0).unwrap();
        let res = simulate_profiles(&cfg, &model).unwrap();
        let pooled = res.pooled().unwrap();
        let mut prev = 0.0;
        for j in 0..=20 {
            let r = j as f64 * 2.5;
            let v = pooled.average_size_at(r);
            assert!(v >= prev - 1e-12, "profile not monotone at r={r}");
            prev = v;
        }
    }

    #[test]
    fn inversion_is_consistent_with_evaluation() {
        let cfg = {
            let mut b = SimConfig::<2>::builder();
            b.nodes(12)
                .side(120.0)
                .iterations(2)
                .steps(15)
                .seed(8)
                .profile_bins(512);
            b.build().unwrap()
        };
        let model = RandomWaypoint::new(0.5, 2.0, 0, 0.0).unwrap();
        let res = simulate_profiles(&cfg, &model).unwrap();
        let pooled = res.pooled().unwrap();
        for frac in [0.5, 0.75, 0.9] {
            let r = pooled.range_for_average_fraction(frac).unwrap();
            assert!(
                pooled.average_fraction_at(r) >= frac - 1e-12,
                "target not met at inverted range"
            );
            if r > pooled.bin_width() {
                assert!(
                    pooled.average_fraction_at(r - pooled.bin_width()) < frac,
                    "inversion not minimal at fraction {frac}"
                );
            }
        }
    }

    #[test]
    fn rl_ordering_matches_paper() {
        // rl50 <= rl75 <= rl90 always.
        let cfg = {
            let mut b = SimConfig::<2>::builder();
            b.nodes(16).side(200.0).iterations(4).steps(25).seed(12);
            b.build().unwrap()
        };
        let model = RandomWaypoint::new(0.5, 2.0, 0, 0.0).unwrap();
        let res = simulate_profiles(&cfg, &model).unwrap();
        let rl50 = res.mean_range_for_average_fraction(0.5).unwrap();
        let rl75 = res.mean_range_for_average_fraction(0.75).unwrap();
        let rl90 = res.mean_range_for_average_fraction(0.9).unwrap();
        assert!(rl50 <= rl75 + 1e-12);
        assert!(rl75 <= rl90 + 1e-12);
    }

    #[test]
    fn stride_reduces_samples() {
        let mk = |stride: usize| {
            let mut b = SimConfig::<2>::builder();
            b.nodes(6)
                .side(60.0)
                .iterations(1)
                .steps(20)
                .seed(1)
                .profile_stride(stride);
            b.build().unwrap()
        };
        let model = StationaryModel::new();
        let full = simulate_profiles(&mk(1), &model).unwrap();
        let strided = simulate_profiles(&mk(5), &model).unwrap();
        assert_eq!(full.per_iteration()[0].samples(), 20);
        assert_eq!(strided.per_iteration()[0].samples(), 4);
    }

    #[test]
    fn overflow_events_are_counted_not_lost() {
        let pts = vec![Point::new([0.0]), Point::new([100.0])];
        let merge = MergeProfile::of(&pts);
        let mut grid = RangeSizeProfile::new(2, 10.0, 10).unwrap();
        grid.accumulate(&merge);
        assert_eq!(grid.overflow_events(), 1);
        // At the top of the grid the clamped event is visible.
        assert_eq!(grid.average_size_at(10.0), 2.0);
        // Below it, not.
        assert_eq!(grid.average_size_at(5.0), 1.0);
    }

    #[test]
    fn merge_requires_identical_geometry() {
        let a = RangeSizeProfile::new(4, 10.0, 16).unwrap();
        let mut b = a.clone();
        b.merge(&a);
        let c = RangeSizeProfile::new(4, 10.0, 32).unwrap();
        let result = std::panic::catch_unwind(move || {
            let mut b2 = b;
            b2.merge(&c);
        });
        assert!(result.is_err());
    }

    #[test]
    fn empty_results_behave() {
        let res = ProfileResults::from_profiles(vec![]);
        assert!(res.pooled().is_err());
        assert!(res.mean_average_fraction_at(1.0).is_nan());
        assert!(res.mean_range_for_average_fraction(0.5).is_err());
    }
}
