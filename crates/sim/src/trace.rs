//! Temporal-trace campaigns: the `manet-trace` subsystem driven by the
//! connectivity stream.
//!
//! [`TraceObserver`] folds each step's [`StepView`] — the edge delta,
//! the snapshot, and the incrementally-maintained components the
//! stream already owns — into a [`manet_trace::TemporalRecord`]. The
//! stream's snapshot reconstruction is grid-accelerated `O(n + E)`
//! per step (never the brute-force `O(n²)`), and everything downstream
//! of it — link bookkeeping and the component summary — is
//! delta-proportional, with no full relabeling. [`simulate_trace`]
//! runs the whole campaign and pools the records into a
//! [`TraceSummary`].

use crate::{
    config::SimConfig,
    stream::{run_connectivity_stream, ConnectivityObserver, StepView},
    SimError,
};
use manet_mobility::Mobility;
use manet_trace::{TemporalRecord, TraceRecorder, TraceSummary};

/// Observer folding one iteration's trajectory into temporal metrics
/// at the stream's transmitting range.
pub struct TraceObserver {
    recorder: TraceRecorder,
}

impl TraceObserver {
    /// Creates an observer for a campaign over `nodes` nodes observed
    /// for `steps` mobility steps. Graph maintenance (side, range) is
    /// owned by the [`ConnectivityStream`](crate::ConnectivityStream)
    /// driving it.
    pub fn new(nodes: usize, steps: usize) -> Self {
        TraceObserver {
            recorder: TraceRecorder::new(nodes, steps),
        }
    }
}

impl<const D: usize> ConnectivityObserver<D> for TraceObserver {
    type Output = TemporalRecord;

    fn observe(&mut self, view: &StepView<'_, D>) {
        self.recorder
            .observe_with(view.diff(), view.graph(), view.components());
        // Cumulative roll-up: the last step's value is the iteration's
        // total, which `finish` folds into the record.
        self.recorder.set_kernel_metrics(view.kernel_metrics());
    }

    fn finish(self) -> TemporalRecord {
        self.recorder.finish()
    }
}

/// Runs a campaign and pools every iteration's temporal metrics.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] when `range` is not positive
/// and finite, and propagates engine and aggregation errors.
pub fn simulate_trace<const D: usize, M>(
    config: &SimConfig<D>,
    model: &M,
    range: f64,
) -> Result<TraceSummary, SimError>
where
    M: Mobility<D> + Clone + Send + Sync,
{
    let records = run_connectivity_stream(config, model, Some(range), |_| {
        TraceObserver::new(config.nodes(), config.steps())
    })?;
    TraceSummary::aggregate(&records).map_err(SimError::Trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_mobility::{RandomWaypoint, StationaryModel};

    fn config(iterations: usize, steps: usize, threads: Option<usize>) -> SimConfig<2> {
        let mut b = SimConfig::<2>::builder();
        b.nodes(12)
            .side(120.0)
            .iterations(iterations)
            .steps(steps)
            .seed(2002);
        if let Some(t) = threads {
            b.threads(t);
        }
        b.build().unwrap()
    }

    #[test]
    fn range_is_validated() {
        let cfg = config(1, 1, None);
        let m = StationaryModel::new();
        assert!(simulate_trace(&cfg, &m, 0.0).is_err());
        assert!(simulate_trace(&cfg, &m, f64::NAN).is_err());
        assert!(simulate_trace(&cfg, &m, -3.0).is_err());
    }

    #[test]
    fn stationary_network_has_no_link_events_after_step_zero() {
        let cfg = config(3, 25, None);
        let s = simulate_trace(&cfg, &StationaryModel::new(), 40.0).unwrap();
        assert_eq!(s.iterations, 3);
        assert_eq!(s.steps, 25);
        // Static topology: every link censored, nothing completes.
        assert_eq!(s.link_lifetime.count, 0);
        assert_eq!(s.inter_contact.count, 0);
        assert_eq!(s.outage.count, 0);
        // Availability is all-or-nothing per iteration.
        assert!((s.availability * 3.0).fract().abs() < 1e-12);
        assert_eq!(s.repair.never_repaired, s.repair.disconnected_iterations);
    }

    #[test]
    fn availability_matches_fixed_range_path() {
        let cfg = config(4, 40, None);
        let model = RandomWaypoint::new(0.5, 4.0, 2, 0.0).unwrap();
        for r in [25.0, 45.0, 70.0] {
            let trace = simulate_trace(&cfg, &model, r).unwrap();
            let fixed = crate::fixed::simulate_fixed_range(&cfg, &model, r).unwrap();
            assert!(
                (trace.availability - fixed.connectivity_fraction()).abs() < 1e-12,
                "r={r}: trace {} vs fixed {}",
                trace.availability,
                fixed.connectivity_fraction()
            );
        }
    }

    #[test]
    fn mobile_network_produces_link_events() {
        let cfg = config(3, 60, None);
        let model = RandomWaypoint::new(1.0, 6.0, 0, 0.0).unwrap();
        let s = simulate_trace(&cfg, &model, 35.0).unwrap();
        assert!(s.link_events_per_step > 0.0, "motion must churn edges");
        assert!(
            s.link_lifetime.count > 0,
            "60 fast steps must complete some lifetime"
        );
        assert!(!s.link_lifetime.survival.is_empty());
        assert_eq!(s.link_lifetime.survival[0].survival, 1.0);
    }

    #[test]
    fn larger_range_means_longer_lifetimes_and_higher_availability() {
        let cfg = config(4, 60, None);
        let model = RandomWaypoint::new(1.0, 5.0, 0, 0.0).unwrap();
        let small = simulate_trace(&cfg, &model, 20.0).unwrap();
        let large = simulate_trace(&cfg, &model, 60.0).unwrap();
        assert!(large.availability >= small.availability);
        assert!(large.path_availability >= small.path_availability);
        if let (Some(s), Some(l)) = (small.link_lifetime.mean, large.link_lifetime.mean) {
            assert!(l > s, "lifetime should grow with range: {s} vs {l}");
        }
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let model = RandomWaypoint::new(0.5, 4.0, 1, 0.25).unwrap();
        let single = simulate_trace(&config(6, 30, Some(1)), &model, 45.0).unwrap();
        let multi = simulate_trace(&config(6, 30, Some(4)), &model, 45.0).unwrap();
        assert_eq!(single, multi);
    }
}
