//! Temporal-trace campaigns: the `manet-trace` subsystem driven by the
//! parallel engine.
//!
//! [`TraceObserver`] plugs the delta stream of
//! [`manet_graph::DynamicGraph`] into the [`StepObserver`] machinery,
//! so each iteration folds its trajectory into a
//! [`manet_trace::TemporalRecord`] incrementally — the hot loop does
//! work proportional to the changed edges, never an `O(n²)` rebuild.
//! [`simulate_trace`] runs the whole campaign and pools the records
//! into a [`TraceSummary`].

use crate::{config::SimConfig, engine::run_simulation, engine::StepObserver, SimError};
use manet_geom::Point;
use manet_graph::DynamicGraph;
use manet_mobility::Mobility;
use manet_trace::{TemporalRecord, TraceRecorder, TraceSummary};

/// Observer folding one iteration's trajectory into temporal metrics
/// at a fixed transmitting range.
pub struct TraceObserver {
    side: f64,
    range: f64,
    /// Built from the first step's positions (the initial placement).
    dynamic: Option<DynamicGraph>,
    recorder: TraceRecorder,
}

impl TraceObserver {
    /// Creates an observer for a campaign over `nodes` nodes in
    /// `[0, side]^D`, `steps` steps long, tracing links at
    /// transmitting range `range`.
    pub fn new(nodes: usize, side: f64, range: f64, steps: usize) -> Self {
        TraceObserver {
            side,
            range,
            dynamic: None,
            recorder: TraceRecorder::new(nodes, steps),
        }
    }
}

impl<const D: usize> StepObserver<D> for TraceObserver {
    type Output = TemporalRecord;

    fn observe(&mut self, _step: usize, positions: &[Point<D>]) {
        let diff = match self.dynamic.as_mut() {
            None => {
                let dg = DynamicGraph::new(positions, self.side, self.range);
                let diff = dg.initial_diff();
                self.dynamic = Some(dg);
                diff
            }
            Some(dg) => dg.advance(positions),
        };
        let graph = self.dynamic.as_ref().expect("set above").graph();
        self.recorder.observe(&diff, graph);
    }

    fn finish(self) -> TemporalRecord {
        self.recorder.finish()
    }
}

/// Runs a campaign and pools every iteration's temporal metrics.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] when `range` is not positive
/// and finite, and propagates engine and aggregation errors.
pub fn simulate_trace<const D: usize, M>(
    config: &SimConfig<D>,
    model: &M,
    range: f64,
) -> Result<TraceSummary, SimError>
where
    M: Mobility<D> + Clone + Send + Sync,
{
    if !(range.is_finite() && range > 0.0) {
        return Err(SimError::InvalidConfig {
            reason: format!("transmitting range must be positive and finite, got {range}"),
        });
    }
    let records = run_simulation(config, model, |_| {
        TraceObserver::new(config.nodes(), config.side(), range, config.steps())
    })?;
    TraceSummary::aggregate(&records).map_err(SimError::Trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_mobility::{RandomWaypoint, StationaryModel};

    fn config(iterations: usize, steps: usize, threads: Option<usize>) -> SimConfig<2> {
        let mut b = SimConfig::<2>::builder();
        b.nodes(12)
            .side(120.0)
            .iterations(iterations)
            .steps(steps)
            .seed(2002);
        if let Some(t) = threads {
            b.threads(t);
        }
        b.build().unwrap()
    }

    #[test]
    fn range_is_validated() {
        let cfg = config(1, 1, None);
        let m = StationaryModel::new();
        assert!(simulate_trace(&cfg, &m, 0.0).is_err());
        assert!(simulate_trace(&cfg, &m, f64::NAN).is_err());
        assert!(simulate_trace(&cfg, &m, -3.0).is_err());
    }

    #[test]
    fn stationary_network_has_no_link_events_after_step_zero() {
        let cfg = config(3, 25, None);
        let s = simulate_trace(&cfg, &StationaryModel::new(), 40.0).unwrap();
        assert_eq!(s.iterations, 3);
        assert_eq!(s.steps, 25);
        // Static topology: every link censored, nothing completes.
        assert_eq!(s.link_lifetime.count, 0);
        assert_eq!(s.inter_contact.count, 0);
        assert_eq!(s.outage.count, 0);
        // Availability is all-or-nothing per iteration.
        assert!((s.availability * 3.0).fract().abs() < 1e-12);
        assert_eq!(s.repair.never_repaired, s.repair.disconnected_iterations);
    }

    #[test]
    fn availability_matches_fixed_range_path() {
        let cfg = config(4, 40, None);
        let model = RandomWaypoint::new(0.5, 4.0, 2, 0.0).unwrap();
        for r in [25.0, 45.0, 70.0] {
            let trace = simulate_trace(&cfg, &model, r).unwrap();
            let fixed = crate::fixed::simulate_fixed_range(&cfg, &model, r).unwrap();
            assert!(
                (trace.availability - fixed.connectivity_fraction()).abs() < 1e-12,
                "r={r}: trace {} vs fixed {}",
                trace.availability,
                fixed.connectivity_fraction()
            );
        }
    }

    #[test]
    fn mobile_network_produces_link_events() {
        let cfg = config(3, 60, None);
        let model = RandomWaypoint::new(1.0, 6.0, 0, 0.0).unwrap();
        let s = simulate_trace(&cfg, &model, 35.0).unwrap();
        assert!(s.link_events_per_step > 0.0, "motion must churn edges");
        assert!(
            s.link_lifetime.count > 0,
            "60 fast steps must complete some lifetime"
        );
        assert!(!s.link_lifetime.survival.is_empty());
        assert_eq!(s.link_lifetime.survival[0].survival, 1.0);
    }

    #[test]
    fn larger_range_means_longer_lifetimes_and_higher_availability() {
        let cfg = config(4, 60, None);
        let model = RandomWaypoint::new(1.0, 5.0, 0, 0.0).unwrap();
        let small = simulate_trace(&cfg, &model, 20.0).unwrap();
        let large = simulate_trace(&cfg, &model, 60.0).unwrap();
        assert!(large.availability >= small.availability);
        assert!(large.path_availability >= small.path_availability);
        if let (Some(s), Some(l)) = (small.link_lifetime.mean, large.link_lifetime.mean) {
            assert!(l > s, "lifetime should grow with range: {s} vs {l}");
        }
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let model = RandomWaypoint::new(0.5, 4.0, 1, 0.25).unwrap();
        let single = simulate_trace(&config(6, 30, Some(1)), &model, 45.0).unwrap();
        let multi = simulate_trace(&config(6, 30, Some(4)), &model, 45.0).unwrap();
        assert_eq!(single, multi);
    }
}
