//! Critical-range finder and finite-size scaling fits.
//!
//! Wang et al. (PAPERS.md, arXiv:0806.2351) show the critical
//! transmitting range of a mobile network scales as a power law
//! `r_c(n) ~ n^(-beta)`. This module locates the transition for one
//! `(model, n)` cell — the smallest range whose mean connectivity
//! metric reaches a target — and fits the exponent across a
//! density-preserving `n` sweep.
//!
//! # Monotone stochastic bisection
//!
//! The engine's trajectories depend only on `(config, model)`, never
//! on the probed range, so one seed fixes every placement and step.
//! Over those fixed trajectories both supported metrics are monotone
//! non-decreasing in `r` (adding edges can only grow the largest
//! component, and can only raise vertex connectivity), which makes the
//! threshold question exactly the shape [`bisect_monotone`] answers:
//! each probe is a fresh seeded multi-iteration campaign through
//! [`run_connectivity_stream`], and the bisection converges to the
//! true threshold of the *fixed* trajectory ensemble within
//! tolerance. Determinism is inherited, so critical points are
//! bit-identical across thread counts.
//!
//! # Normalization
//!
//! Under the density-preserving scaling the CLI uses (`side ∝ √n`),
//! the *raw* critical range grows slowly with `n` while the
//! *normalized* range `rho_c = r_c / side` falls as a clean power law
//! (for random geometric graphs `rho_c ~ √(log n / n)`, an effective
//! exponent around 0.4–0.5 over practical `n`). [`CriticalPoint`]
//! reports both; [`fit_scaling_exponent`] fits `log rho_c` against
//! `log n` and reports `beta = -slope` with a Student-t confidence
//! interval from [`LinearFit::fit_with_slope_ci`].

use crate::{
    config::SimConfig,
    search::bisect_monotone,
    stream::{run_connectivity_stream, ConnectivityObserver, StepView},
    SimError,
};
use manet_graph::kconn::is_k_connected;
use manet_mobility::Mobility;
use manet_obs::KernelMetrics;
use manet_stats::{ConfidenceInterval, LinearFit};

/// The per-step connectivity metric a critical-range search thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ConnectivityMetric {
    /// Largest-component size as a fraction of `n` (the giant
    /// component), averaged over steps and iterations.
    GiantFraction,
    /// Fraction of steps whose graph is `k`-vertex-connected
    /// ([`is_k_connected`]); `k = 1` is plain connectivity.
    KConnectivity(usize),
}

/// Configuration of one critical-range search (chainable, defaults:
/// giant-component fraction, target 0.99, relative tolerance 1e-3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CriticalRangeSearch {
    metric: ConnectivityMetric,
    target: f64,
    rel_tol: f64,
}

impl Default for CriticalRangeSearch {
    fn default() -> Self {
        CriticalRangeSearch {
            metric: ConnectivityMetric::GiantFraction,
            target: 0.99,
            rel_tol: 1e-3,
        }
    }
}

impl CriticalRangeSearch {
    /// The default search: giant-fraction metric at target 0.99.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the metric (chainable).
    pub fn with_metric(mut self, metric: ConnectivityMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Sets the target level in `(0, 1]` (chainable).
    pub fn with_target(mut self, target: f64) -> Self {
        self.target = target;
        self
    }

    /// Sets the bisection tolerance as a fraction of the region side
    /// (chainable).
    pub fn with_rel_tol(mut self, rel_tol: f64) -> Self {
        self.rel_tol = rel_tol;
        self
    }

    /// The configured metric.
    pub fn metric(&self) -> ConnectivityMetric {
        self.metric
    }

    /// The configured target level.
    pub fn target(&self) -> f64 {
        self.target
    }

    /// The configured side-relative tolerance.
    pub fn rel_tol(&self) -> f64 {
        self.rel_tol
    }

    fn validate<const D: usize>(&self, config: &SimConfig<D>) -> Result<(), SimError> {
        if !(self.target.is_finite() && self.target > 0.0 && self.target <= 1.0) {
            return Err(SimError::InvalidConfig {
                reason: format!("target must be in (0, 1], got {}", self.target),
            });
        }
        if !(self.rel_tol.is_finite() && self.rel_tol > 0.0) {
            return Err(SimError::InvalidConfig {
                reason: format!("rel_tol must be positive and finite, got {}", self.rel_tol),
            });
        }
        if let ConnectivityMetric::KConnectivity(k) = self.metric {
            if k == 0 || k >= config.nodes() {
                return Err(SimError::InvalidConfig {
                    reason: format!(
                        "k-connectivity target k={k} must satisfy 1 <= k < n (n = {})",
                        config.nodes()
                    ),
                });
            }
        }
        Ok(())
    }
}

/// One located critical point: the threshold range, its normalization
/// by the region side, and the probe work that found it.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CriticalPoint {
    /// The smallest range (within tolerance) whose mean metric reaches
    /// the target.
    pub range: f64,
    /// `range / side` — the scale-free quantity the power law fits.
    pub normalized: f64,
    /// Bisection probes run (each one full seeded campaign).
    pub probes: usize,
    /// Deterministic kernel counters merged over every probe's
    /// iterations — the telemetry the CLI forwards to `ObsSession`.
    pub kernel: KernelMetrics,
}

/// Observer computing one iteration's mean metric off the stream's
/// incremental components, carrying the final step's cumulative kernel
/// counters out of the iteration.
struct MetricObserver {
    metric: ConnectivityMetric,
    sum: f64,
    steps: usize,
    kernel: KernelMetrics,
}

impl<const D: usize> ConnectivityObserver<D> for MetricObserver {
    type Output = (f64, KernelMetrics);

    fn observe(&mut self, view: &StepView<'_, D>) {
        let value = match self.metric {
            ConnectivityMetric::GiantFraction => {
                view.components().largest_size() as f64 / view.positions().len() as f64
            }
            ConnectivityMetric::KConnectivity(k) => {
                if is_k_connected(view.graph(), k) {
                    1.0
                } else {
                    0.0
                }
            }
        };
        self.sum += value;
        self.steps += 1;
        // Cumulative since step 0: the last view holds the iteration
        // total (see `LinkView::kernel_metrics`).
        self.kernel = *view.kernel_metrics();
    }

    fn finish(self) -> (f64, KernelMetrics) {
        (self.sum / self.steps as f64, self.kernel)
    }
}

/// The mean metric at range `r`, pooled over iterations, plus the
/// merged kernel counters of the campaign.
fn evaluate_metric<const D: usize, M>(
    config: &SimConfig<D>,
    model: &M,
    metric: ConnectivityMetric,
    r: f64,
) -> Result<(f64, KernelMetrics), SimError>
where
    M: Mobility<D> + Clone + Send + Sync,
{
    let outputs = run_connectivity_stream(config, model, Some(r), |_| MetricObserver {
        metric,
        sum: 0.0,
        steps: 0,
        kernel: KernelMetrics::default(),
    })?;
    let mut kernel = KernelMetrics::default();
    let mut sum = 0.0;
    for (mean, k) in &outputs {
        sum += mean;
        kernel.merge(k);
    }
    // Iterations share one step count, so the mean of per-iteration
    // means is the pooled per-step mean.
    Ok((sum / outputs.len() as f64, kernel))
}

/// Locates the critical range of one `(config, model)` cell by
/// deterministic stochastic bisection over `[0, diameter]`.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] for an invalid search
/// (target outside `(0, 1]`, non-positive tolerance, infeasible `k`)
/// and propagates engine errors from the probes.
pub fn find_critical_range<const D: usize, M>(
    config: &SimConfig<D>,
    model: &M,
    search: &CriticalRangeSearch,
) -> Result<CriticalPoint, SimError>
where
    M: Mobility<D> + Clone + Send + Sync,
{
    search.validate(config)?;
    let hi = config.region().diameter();
    let tol = search.rel_tol * config.side();
    let mut probes = 0usize;
    let mut kernel = KernelMetrics::default();
    let mut error = None;
    let range = bisect_monotone(1e-9, hi, tol, |r| {
        match evaluate_metric(config, model, search.metric, r) {
            Ok((mean, k)) => {
                probes += 1;
                kernel.merge(&k);
                mean >= search.target
            }
            Err(e) => {
                error = Some(e);
                true // terminate quickly; error reported below
            }
        }
    });
    if let Some(e) = error {
        return Err(e);
    }
    Ok(CriticalPoint {
        range,
        normalized: range / config.side(),
        probes,
        kernel,
    })
}

/// A fitted finite-size scaling exponent `rho_c ~ n^(-beta)` with its
/// confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ScalingExponent {
    /// The exponent `beta = -slope` of the `log rho_c` vs `log n` fit.
    pub beta: f64,
    /// Student-t confidence interval on `beta` (`n - 2` degrees of
    /// freedom).
    pub ci: ConfidenceInterval,
    /// The underlying log-log line (`slope = -beta`; `r_squared`
    /// measures how well the power law holds).
    pub line: LinearFit,
    /// Number of `(n, rho_c)` points fitted.
    pub points: usize,
}

/// Fits `log rho_c = intercept - beta * log n` over `(n, rho_c)`
/// points and reports `beta` with a `level` confidence interval.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] with fewer than three points or
/// any non-positive `rho_c` (the log is undefined), and propagates
/// [`SimError::Stats`] from the regression (e.g. identical `n`).
pub fn fit_scaling_exponent(
    points: &[(usize, f64)],
    level: f64,
) -> Result<ScalingExponent, SimError> {
    if points.len() < 3 {
        return Err(SimError::InvalidConfig {
            reason: format!(
                "scaling fit needs at least 3 (n, rho_c) points for a slope CI, got {}",
                points.len()
            ),
        });
    }
    if let Some((n, rho)) = points
        .iter()
        .find(|(n, rho)| *n == 0 || !(rho.is_finite() && *rho > 0.0))
    {
        return Err(SimError::InvalidConfig {
            reason: format!("scaling fit needs n >= 1 and rho_c > 0, got ({n}, {rho})"),
        });
    }
    let xs: Vec<f64> = points.iter().map(|(n, _)| (*n as f64).ln()).collect();
    let ys: Vec<f64> = points.iter().map(|(_, rho)| rho.ln()).collect();
    let inference = LinearFit::fit_with_slope_ci(&xs, &ys, level)?;
    let slope_ci = inference.slope_ci;
    Ok(ScalingExponent {
        beta: -inference.fit.slope,
        // Negating the slope flips the interval's endpoints.
        ci: ConfidenceInterval {
            estimate: -slope_ci.estimate,
            lo: -slope_ci.hi,
            hi: -slope_ci.lo,
            level: slope_ci.level,
        },
        line: inference.fit,
        points: points.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::simulate_fixed_range;
    use crate::search::find_range_for_connectivity_fraction;
    use manet_mobility::{RandomWaypoint, StationaryModel};

    fn config(nodes: usize, side: f64, iterations: usize, steps: usize) -> SimConfig<2> {
        let mut b = SimConfig::<2>::builder();
        b.nodes(nodes)
            .side(side)
            .iterations(iterations)
            .steps(steps)
            .seed(42);
        b.build().unwrap()
    }

    #[test]
    fn search_validation_rejects_bad_parameters() {
        let cfg = config(8, 100.0, 1, 1);
        let m = StationaryModel::new();
        for bad in [
            CriticalRangeSearch::new().with_target(0.0),
            CriticalRangeSearch::new().with_target(1.5),
            CriticalRangeSearch::new().with_target(f64::NAN),
            CriticalRangeSearch::new().with_rel_tol(0.0),
            CriticalRangeSearch::new().with_rel_tol(-1e-3),
            CriticalRangeSearch::new().with_metric(ConnectivityMetric::KConnectivity(0)),
            CriticalRangeSearch::new().with_metric(ConnectivityMetric::KConnectivity(8)),
        ] {
            assert!(
                find_critical_range(&cfg, &m, &bad).is_err(),
                "accepted {bad:?}"
            );
        }
    }

    #[test]
    fn giant_fraction_threshold_brackets_the_target() {
        let cfg = config(12, 120.0, 3, 20);
        let model = RandomWaypoint::new(0.5, 2.0, 1, 0.0).unwrap();
        let search = CriticalRangeSearch::new()
            .with_target(0.95)
            .with_rel_tol(1e-4);
        let point = find_critical_range(&cfg, &model, &search).unwrap();
        assert!(point.range > 0.0 && point.range < cfg.region().diameter());
        assert!((point.normalized - point.range / 120.0).abs() < 1e-15);
        assert!(point.probes > 5, "bisection should take several probes");
        assert!(point.kernel.components.applies > 0, "kernel counters empty");
        // Oracle: the independent fixed-range path confirms the metric
        // crosses the target at the found range and not below it.
        let at = simulate_fixed_range(&cfg, &model, point.range).unwrap();
        assert!(at.avg_largest_fraction() >= 0.95);
        let below = simulate_fixed_range(&cfg, &model, point.range - 2.0 * 1e-4 * 120.0).unwrap();
        assert!(below.avg_largest_fraction() < 0.95);
    }

    #[test]
    fn k1_connectivity_metric_matches_the_search_module() {
        // k = 1 thresholds the fraction of connected steps — the same
        // question `find_range_for_connectivity_fraction` answers.
        let cfg = config(10, 100.0, 3, 15);
        let model = RandomWaypoint::new(0.5, 2.0, 1, 0.0).unwrap();
        let tol = 1e-4 * 100.0;
        let search = CriticalRangeSearch::new()
            .with_metric(ConnectivityMetric::KConnectivity(1))
            .with_target(0.9)
            .with_rel_tol(1e-4);
        let point = find_critical_range(&cfg, &model, &search).unwrap();
        let reference = find_range_for_connectivity_fraction(&cfg, &model, 0.9, tol).unwrap();
        assert!(
            (point.range - reference).abs() <= 2.0 * tol,
            "k=1 finder {} vs connectivity-fraction bisection {reference}",
            point.range
        );
    }

    #[test]
    fn higher_k_costs_more_range() {
        let cfg = config(10, 80.0, 2, 10);
        let model = RandomWaypoint::new(0.5, 2.0, 1, 0.0).unwrap();
        let find = |k: usize| {
            let search = CriticalRangeSearch::new()
                .with_metric(ConnectivityMetric::KConnectivity(k))
                .with_target(1.0)
                .with_rel_tol(1e-4);
            find_critical_range(&cfg, &model, &search).unwrap().range
        };
        let (r1, r2, r3) = (find(1), find(2), find(3));
        assert!(
            r1 <= r2 && r2 <= r3,
            "k-connectivity ranges not monotone: {r1} {r2} {r3}"
        );
        assert!(
            r3 > r1,
            "k=3 should strictly exceed k=1 on sparse placements"
        );
    }

    #[test]
    fn fit_recovers_a_known_exponent() {
        let points: Vec<(usize, f64)> = [16usize, 32, 64, 128, 256]
            .iter()
            .map(|&n| (n, 2.0 * (n as f64).powf(-0.5)))
            .collect();
        let fit = fit_scaling_exponent(&points, 0.95).unwrap();
        assert!((fit.beta - 0.5).abs() < 1e-12);
        assert!((fit.line.r_squared - 1.0).abs() < 1e-12);
        assert_eq!(fit.points, 5);
        // Perfect data: the CI collapses onto the estimate.
        assert!(fit.ci.contains(0.5));
        assert!(fit.ci.width() < 1e-9);
        assert_eq!(fit.ci.level, 0.95);
    }

    #[test]
    fn fit_ci_brackets_noisy_data() {
        // rho = n^-0.4 with +-5% alternating noise.
        let points: Vec<(usize, f64)> = [16usize, 32, 64, 128, 256, 512]
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let noise = if i % 2 == 0 { 1.05 } else { 0.95 };
                (n, noise * (n as f64).powf(-0.4))
            })
            .collect();
        let fit = fit_scaling_exponent(&points, 0.95).unwrap();
        assert!(fit.ci.lo < fit.beta && fit.beta < fit.ci.hi);
        assert!(fit.ci.contains(0.4), "CI {:?} should cover 0.4", fit.ci);
        assert!(fit.ci.width() > 0.0);
    }

    #[test]
    fn fit_rejects_degenerate_inputs() {
        assert!(fit_scaling_exponent(&[(16, 0.5), (32, 0.4)], 0.95).is_err());
        assert!(fit_scaling_exponent(&[(16, 0.5), (32, 0.4), (64, 0.0)], 0.95).is_err());
        assert!(fit_scaling_exponent(&[(16, 0.5), (32, 0.4), (0, 0.3)], 0.95).is_err());
        assert!(fit_scaling_exponent(&[(16, 0.5), (16, 0.4), (16, 0.3)], 0.95).is_err());
        assert!(fit_scaling_exponent(&[(16, 0.5), (32, 0.4), (64, 0.3)], 1.5).is_err());
    }
}
