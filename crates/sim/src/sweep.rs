//! Deterministic batched sweep scheduler: a work-stealing job pool
//! over independent scenario jobs with checkpoint/resume.
//!
//! Grid experiments (the critical-scaling sweep, and the parameter
//! sweeps ROADMAP items 3–5 plan) all share one shape: a fixed list of
//! independent jobs — each a seeded simulation campaign — whose
//! results must be merged into artifacts that are **byte-identical at
//! every thread count**. [`SweepScheduler`] owns that shape once.
//!
//! # Determinism argument
//!
//! Workers race freely over a shared atomic job cursor (classic
//! work-stealing from a single deque of pending job ids), so *which*
//! worker runs a job and in *what order* jobs finish is scheduling
//! noise. Determinism comes from the structure around the race, the
//! same discipline as `crates/graph/src/parallel.rs` one layer up:
//!
//! * every job owns its inputs (`&J`) and produces an owned result —
//!   nothing is shared mutably between jobs;
//! * each job id is claimed exactly once (`fetch_add` on the cursor);
//! * workers tag results with their job id, and the main thread merges
//!   them into a job-id-indexed slot vector after the scope joins.
//!
//! The merged [`SweepRun::results`] is therefore a pure function of
//! `(jobs, cached results, job function)` — the thread count never
//! appears. `tests/critical_scaling.rs` pins byte-identity across
//! scheduler thread counts {1, 2, 4, 7} on top of this module's unit
//! tests.
//!
//! # Checkpoint/resume
//!
//! [`SweepCheckpoint`] is the pure-data snapshot of a partially
//! completed grid: a caller-chosen fingerprint (hash of everything
//! that shapes the grid) plus the job-id-indexed result slots. A
//! scheduler given cached slots runs only the missing jobs, and a
//! budget ([`SweepScheduler::with_budget`]) bounds how many jobs one
//! invocation executes — which is how the CLI's `--max-cells` makes an
//! interrupted grid resumable: persist the checkpoint, exit, reload,
//! run the rest. Because jobs are deterministic, a resumed grid's
//! results are bitwise the ones an uninterrupted run produces.
//!
//! This module is one of the three sanctioned `std::thread` sites in
//! the workspace (see `R6_EXEMPT_MODULES` in `crates/lint/src/walk.rs`
//! and the root `clippy.toml`).

use crate::SimError;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A deterministic work-stealing pool over independent sweep jobs.
///
/// Construct with a thread count, optionally bound the number of jobs
/// one invocation may execute with [`SweepScheduler::with_budget`],
/// then [`SweepScheduler::run`] a job list against cached results.
#[derive(Debug, Clone)]
pub struct SweepScheduler {
    threads: usize,
    budget: Option<usize>,
}

impl SweepScheduler {
    /// Creates a scheduler running jobs on `threads` workers.
    /// Results never depend on the count — it is purely a performance
    /// knob.
    ///
    /// # Panics
    ///
    /// Panics when `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "threads must be at least 1");
        SweepScheduler {
            threads,
            budget: None,
        }
    }

    /// Bounds the number of jobs a single [`SweepScheduler::run`] may
    /// execute (chainable). Pending jobs are taken in job-id order, so
    /// a budgeted run completes a deterministic prefix of the missing
    /// work — the checkpoint/resume building block.
    pub fn with_budget(mut self, budget: usize) -> Self {
        self.budget = Some(budget);
        self
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured job budget, if any.
    pub fn budget(&self) -> Option<usize> {
        self.budget
    }

    /// Runs the jobs whose `cached` slot is empty (up to the budget)
    /// and merges fresh results into the slots **in job-id order**.
    ///
    /// `run_job(id, &jobs[id])` must be a pure function of its
    /// arguments for the determinism contract to hold; the scheduler
    /// guarantees each missing id is claimed exactly once and that the
    /// returned slots are independent of the thread count.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when `cached` and `jobs`
    /// disagree in length, and propagates the failing job's error with
    /// the smallest job id (deterministic regardless of scheduling)
    /// when any job fails.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any job.
    #[allow(clippy::disallowed_methods)] // thread::scope/spawn: the sanctioned sweep fan-out site
    pub fn run<J, R, F>(
        &self,
        jobs: &[J],
        cached: Vec<Option<R>>,
        run_job: F,
    ) -> Result<SweepRun<R>, SimError>
    where
        J: Sync,
        R: Send,
        F: Fn(usize, &J) -> Result<R, SimError> + Sync,
    {
        if cached.len() != jobs.len() {
            return Err(SimError::InvalidConfig {
                reason: format!(
                    "cached sweep slots ({}) do not match the job list ({})",
                    cached.len(),
                    jobs.len()
                ),
            });
        }
        let mut pending: Vec<usize> = cached
            .iter()
            .enumerate()
            .filter_map(|(id, slot)| slot.is_none().then_some(id))
            .collect();
        if let Some(budget) = self.budget {
            pending.truncate(budget);
        }
        let executed = pending.len();

        let mut slots = cached;
        let workers = self.threads.min(pending.len());
        if workers <= 1 {
            // Zero or one worker's worth of work runs inline — the
            // serial path pays no thread overhead and is the reference
            // order the parallel merge reproduces.
            for id in pending {
                slots[id] = Some(run_job(id, &jobs[id])?);
            }
            return Ok(SweepRun { slots, executed });
        }

        let cursor = AtomicUsize::new(0);
        let cursor = &cursor;
        let pending = &pending;
        let run_job = &run_job;
        // Each worker claims job ids off the shared cursor and tags
        // its outputs; the merge below is the only ordered step.
        let mut tagged: Vec<(usize, Result<R, SimError>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            let next = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(&id) = pending.get(next) else {
                                break;
                            };
                            local.push((id, run_job(id, &jobs[id])));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("sweep worker panicked")) // lint:allow(R3): a worker panic is already a crash; propagate it
                .collect()
        });
        // Merge in job-id order; on failure surface the error with the
        // smallest job id so the outcome is scheduling-independent.
        tagged.sort_by_key(|(id, _)| *id);
        for (id, result) in tagged {
            slots[id] = Some(result?);
        }
        Ok(SweepRun { slots, executed })
    }
}

/// The outcome of one [`SweepScheduler::run`]: job-id-ordered result
/// slots (cached and fresh alike) plus how many jobs this invocation
/// executed.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRun<R> {
    slots: Vec<Option<R>>,
    executed: usize,
}

impl<R> SweepRun<R> {
    /// The result slots, indexed by job id (`None` = not yet run).
    pub fn results(&self) -> &[Option<R>] {
        &self.slots
    }

    /// Consumes the run, yielding the slots.
    pub fn into_results(self) -> Vec<Option<R>> {
        self.slots
    }

    /// How many jobs this invocation actually executed (fresh work,
    /// excluding cached slots).
    pub fn executed(&self) -> usize {
        self.executed
    }

    /// How many slots are filled (cached + fresh).
    pub fn completed(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Whether every job has a result.
    pub fn is_complete(&self) -> bool {
        self.slots.iter().all(|s| s.is_some())
    }

    /// Unwraps a complete run into plain results.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when any slot is still
    /// empty (a budgeted run that has not finished the grid).
    pub fn into_complete(self) -> Result<Vec<R>, SimError> {
        let (done, total) = (self.completed(), self.slots.len());
        self.slots
            .into_iter()
            .collect::<Option<Vec<R>>>()
            .ok_or_else(|| SimError::InvalidConfig {
                reason: format!("sweep incomplete: {done} of {total} jobs have results"),
            })
    }
}

/// A resumable snapshot of a partially completed sweep grid: the
/// caller's grid fingerprint plus job-id-indexed result slots.
///
/// The fingerprint must encode everything that shapes the grid and its
/// jobs (models, sizes, seed, targets, tolerances…), so a checkpoint
/// can refuse to resume against a different grid
/// ([`SweepCheckpoint::validate`]). With the `serde` feature the type
/// serializes as `{ "fingerprint": …, "results": […] }` for file
/// persistence by CLI layers.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCheckpoint<R> {
    fingerprint: String,
    results: Vec<Option<R>>,
}

impl<R> SweepCheckpoint<R> {
    /// An empty checkpoint for a `jobs`-sized grid.
    pub fn new(fingerprint: impl Into<String>, jobs: usize) -> Self {
        SweepCheckpoint {
            fingerprint: fingerprint.into(),
            results: (0..jobs).map(|_| None).collect(),
        }
    }

    /// Rebuilds a checkpoint from persisted parts.
    pub fn from_parts(fingerprint: impl Into<String>, results: Vec<Option<R>>) -> Self {
        SweepCheckpoint {
            fingerprint: fingerprint.into(),
            results,
        }
    }

    /// The grid fingerprint this checkpoint belongs to.
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// The result slots, indexed by job id.
    pub fn results(&self) -> &[Option<R>] {
        &self.results
    }

    /// Consumes the checkpoint, yielding the slots (the `cached` input
    /// of [`SweepScheduler::run`]).
    pub fn into_results(self) -> Vec<Option<R>> {
        self.results
    }

    /// How many slots are filled.
    pub fn completed(&self) -> usize {
        self.results.iter().filter(|s| s.is_some()).count()
    }

    /// Whether the grid is fully computed.
    pub fn is_complete(&self) -> bool {
        self.results.iter().all(|s| s.is_some())
    }

    /// Checks that this checkpoint belongs to the `(fingerprint,
    /// jobs)` grid about to run.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] on a fingerprint or length
    /// mismatch — resuming across a changed grid would silently mix
    /// incompatible results.
    pub fn validate(&self, fingerprint: &str, jobs: usize) -> Result<(), SimError> {
        if self.fingerprint != fingerprint {
            return Err(SimError::InvalidConfig {
                reason: format!(
                    "checkpoint fingerprint `{}` does not match this sweep `{fingerprint}`",
                    self.fingerprint
                ),
            });
        }
        if self.results.len() != jobs {
            return Err(SimError::InvalidConfig {
                reason: format!(
                    "checkpoint holds {} job slots but this sweep has {jobs}",
                    self.results.len()
                ),
            });
        }
        Ok(())
    }

    /// Absorbs a run's slots into this checkpoint.
    pub fn absorb(&mut self, run: SweepRun<R>) {
        self.results = run.into_results();
    }
}

// Manual serde impls: the vendored derive does not emit trait bounds
// for type parameters, so the generic checkpoint spells out the
// `R: Serialize` / `R: Deserialize` impls the derive would need.
#[cfg(feature = "serde")]
impl<R: serde::Serialize> serde::Serialize for SweepCheckpoint<R> {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let mut st = serializer.serialize_struct("SweepCheckpoint", 2)?;
        st.serialize_field("fingerprint", &self.fingerprint)?;
        st.serialize_field("results", &self.results)?;
        st.end()
    }
}

#[cfg(feature = "serde")]
impl<'de, R: serde::Deserialize<'de>> serde::Deserialize<'de> for SweepCheckpoint<R> {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct Visitor<R>(core::marker::PhantomData<R>);
        impl<'de, R: serde::Deserialize<'de>> serde::de::Visitor<'de> for Visitor<R> {
            type Value = SweepCheckpoint<R>;

            fn expecting(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                f.write_str("a sweep checkpoint map")
            }

            fn visit_map<A: serde::de::MapAccess<'de>>(
                self,
                mut map: A,
            ) -> Result<Self::Value, A::Error> {
                let mut fingerprint: Option<String> = None;
                let mut results: Option<Vec<Option<R>>> = None;
                while let Some(key) = map.next_key::<String>()? {
                    match key.as_str() {
                        "fingerprint" => fingerprint = Some(map.next_value()?),
                        "results" => results = Some(map.next_value()?),
                        _ => {
                            let _ = map.next_value::<serde::de::IgnoredAny>()?;
                        }
                    }
                }
                let fingerprint = fingerprint
                    .ok_or_else(|| serde::de::Error::custom("checkpoint missing `fingerprint`"))?;
                let results = results
                    .ok_or_else(|| serde::de::Error::custom("checkpoint missing `results`"))?;
                Ok(SweepCheckpoint {
                    fingerprint,
                    results,
                })
            }
        }
        deserializer.deserialize_struct(
            "SweepCheckpoint",
            &["fingerprint", "results"],
            Visitor(core::marker::PhantomData),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_jobs(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    fn run_squares(
        scheduler: &SweepScheduler,
        jobs: &[usize],
        cached: Vec<Option<usize>>,
    ) -> SweepRun<usize> {
        scheduler.run(jobs, cached, |_, &j| Ok(j * j)).unwrap()
    }

    #[test]
    fn full_run_fills_every_slot_in_job_order() {
        let jobs = square_jobs(9);
        let run = run_squares(&SweepScheduler::new(3), &jobs, vec![None; 9]);
        assert!(run.is_complete());
        assert_eq!(run.executed(), 9);
        let values = run.into_complete().unwrap();
        assert_eq!(values, vec![0, 1, 4, 9, 16, 25, 36, 49, 64]);
    }

    #[test]
    fn results_are_identical_across_thread_counts() {
        let jobs = square_jobs(23);
        let reference = run_squares(&SweepScheduler::new(1), &jobs, vec![None; 23]);
        for threads in [2, 4, 7, 16] {
            let run = run_squares(&SweepScheduler::new(threads), &jobs, vec![None; 23]);
            assert_eq!(run, reference, "threads={threads} changed the sweep");
        }
    }

    #[test]
    fn cached_slots_are_kept_and_not_recomputed() {
        let jobs = square_jobs(5);
        let mut cached = vec![None; 5];
        cached[1] = Some(999); // deliberately wrong: must be preserved, not re-run
        cached[3] = Some(888);
        let run = run_squares(&SweepScheduler::new(2), &jobs, cached);
        assert_eq!(run.executed(), 3);
        assert_eq!(
            run.into_complete().unwrap(),
            vec![0, 999, 4, 888, 16],
            "cached slots must pass through untouched"
        );
    }

    #[test]
    fn budget_executes_a_deterministic_prefix_and_resume_completes() {
        let jobs = square_jobs(7);
        let budgeted = SweepScheduler::new(4).with_budget(3);
        let first = run_squares(&budgeted, &jobs, vec![None; 7]);
        assert_eq!(first.executed(), 3);
        assert_eq!(first.completed(), 3);
        assert!(!first.is_complete());
        assert_eq!(
            first.results()[..3],
            [Some(0), Some(1), Some(4)],
            "budget must take pending jobs in job-id order"
        );
        assert!(first.clone().into_complete().is_err());

        // Resume from the partial slots: only the tail runs.
        let resumed = run_squares(&SweepScheduler::new(2), &jobs, first.into_results());
        assert_eq!(resumed.executed(), 4);
        let uninterrupted = run_squares(&SweepScheduler::new(1), &jobs, vec![None; 7]);
        assert_eq!(
            resumed.results(),
            uninterrupted.results(),
            "interrupt + resume must reproduce the uninterrupted grid"
        );
    }

    #[test]
    fn zero_budget_runs_nothing() {
        let jobs = square_jobs(4);
        let run = run_squares(&SweepScheduler::new(2).with_budget(0), &jobs, vec![None; 4]);
        assert_eq!(run.executed(), 0);
        assert_eq!(run.completed(), 0);
    }

    #[test]
    fn job_errors_surface_the_smallest_failing_id() {
        let jobs = square_jobs(8);
        for threads in [1, 4] {
            let err = SweepScheduler::new(threads)
                .run(&jobs, vec![None; 8], |id, &j| {
                    if j % 3 == 2 {
                        Err(SimError::InvalidConfig {
                            reason: format!("job {id} failed"),
                        })
                    } else {
                        Ok(j)
                    }
                })
                .unwrap_err();
            assert_eq!(
                err,
                SimError::InvalidConfig {
                    reason: "job 2 failed".into()
                },
                "threads={threads} must report the smallest failing job id"
            );
        }
    }

    #[test]
    fn slot_length_mismatch_is_rejected() {
        let jobs = square_jobs(3);
        let err = SweepScheduler::new(1)
            .run(&jobs, vec![None::<usize>; 2], |_, &j| Ok(j))
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig { .. }));
    }

    #[test]
    #[should_panic(expected = "threads must be at least 1")]
    fn zero_threads_rejected() {
        let _ = SweepScheduler::new(0);
    }

    #[test]
    fn checkpoint_validates_fingerprint_and_length() {
        let cp = SweepCheckpoint::<usize>::new("grid-v1", 4);
        assert_eq!(cp.fingerprint(), "grid-v1");
        assert_eq!(cp.completed(), 0);
        assert!(!cp.is_complete());
        cp.validate("grid-v1", 4).unwrap();
        assert!(cp.validate("grid-v2", 4).is_err());
        assert!(cp.validate("grid-v1", 5).is_err());
    }

    #[test]
    fn checkpoint_absorbs_runs_and_tracks_completion() {
        let jobs = square_jobs(5);
        let mut cp = SweepCheckpoint::new("squares", jobs.len());
        let partial = run_squares(
            &SweepScheduler::new(2).with_budget(2),
            &jobs,
            cp.results().to_vec(),
        );
        cp.absorb(partial);
        assert_eq!(cp.completed(), 2);
        let rest = run_squares(&SweepScheduler::new(2), &jobs, cp.into_results());
        assert!(rest.is_complete());
        assert_eq!(rest.into_complete().unwrap(), vec![0, 1, 4, 9, 16]);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn checkpoint_serde_round_trips() {
        let cp = SweepCheckpoint::from_parts("grid-v1", vec![Some(7usize), None, Some(9)]);
        let json = serde_json::to_string(&cp).unwrap();
        assert_eq!(
            json, "{\"fingerprint\":\"grid-v1\",\"results\":[7,null,9]}",
            "schema is part of the resume contract"
        );
        let back: SweepCheckpoint<usize> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cp);
        assert!(serde_json::from_str::<SweepCheckpoint<usize>>("{\"results\":[]}").is_err());
    }
}
