//! Simulation engine for connectivity of (mobile) wireless ad hoc
//! networks.
//!
//! This crate re-implements — and substantially accelerates — the
//! simulator described in §4.1 of Santi & Blough (DSN 2002). The
//! paper's simulator takes `r`, `n`, `l`, `d`, a number of iterations
//! and a number of mobility steps, and reports the percentage of
//! connected communication graphs plus the average and minimum size of
//! the largest connected component. That literal interface is
//! [`simulate_fixed_range`].
//!
//! The accelerated interface exploits a monotonicity observation (see
//! DESIGN.md): for fixed node positions, connectivity is monotone in
//! the transmitting range, and the per-step **critical range** `c_t`
//! (longest MST edge, [`manet_graph::critical_range`]) determines
//! connectivity at *every* range simultaneously: the graph at step `t`
//! is connected at range `r` iff `c_t <= r`. One pass over a trajectory
//! therefore yields:
//!
//! * `r100 = max_t c_t`, `r90 = Q_{0.90}(c_t)`, `r10 = Q_{0.10}(c_t)`,
//!   `r0 = min_t c_t` — the paper's Figures 2–3 ([`RangeQuantiles`]);
//! * the average largest-component size at any range, and its inverses
//!   `rl90/rl75/rl50` — Figures 4–6 ([`profile::RangeSizeProfile`]);
//! * the availability (fraction of connected steps) at any fixed `r`.
//!
//! A bisection-based [`search`] path recomputes the same quantities the
//! slow way (fresh simulation per candidate range); tests hold the two
//! paths equal.
//!
//! Beyond the paper's snapshot metrics, the [`trace`] module drives the
//! `manet-trace` temporal subsystem from the same observer machinery:
//! [`simulate_trace`] streams per-step edge deltas
//! ([`manet_graph::DynamicGraph`]) into link-lifetime, inter-contact,
//! isolation and outage/repair distributions.
//!
//! Every pipeline above runs through one step-driver, the [`stream`]
//! module's [`ConnectivityStream`]: it owns the per-step
//! `DynamicGraph::advance` + `DynamicComponents::apply` loop and hands
//! each [`ConnectivityObserver`] a [`StepView`] with positions plus
//! (for range-bound pipelines) the snapshot, the incremental
//! components, and the edge delta — the hot loop is delta-apply, never
//! rebuild-and-relabel.
//!
//! Iterations run in parallel with deterministic per-iteration seeds
//! ([`manet_stats::SeedSequence`]), so results are bit-identical for a
//! given master seed regardless of thread count.
//!
//! # Example
//!
//! ```
//! use manet_mobility::RandomWaypoint;
//! use manet_sim::{simulate_critical_ranges, SimConfig};
//!
//! let config = SimConfig::<2>::builder()
//!     .nodes(16)
//!     .side(256.0)
//!     .iterations(4)
//!     .steps(50)
//!     .seed(7)
//!     .build()?;
//! let model = RandomWaypoint::new(0.1, 2.56, 20, 0.0).unwrap();
//! let results = simulate_critical_ranges(&config, &model)?;
//! let summary = results.summary()?;
//! assert!(summary.r100.mean() >= summary.r90.mean());
//! assert!(summary.r90.mean() >= summary.r10.mean());
//! # Ok::<(), manet_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod component;
pub mod config;
pub mod critical;
pub mod engine;
pub mod fixed;
pub mod profile;
pub mod quantity;
pub mod scaling;
pub mod search;
pub mod stationary;
pub mod stream;
pub mod sweep;
pub mod trace;
pub mod uptime;

pub use component::{simulate_component_ranges, ComponentRangeResults};
pub use config::SimConfig;
pub use critical::{
    simulate_critical_ranges, CriticalRangeResults, MobileRangeSummary, RangeQuantiles,
};
pub use engine::{run_simulation, StepObserver};
pub use fixed::{simulate_fixed_range, FixedRangeReport, IterationStats};
pub use manet_graph::Skin;
pub use profile::{simulate_profiles, ProfileResults, RangeSizeProfile};
pub use quantity::{measure_mobility_quantity, MobilityQuantity};
pub use scaling::{
    find_critical_range, fit_scaling_exponent, ConnectivityMetric, CriticalPoint,
    CriticalRangeSearch, ScalingExponent,
};
pub use stationary::StationaryAnalysis;
pub use stream::{
    run_connectivity_stream, ConnectivityObserver, ConnectivityStream, LinkView, StepView,
};
pub use sweep::{SweepCheckpoint, SweepRun, SweepScheduler};
pub use trace::{simulate_trace, TraceObserver};
pub use uptime::{simulate_uptime, UptimeReport, UptimeSummary};

use manet_geom::GeomError;
use manet_stats::StatsError;

/// Errors produced by the simulation engine.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A configuration parameter was invalid.
    InvalidConfig {
        /// Explanation of the failed validation.
        reason: String,
    },
    /// A geometry error surfaced while building the deployment region.
    Geometry(GeomError),
    /// A statistics error surfaced while summarizing results.
    Stats(StatsError),
    /// A temporal-trace error surfaced while pooling records.
    Trace(manet_trace::TraceError),
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            SimError::Geometry(e) => write!(f, "geometry error: {e}"),
            SimError::Stats(e) => write!(f, "statistics error: {e}"),
            SimError::Trace(e) => write!(f, "trace error: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Geometry(e) => Some(e),
            SimError::Stats(e) => Some(e),
            SimError::Trace(e) => Some(e),
            SimError::InvalidConfig { .. } => None,
        }
    }
}

impl From<GeomError> for SimError {
    fn from(e: GeomError) -> Self {
        SimError::Geometry(e)
    }
}

impl From<StatsError> for SimError {
    fn from(e: StatsError) -> Self {
        SimError::Stats(e)
    }
}

impl From<manet_trace::TraceError> for SimError {
    fn from(e: manet_trace::TraceError) -> Self {
        SimError::Trace(e)
    }
}

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        let e = SimError::InvalidConfig {
            reason: "nodes must be positive".into(),
        };
        assert!(e.to_string().contains("nodes"));
        let g: SimError = GeomError::NonFinite { name: "side" }.into();
        assert!(std::error::Error::source(&g).is_some());
        let s: SimError = StatsError::EmptySample.into();
        assert!(s.to_string().contains("statistics"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
