//! Bisection searches over the transmitting range.
//!
//! The paper found its `r_f` values by re-running the simulator at
//! candidate ranges. This module reproduces that slow path — a
//! monotone bisection driven by full re-simulation with the *same*
//! seed — so the fast quantile path of [`crate::critical`] can be
//! validated against it (they must agree, because both answer the same
//! monotone threshold question about the same trajectories).

use crate::{
    config::SimConfig, critical::simulate_critical_ranges, fixed::simulate_fixed_range, SimError,
};
use manet_mobility::Mobility;

/// Finds the smallest `r` in `[lo, hi]` with `predicate(r) == true`,
/// assuming the predicate is monotone (false below the threshold, true
/// above). Returns `hi` when even `hi` fails, `lo` when `lo` already
/// holds; the result is within `tol` of the true threshold.
///
/// # Panics
///
/// Panics if `lo > hi`, `tol <= 0`, or any bound is not finite.
pub fn bisect_monotone<F: FnMut(f64) -> bool>(lo: f64, hi: f64, tol: f64, mut predicate: F) -> f64 {
    assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
    assert!(lo <= hi, "lo {lo} must not exceed hi {hi}");
    assert!(tol > 0.0, "tolerance must be positive");
    if predicate(lo) {
        return lo;
    }
    if !predicate(hi) {
        return hi;
    }
    let (mut lo, mut hi) = (lo, hi);
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        if predicate(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

/// The slow-path `r_f`: the smallest range (within `tol`) at which the
/// fraction of connected steps reaches `fraction`, found by bisection
/// with a fresh fixed-range simulation per probe.
///
/// Deterministic for a given config seed, so it is exactly comparable
/// to [`crate::CriticalRangeResults::mean_range_for_fraction`] — and
/// the test suite holds them together.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] for `fraction` outside `[0, 1]`
/// and propagates engine errors.
pub fn find_range_for_connectivity_fraction<const D: usize, M>(
    config: &SimConfig<D>,
    model: &M,
    fraction: f64,
    tol: f64,
) -> Result<f64, SimError>
where
    M: Mobility<D> + Clone + Send + Sync,
{
    if !(0.0..=1.0).contains(&fraction) || fraction.is_nan() {
        return Err(SimError::InvalidConfig {
            reason: format!("fraction must be in [0, 1], got {fraction}"),
        });
    }
    let hi = config.region().diameter();
    let mut error = None;
    let result = bisect_monotone(1e-9, hi, tol, |r| {
        match simulate_fixed_range(config, model, r) {
            Ok(report) => report.connectivity_fraction() >= fraction,
            Err(e) => {
                error = Some(e);
                true // terminate quickly; error reported below
            }
        }
    });
    if let Some(e) = error {
        return Err(e);
    }
    Ok(result)
}

/// Convenience cross-check: computes `r_f` by both the fast
/// (critical-range quantile, pooled over iterations) and slow
/// (bisection) paths, returning `(fast, slow)`.
///
/// # Errors
///
/// Propagates errors from either path.
pub fn range_for_fraction_both_paths<const D: usize, M>(
    config: &SimConfig<D>,
    model: &M,
    fraction: f64,
    tol: f64,
) -> Result<(f64, f64), SimError>
where
    M: Mobility<D> + Clone + Send + Sync,
{
    let crit = simulate_critical_ranges(config, model)?;
    let pooled = crit.pooled()?;
    let fast = pooled.smallest_covering(fraction)?;
    let slow = find_range_for_connectivity_fraction(config, model, fraction, tol)?;
    Ok((fast, slow))
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_mobility::{RandomWaypoint, StationaryModel};

    #[test]
    fn bisection_finds_known_threshold() {
        let root = bisect_monotone(0.0, 10.0, 1e-9, |x| x >= std::f64::consts::PI);
        assert!((root - std::f64::consts::PI).abs() < 1e-8);
    }

    #[test]
    fn bisection_boundary_behaviour() {
        assert_eq!(bisect_monotone(2.0, 5.0, 1e-6, |_| true), 2.0);
        assert_eq!(bisect_monotone(2.0, 5.0, 1e-6, |_| false), 5.0);
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn bisection_rejects_inverted_bounds() {
        bisect_monotone(5.0, 2.0, 1e-6, |_| true);
    }

    #[test]
    fn fast_and_slow_paths_agree() {
        let mut b = SimConfig::<2>::builder();
        b.nodes(10).side(100.0).iterations(3).steps(25).seed(77);
        let cfg = b.build().unwrap();
        let model = RandomWaypoint::new(0.5, 2.0, 1, 0.0).unwrap();
        for fraction in [0.1, 0.5, 0.9, 1.0] {
            let (fast, slow) = range_for_fraction_both_paths(&cfg, &model, fraction, 1e-6).unwrap();
            // The slow path bisects to within tol of the exact
            // threshold, which IS the fast path's order statistic.
            assert!(
                (fast - slow).abs() < 1e-4,
                "fraction {fraction}: fast={fast}, slow={slow}"
            );
        }
    }

    #[test]
    fn stationary_case_threshold_is_ctr() {
        let mut b = SimConfig::<2>::builder();
        b.nodes(8).side(80.0).iterations(1).steps(1).seed(13);
        let cfg = b.build().unwrap();
        let model = StationaryModel::new();
        let (fast, slow) = range_for_fraction_both_paths(&cfg, &model, 1.0, 1e-7).unwrap();
        assert!((fast - slow).abs() < 1e-5);
    }

    #[test]
    fn fraction_validation() {
        let mut b = SimConfig::<2>::builder();
        b.nodes(5).side(50.0);
        let cfg = b.build().unwrap();
        let model = StationaryModel::new();
        assert!(find_range_for_connectivity_fraction(&cfg, &model, -0.1, 1e-3).is_err());
        assert!(find_range_for_connectivity_fraction(&cfg, &model, 1.1, 1e-3).is_err());
    }
}
