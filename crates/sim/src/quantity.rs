//! The "quantity of mobility" (paper §5, closing remark).
//!
//! The paper concludes that connectivity is "only marginally influenced
//! by whether motion is intentional or not, but [...] rather related to
//! the *quantity of mobility*, which can be informally defined as the
//! percentage of stationary nodes with respect to the total number of
//! nodes" — and leaves formalizing it as future work. This module
//! provides that formalization: per-step displacement statistics of a
//! campaign, so the quantity of mobility of any model/parameter choice
//! can be measured and correlated with the connectivity metrics.

use crate::{
    config::SimConfig,
    stream::{run_connectivity_stream, ConnectivityObserver, StepView},
    SimError,
};
use manet_geom::Point;
use manet_mobility::Mobility;
use manet_stats::RunningMoments;

/// Displacement statistics of one iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MobilityQuantity {
    /// Mean per-node, per-step displacement (distance units/step).
    pub mean_displacement: f64,
    /// Fraction of (node, step) pairs in which the node moved at all.
    pub moving_fraction: f64,
    /// Fraction of nodes that never moved during the whole iteration —
    /// the paper's informal "percentage of stationary nodes".
    pub never_moved_fraction: f64,
}

/// Observer measuring displacements between consecutive steps
/// (positions-only stream lane: no graph structure involved).
struct QuantityObserver<const D: usize> {
    prev: Vec<Point<D>>,
    displacement: RunningMoments,
    moved_pairs: u64,
    total_pairs: u64,
    ever_moved: Vec<bool>,
}

impl<const D: usize> ConnectivityObserver<D> for QuantityObserver<D> {
    type Output = MobilityQuantity;

    fn observe(&mut self, view: &StepView<'_, D>) {
        let (step, positions) = (view.step(), view.positions());
        if step == 0 {
            self.prev = positions.to_vec();
            self.ever_moved = vec![false; positions.len()];
            return;
        }
        for (i, (old, new)) in self.prev.iter().zip(positions).enumerate() {
            let d = old.distance(new);
            self.displacement.push(d);
            self.total_pairs += 1;
            if d > 0.0 {
                self.moved_pairs += 1;
                self.ever_moved[i] = true;
            }
        }
        self.prev.copy_from_slice(positions);
    }

    fn finish(self) -> MobilityQuantity {
        let never_moved = self.ever_moved.iter().filter(|&&m| !m).count();
        let nodes = self.ever_moved.len().max(1);
        MobilityQuantity {
            mean_displacement: if self.displacement.is_empty() {
                0.0
            } else {
                self.displacement.mean()
            },
            moving_fraction: if self.total_pairs == 0 {
                0.0
            } else {
                self.moved_pairs as f64 / self.total_pairs as f64
            },
            never_moved_fraction: never_moved as f64 / nodes as f64,
        }
    }
}

/// Measures the quantity of mobility of a campaign; returns one
/// [`MobilityQuantity`] per iteration.
///
/// Requires at least 2 steps (displacements are between consecutive
/// steps).
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] when `config.steps() < 2`, and
/// propagates engine errors.
pub fn measure_mobility_quantity<const D: usize, M>(
    config: &SimConfig<D>,
    model: &M,
) -> Result<Vec<MobilityQuantity>, SimError>
where
    M: Mobility<D> + Clone + Send + Sync,
{
    if config.steps() < 2 {
        return Err(SimError::InvalidConfig {
            reason: "measuring mobility quantity requires at least 2 steps".into(),
        });
    }
    run_connectivity_stream(config, model, None, |_| QuantityObserver {
        prev: Vec::new(),
        displacement: RunningMoments::new(),
        moved_pairs: 0,
        total_pairs: 0,
        ever_moved: Vec::new(),
    })
}

/// Mean of each quantity across iterations.
pub fn mean_quantity(per_iteration: &[MobilityQuantity]) -> Option<MobilityQuantity> {
    if per_iteration.is_empty() {
        return None;
    }
    let n = per_iteration.len() as f64;
    Some(MobilityQuantity {
        mean_displacement: per_iteration
            .iter()
            .map(|q| q.mean_displacement)
            .sum::<f64>()
            / n,
        moving_fraction: per_iteration.iter().map(|q| q.moving_fraction).sum::<f64>() / n,
        never_moved_fraction: per_iteration
            .iter()
            .map(|q| q.never_moved_fraction)
            .sum::<f64>()
            / n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_mobility::{Drunkard, RandomWalk, RandomWaypoint, StationaryModel};

    fn config(steps: usize) -> SimConfig<2> {
        let mut b = SimConfig::<2>::builder();
        b.nodes(50).side(100.0).iterations(3).steps(steps).seed(99);
        b.build().unwrap()
    }

    #[test]
    fn requires_two_steps() {
        let cfg = config(1);
        assert!(measure_mobility_quantity(&cfg, &StationaryModel::new()).is_err());
    }

    #[test]
    fn stationary_model_has_zero_quantity() {
        let cfg = config(20);
        let qs = measure_mobility_quantity(&cfg, &StationaryModel::new()).unwrap();
        for q in qs {
            assert_eq!(q.mean_displacement, 0.0);
            assert_eq!(q.moving_fraction, 0.0);
            assert_eq!(q.never_moved_fraction, 1.0);
        }
    }

    #[test]
    fn walk_moves_everyone_every_step() {
        let cfg = config(20);
        let model = RandomWalk::new(1.0, 0.0).unwrap();
        let qs = measure_mobility_quantity(&cfg, &model).unwrap();
        let mean = mean_quantity(&qs).unwrap();
        assert!((mean.moving_fraction - 1.0).abs() < 1e-12);
        assert_eq!(mean.never_moved_fraction, 0.0);
        // Interior steps move exactly 1.0; boundary reflections less.
        assert!(mean.mean_displacement > 0.9 && mean.mean_displacement <= 1.0 + 1e-9);
    }

    #[test]
    fn drunkard_pause_probability_shows_up() {
        let cfg = config(60);
        let model = Drunkard::new(0.0, 0.3, 2.0).unwrap();
        let qs = measure_mobility_quantity(&cfg, &model).unwrap();
        let mean = mean_quantity(&qs).unwrap();
        // ~70% of (node, step) pairs move.
        assert!(
            (mean.moving_fraction - 0.7).abs() < 0.05,
            "moving fraction {}",
            mean.moving_fraction
        );
    }

    #[test]
    fn p_stationary_reflected_in_never_moved() {
        let cfg = config(40);
        let model = RandomWaypoint::new(0.5, 2.0, 0, 0.4).unwrap();
        let qs = measure_mobility_quantity(&cfg, &model).unwrap();
        let mean = mean_quantity(&qs).unwrap();
        assert!(
            (mean.never_moved_fraction - 0.4).abs() < 0.15,
            "never-moved fraction {}",
            mean.never_moved_fraction
        );
    }

    #[test]
    fn pause_time_lowers_quantity_of_mobility() {
        let cfg = config(80);
        let eager = RandomWaypoint::new(0.5, 2.0, 0, 0.0).unwrap();
        let lazy = RandomWaypoint::new(0.5, 2.0, 40, 0.0).unwrap();
        let q_eager = mean_quantity(&measure_mobility_quantity(&cfg, &eager).unwrap()).unwrap();
        let q_lazy = mean_quantity(&measure_mobility_quantity(&cfg, &lazy).unwrap()).unwrap();
        assert!(q_lazy.moving_fraction < q_eager.moving_fraction);
        assert!(q_lazy.mean_displacement < q_eager.mean_displacement);
    }

    #[test]
    fn mean_quantity_empty_is_none() {
        assert!(mean_quantity(&[]).is_none());
    }
}
