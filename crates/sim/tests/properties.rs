//! Property-based tests for the simulation engine: the fast
//! critical-range path is held to agree with the literal fixed-range
//! simulator on identical trajectories, for random configurations.

use manet_mobility::{Drunkard, RandomWaypoint, StationaryModel};
use manet_sim::{
    simulate_component_ranges, simulate_critical_ranges, simulate_fixed_range, simulate_profiles,
    SimConfig,
};
use proptest::prelude::*;

fn config(nodes: usize, side: f64, iterations: usize, steps: usize, seed: u64) -> SimConfig<2> {
    let mut b = SimConfig::<2>::builder();
    b.nodes(nodes)
        .side(side)
        .iterations(iterations)
        .steps(steps)
        .seed(seed)
        .profile_bins(256);
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn quantile_metrics_are_ordered(
        nodes in 4usize..16,
        side in 50.0..300.0f64,
        seed in any::<u64>(),
    ) {
        let cfg = config(nodes, side, 3, 20, seed);
        let model = RandomWaypoint::new(0.1, 0.02 * side, 2, 0.0).unwrap();
        let res = simulate_critical_ranges(&cfg, &model).unwrap();
        for q in res.quantiles_per_iteration().unwrap() {
            prop_assert!(q.r100 >= q.r90 && q.r90 >= q.r10 && q.r10 >= q.r0);
            prop_assert!(q.r0 >= 0.0);
            prop_assert!(q.r100 <= side * 2f64.sqrt() + 1e-9);
        }
    }

    #[test]
    fn fixed_range_agrees_with_critical_series(
        nodes in 4usize..12,
        side in 50.0..200.0f64,
        r_frac in 0.05..1.0f64,
        seed in any::<u64>(),
    ) {
        let cfg = config(nodes, side, 2, 15, seed);
        let model = Drunkard::new(0.1, 0.2, 0.05 * side).unwrap();
        let crit = simulate_critical_ranges(&cfg, &model).unwrap();
        let r = r_frac * side;
        let fixed = simulate_fixed_range(&cfg, &model, r).unwrap();
        prop_assert!(
            (fixed.connectivity_fraction() - crit.connectivity_fraction_at(r)).abs() < 1e-12
        );
    }

    #[test]
    fn profiles_agree_with_fixed_range_component_sizes(
        nodes in 4usize..12,
        side in 50.0..200.0f64,
        seed in any::<u64>(),
    ) {
        // Evaluate the average largest component two ways at a grid
        // boundary: merge-profile grid vs direct fixed-range graphs.
        let cfg = config(nodes, side, 2, 10, seed);
        let model = StationaryModel::new();
        let profiles = simulate_profiles(&cfg, &model).unwrap();
        let pooled = profiles.pooled().unwrap();
        let r = pooled.bin_width() * 64.0; // exactly on the grid
        let via_profile = pooled.average_size_at(r);
        let via_fixed = simulate_fixed_range(&cfg, &model, r).unwrap().avg_largest();
        prop_assert!(
            (via_profile - via_fixed).abs() < 1e-9,
            "profile {via_profile} vs fixed {via_fixed}"
        );
    }

    #[test]
    fn determinism_across_thread_counts(
        nodes in 4usize..10,
        side in 50.0..150.0f64,
        seed in any::<u64>(),
    ) {
        let mk = |threads: usize| {
            let mut b = SimConfig::<2>::builder();
            b.nodes(nodes)
                .side(side)
                .iterations(4)
                .steps(10)
                .seed(seed)
                .threads(threads);
            b.build().unwrap()
        };
        let model = RandomWaypoint::new(0.1, 2.0, 1, 0.3).unwrap();
        let a = simulate_critical_ranges(&mk(1), &model).unwrap();
        let b = simulate_critical_ranges(&mk(3), &model).unwrap();
        for (x, y) in a.per_iteration().iter().zip(b.per_iteration()) {
            prop_assert_eq!(x.as_sorted(), y.as_sorted());
        }
    }

    #[test]
    fn component_target_monotone_in_fraction(
        nodes in 6usize..14,
        side in 50.0..200.0f64,
        seed in any::<u64>(),
    ) {
        let cfg = config(nodes, side, 2, 10, seed);
        let model = RandomWaypoint::new(0.1, 2.0, 0, 0.0).unwrap();
        let half = simulate_component_ranges(&cfg, &model, 0.5).unwrap();
        let full = simulate_component_ranges(&cfg, &model, 1.0).unwrap();
        let r_half = half.mean_range_for_time_fraction(0.9).unwrap();
        let r_full = full.mean_range_for_time_fraction(0.9).unwrap();
        prop_assert!(r_half <= r_full + 1e-9);
    }

    #[test]
    fn stationary_steps_equal_single_step(
        nodes in 4usize..12,
        side in 50.0..200.0f64,
        seed in any::<u64>(),
    ) {
        // With the stationary model, running many steps is the same
        // observation repeated: all quantile metrics coincide.
        let cfg = config(nodes, side, 2, 25, seed);
        let res = simulate_critical_ranges(&cfg, &StationaryModel::new()).unwrap();
        for q in res.quantiles_per_iteration().unwrap() {
            prop_assert!((q.r100 - q.r0).abs() < 1e-12);
        }
    }
}
