//! Property-based tests for the simulation engine: the fast
//! critical-range path is held to agree with the literal fixed-range
//! simulator on identical trajectories, for random configurations.

use manet_mobility::{Drunkard, RandomWaypoint, StationaryModel};
use manet_sim::{
    run_connectivity_stream, simulate_component_ranges, simulate_critical_ranges,
    simulate_fixed_range, simulate_profiles, SimConfig,
};
use proptest::prelude::*;

fn config(nodes: usize, side: f64, iterations: usize, steps: usize, seed: u64) -> SimConfig<2> {
    let mut b = SimConfig::<2>::builder();
    b.nodes(nodes)
        .side(side)
        .iterations(iterations)
        .steps(steps)
        .seed(seed)
        .profile_bins(256);
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn quantile_metrics_are_ordered(
        nodes in 4usize..16,
        side in 50.0..300.0f64,
        seed in any::<u64>(),
    ) {
        let cfg = config(nodes, side, 3, 20, seed);
        let model = RandomWaypoint::new(0.1, 0.02 * side, 2, 0.0).unwrap();
        let res = simulate_critical_ranges(&cfg, &model).unwrap();
        for q in res.quantiles_per_iteration().unwrap() {
            prop_assert!(q.r100 >= q.r90 && q.r90 >= q.r10 && q.r10 >= q.r0);
            prop_assert!(q.r0 >= 0.0);
            prop_assert!(q.r100 <= side * 2f64.sqrt() + 1e-9);
        }
    }

    #[test]
    fn fixed_range_agrees_with_critical_series(
        nodes in 4usize..12,
        side in 50.0..200.0f64,
        r_frac in 0.05..1.0f64,
        seed in any::<u64>(),
    ) {
        let cfg = config(nodes, side, 2, 15, seed);
        let model = Drunkard::new(0.1, 0.2, 0.05 * side).unwrap();
        let crit = simulate_critical_ranges(&cfg, &model).unwrap();
        let r = r_frac * side;
        let fixed = simulate_fixed_range(&cfg, &model, r).unwrap();
        prop_assert!(
            (fixed.connectivity_fraction() - crit.connectivity_fraction_at(r)).abs() < 1e-12
        );
    }

    #[test]
    fn profiles_agree_with_fixed_range_component_sizes(
        nodes in 4usize..12,
        side in 50.0..200.0f64,
        seed in any::<u64>(),
    ) {
        // Evaluate the average largest component two ways at a grid
        // boundary: merge-profile grid vs direct fixed-range graphs.
        let cfg = config(nodes, side, 2, 10, seed);
        let model = StationaryModel::new();
        let profiles = simulate_profiles(&cfg, &model).unwrap();
        let pooled = profiles.pooled().unwrap();
        let r = pooled.bin_width() * 64.0; // exactly on the grid
        let via_profile = pooled.average_size_at(r);
        let via_fixed = simulate_fixed_range(&cfg, &model, r).unwrap().avg_largest();
        prop_assert!(
            (via_profile - via_fixed).abs() < 1e-9,
            "profile {via_profile} vs fixed {via_fixed}"
        );
    }

    #[test]
    fn determinism_across_thread_counts(
        nodes in 4usize..10,
        side in 50.0..150.0f64,
        seed in any::<u64>(),
    ) {
        let mk = |threads: usize| {
            let mut b = SimConfig::<2>::builder();
            b.nodes(nodes)
                .side(side)
                .iterations(4)
                .steps(10)
                .seed(seed)
                .threads(threads);
            b.build().unwrap()
        };
        let model = RandomWaypoint::new(0.1, 2.0, 1, 0.3).unwrap();
        let a = simulate_critical_ranges(&mk(1), &model).unwrap();
        let b = simulate_critical_ranges(&mk(3), &model).unwrap();
        for (x, y) in a.per_iteration().iter().zip(b.per_iteration()) {
            prop_assert_eq!(x.as_sorted(), y.as_sorted());
        }
    }

    #[test]
    fn component_target_monotone_in_fraction(
        nodes in 6usize..14,
        side in 50.0..200.0f64,
        seed in any::<u64>(),
    ) {
        let cfg = config(nodes, side, 2, 10, seed);
        let model = RandomWaypoint::new(0.1, 2.0, 0, 0.0).unwrap();
        let half = simulate_component_ranges(&cfg, &model, 0.5).unwrap();
        let full = simulate_component_ranges(&cfg, &model, 1.0).unwrap();
        let r_half = half.mean_range_for_time_fraction(0.9).unwrap();
        let r_full = full.mean_range_for_time_fraction(0.9).unwrap();
        prop_assert!(r_half <= r_full + 1e-9);
    }

    #[test]
    fn stationary_steps_equal_single_step(
        nodes in 4usize..12,
        side in 50.0..200.0f64,
        seed in any::<u64>(),
    ) {
        // With the stationary model, running many steps is the same
        // observation repeated: all quantile metrics coincide.
        let cfg = config(nodes, side, 2, 25, seed);
        let res = simulate_critical_ranges(&cfg, &StationaryModel::new()).unwrap();
        for q in res.quantiles_per_iteration().unwrap() {
            prop_assert!((q.r100 - q.r0).abs() < 1e-12);
        }
    }
}

// ---------------------------------------------------------------------------
// The connectivity stream: incremental per-step state equals the
// from-scratch oracle through the full engine (placement, mobility,
// parallel iterations), for random configurations and models.
// ---------------------------------------------------------------------------

mod stream_oracle {
    use manet_graph::{AdjacencyList, ComponentSummary};
    use manet_sim::{ConnectivityObserver, StepView};

    /// Per-step oracle checker: recomputes the snapshot, its edge
    /// delta against the previous step, and its components from
    /// scratch, and compares all three against the stream's
    /// incremental state.
    pub struct OracleObserver {
        pub range: f64,
        pub checked_steps: usize,
        pub prev: Option<AdjacencyList>,
    }

    impl<const D: usize> ConnectivityObserver<D> for OracleObserver {
        type Output = usize;

        fn observe(&mut self, view: &StepView<'_, D>) {
            let rebuilt = AdjacencyList::from_points_brute_force(view.positions(), self.range);
            assert_eq!(view.graph(), &rebuilt, "snapshot diverged from rebuild");
            let older = self
                .prev
                .take()
                .unwrap_or_else(|| AdjacencyList::empty(rebuilt.len()));
            assert_eq!(
                view.diff(),
                &older.diff(&rebuilt),
                "edge delta diverged from the rebuild-and-diff oracle"
            );
            let oracle = ComponentSummary::of(&rebuilt);
            let incremental = view.components();
            assert_eq!(incremental.count(), oracle.count());
            assert_eq!(incremental.largest_size(), oracle.largest_size());
            let mut sizes = oracle.sizes().to_vec();
            sizes.sort_unstable();
            assert_eq!(incremental.sizes_sorted(), sizes);
            assert_eq!(
                incremental.singleton_count(),
                rebuilt.isolated_nodes().len(),
                "singleton components must be the degree-0 nodes"
            );
            self.prev = Some(rebuilt);
            self.checked_steps += 1;
        }

        fn finish(self) -> usize {
            self.checked_steps
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn stream_components_match_oracle_over_models(
        model_kind in 0u8..3,
        nodes in 2usize..20,
        side in 50.0..200.0f64,
        range_frac in 0.05..0.5f64,
        steps in 1usize..25,
        seed in any::<u64>(),
    ) {
        let cfg = config(nodes, side, 2, steps, seed);
        let range = range_frac * side;
        let run = |obs_range: f64| {
            let make = |_| stream_oracle::OracleObserver {
                range: obs_range,
                checked_steps: 0,
                prev: None,
            };
            match model_kind % 3 {
                0 => run_connectivity_stream(
                    &cfg, &StationaryModel::new(), Some(obs_range), make),
                1 => run_connectivity_stream(
                    &cfg,
                    &RandomWaypoint::new(0.1, 0.05 * side, 1, 0.1).unwrap(),
                    Some(obs_range),
                    make,
                ),
                _ => run_connectivity_stream(
                    &cfg,
                    &Drunkard::new(0.1, 0.3, 0.05 * side).unwrap(),
                    Some(obs_range),
                    make,
                ),
            }
        };
        let outs = run(range).unwrap();
        prop_assert_eq!(outs, vec![steps, steps]);
    }
}

// ---------------------------------------------------------------------------
// End-to-end byte-identity of the incremental spine: for every registry
// model, `simulate_trace` (moved-node kernel + incremental components)
// must produce a TraceSummary identical to a hand-rolled replay of the
// same trajectories through the from_points + diff oracle.
// ---------------------------------------------------------------------------

mod trace_identity {
    use manet_geom::Point;
    use manet_graph::AdjacencyList;
    use manet_sim::{SimConfig, StepObserver};
    use manet_trace::{TemporalRecord, TraceRecorder};

    /// Records every step's positions of one iteration.
    pub struct PositionCollector(pub Vec<Vec<Point<2>>>);

    impl StepObserver<2> for PositionCollector {
        type Output = Vec<Vec<Point<2>>>;
        fn observe(&mut self, _step: usize, positions: &[Point<2>]) {
            self.0.push(positions.to_vec());
        }
        fn finish(self) -> Self::Output {
            self.0
        }
    }

    /// Folds one trajectory through the oracle path (full rebuild +
    /// full diff per step) into a temporal record.
    pub fn oracle_record(
        cfg: &SimConfig<2>,
        steps: &[Vec<Point<2>>],
        range: f64,
    ) -> TemporalRecord {
        let mut rec = TraceRecorder::new(cfg.nodes(), cfg.steps());
        let mut prev = AdjacencyList::empty(cfg.nodes());
        for pts in steps {
            let next = AdjacencyList::from_points(pts, cfg.side(), range);
            rec.observe(&prev.diff(&next), &next);
            prev = next;
        }
        rec.finish()
    }
}

#[test]
fn trace_summary_identical_to_oracle_replay_for_every_registry_model() {
    use manet_mobility::{ModelRegistry, PaperScale};
    use manet_sim::{run_simulation, simulate_trace};
    use manet_trace::TraceSummary;

    let side = 150.0;
    let range = 40.0;
    let registry = ModelRegistry::<2>::with_builtins();
    let scale = PaperScale::new(side).with_pause(3);
    for name in registry.names() {
        let model = registry.build(name, &scale).unwrap();
        let cfg = config(14, side, 2, 25, 20020623);
        let incremental = simulate_trace(&cfg, &model, range).unwrap();
        // Same config + model + master seed => the engine reproduces
        // identical trajectories for the collector run.
        let trajectories = run_simulation(&cfg, &model, |_| {
            trace_identity::PositionCollector(Vec::new())
        })
        .unwrap();
        let records: Vec<_> = trajectories
            .iter()
            .map(|steps| trace_identity::oracle_record(&cfg, steps, range))
            .collect();
        let mut oracle = TraceSummary::aggregate(&records).unwrap();
        // The kernel counters are *path* telemetry, not temporal
        // metrics: the oracle replay deliberately rebuilds from
        // scratch every step, so its counters differ by design. They
        // are cross-checked against brute-force recomputation in
        // crates/graph/tests/properties.rs instead.
        oracle.kernel = incremental.kernel;
        assert_eq!(incremental, oracle, "{name}: TraceSummary diverged");
    }
}

// ---------------------------------------------------------------------------
// Displacement-bound violations through the whole stream: a model that
// lies about its bound must still yield exact results (the kernel falls
// back to the full diff), never silent corruption.
// ---------------------------------------------------------------------------

#[test]
fn stream_survives_models_that_lie_about_their_displacement_bound() {
    use manet_geom::{Point, Region};
    use manet_mobility::Mobility;
    use manet_sim::run_connectivity_stream;
    use rand::Rng;

    /// Teleports every node every step while declaring a 0.5 bound.
    #[derive(Clone, Debug)]
    struct LyingTeleporter;

    impl Mobility<2> for LyingTeleporter {
        fn init(&mut self, _: &[Point<2>], _: &Region<2>, _: &mut dyn Rng) {}
        fn step(&mut self, positions: &mut [Point<2>], region: &Region<2>, rng: &mut dyn Rng) {
            for p in positions {
                *p = region.sample_uniform(rng);
            }
        }
        fn name(&self) -> &'static str {
            "lying-teleporter"
        }
        fn max_step_displacement(&self) -> Option<f64> {
            Some(0.5) // a lie: steps teleport across the region
        }
    }

    let cfg = config(16, 120.0, 3, 20, 808);
    let outs = run_connectivity_stream(&cfg, &LyingTeleporter, Some(35.0), |_| {
        stream_oracle::OracleObserver {
            range: 35.0,
            checked_steps: 0,
            prev: None,
        }
    })
    .unwrap();
    assert_eq!(outs, vec![20, 20, 20]);
}
