//! Shared experiment plumbing: options, parameter sets, table/CSV
//! output, and the `r_stationary` calibration used by every figure.

use manet_core::{AnyModel, CoreError, ModelRegistry, MtrProblem, PaperScale};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// The paper's system sizes: `l ∈ {256, 1K, 4K, 16K}`, `n = √l`.
pub const L_VALUES: [f64; 4] = [256.0, 1024.0, 4096.0, 16384.0];

/// `n = √l` for each entry of [`L_VALUES`].
pub fn nodes_for_side(l: f64) -> usize {
    (l.sqrt().round() as usize).max(2)
}

/// The connection-probability quantile defining `r_stationary`.
pub const R_STATIONARY_QUANTILE: f64 = 0.99;

/// The paper's simulation horizon, to which pause times are anchored.
pub const PAPER_STEPS: usize = 10_000;

/// Scale preset / overrides parsed from the command line.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Iterations per campaign.
    pub iterations: usize,
    /// Mobility steps per iteration.
    pub steps: usize,
    /// Stationary placements for `r_stationary`.
    pub placements: usize,
    /// Master seed.
    pub seed: u64,
    /// Pinned thread count (None = auto).
    pub threads: Option<usize>,
    /// `--step-threads N`: intra-step worker threads for the sharded
    /// step kernel's bulk rescan (None = serial). A performance knob:
    /// every artifact is byte-identical across values, which CI pins.
    pub step_threads: Option<usize>,
    /// `--skin auto|off|RADIUS`: the step kernel's Verlet-cache skin
    /// policy (None = the kernel default, auto). Like `--step-threads`
    /// a performance knob only: artifacts are byte-identical across
    /// settings, which CI pins.
    pub skin: Option<manet_core::graph::Skin>,
    /// CSV output directory.
    pub out_dir: PathBuf,
    /// Mobility models to sweep (`--models a,b,c`); `None` keeps each
    /// experiment's default list.
    pub models: Option<Vec<String>>,
    /// Node-count override (`--nodes N`) for the `trace`, `fixed`,
    /// `uptime` and `quantity` experiments — the large-`n` lever for
    /// exercising the sharded step kernel at scale from every
    /// pipeline; `None` keeps each experiment's paper-tied default.
    pub nodes: Option<usize>,
    /// `--metrics PATH`: write a `metrics.json` artifact (run manifest,
    /// deterministic kernel counters, spans when profiling) on success.
    pub metrics: Option<PathBuf>,
    /// `--profile`: arm the wall-clock span timer and print the span
    /// table to stderr (tool-crate-only wall clock, per lint R2).
    pub profile: bool,
    /// `--progress`: coarse stderr progress lines (sweep point i/N),
    /// kept strictly off stdout and artifacts.
    pub progress: bool,
    /// `--target F`: connectivity level in `(0, 1]` the critical-range
    /// bisection thresholds (critical-scaling; default 0.99).
    pub target: f64,
    /// `--k-target K`: threshold on `k`-vertex-connectivity instead of
    /// the giant-component fraction (critical-scaling).
    pub k_target: Option<usize>,
    /// `--n-sweep a,b,c`: node counts of the finite-size scaling sweep
    /// (critical-scaling); `None` keeps the default sweep.
    pub n_sweep: Option<Vec<usize>>,
    /// `--checkpoint PATH`: persist completed sweep cells to `PATH` and
    /// resume from it when present (critical-scaling).
    pub checkpoint: Option<PathBuf>,
    /// `--max-cells N`: execute at most `N` pending sweep cells this
    /// invocation, then checkpoint and exit without final artifacts —
    /// the budget knob the resume test interrupts a grid with.
    pub max_cells: Option<usize>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            iterations: 20,
            steps: 2_000,
            placements: 1_000,
            seed: 20_020_623, // DSN 2002 conference date
            threads: None,
            step_threads: None,
            skin: None,
            out_dir: PathBuf::from("results"),
            models: None,
            nodes: None,
            metrics: None,
            profile: false,
            progress: false,
            target: 0.99,
            k_target: None,
            n_sweep: None,
            checkpoint: None,
            max_cells: None,
        }
    }
}

impl RunOptions {
    /// Parses `--flag value` style options.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut opts = RunOptions::default();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => {
                    opts.iterations = 5;
                    opts.steps = 500;
                    opts.placements = 200;
                }
                "--paper" => {
                    opts.iterations = 50;
                    opts.steps = PAPER_STEPS;
                    opts.placements = 5_000;
                }
                "--iterations" => opts.iterations = take_usize(args, &mut i)?,
                "--steps" => opts.steps = take_usize(args, &mut i)?,
                "--placements" => opts.placements = take_usize(args, &mut i)?,
                "--nodes" => opts.nodes = Some(take_usize(args, &mut i)?),
                "--seed" => opts.seed = take_usize(args, &mut i)? as u64,
                "--threads" => opts.threads = Some(take_usize(args, &mut i)?),
                "--step-threads" => opts.step_threads = Some(take_usize(args, &mut i)?),
                "--skin" => {
                    i += 1;
                    let v = args.get(i).ok_or("--skin requires auto, off or a radius")?;
                    opts.skin = Some(v.parse().map_err(|e| format!("--skin: {e}"))?);
                }
                "--out" => {
                    i += 1;
                    let v = args.get(i).ok_or("--out requires a directory")?;
                    opts.out_dir = PathBuf::from(v);
                }
                "--metrics" => {
                    i += 1;
                    let v = args.get(i).ok_or("--metrics requires a file path")?;
                    opts.metrics = Some(PathBuf::from(v));
                }
                "--profile" => opts.profile = true,
                "--progress" => opts.progress = true,
                "--target" => opts.target = take_f64(args, &mut i)?,
                "--k-target" => opts.k_target = Some(take_usize(args, &mut i)?),
                "--max-cells" => opts.max_cells = Some(take_usize(args, &mut i)?),
                "--checkpoint" => {
                    i += 1;
                    let v = args.get(i).ok_or("--checkpoint requires a file path")?;
                    opts.checkpoint = Some(PathBuf::from(v));
                }
                "--n-sweep" => {
                    i += 1;
                    let v = args
                        .get(i)
                        .ok_or("--n-sweep requires a comma-separated list")?;
                    let ns: Vec<usize> = v
                        .split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(|s| {
                            s.parse()
                                .map_err(|_| format!("invalid node count `{s}` in --n-sweep"))
                        })
                        .collect::<Result<_, String>>()?;
                    if ns.is_empty() {
                        return Err("--n-sweep requires at least one node count".into());
                    }
                    opts.n_sweep = Some(ns);
                }
                "--models" => {
                    i += 1;
                    let v = args
                        .get(i)
                        .ok_or("--models requires a comma-separated list")?;
                    let registry = ModelRegistry::<2>::with_builtins();
                    let names: Vec<String> = v
                        .split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(String::from)
                        .collect();
                    if names.is_empty() {
                        return Err("--models requires at least one model name".into());
                    }
                    for name in &names {
                        if !registry.contains(name) {
                            return Err(format!(
                                "unknown model `{name}`; known models: {}",
                                registry.names().join(", ")
                            ));
                        }
                    }
                    opts.models = Some(names);
                }
                // Sub-command words (e.g. `theory t1`) are consumed by
                // the caller; tolerate bare words here.
                w if !w.starts_with("--") => {}
                other => return Err(format!("unknown option `{other}`")),
            }
            i += 1;
        }
        if opts.iterations == 0 || opts.steps == 0 || opts.placements == 0 {
            return Err("iterations, steps and placements must be positive".into());
        }
        if opts.nodes == Some(0) {
            return Err("--nodes must be positive".into());
        }
        if opts.step_threads == Some(0) {
            return Err("--step-threads must be positive".into());
        }
        if !(opts.target.is_finite() && opts.target > 0.0 && opts.target <= 1.0) {
            return Err(format!("--target must be in (0, 1], got {}", opts.target));
        }
        if opts.k_target == Some(0) {
            return Err("--k-target must be at least 1".into());
        }
        if let Some(ns) = &opts.n_sweep {
            if ns.iter().any(|&n| n < 2) {
                return Err("--n-sweep node counts must be at least 2".into());
            }
        }
        Ok(opts)
    }

    /// Pause times the paper anchors to its 10000-step horizon, scaled
    /// to this run's horizon (identity under `--paper`).
    pub fn scale_steps(&self, paper_value: u32) -> u32 {
        ((paper_value as f64) * self.steps as f64 / PAPER_STEPS as f64).round() as u32
    }

    /// The registry scale for side `l`: the paper's pause horizon
    /// scaled to this run's step count.
    pub fn paper_scale(&self, l: f64) -> PaperScale {
        PaperScale::new(l).with_pause(self.scale_steps(2000))
    }

    /// Resolves one registry model at side `l` with run-scaled pauses.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::Model`] for unknown names or
    /// scale-incompatible parameters.
    pub fn model(&self, name: &str, l: f64) -> Result<AnyModel<2>, CoreError> {
        Ok(ModelRegistry::<2>::with_builtins().build(name, &self.paper_scale(l))?)
    }

    /// The model sweep for an experiment: the `--models` list when
    /// given, otherwise `default_names`, each resolved through the
    /// registry at side `l` and paired with its registry name.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::Model`].
    pub fn resolve_models(
        &self,
        default_names: &[&str],
        l: f64,
    ) -> Result<Vec<(String, AnyModel<2>)>, CoreError> {
        let names: Vec<String> = match &self.models {
            Some(list) => list.clone(),
            None => default_names.iter().map(|s| s.to_string()).collect(),
        };
        // One registry for the whole sweep, not one per name.
        let registry = ModelRegistry::<2>::with_builtins();
        let scale = self.paper_scale(l);
        names
            .into_iter()
            .map(|name| {
                let model = registry.build(&name, &scale)?;
                Ok((name, model))
            })
            .collect()
    }

    /// The paper's random waypoint model for side `l` (§4.2 defaults),
    /// pause time scaled to the run horizon.
    pub fn paper_waypoint(&self, l: f64) -> Result<AnyModel<2>, CoreError> {
        self.model("waypoint", l)
    }

    /// The paper's drunkard model for side `l` (§4.2 defaults).
    pub fn paper_drunkard(&self, l: f64) -> Result<AnyModel<2>, CoreError> {
        self.model("drunkard", l)
    }
}

fn take_usize(args: &[String], i: &mut usize) -> Result<usize, String> {
    *i += 1;
    let v = args
        .get(*i)
        .ok_or_else(|| format!("{} requires a value", args[*i - 1]))?;
    v.parse()
        .map_err(|_| format!("invalid value `{v}` for {}", args[*i - 1]))
}

fn take_f64(args: &[String], i: &mut usize) -> Result<f64, String> {
    *i += 1;
    let v = args
        .get(*i)
        .ok_or_else(|| format!("{} requires a value", args[*i - 1]))?;
    v.parse()
        .map_err(|_| format!("invalid value `{v}` for {}", args[*i - 1]))
}

/// Density-preserving region side for `n` nodes: anchored so the
/// paper's smallest system (`n = 16`, `l = 256`) keeps its node
/// density at every sweep size (`l ∝ √n`, i.e. `n / l²` constant).
pub fn side_for(n: usize) -> f64 {
    64.0 * (n as f64).sqrt()
}

/// Computes `r_stationary` for `(n, l)` at the standard quantile.
pub fn r_stationary(opts: &RunOptions, l: f64) -> Result<f64, CoreError> {
    r_stationary_for(opts, l, nodes_for_side(l))
}

/// [`r_stationary`] at an explicit node count (the `--nodes` override).
pub fn r_stationary_for(opts: &RunOptions, l: f64, n: usize) -> Result<f64, CoreError> {
    let problem = MtrProblem::<2>::new(n, l)?;
    problem.r_stationary(R_STATIONARY_QUANTILE, opts.placements, opts.seed ^ 0x5747)
}

/// A simple aligned-table printer for stdout.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut line = String::new();
        for (h, w) in self.headers.iter().zip(&widths) {
            let _ = write!(line, "{h:>w$}  ");
        }
        println!("{}", line.trim_end());
        println!("{}", "-".repeat(line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (c, w) in row.iter().zip(&widths) {
                let _ = write!(line, "{c:>w$}  ");
            }
            println!("{}", line.trim_end());
        }
    }

    /// Writes the table as CSV to `out_dir/name.csv`.
    pub fn write_csv(&self, out_dir: &Path, name: &str) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(out_dir)?;
        let path = out_dir.join(format!("{name}.csv"));
        let mut text = self.headers.join(",");
        text.push('\n');
        for row in &self.rows {
            text.push_str(&row.join(","));
            text.push('\n');
        }
        std::fs::write(&path, text)?;
        Ok(path)
    }
}

/// Formats a float compactly for tables.
pub fn fmt(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1000.0 {
        format!("{x:.1}")
    } else if x.abs() >= 1.0 {
        format!("{x:.3}")
    } else {
        format!("{x:.4}")
    }
}

/// Prints a section banner.
pub fn banner(title: &str) {
    println!();
    println!("== {title} ==");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<RunOptions, String> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        RunOptions::parse(&owned)
    }

    #[test]
    fn defaults_are_mid_scale() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.iterations, 20);
        assert_eq!(o.steps, 2_000);
        assert_eq!(o.placements, 1_000);
        assert_eq!(o.out_dir, PathBuf::from("results"));
    }

    #[test]
    fn quick_and_paper_presets() {
        let q = parse(&["--quick"]).unwrap();
        assert_eq!((q.iterations, q.steps), (5, 500));
        let p = parse(&["--paper"]).unwrap();
        assert_eq!((p.iterations, p.steps), (50, PAPER_STEPS));
        assert_eq!(p.placements, 5_000);
    }

    #[test]
    fn overrides_after_preset_win() {
        let o = parse(&["--paper", "--iterations", "7", "--steps", "123"]).unwrap();
        assert_eq!((o.iterations, o.steps), (7, 123));
    }

    #[test]
    fn option_errors() {
        assert!(parse(&["--iterations"]).is_err());
        assert!(parse(&["--iterations", "abc"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--iterations", "0"]).is_err());
    }

    #[test]
    fn bare_words_tolerated_for_subcommands() {
        let o = parse(&["t3", "--quick"]).unwrap();
        assert_eq!(o.iterations, 5);
    }

    #[test]
    fn step_threads_flag_parses_and_validates() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.step_threads, None);
        let o = parse(&["--step-threads", "4"]).unwrap();
        assert_eq!(o.step_threads, Some(4));
        assert!(parse(&["--step-threads"]).is_err());
        assert!(parse(&["--step-threads", "0"]).is_err());
        assert!(parse(&["--step-threads", "x"]).is_err());
    }

    #[test]
    fn skin_flag_parses_and_validates() {
        use manet_core::graph::Skin;
        let o = parse(&[]).unwrap();
        assert_eq!(o.skin, None);
        assert_eq!(parse(&["--skin", "auto"]).unwrap().skin, Some(Skin::Auto));
        assert_eq!(parse(&["--skin", "off"]).unwrap().skin, Some(Skin::Off));
        assert_eq!(parse(&["--skin", "0"]).unwrap().skin, Some(Skin::Off));
        assert_eq!(
            parse(&["--skin", "12.5"]).unwrap().skin,
            Some(Skin::Fixed(12.5))
        );
        assert!(parse(&["--skin"]).is_err());
        assert!(parse(&["--skin", "-3"]).is_err());
        assert!(parse(&["--skin", "nan"]).is_err());
        assert!(parse(&["--skin", "warm"]).is_err());
    }

    #[test]
    fn observability_flags_parse() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.metrics, None);
        assert!(!o.profile);
        assert!(!o.progress);
        let o = parse(&["--metrics", "out/m.json", "--profile", "--progress"]).unwrap();
        assert_eq!(o.metrics, Some(PathBuf::from("out/m.json")));
        assert!(o.profile);
        assert!(o.progress);
        assert!(parse(&["--metrics"]).is_err());
    }

    #[test]
    fn critical_scaling_flags_parse_and_validate() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.target, 0.99);
        assert_eq!(o.k_target, None);
        assert_eq!(o.n_sweep, None);
        assert_eq!(o.checkpoint, None);
        assert_eq!(o.max_cells, None);

        let o = parse(&[
            "--target",
            "0.9",
            "--k-target",
            "2",
            "--n-sweep",
            " 16, 32 ,64 ",
            "--checkpoint",
            "out/ck.json",
            "--max-cells",
            "3",
        ])
        .unwrap();
        assert_eq!(o.target, 0.9);
        assert_eq!(o.k_target, Some(2));
        assert_eq!(o.n_sweep.as_deref().unwrap(), [16, 32, 64]);
        assert_eq!(o.checkpoint, Some(PathBuf::from("out/ck.json")));
        assert_eq!(o.max_cells, Some(3));

        assert!(parse(&["--target"]).is_err());
        assert!(parse(&["--target", "0"]).is_err());
        assert!(parse(&["--target", "1.5"]).is_err());
        assert!(parse(&["--target", "nope"]).is_err());
        assert!(parse(&["--k-target", "0"]).is_err());
        assert!(parse(&["--n-sweep"]).is_err());
        assert!(parse(&["--n-sweep", ""]).is_err());
        assert!(parse(&["--n-sweep", "16,x"]).is_err());
        assert!(parse(&["--n-sweep", "16,1"]).is_err());
        assert!(parse(&["--checkpoint"]).is_err());
        assert!(parse(&["--max-cells"]).is_err());
    }

    #[test]
    fn side_for_preserves_the_paper_base_density() {
        assert_eq!(side_for(16), 256.0);
        // n / l² is constant across the sweep.
        let d16 = 16.0 / (side_for(16) * side_for(16));
        let d64 = 64.0 / (side_for(64) * side_for(64));
        assert!((d16 - d64).abs() < 1e-15);
        assert!(side_for(64) > side_for(16));
    }

    #[test]
    fn scale_steps_anchors_to_paper_horizon() {
        let mut o = RunOptions {
            steps: PAPER_STEPS,
            ..RunOptions::default()
        };
        assert_eq!(o.scale_steps(2000), 2000);
        o.steps = 1000;
        assert_eq!(o.scale_steps(2000), 200);
        assert_eq!(o.scale_steps(0), 0);
    }

    #[test]
    fn nodes_follow_sqrt_l() {
        assert_eq!(nodes_for_side(256.0), 16);
        assert_eq!(nodes_for_side(1024.0), 32);
        assert_eq!(nodes_for_side(4096.0), 64);
        assert_eq!(nodes_for_side(16384.0), 128);
    }

    #[test]
    fn paper_models_match_section_4_2() {
        let o = RunOptions::default();
        assert!(o.paper_waypoint(4096.0).is_ok());
        assert!(o.paper_drunkard(4096.0).is_ok());
        // Tiny region: waypoint speed range is empty.
        assert!(o.paper_waypoint(5.0).is_err());
    }

    #[test]
    fn models_flag_parses_and_validates() {
        let o = parse(&["--models", "gauss-markov,rpgm"]).unwrap();
        assert_eq!(
            o.models.as_deref().unwrap(),
            ["gauss-markov".to_string(), "rpgm".to_string()]
        );
        let o = parse(&["--models", " waypoint , drunkard "]).unwrap();
        assert_eq!(o.models.as_deref().unwrap().len(), 2);
        assert!(parse(&["--models"]).is_err());
        assert!(parse(&["--models", "bogus"]).is_err());
        assert!(parse(&["--models", ""]).is_err());
    }

    #[test]
    fn resolve_models_defaults_and_overrides() {
        let o = parse(&[]).unwrap();
        let resolved = o.resolve_models(&["waypoint", "drunkard"], 1024.0).unwrap();
        let names: Vec<&str> = resolved.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["waypoint", "drunkard"]);

        let o = parse(&["--models", "rpgm,gauss-markov-wrap"]).unwrap();
        let resolved = o.resolve_models(&["waypoint", "drunkard"], 1024.0).unwrap();
        let names: Vec<&str> = resolved.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["rpgm", "gauss-markov-wrap"]);
    }

    #[test]
    fn table_renders_and_writes_csv() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let dir = std::env::temp_dir().join("manet_experiments_test");
        let path = t.write_csv(&dir, "unit").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,bb\n1,2\n333,4\n");
        std::fs::remove_file(path).ok();
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn fmt_covers_magnitudes() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(0.1234567), "0.1235");
        assert_eq!(fmt(4.5678), "4.568");
        assert_eq!(fmt(12345.6), "12345.6");
    }
}
