//! X4 — the paper's literal fixed-range simulator as a sweep table
//! (extension experiment).
//!
//! §4.1's simulator reports, at one fixed transmitting range, the
//! percentage of connected graphs and the average/minimum size of the
//! largest connected component. This experiment runs it as a sweep over
//! multiples of `r_stationary` for both mobility models at `l = 1024`,
//! `n = 32` — the same cells the temporal-trace experiment (X3) uses —
//! so the snapshot and temporal views of one configuration line up.
//! The CSV doubles as the golden artifact of the incremental
//! connectivity spine: its bytes must not change when the per-step
//! engine swaps from rebuild-and-relabel to delta-apply.

use crate::common::{banner, fmt, r_stationary_for, RunOptions, Table};
use crate::obs::ObsSession;
use manet_core::{CoreError, MtrmProblem};

/// Range multiples of `r_stationary` swept per model. Shifted one
/// notch below X3's grid so the table crosses the disconnection knee
/// (at 1.25·r_stationary and above everything is connected anyway).
const MULTIPLIERS: [f64; 4] = [0.5, 0.75, 1.0, 1.25];

/// Models swept when `--models` is not given: the paper's two plus the
/// zoo's correlated-velocity and group families.
const DEFAULT_MODELS: [&str; 4] = ["waypoint", "drunkard", "gauss-markov", "rpgm"];

/// Runs the fixed-range sweep.
pub fn run(opts: &RunOptions, session: &mut ObsSession) -> Result<(), CoreError> {
    banner("X4 (extension): fixed-range simulator (connectivity, largest component)");
    // `--nodes` scales the cell beyond the paper's n = 32 so large-n
    // runs are reachable from this pipeline too; `r_stationary` tracks
    // the override so the range multiples stay meaningful.
    let (l, n) = (1024.0, opts.nodes.unwrap_or(32));
    session.note_nodes(n);
    session.span_enter("fixed/r_stationary");
    let rs = r_stationary_for(opts, l, n)?;
    session.span_exit();
    let models = opts.resolve_models(&DEFAULT_MODELS, l)?;
    let cells = models.len() * MULTIPLIERS.len();
    let mut cell = 0usize;

    let mut table = Table::new(&[
        "model",
        "r/rs",
        "range",
        "avail",
        "avg_largest",
        "avg_largest_disc",
        "min_largest",
        "avg_isolated",
        "avg_components",
    ]);
    for (name, model) in models {
        session.note_model(&name);
        let mut builder = MtrmProblem::<2>::builder();
        builder
            .nodes(n)
            .side(l)
            .iterations(opts.iterations)
            .steps(opts.steps)
            .seed(opts.seed)
            .model(model);
        if let Some(t) = opts.threads {
            builder.threads(t);
        }
        if let Some(t) = opts.step_threads {
            builder.step_threads(t);
        }
        if let Some(s) = opts.skin {
            builder.skin(s);
        }
        let problem = builder.build()?;
        for mult in MULTIPLIERS {
            let r = rs * mult;
            cell += 1;
            session.note_range(r);
            session.progress(&format!("fixed: {name} x{mult} ({cell}/{cells})"));
            session.span_enter("fixed/cell");
            let report = problem.fixed_range_report(r)?;
            session.span_exit();
            table.row(vec![
                name.clone(),
                fmt(mult),
                fmt(r),
                fmt(report.connectivity_fraction()),
                fmt(report.avg_largest()),
                report
                    .avg_largest_when_disconnected()
                    .map(fmt)
                    .unwrap_or_else(|| "-".into()),
                report.min_largest().to_string(),
                fmt(report.avg_isolated()),
                fmt(report.avg_components()),
            ]);
        }
    }
    table.print();
    println!(
        "reading: below r_stationary the giant component sheds stragglers and\n\
         availability collapses; above it disconnection is a few isolated nodes —\n\
         the paper's Figures 4-5 narrative at fixed ranges."
    );
    let path = table
        .write_csv(&opts.out_dir, "fixed")
        .map_err(|e| CoreError::Invalid {
            reason: format!("cannot write CSV: {e}"),
        })?;
    println!("wrote {}", path.display());
    Ok(())
}
