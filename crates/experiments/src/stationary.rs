//! S1: the `r_stationary` calibration table — the denominator of every
//! mobile ratio in Figures 2–9.

use crate::common::{self, banner, fmt, nodes_for_side, RunOptions, Table};
use crate::obs::ObsSession;
use manet_core::{CoreError, MtrProblem};

/// Prints the stationary critical-range distribution for each paper
/// system size, with `r_stationary` at several quantiles and the
/// theory baselines (worst case `l√2`).
pub fn run(opts: &RunOptions, session: &mut ObsSession) -> Result<(), CoreError> {
    banner("S1: stationary critical transmitting range calibration (d = 2)");
    session.note_model("stationary");
    let mut table = Table::new(&[
        "l",
        "n",
        "ctr_mean",
        "ctr_sd",
        "r_stat(.90)",
        "r_stat(.99)",
        "max_ctr",
        "worst_case",
        "penrose@r.90",
    ]);
    for (i, &l) in common::L_VALUES.iter().enumerate() {
        let n = nodes_for_side(l);
        session.note_nodes(n);
        session.progress(&format!(
            "stationary: l={l} ({}/{})",
            i + 1,
            common::L_VALUES.len()
        ));
        session.span_enter("stationary/side");
        let problem = MtrProblem::<2>::new(n, l)?;
        let analysis = problem.stationary_analysis(opts.placements, opts.seed ^ 0x5747)?;
        let ctr = analysis.ctr_distribution();
        let mean = ctr.mean();
        let sd = {
            let m: manet_core::stats::RunningMoments = ctr.as_sorted().iter().copied().collect();
            m.sample_std_dev()
        };
        let r90 = analysis.r_stationary(0.90)?;
        table.row(vec![
            fmt(l),
            n.to_string(),
            fmt(mean),
            fmt(sd),
            fmt(r90),
            fmt(analysis.r_stationary(common::R_STATIONARY_QUANTILE)?),
            fmt(ctr.max()),
            fmt(problem.worst_case_range()),
            // The dense-limit (interior-only) analytical estimate at
            // the empirical 90% range: its excess over 0.90 quantifies
            // the boundary effects the paper's sparse formulation keeps.
            fmt(problem.penrose_connectivity_estimate(r90)?),
        ]);
        session.note_range(r90);
        session.span_exit();
    }
    table.print();
    let path = table
        .write_csv(&opts.out_dir, "stationary")
        .map_err(|e| CoreError::Invalid {
            reason: format!("cannot write CSV: {e}"),
        })?;
    println!("wrote {}", path.display());
    Ok(())
}
