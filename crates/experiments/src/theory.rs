//! T1–T5: numerical validation of the Section 3 theory.

use crate::common::{banner, fmt, RunOptions, Table};
use crate::obs::ObsSession;
use manet_core::{occupancy, one_dim, stats, CoreError};
use occupancy::{montecarlo, patterns, LimitLaw, Occupancy, OccupancyDomain};
use rand::{RngExt, SeedableRng};

/// Dispatches the requested theory experiment(s), timing each under a
/// `theory/<tN>` span and reporting coarse progress.
pub fn run(which: &str, opts: &RunOptions, session: &mut ObsSession) -> Result<(), CoreError> {
    let timed = |name: &str,
                 session: &mut ObsSession,
                 f: fn(&RunOptions) -> Result<(), CoreError>|
     -> Result<(), CoreError> {
        session.progress(&format!("theory: {name}"));
        session.span_enter(&format!("theory/{name}"));
        let out = f(opts);
        session.span_exit();
        out
    };
    match which {
        "t1" => timed("t1", session, t1),
        "t2" => timed("t2", session, t2),
        "t3" => timed("t3", session, t3),
        "t4" => timed("t4", session, t4),
        "t5" => timed("t5", session, t5),
        "all" | "" => {
            timed("t1", session, t1)?;
            timed("t2", session, t2)?;
            timed("t3", session, t3)?;
            timed("t4", session, t4)?;
            timed("t5", session, t5)
        }
        other => Err(CoreError::Invalid {
            reason: format!("unknown theory experiment `{other}` (t1..t5|all)"),
        }),
    }
}

/// T1 — Theorem 5 phase transition in 1-D.
///
/// With `n = l` nodes on `[0, l]` and `r = β·(l ln l)/n`, the paper
/// predicts a connectivity threshold at a fixed `β` (for `n = l` the
/// max-gap law puts it at `β = ln n / ln l = 1`): `P(connected) → 0`
/// below, `→ 1` above, sharpening as `l` grows.
pub fn t1(opts: &RunOptions) -> Result<(), CoreError> {
    banner("T1: Theorem 5 phase transition, d=1, n=l (P(connected) vs beta)");
    let betas = [0.5, 0.7, 0.9, 1.0, 1.1, 1.3, 1.5, 2.0];
    let sides = [256.0, 1024.0, 4096.0];
    let trials = (opts.placements / 2).max(100);
    let mut headers: Vec<String> = vec!["l".into(), "n".into()];
    headers.extend(betas.iter().map(|b| format!("b={b}")));
    let mut table = Table::new(&headers.iter().map(String::as_str).collect::<Vec<_>>());
    let mut rng = rand::rngs::StdRng::seed_from_u64(opts.seed ^ 0x71);
    for &l in &sides {
        let n = l as usize;
        let mut cells = vec![fmt(l), n.to_string()];
        for &beta in &betas {
            let r = beta * l * l.ln() / n as f64;
            let mut connected = 0usize;
            for _ in 0..trials {
                let xs: Vec<f64> = (0..n).map(|_| rng.random_range(0.0..l)).collect();
                if one_dim::is_connected_1d(&xs, r)? {
                    connected += 1;
                }
            }
            cells.push(fmt(connected as f64 / trials as f64));
        }
        table.row(cells);
    }
    table.print();
    let path = table
        .write_csv(&opts.out_dir, "theory_t1")
        .map_err(|e| CoreError::Invalid {
            reason: format!("cannot write CSV: {e}"),
        })?;
    println!("wrote {}", path.display());

    // Scaling fit: measured threshold r*·n against l·ln l.
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &l in &sides {
        let n = l as usize;
        // Bisect beta to the P = 0.5 crossing with modest trials.
        let mut lo = 0.2;
        let mut hi = 2.5;
        for _ in 0..12 {
            let mid = 0.5 * (lo + hi);
            let r = mid * l * l.ln() / n as f64;
            let mut connected = 0usize;
            let probe = 200;
            for _ in 0..probe {
                let xs: Vec<f64> = (0..n).map(|_| rng.random_range(0.0..l)).collect();
                if one_dim::is_connected_1d(&xs, r)? {
                    connected += 1;
                }
            }
            if connected * 2 >= probe {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        let beta_star = 0.5 * (lo + hi);
        xs.push(l * l.ln());
        ys.push(beta_star * l * l.ln());
    }
    let fit = stats::LinearFit::through_origin(&xs, &ys)?;
    println!(
        "scaling fit: r*·n = {:.3} · (l ln l), R² = {:.4} (Theorem 5 predicts a constant slope)",
        fit.slope, fit.r_squared
    );
    Ok(())
}

/// T2 — Theorem 1: exact vs asymptotic vs Monte-Carlo moments of
/// `µ(n, C)` in all five occupancy domains.
pub fn t2(opts: &RunOptions) -> Result<(), CoreError> {
    banner("T2: E[mu] and Var[mu] — exact vs Theorem 1 asymptotics vs Monte Carlo");
    let cases: [(&str, u64, u64); 5] = [
        ("CD", 1000, 1000),
        ("RHD", 1711, 300),  // n = C ln C
        ("LHD", 50, 2500),   // n = sqrt(C)
        ("RHID", 2400, 800), // n = 3C
        ("LHID", 500, 2000), // n = C/4
    ];
    let trials = (opts.placements * 10).max(2000) as u64;
    let mut table = Table::new(&[
        "domain", "n", "C", "E_exact", "E_asym", "E_mc", "V_exact", "V_asym", "V_mc",
    ]);
    let mut rng = rand::rngs::StdRng::seed_from_u64(opts.seed ^ 0x72);
    for (name, n, c) in cases {
        let occ = Occupancy::new(n, c)?;
        let classified = OccupancyDomain::classify(n, c);
        let mut mc = stats::RunningMoments::new();
        for _ in 0..trials {
            mc.push(montecarlo::sample_empty_cells(n, c, &mut rng) as f64);
        }
        table.row(vec![
            format!("{name}({classified:?})"),
            n.to_string(),
            c.to_string(),
            fmt(occ.expected_empty()),
            fmt(occupancy::asymptotic::expected_empty_asymptotic(&occ)),
            fmt(mc.mean()),
            fmt(occ.variance_empty()),
            fmt(occupancy::asymptotic::variance_empty_asymptotic(&occ)),
            fmt(mc.sample_variance()),
        ]);
    }
    table.print();
    let path = table
        .write_csv(&opts.out_dir, "theory_t2")
        .map_err(|e| CoreError::Invalid {
            reason: format!("cannot write CSV: {e}"),
        })?;
    println!("wrote {}", path.display());
    Ok(())
}

/// T3 — Theorem 2: the limit law of `µ(n, C)` per domain, measured as
/// the total-variation and max-CDF distance between the **exact** pmf
/// and the limit law.
pub fn t3(opts: &RunOptions) -> Result<(), CoreError> {
    banner("T3: Theorem 2 limit laws — exact pmf vs limit distribution");
    let cases: [(&str, u64, u64); 5] = [
        ("CD", 2000, 2000),
        ("RHD", 2855, 500), // n = C ln C
        ("LHD", 63, 4000),  // n = sqrt(C)
        ("RHID", 6000, 2000),
        ("LHID", 1000, 4000),
    ];
    let mut table = Table::new(&["domain", "n", "C", "limit_law", "tv_dist", "max_cdf_err"]);
    for (name, n, c) in cases {
        let occ = Occupancy::new(n, c)?;
        let law = LimitLaw::for_occupancy(&occ, None)?;
        let pmf = occ.try_distribution()?;
        let mut tv = 0.0;
        let mut max_cdf_err: f64 = 0.0;
        let mut exact_cdf = 0.0;
        for (k, &p) in pmf.iter().enumerate() {
            exact_cdf += p;
            // Limit pmf mass at integer k (continuity-corrected for
            // the Normal case).
            let limit_mass = law.cdf(k as f64 + 0.5) - law.cdf(k as f64 - 0.5);
            tv += (p - limit_mass).abs();
            max_cdf_err = max_cdf_err.max((law.cdf(k as f64 + 0.5) - exact_cdf).abs());
        }
        table.row(vec![
            name.to_string(),
            n.to_string(),
            c.to_string(),
            law.describe(),
            fmt(0.5 * tv),
            fmt(max_cdf_err),
        ]);
    }
    table.print();
    let path = table
        .write_csv(&opts.out_dir, "theory_t3")
        .map_err(|e| CoreError::Invalid {
            reason: format!("cannot write CSV: {e}"),
        })?;
    println!("wrote {}", path.display());
    Ok(())
}

/// T4 — Theorem 4: the `{10*1}` gap probability across the threshold.
///
/// With `n = α·C` balls in `C` cells (`α = r·n/l`), Theorem 4 says the
/// gap probability stays bounded away from zero throughout the window
/// `1 << α << ln C`, while Theorem 3 sends it to zero for
/// `α ≳ ln C`. Rows report the exact probability at `α = √(ln C)`
/// (inside the window), `α = ln C` (threshold) and `α = 1.5·ln C`
/// (a.a.s.-connected regime), with a Monte-Carlo cross-check.
pub fn t4(opts: &RunOptions) -> Result<(), CoreError> {
    banner("T4: P(10*1 gap) across the connectivity threshold");
    let cells = [64u64, 256, 1024, 2048];
    let mut table = Table::new(&[
        "C",
        "P_gap(a=sqrt(lnC))",
        "P_gap(a=lnC)",
        "P_gap(a=1.5lnC)",
        "mc_gap(a=sqrt(lnC))",
    ]);
    let mut rng = rand::rngs::StdRng::seed_from_u64(opts.seed ^ 0x74);
    for &c in &cells {
        let ln_c = (c as f64).ln();
        let alphas = [ln_c.sqrt(), ln_c, 1.5 * ln_c];
        let mut cells_out = vec![c.to_string()];
        let mut first_n = 0u64;
        for (i, &alpha) in alphas.iter().enumerate() {
            let n = (alpha * c as f64).round() as u64;
            if i == 0 {
                first_n = n;
            }
            let occ = Occupancy::new(n, c)?;
            cells_out.push(fmt(patterns::gap_probability(&occ)?));
        }
        // Monte-Carlo cross-check of the first column.
        let trials = (opts.placements * 2).max(500) as u64;
        let mut hits = 0u64;
        for _ in 0..trials {
            let bits = montecarlo::sample_occupancy_bits(first_n, c, &mut rng);
            if patterns::has_gap_pattern(&bits) {
                hits += 1;
            }
        }
        cells_out.push(fmt(hits as f64 / trials as f64));
        table.row(cells_out);
    }
    table.print();
    println!(
        "expectation: the first column stays bounded away from 0 as C grows \
         (Theorem 4); the third tends to 0 (Theorem 3)."
    );
    let path = table
        .write_csv(&opts.out_dir, "theory_t4")
        .map_err(|e| CoreError::Invalid {
            reason: format!("cannot write CSV: {e}"),
        })?;
    println!("wrote {}", path.display());
    Ok(())
}

/// T5 — why the paper's occupancy bound is the right tool: the
/// `{10*1}` gap witness versus the isolated-node witness of the
/// earlier analysis (\[11\]), against the true disconnection
/// probability, across the critical window (d = 1, Monte Carlo).
pub fn t5(opts: &RunOptions) -> Result<(), CoreError> {
    banner("T5: disconnection witnesses across the window (d=1, l=4096, n=256)");
    let (l, n) = (4096.0, 256usize);
    let trials = (opts.placements * 2).max(500);
    let mut rng = rand::rngs::StdRng::seed_from_u64(opts.seed ^ 0x75);
    // r·n / l = alpha sweep from 1 (window floor) past ln l.
    let alphas = [1.0, 2.0, 4.0, 6.0, 8.0, 8.32, 10.0, 12.0];
    let mut table = Table::new(&[
        "alpha=rn/l",
        "r",
        "P(disconnected)",
        "P(gap witness)",
        "P(isolated witness)",
    ]);
    for &alpha in &alphas {
        let r = alpha * l / n as f64;
        let (mut disc, mut gap, mut iso) = (0u32, 0u32, 0u32);
        for _ in 0..trials {
            let xs: Vec<f64> = (0..n).map(|_| rng.random_range(0.0..l)).collect();
            if !one_dim::is_connected_1d(&xs, r)? {
                disc += 1;
            }
            if one_dim::lemma1_gap_witness(&xs, l, r) {
                gap += 1;
            }
            if one_dim::has_isolated_node(&xs, r)? {
                iso += 1;
            }
        }
        let t = trials as f64;
        table.row(vec![
            fmt(alpha),
            fmt(r),
            fmt(disc as f64 / t),
            fmt(gap as f64 / t),
            fmt(iso as f64 / t),
        ]);
    }
    table.print();
    println!(
        "both witnesses lower-bound P(disconnected); the gap witness tracks it \
         far more tightly across the window (ln l = {:.2})",
        l.ln()
    );
    let path = table
        .write_csv(&opts.out_dir, "theory_t5")
        .map_err(|e| CoreError::Invalid {
            reason: format!("cannot write CSV: {e}"),
        })?;
    println!("wrote {}", path.display());
    Ok(())
}
