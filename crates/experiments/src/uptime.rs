//! X2 — outage structure at the paper's dependability tiers
//! (extension experiment).
//!
//! The paper prices its tiers (`r100`, `r90`, `r10`) purely by the
//! *fraction* of connected time. Dependability engineering also needs
//! the *shape* of the downtime: how often the network fails (MTBF) and
//! how long an outage lasts (MTTR). This experiment reports both for
//! the paper's two mobility models at `l = 4096`, `n = 64`, giving the
//! oil-platform-crew scenario of §4 its missing numbers: at `r90`,
//! *how long* is a crew out of contact when it loses the network?

use crate::common::{banner, fmt, r_stationary_for, RunOptions, Table};
use crate::obs::ObsSession;
use manet_core::sim::RangeQuantiles;
use manet_core::{CoreError, MtrmProblem};

/// Models swept when `--models` is not given. Kept at the paper's two
/// (the golden `uptime_x2.csv` is captured from this default); the
/// zoo is available through `--models`.
const DEFAULT_MODELS: [&str; 2] = ["waypoint", "drunkard"];

/// Runs the outage-structure table.
pub fn run(opts: &RunOptions, session: &mut ObsSession) -> Result<(), CoreError> {
    banner("X2 (extension): outage structure (MTBF/MTTR) at the dependability tiers");
    // `--nodes` scales the cell beyond the paper's n = 64 so large-n
    // runs are reachable from this pipeline too; `r_stationary` tracks
    // the override so the tier ratios stay meaningful.
    let (l, n) = (4096.0, opts.nodes.unwrap_or(64));
    session.note_nodes(n);
    session.span_enter("uptime/r_stationary");
    let rs = r_stationary_for(opts, l, n)?;
    session.span_exit();
    let models = opts.resolve_models(&DEFAULT_MODELS, l)?;
    let total = models.len();
    let mut table = Table::new(&[
        "model",
        "tier",
        "r/rs",
        "avail",
        "mtbf_steps",
        "mttr_steps",
        "worst_outage",
        "fails/iter",
    ]);
    for (i, (name, model)) in models.into_iter().enumerate() {
        session.note_model(&name);
        session.progress(&format!("uptime: {name} ({}/{total})", i + 1));
        session.span_enter("uptime/model");
        let mut builder = MtrmProblem::<2>::builder();
        builder
            .nodes(n)
            .side(l)
            .iterations(opts.iterations)
            .steps(opts.steps)
            .seed(opts.seed)
            .model(model);
        if let Some(t) = opts.threads {
            builder.threads(t);
        }
        if let Some(t) = opts.step_threads {
            builder.step_threads(t);
        }
        if let Some(s) = opts.skin {
            builder.skin(s);
        }
        let problem = builder.build()?;
        let sol = problem.solve()?;
        let pooled = sol.critical.pooled().map_err(CoreError::Sim)?;
        let q = RangeQuantiles::from_series(&pooled).map_err(CoreError::Sim)?;
        for (tier, r) in [("r100", q.r100), ("r90", q.r90), ("r10", q.r10)] {
            session.note_range(r);
            let up = problem.uptime_at(r)?;
            table.row(vec![
                name.clone(),
                tier.to_string(),
                fmt(r / rs),
                fmt(up.availability),
                up.mtbf_steps.map(fmt).unwrap_or_else(|| "-".into()),
                up.mttr_steps.map(fmt).unwrap_or_else(|| "-".into()),
                up.longest_outage.to_string(),
                fmt(up.failures_per_iteration),
            ]);
        }
        session.span_exit();
    }
    table.print();
    println!(
        "reading: at r90 the network fails rarely and repairs within a few steps;\n\
         at r10 it is mostly down with brief connection windows — the paper's\n\
         'temporary connection periods can be used to exchange data' scenario."
    );
    let path = table
        .write_csv(&opts.out_dir, "uptime_x2")
        .map_err(|e| CoreError::Invalid {
            reason: format!("cannot write CSV: {e}"),
        })?;
    println!("wrote {}", path.display());
    Ok(())
}
