//! X5 — critical-range finite-size scaling (extension experiment).
//!
//! Wang et al. (PAPERS.md, arXiv:0806.2351) predict the critical
//! transmitting range of a mobile network scales as a power law in the
//! node count. This experiment locates the transition for each
//! (mobility model × `n`) cell of a density-preserving sweep
//! (`side_for(n)` keeps `n / l²` at the paper's base density) via
//! deterministic stochastic bisection, then fits
//! `log rho_c = a - beta · log n` per model and reports `beta` with a
//! Student-t confidence interval. Cells run on the batched sweep
//! scheduler (`manet_sim::sweep`): `--threads` drives the worker pool,
//! `--checkpoint` persists completed cells for resume, and
//! `--max-cells` bounds one invocation's work — an interrupted grid
//! resumes to byte-identical artifacts.

use crate::common::{banner, fmt, side_for, RunOptions, Table};
use crate::obs::ObsSession;
use manet_core::obs::KernelMetrics;
use manet_core::sim::{
    find_critical_range, fit_scaling_exponent, ConnectivityMetric, CriticalRangeSearch,
    ScalingExponent, SimConfig, SweepCheckpoint, SweepScheduler,
};
use manet_core::{AnyModel, CoreError};

/// Models swept when `--models` is not given: the paper's two plus the
/// zoo's correlated-velocity and group families (matching `trace`).
const DEFAULT_MODELS: [&str; 4] = ["waypoint", "drunkard", "gauss-markov", "rpgm"];

/// Node counts swept when `--n-sweep` is not given.
const DEFAULT_N_SWEEP: [usize; 3] = [16, 32, 64];

/// Confidence level of the reported beta interval.
const CONFIDENCE_LEVEL: f64 = 0.95;

/// One (model, n) cell of the sweep grid.
struct CellJob {
    model_name: String,
    model: AnyModel<2>,
    n: usize,
    side: f64,
}

/// One located critical point, as checkpointed and serialized to
/// `critical_scaling.json`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
struct CellResult {
    model: String,
    n: usize,
    side: f64,
    r_c: f64,
    rho_c: f64,
    probes: usize,
    kernel: KernelMetrics,
}

/// Per-model scaling fit, as serialized to `critical_scaling.json`.
#[derive(serde::Serialize)]
struct ModelFit {
    model: String,
    /// `None` when the model has fewer than three sweep points.
    fit: Option<ScalingExponent>,
}

/// The `critical_scaling.json` artifact: configuration, every sweep
/// cell, and the per-model exponent fits.
#[derive(serde::Serialize)]
struct ScalingArtifact {
    metric: String,
    target: f64,
    iterations: usize,
    steps: usize,
    seed: u64,
    n_sweep: Vec<usize>,
    confidence_level: f64,
    cells: Vec<CellResult>,
    fits: Vec<ModelFit>,
}

/// Runs the critical-scaling sweep.
pub fn run(opts: &RunOptions, session: &mut ObsSession) -> Result<(), CoreError> {
    banner("X5 (extension): critical-range finite-size scaling");
    let ns: Vec<usize> = opts
        .n_sweep
        .clone()
        .unwrap_or_else(|| DEFAULT_N_SWEEP.to_vec());
    let metric = match opts.k_target {
        Some(k) => ConnectivityMetric::KConnectivity(k),
        None => ConnectivityMetric::GiantFraction,
    };
    let metric_name = match opts.k_target {
        Some(k) => format!("{k}-connectivity"),
        None => "giant-fraction".to_string(),
    };
    let search = CriticalRangeSearch::new()
        .with_metric(metric)
        .with_target(opts.target);

    let mut jobs: Vec<CellJob> = Vec::new();
    for &n in &ns {
        let l = side_for(n);
        for (model_name, model) in opts.resolve_models(&DEFAULT_MODELS, l)? {
            jobs.push(CellJob {
                model_name,
                model,
                n,
                side: l,
            });
        }
    }

    // Everything that shapes a cell's result goes into the fingerprint,
    // so a checkpoint refuses to resume against a different grid.
    let fingerprint = format!(
        "critical-scaling-v1 seed={} iterations={} steps={} target={} metric={} cells=[{}]",
        opts.seed,
        opts.iterations,
        opts.steps,
        opts.target,
        metric_name,
        jobs.iter()
            .map(|j| format!("{}:{}", j.model_name, j.n))
            .collect::<Vec<_>>()
            .join(","),
    );

    let mut checkpoint = match &opts.checkpoint {
        Some(path) if path.exists() => {
            let text = std::fs::read_to_string(path).map_err(|e| CoreError::Invalid {
                reason: format!("cannot read checkpoint {}: {e}", path.display()),
            })?;
            let ck: SweepCheckpoint<CellResult> =
                serde_json::from_str(&text).map_err(|e| CoreError::Invalid {
                    reason: format!("cannot parse checkpoint {}: {e}", path.display()),
                })?;
            ck.validate(&fingerprint, jobs.len())?;
            println!(
                "resuming from {} ({} of {} cells done)",
                path.display(),
                ck.completed(),
                jobs.len()
            );
            ck
        }
        _ => SweepCheckpoint::new(fingerprint.clone(), jobs.len()),
    };

    let threads = opts.threads.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(1)
    });
    let mut scheduler = SweepScheduler::new(threads);
    if let Some(budget) = opts.max_cells {
        scheduler = scheduler.with_budget(budget);
    }
    session.progress(&format!(
        "critical-scaling: {} pending of {} cells on {threads} threads",
        jobs.len() - checkpoint.completed(),
        jobs.len()
    ));

    // Each cell runs the bisection single-threaded (the scheduler is
    // the fan-out; nesting engine threads would only oversubscribe).
    session.span_enter("critical-scaling/sweep");
    let run = scheduler.run(&jobs, checkpoint.clone().into_results(), |_, job| {
        let mut builder = SimConfig::<2>::builder();
        builder
            .nodes(job.n)
            .side(job.side)
            .iterations(opts.iterations)
            .steps(opts.steps)
            .seed(opts.seed)
            .threads(1);
        if let Some(t) = opts.step_threads {
            builder.step_threads(t);
        }
        if let Some(s) = opts.skin {
            builder.skin(s);
        }
        let config = builder.build()?;
        let point = find_critical_range(&config, &job.model, &search)?;
        Ok(CellResult {
            model: job.model_name.clone(),
            n: job.n,
            side: job.side,
            r_c: point.range,
            rho_c: point.normalized,
            probes: point.probes,
            kernel: point.kernel,
        })
    })?;
    session.span_exit();

    let executed = run.executed();
    checkpoint.absorb(run);
    if let Some(path) = &opts.checkpoint {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir).map_err(|e| CoreError::Invalid {
                reason: format!("cannot create checkpoint directory: {e}"),
            })?;
        }
        let json = serde_json::to_string(&checkpoint).map_err(|e| CoreError::Invalid {
            reason: format!("cannot serialize checkpoint: {e}"),
        })?;
        std::fs::write(path, json).map_err(|e| CoreError::Invalid {
            reason: format!("cannot write checkpoint: {e}"),
        })?;
        println!("wrote {}", path.display());
    }
    if !checkpoint.is_complete() {
        println!(
            "sweep paused: {} of {} cells done ({executed} executed this run); \
             rerun with the same flags{} to finish",
            checkpoint.completed(),
            jobs.len(),
            if opts.checkpoint.is_some() {
                " and --checkpoint"
            } else {
                " (pass --checkpoint to persist progress)"
            }
        );
        return Ok(());
    }

    let cells: Vec<CellResult> = checkpoint.into_results().into_iter().flatten().collect();
    let mut table = Table::new(&["model", "n", "side", "r_c", "rho_c", "probes"]);
    for cell in &cells {
        session.note_model(&cell.model);
        session.note_nodes(cell.n);
        session.note_range(cell.r_c);
        session.record_counters(&format!("{}@n={}", cell.model, cell.n), &cell.kernel);
        table.row(vec![
            cell.model.clone(),
            cell.n.to_string(),
            fmt(cell.side),
            fmt(cell.r_c),
            fmt(cell.rho_c),
            cell.probes.to_string(),
        ]);
    }
    table.print();

    // One fit per model, in first-appearance order.
    let mut model_names: Vec<String> = Vec::new();
    for cell in &cells {
        if !model_names.contains(&cell.model) {
            model_names.push(cell.model.clone());
        }
    }
    let mut fit_table = Table::new(&["model", "beta", "ci_lo", "ci_hi", "r2", "points"]);
    let mut fits = Vec::new();
    for name in &model_names {
        let points: Vec<(usize, f64)> = cells
            .iter()
            .filter(|c| &c.model == name)
            .map(|c| (c.n, c.rho_c))
            .collect();
        let fit = if points.len() >= 3 {
            Some(fit_scaling_exponent(&points, CONFIDENCE_LEVEL)?)
        } else {
            None
        };
        match &fit {
            Some(f) => fit_table.row(vec![
                name.clone(),
                fmt(f.beta),
                fmt(f.ci.lo),
                fmt(f.ci.hi),
                fmt(f.line.r_squared),
                f.points.to_string(),
            ]),
            None => fit_table.row(vec![
                name.clone(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                points.len().to_string(),
            ]),
        }
        fits.push(ModelFit {
            model: name.clone(),
            fit,
        });
    }
    println!();
    println!(
        "finite-size scaling fit rho_c ~ n^(-beta) ({metric_name} target {}, {:.0}% CI):",
        opts.target,
        CONFIDENCE_LEVEL * 100.0
    );
    fit_table.print();

    let csv_path = table
        .write_csv(&opts.out_dir, "critical_scaling")
        .map_err(|e| CoreError::Invalid {
            reason: format!("cannot write CSV: {e}"),
        })?;
    println!("wrote {}", csv_path.display());

    let artifact = ScalingArtifact {
        metric: metric_name,
        target: opts.target,
        iterations: opts.iterations,
        steps: opts.steps,
        seed: opts.seed,
        n_sweep: ns,
        confidence_level: CONFIDENCE_LEVEL,
        cells,
        fits,
    };
    let json = serde_json::to_string(&artifact).map_err(|e| CoreError::Invalid {
        reason: format!("cannot serialize scaling artifact: {e}"),
    })?;
    let json_path = opts.out_dir.join("critical_scaling.json");
    std::fs::write(&json_path, json).map_err(|e| CoreError::Invalid {
        reason: format!("cannot write JSON: {e}"),
    })?;
    println!("wrote {}", json_path.display());
    Ok(())
}
