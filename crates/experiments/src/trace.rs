//! X3 — temporal connectivity traces (extension experiment).
//!
//! The paper prices connectivity by the *fraction* of connected time;
//! this experiment reports its *persistence* structure: how long an
//! individual link lives, how long a node pair waits between contacts,
//! how long partitions last and how fast the network heals after its
//! first disconnection — plus the link-dynamics intensity behind those
//! lifetimes (mean and peak per-step edge churn). One row per (mobility model × range multiple
//! of `r_stationary`) at `l = 1024`, `n = 32`; the full distribution
//! summaries (histogram quantiles + survival curves) go to
//! `trace.json`, the headline numbers to `trace.csv`.

use crate::common::{banner, fmt, r_stationary_for, RunOptions, Table};
use crate::obs::ObsSession;
use manet_core::trace::TraceSummary;
use manet_core::{CoreError, MtrmProblem};

/// Range multiples of `r_stationary` swept per model.
const MULTIPLIERS: [f64; 4] = [0.75, 1.0, 1.25, 1.5];

/// Models swept when `--models` is not given: the paper's two plus the
/// zoo's correlated-velocity and group families.
const DEFAULT_MODELS: [&str; 4] = ["waypoint", "drunkard", "gauss-markov", "rpgm"];

/// One (model, range) cell of the sweep, as serialized to `trace.json`.
#[derive(serde::Serialize)]
struct TraceRow {
    model: String,
    multiplier: f64,
    range: f64,
    summary: TraceSummary,
}

/// The `trace.json` artifact: configuration plus every sweep cell.
#[derive(serde::Serialize)]
struct TraceArtifact {
    side: f64,
    nodes: usize,
    iterations: usize,
    steps: usize,
    seed: u64,
    r_stationary: f64,
    rows: Vec<TraceRow>,
}

/// Runs the temporal-trace sweep.
pub fn run(opts: &RunOptions, session: &mut ObsSession) -> Result<(), CoreError> {
    banner("X3 (extension): temporal connectivity (link lifetimes, outages, repair)");
    // `--nodes` scales the cell beyond the paper's n = 32 — the
    // large-n smoke for the incremental step kernel; `r_stationary`
    // tracks the override so the range multiples stay meaningful.
    let (l, n) = (1024.0, opts.nodes.unwrap_or(32));
    session.note_nodes(n);
    session.span_enter("trace/r_stationary");
    let rs = r_stationary_for(opts, l, n)?;
    session.span_exit();
    let models = opts.resolve_models(&DEFAULT_MODELS, l)?;
    let cells = models.len() * MULTIPLIERS.len();

    let mut table = Table::new(&[
        "model",
        "r/rs",
        "avail",
        "path_avail",
        "life_mean",
        "life_p90",
        "intercontact_mean",
        "outages",
        "outage_mean",
        "repair_mean",
        "churn/step",
        "peak_churn",
    ]);
    let mut rows = Vec::new();
    for (m_idx, (name, model)) in models.into_iter().enumerate() {
        session.note_model(&name);
        let mut builder = MtrmProblem::<2>::builder();
        builder
            .nodes(n)
            .side(l)
            .iterations(opts.iterations)
            .steps(opts.steps)
            .seed(opts.seed)
            .model(model);
        if let Some(t) = opts.threads {
            builder.threads(t);
        }
        if let Some(t) = opts.step_threads {
            builder.step_threads(t);
        }
        if let Some(s) = opts.skin {
            builder.skin(s);
        }
        let problem = builder.build()?;
        for (r_idx, mult) in MULTIPLIERS.into_iter().enumerate() {
            let r = rs * mult;
            session.note_range(r);
            session.progress(&format!(
                "trace: {name} x{mult} ({}/{cells})",
                m_idx * MULTIPLIERS.len() + r_idx + 1
            ));
            session.span_enter("trace/cell");
            let summary = problem.temporal_trace(r)?;
            session.span_exit();
            session.record_counters(&format!("{name}@x{mult}"), &summary.kernel);
            let opt = |v: Option<f64>| v.map(fmt).unwrap_or_else(|| "-".into());
            table.row(vec![
                name.clone(),
                fmt(mult),
                fmt(summary.availability),
                fmt(summary.path_availability),
                opt(summary.link_lifetime.mean),
                opt(summary.link_lifetime.p90),
                opt(summary.inter_contact.mean),
                summary.outage.count.to_string(),
                opt(summary.outage.mean),
                opt(summary.repair.mean_time_to_repair),
                fmt(summary.link_events_per_step),
                summary.peak_churn.to_string(),
            ]);
            rows.push(TraceRow {
                model: name.clone(),
                multiplier: mult,
                range: r,
                summary,
            });
        }
    }
    table.print();
    println!(
        "reading: below r_stationary links are short-lived and outages dominate;\n\
         above it lifetimes stretch, partitions become rare and repair is fast —\n\
         the temporal dimension behind the paper's availability tiers."
    );

    let csv_path = table
        .write_csv(&opts.out_dir, "trace")
        .map_err(|e| CoreError::Invalid {
            reason: format!("cannot write CSV: {e}"),
        })?;
    println!("wrote {}", csv_path.display());

    let artifact = TraceArtifact {
        side: l,
        nodes: n,
        iterations: opts.iterations,
        steps: opts.steps,
        seed: opts.seed,
        r_stationary: rs,
        rows,
    };
    let json = serde_json::to_string(&artifact).map_err(|e| CoreError::Invalid {
        reason: format!("cannot serialize trace artifact: {e}"),
    })?;
    let json_path = opts.out_dir.join("trace.json");
    std::fs::write(&json_path, json).map_err(|e| CoreError::Invalid {
        reason: format!("cannot write JSON: {e}"),
    })?;
    println!("wrote {}", json_path.display());
    Ok(())
}
