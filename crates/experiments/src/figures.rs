//! Figures 2–9 of the paper.

use crate::common::{self, banner, fmt, nodes_for_side, r_stationary, RunOptions, Table};
use crate::obs::ObsSession;
use manet_core::mobility::RandomWaypoint;
use manet_core::{AnyModel, CoreError, MtrmProblem};

/// Builds the MTRM problem for one `(l, model)` cell of the figures.
fn problem(
    opts: &RunOptions,
    l: f64,
    n: usize,
    model: AnyModel<2>,
) -> Result<MtrmProblem<2>, CoreError> {
    let mut b = MtrmProblem::<2>::builder();
    b.nodes(n)
        .side(l)
        .iterations(opts.iterations)
        .steps(opts.steps)
        .seed(opts.seed)
        .profile_stride(5)
        .model(model);
    if let Some(t) = opts.threads {
        b.threads(t);
    }
    b.build()
}

/// Figures 2 (random waypoint) and 3 (drunkard): the ratios
/// `r100/r90/r10/r0 ÷ r_stationary` for growing system size.
///
/// Metrics are quantiles of the steps **pooled over all iterations**
/// ("averaged over 50 simulations of 10000 steps" in the paper's
/// phrasing): with that reading, `r100` at `p_stationary = 1`
/// degenerates to the max stationary CTR ≈ `r_stationary`, which is
/// exactly the paper's Figure 7 anchor. The per-iteration-then-average
/// aggregation remains available in the library
/// (`CriticalRangeResults::summary`) and is ablated in DESIGN.md §6.
fn range_ratio_figure<F>(
    opts: &RunOptions,
    session: &mut ObsSession,
    name: &str,
    model_name: &str,
    title: &str,
    make_model: F,
) -> Result<(), CoreError>
where
    F: Fn(&RunOptions, f64) -> Result<AnyModel<2>, CoreError>,
{
    banner(title);
    session.note_model(model_name);
    let mut table = Table::new(&[
        "l", "n", "r_stat", "r100/rs", "r90/rs", "r10/rs", "r0/rs", "r100_sd", "r90_sd",
    ]);
    for (i, &l) in common::L_VALUES.iter().enumerate() {
        let n = nodes_for_side(l);
        session.note_nodes(n);
        session.progress(&format!(
            "{name}: l={l} ({}/{})",
            i + 1,
            common::L_VALUES.len()
        ));
        session.span_enter(&format!("{name}/side"));
        let rs = r_stationary(opts, l)?;
        let p = problem(opts, l, n, make_model(opts, l)?)?;
        let sol = p.solve()?;
        let pooled = sol.critical.pooled().map_err(CoreError::Sim)?;
        let q = manet_core::sim::RangeQuantiles::from_series(&pooled).map_err(CoreError::Sim)?;
        table.row(vec![
            fmt(l),
            n.to_string(),
            fmt(rs),
            fmt(q.r100 / rs),
            fmt(q.r90 / rs),
            fmt(q.r10 / rs),
            fmt(q.r0 / rs),
            fmt(sol.ranges.r100.sample_std_dev() / rs),
            fmt(sol.ranges.r90.sample_std_dev() / rs),
        ]);
        session.span_exit();
    }
    table.print();
    let path = table
        .write_csv(&opts.out_dir, name)
        .map_err(|e| CoreError::Invalid {
            reason: format!("cannot write CSV: {e}"),
        })?;
    println!("wrote {}", path.display());
    Ok(())
}

/// Figure 2: `r_x / r_stationary` vs `l`, random waypoint.
pub fn fig2(opts: &RunOptions, session: &mut ObsSession) -> Result<(), CoreError> {
    range_ratio_figure(
        opts,
        session,
        "fig2",
        "waypoint",
        "Figure 2: r_x / r_stationary vs l (random waypoint)",
        |o, l| o.paper_waypoint(l),
    )
}

/// Figure 3: `r_x / r_stationary` vs `l`, drunkard.
pub fn fig3(opts: &RunOptions, session: &mut ObsSession) -> Result<(), CoreError> {
    range_ratio_figure(
        opts,
        session,
        "fig3",
        "drunkard",
        "Figure 3: r_x / r_stationary vs l (drunkard)",
        |o, l| o.paper_drunkard(l),
    )
}

/// Figures 4 (random waypoint) and 5 (drunkard): average size of the
/// largest connected component (fraction of `n`) at `r90`, `r10`, `r0`.
fn component_figure<F>(
    opts: &RunOptions,
    session: &mut ObsSession,
    name: &str,
    model_name: &str,
    title: &str,
    make_model: F,
) -> Result<(), CoreError>
where
    F: Fn(&RunOptions, f64) -> Result<AnyModel<2>, CoreError>,
{
    banner(title);
    session.note_model(model_name);
    let mut table = Table::new(&["l", "n", "at_r90", "at_r10", "at_r0"]);
    for (i, &l) in common::L_VALUES.iter().enumerate() {
        let n = nodes_for_side(l);
        session.note_nodes(n);
        session.progress(&format!(
            "{name}: l={l} ({}/{})",
            i + 1,
            common::L_VALUES.len()
        ));
        session.span_enter(&format!("{name}/side"));
        let p = problem(opts, l, n, make_model(opts, l)?)?;
        let sol = p.solve()?;
        let pooled = sol.critical.pooled().map_err(CoreError::Sim)?;
        let q = manet_core::sim::RangeQuantiles::from_series(&pooled).map_err(CoreError::Sim)?;
        let profiles = p.component_profiles()?;
        let at = |r: f64| profiles.mean_average_fraction_at(r);
        table.row(vec![
            fmt(l),
            n.to_string(),
            fmt(at(q.r90)),
            fmt(at(q.r10)),
            fmt(at(q.r0)),
        ]);
        session.span_exit();
    }
    table.print();
    let path = table
        .write_csv(&opts.out_dir, name)
        .map_err(|e| CoreError::Invalid {
            reason: format!("cannot write CSV: {e}"),
        })?;
    println!("wrote {}", path.display());
    Ok(())
}

/// Figure 4: largest-component fraction at `r90/r10/r0`, waypoint.
pub fn fig4(opts: &RunOptions, session: &mut ObsSession) -> Result<(), CoreError> {
    component_figure(
        opts,
        session,
        "fig4",
        "waypoint",
        "Figure 4: avg largest component fraction at r90/r10/r0 (random waypoint)",
        |o, l| o.paper_waypoint(l),
    )
}

/// Figure 5: largest-component fraction at `r90/r10/r0`, drunkard.
pub fn fig5(opts: &RunOptions, session: &mut ObsSession) -> Result<(), CoreError> {
    component_figure(
        opts,
        session,
        "fig5",
        "drunkard",
        "Figure 5: avg largest component fraction at r90/r10/r0 (drunkard)",
        |o, l| o.paper_drunkard(l),
    )
}

/// Figure 6: `rl90/rl75/rl50 ÷ r_stationary` vs `l`, random waypoint.
pub fn fig6(opts: &RunOptions, session: &mut ObsSession) -> Result<(), CoreError> {
    banner("Figure 6: rl90/rl75/rl50 over r_stationary vs l (random waypoint)");
    session.note_model("waypoint");
    let mut table = Table::new(&["l", "n", "r_stat", "rl90/rs", "rl75/rs", "rl50/rs"]);
    for (i, &l) in common::L_VALUES.iter().enumerate() {
        let n = nodes_for_side(l);
        session.note_nodes(n);
        session.progress(&format!(
            "fig6: l={l} ({}/{})",
            i + 1,
            common::L_VALUES.len()
        ));
        session.span_enter("fig6/side");
        let rs = r_stationary(opts, l)?;
        let p = problem(opts, l, n, opts.paper_waypoint(l)?)?;
        let rl = p.ranges_for_component_fractions(&[0.9, 0.75, 0.5])?;
        table.row(vec![
            fmt(l),
            n.to_string(),
            fmt(rs),
            fmt(rl[0].1 / rs),
            fmt(rl[1].1 / rs),
            fmt(rl[2].1 / rs),
        ]);
        session.span_exit();
    }
    table.print();
    let path = table
        .write_csv(&opts.out_dir, "fig6")
        .map_err(|e| CoreError::Invalid {
            reason: format!("cannot write CSV: {e}"),
        })?;
    println!("wrote {}", path.display());
    Ok(())
}

/// The `l = 4096`, `n = 64` single-cell sweep shared by Figures 7–9.
fn sweep_r100<F>(
    opts: &RunOptions,
    session: &mut ObsSession,
    name: &str,
    title: &str,
    axis: &str,
    points: &[f64],
    make_model: F,
) -> Result<(), CoreError>
where
    F: Fn(f64) -> Result<AnyModel<2>, CoreError>,
{
    banner(title);
    session.note_model("waypoint");
    let l = 4096.0;
    let n = 64;
    session.note_nodes(n);
    let rs = r_stationary(opts, l)?;
    let mut table = Table::new(&[axis, "r100/rs", "r100_sd/rs"]);
    for (i, &x) in points.iter().enumerate() {
        session.progress(&format!("{name}: {axis}={x} ({}/{})", i + 1, points.len()));
        session.span_enter(&format!("{name}/point"));
        let p = problem(opts, l, n, make_model(x)?)?;
        let sol = p.solve()?;
        let pooled = sol.critical.pooled().map_err(CoreError::Sim)?;
        table.row(vec![
            fmt(x),
            fmt(pooled.max() / rs),
            fmt(sol.ranges.r100.sample_std_dev() / rs),
        ]);
        session.span_exit();
    }
    table.print();
    let path = table
        .write_csv(&opts.out_dir, name)
        .map_err(|e| CoreError::Invalid {
            reason: format!("cannot write CSV: {e}"),
        })?;
    println!("wrote {}", path.display());
    Ok(())
}

/// Figure 7: `r100/r_stationary` vs `p_stationary` (coarse 0..1 plus
/// the paper's fine sweep of the 0.4–0.6 threshold window).
pub fn fig7(opts: &RunOptions, session: &mut ObsSession) -> Result<(), CoreError> {
    let mut points: Vec<f64> = vec![0.0, 0.2, 0.8, 1.0];
    let mut p: f64 = 0.40;
    while p <= 0.601 {
        points.push((p * 100.0).round() / 100.0);
        p += 0.02;
    }
    points.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let l = 4096.0;
    let pause = opts.scale_steps(2000);
    sweep_r100(
        opts,
        session,
        "fig7",
        "Figure 7: r100/r_stationary vs p_stationary (random waypoint, l=4096, n=64)",
        "p_stat",
        &points,
        |p_stat| {
            RandomWaypoint::new(0.1, 0.01 * l, pause, p_stat)
                .map(AnyModel::from)
                .map_err(CoreError::from)
        },
    )
}

/// Figure 8: `r100/r_stationary` vs `t_pause` (axis scaled with the
/// run horizon; equals the paper's 0..10000 under `--paper`).
pub fn fig8(opts: &RunOptions, session: &mut ObsSession) -> Result<(), CoreError> {
    let points: Vec<f64> = [0u32, 2000, 4000, 6000, 8000, 10_000]
        .iter()
        .map(|&t| opts.scale_steps(t) as f64)
        .collect();
    let l = 4096.0;
    sweep_r100(
        opts,
        session,
        "fig8",
        "Figure 8: r100/r_stationary vs t_pause (random waypoint, l=4096, n=64)",
        "t_pause",
        &points,
        |t| {
            RandomWaypoint::new(0.1, 0.01 * l, t as u32, 0.0)
                .map(AnyModel::from)
                .map_err(CoreError::from)
        },
    )
}

/// Figure 9: `r100/r_stationary` vs `v_max` (in units of `l`).
pub fn fig9(opts: &RunOptions, session: &mut ObsSession) -> Result<(), CoreError> {
    let points = [0.01, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5];
    let l = 4096.0;
    let pause = opts.scale_steps(2000);
    sweep_r100(
        opts,
        session,
        "fig9",
        "Figure 9: r100/r_stationary vs v_max/l (random waypoint, l=4096, n=64)",
        "vmax/l",
        &points,
        |v| {
            RandomWaypoint::new(0.1, v * l, pause, 0.0)
                .map(AnyModel::from)
                .map_err(CoreError::from)
        },
    )
}

/// Runs Figures 2–9 in order.
pub fn all(opts: &RunOptions, session: &mut ObsSession) -> Result<(), CoreError> {
    fig2(opts, session)?;
    fig3(opts, session)?;
    fig4(opts, session)?;
    fig5(opts, session)?;
    fig6(opts, session)?;
    fig7(opts, session)?;
    fig8(opts, session)?;
    fig9(opts, session)
}
