//! `manet-repro` — regenerates every figure of Santi & Blough
//! (DSN 2002) plus the Section 3 theory-validation experiments.
//!
//! ```text
//! manet-repro <command> [options]
//!
//! commands:
//!   fig2 .. fig9     one paper figure each
//!   figs             figures 2-9
//!   stationary       S1: r_stationary calibration table
//!   theory [tN]      T1-T5 Section 3 validations (default: all)
//!   quantity         X1: quantity-of-mobility comparison (extension)
//!   uptime           X2: outage structure (MTBF/MTTR) at the tiers (extension)
//!   trace            X3: temporal connectivity traces (extension)
//!   fixed            X4: fixed-range simulator sweep (extension)
//!   critical-scaling X5: critical-range finite-size scaling (extension)
//!   all              everything above
//!
//! options:
//!   --quick          CI-sized run (5 iterations x 500 steps)
//!   --paper          paper-fidelity run (50 iterations x 10000 steps)
//!   --iterations N   override iteration count
//!   --steps N        override mobility steps per iteration
//!   --placements N   stationary placements for r_stationary
//!   --seed N         master seed (default 20020623)
//!   --threads N      pin worker threads
//!   --out DIR        CSV output directory (default results/)
//!   --models A,B,..  mobility models for quantity/uptime/fixed/trace
//!                    (registry names, e.g. gauss-markov,rpgm)
//!   --nodes N        node-count override for trace/fixed/uptime/
//!                    quantity (large-n runs on the incremental step
//!                    kernel; defaults n = 32, 32, 64, 32)
//!   --step-threads N intra-step worker threads for the sharded step
//!                    kernel (default 1 = serial); artifacts are
//!                    byte-identical across values
//!   --skin S         Verlet-cache skin policy for the step kernel:
//!                    auto (default), off, or a fixed radius;
//!                    artifacts are byte-identical across settings
//!   --metrics PATH   write metrics.json (run manifest + deterministic
//!                    kernel counters + spans) to PATH
//!   --profile        arm wall-clock span profiling; span table goes
//!                    to stderr (and into --metrics when given)
//!   --progress       coarse progress lines on stderr (sweep point
//!                    i/N); stdout and artifacts stay byte-identical
//!   --target F       connectivity level the critical-scaling
//!                    bisection thresholds (default 0.99)
//!   --k-target K     critical-scaling: threshold k-vertex-
//!                    connectivity instead of giant-component fraction
//!   --n-sweep A,B,.. critical-scaling node counts (default 16,32,64);
//!                    the region side scales as side_for(n) so node
//!                    density stays at the paper's base density
//!   --checkpoint P   critical-scaling: persist completed sweep cells
//!                    to P and resume from it when present
//!   --max-cells N    critical-scaling: run at most N pending cells,
//!                    checkpoint, and exit without final artifacts
//! ```
//!
//! Without `--paper`, pause times and sweep axes that the paper ties to
//! its 10000-step horizon are scaled by `steps / 10000` so the mobility
//! mix stays comparable at smaller horizons (see DESIGN.md).

mod common;
mod figures;
mod fixed;
mod obs;
mod quantity;
mod scaling;
mod stationary;
mod theory;
mod trace;
mod uptime;

use common::RunOptions;
use obs::ObsSession;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" || args[0] == "help" {
        print_usage();
        return;
    }
    let command = args[0].clone();
    let opts = match RunOptions::parse(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            print_usage();
            std::process::exit(2);
        }
    };

    let mut session = ObsSession::new(&command, &opts);
    let s = &mut session;
    let result = match command.as_str() {
        "fig2" => figures::fig2(&opts, s),
        "fig3" => figures::fig3(&opts, s),
        "fig4" => figures::fig4(&opts, s),
        "fig5" => figures::fig5(&opts, s),
        "fig6" => figures::fig6(&opts, s),
        "fig7" => figures::fig7(&opts, s),
        "fig8" => figures::fig8(&opts, s),
        "fig9" => figures::fig9(&opts, s),
        "figs" => figures::all(&opts, s),
        "stationary" => stationary::run(&opts, s),
        "quantity" => quantity::run(&opts, s),
        "uptime" => uptime::run(&opts, s),
        "fixed" => fixed::run(&opts, s),
        "trace" => trace::run(&opts, s),
        "critical-scaling" => scaling::run(&opts, s),
        "theory" => {
            let which = args[1..]
                .iter()
                .find(|a| matches!(a.as_str(), "t1" | "t2" | "t3" | "t4" | "t5" | "all"))
                .map(String::as_str)
                .unwrap_or("all");
            theory::run(which, &opts, s)
        }
        "all" => stationary::run(&opts, s)
            .and_then(|_| figures::all(&opts, s))
            .and_then(|_| theory::run("all", &opts, s))
            .and_then(|_| quantity::run(&opts, s))
            .and_then(|_| uptime::run(&opts, s))
            .and_then(|_| fixed::run(&opts, s))
            .and_then(|_| trace::run(&opts, s))
            .and_then(|_| scaling::run(&opts, s)),
        other => {
            eprintln!("error: unknown command `{other}`");
            print_usage();
            std::process::exit(2);
        }
    };

    let result = result.and_then(|()| session.finish());
    if let Err(e) = result {
        eprintln!("experiment failed: {e}");
        std::process::exit(1);
    }
}

fn print_usage() {
    println!(
        "manet-repro: reproduce Santi & Blough (DSN 2002)\n\n\
         usage: manet-repro <fig2|...|fig9|figs|stationary|theory [tN]|quantity|uptime|fixed|trace|critical-scaling|all> [options]\n\
         options: --quick | --paper | --iterations N | --steps N | --placements N\n\
         \x20        --seed N | --threads N | --step-threads N | --skin S | --out DIR\n\
         \x20        --models A,B,.. | --nodes N (trace/fixed/uptime/quantity)\n\
         \x20        --metrics PATH | --profile | --progress\n\
         \x20        --target F | --k-target K | --n-sweep A,B,.. | --checkpoint P\n\
         \x20        --max-cells N (critical-scaling)"
    );
}
