//! Per-invocation observability session: run manifest, labeled kernel
//! counters, span profiling and progress lines for `manet-repro`.
//!
//! One [`ObsSession`] is created in `main` and threaded through every
//! subcommand. The deterministic plane (manifest + counters) feeds the
//! `--metrics PATH` artifact, whose bytes are a pure function of the
//! configuration (thread count appears only as the manifest's declared
//! field). The wall-clock plane (`--profile` spans) and the
//! `--progress` lines are tool-crate-only (lint R2 allows the clock
//! here) and go exclusively to stderr, never into stdout tables or
//! artifacts.

use crate::common::RunOptions;
use manet_core::obs::{KernelMetrics, RunManifest, SpanEntry, SpanTimer};
use manet_core::CoreError;
use std::path::PathBuf;

/// One labeled counter snapshot, e.g. a `(model, range)` sweep cell.
#[derive(serde::Serialize)]
struct CounterEntry {
    label: String,
    kernel: KernelMetrics,
}

/// The `metrics.json` schema: provenance, then the deterministic
/// counters, then the (non-deterministic, possibly empty) span plane.
#[derive(serde::Serialize)]
struct MetricsArtifact {
    manifest: RunManifest,
    counters: Vec<CounterEntry>,
    spans: Vec<SpanEntry>,
}

/// Observability state for one `manet-repro` invocation.
pub struct ObsSession {
    manifest: RunManifest,
    counters: Vec<CounterEntry>,
    timer: SpanTimer,
    metrics_path: Option<PathBuf>,
    progress: bool,
}

impl ObsSession {
    /// Creates the session for `command`, seeding the manifest from the
    /// parsed options and the facade's compiled feature list.
    pub fn new(command: &str, opts: &RunOptions) -> Self {
        let mut manifest = RunManifest::new(command);
        manifest.seed = opts.seed;
        manifest.iterations = opts.iterations;
        manifest.steps = opts.steps;
        manifest.threads = opts.threads.unwrap_or(0); // 0 = auto
        manifest.skin = opts
            .skin
            .map_or_else(|| "auto".to_string(), |s| s.to_string());
        manifest.features = manet_core::compiled_features()
            .into_iter()
            .map(String::from)
            .collect();
        ObsSession {
            manifest,
            counters: Vec::new(),
            timer: if opts.profile {
                SpanTimer::armed()
            } else {
                SpanTimer::disarmed()
            },
            metrics_path: opts.metrics.clone(),
            progress: opts.progress,
        }
    }

    /// Records a mobility model name in the manifest (deduplicated,
    /// insertion-ordered).
    pub fn note_model(&mut self, name: &str) {
        if !self.manifest.models.iter().any(|m| m == name) {
            self.manifest.models.push(name.to_string());
        }
    }

    /// Records a node count in the manifest (deduplicated).
    pub fn note_nodes(&mut self, n: usize) {
        if !self.manifest.nodes.contains(&n) {
            self.manifest.nodes.push(n);
        }
    }

    /// Records a transmitting range in the manifest (deduplicated by
    /// bit pattern; ranges are derived, not free parameters).
    pub fn note_range(&mut self, r: f64) {
        if !self
            .manifest
            .ranges
            .iter()
            .any(|x| x.to_bits() == r.to_bits())
        {
            self.manifest.ranges.push(r);
        }
    }

    /// Appends a labeled deterministic counter snapshot.
    pub fn record_counters(&mut self, label: &str, kernel: &KernelMetrics) {
        self.counters.push(CounterEntry {
            label: label.to_string(),
            kernel: *kernel,
        });
    }

    /// Opens a named wall-clock span (no-op unless `--profile`).
    pub fn span_enter(&mut self, name: &str) {
        self.timer.enter(name);
    }

    /// Closes the innermost open span (no-op unless `--profile`).
    pub fn span_exit(&mut self) {
        self.timer.exit();
    }

    /// Prints one coarse progress line to stderr (no-op unless
    /// `--progress`). Never touches stdout or artifacts.
    pub fn progress(&self, msg: &str) {
        if self.progress {
            eprintln!("progress: {msg}");
        }
    }

    /// Finishes the session: prints the span table to stderr under
    /// `--profile` and writes the `metrics.json` artifact under
    /// `--metrics PATH`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Invalid`] when the artifact cannot be
    /// serialized or written.
    pub fn finish(self) -> Result<(), CoreError> {
        let report = self.timer.report();
        if !report.spans.is_empty() {
            eprint!("{}", report.render_table());
        }
        let Some(path) = self.metrics_path else {
            return Ok(());
        };
        let artifact = MetricsArtifact {
            manifest: self.manifest,
            counters: self.counters,
            spans: report.spans,
        };
        let json = serde_json::to_string(&artifact).map_err(|e| CoreError::Invalid {
            reason: format!("cannot serialize metrics artifact: {e}"),
        })?;
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| CoreError::Invalid {
                    reason: format!("cannot create metrics directory: {e}"),
                })?;
            }
        }
        std::fs::write(&path, json).map_err(|e| CoreError::Invalid {
            reason: format!("cannot write metrics artifact: {e}"),
        })?;
        eprintln!("wrote metrics to {}", path.display());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> RunOptions {
        RunOptions::default()
    }

    #[test]
    fn manifest_seeds_from_options() {
        let mut o = opts();
        o.seed = 99;
        o.iterations = 7;
        o.steps = 11;
        o.threads = Some(4);
        let s = ObsSession::new("trace", &o);
        assert_eq!(s.manifest.command, "trace");
        assert_eq!(s.manifest.seed, 99);
        assert_eq!(s.manifest.iterations, 7);
        assert_eq!(s.manifest.steps, 11);
        assert_eq!(s.manifest.threads, 4);
        assert_eq!(s.manifest.skin, "auto");
        assert!(s.manifest.models.is_empty());

        o.skin = Some(manet_core::graph::Skin::Fixed(7.5));
        let s = ObsSession::new("trace", &o);
        assert_eq!(s.manifest.skin, "7.5");
    }

    #[test]
    fn notes_deduplicate() {
        let mut s = ObsSession::new("trace", &opts());
        s.note_model("waypoint");
        s.note_model("drunkard");
        s.note_model("waypoint");
        assert_eq!(s.manifest.models, ["waypoint", "drunkard"]);
        s.note_nodes(32);
        s.note_nodes(32);
        assert_eq!(s.manifest.nodes, [32]);
        s.note_range(1.5);
        s.note_range(1.5);
        s.note_range(2.0);
        assert_eq!(s.manifest.ranges, [1.5, 2.0]);
    }

    #[test]
    fn metrics_artifact_is_written_and_deterministic() {
        let dir = std::env::temp_dir().join("manet_obs_session_test");
        let path = dir.join("metrics.json");
        let mut o = opts();
        o.metrics = Some(path.clone());
        let write_once = || -> String {
            let mut s = ObsSession::new("trace", &o);
            s.note_model("waypoint");
            s.note_nodes(32);
            s.note_range(40.0);
            s.record_counters("waypoint@x1", &KernelMetrics::default());
            s.finish().unwrap();
            std::fs::read_to_string(&path).unwrap()
        };
        let a = write_once();
        let b = write_once();
        assert_eq!(a, b, "identical sessions must serialize identically");
        // Schema: the three top-level planes in declaration order.
        assert!(a.starts_with("{\"manifest\":{\"command\":\"trace\""));
        assert!(a.contains("\"counters\":[{\"label\":\"waypoint@x1\""));
        assert!(a.contains("\"spans\":[]"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn disarmed_session_has_no_spans() {
        let mut s = ObsSession::new("figs", &opts());
        s.span_enter("outer");
        s.span_exit();
        assert!(s.timer.report().spans.is_empty());
    }
}
