//! X1 — the "quantity of mobility" (extension experiment).
//!
//! The paper closes: "connectedness is only marginally influenced by
//! whether motion is intentional or not, but it is rather related to
//! the 'quantity of mobility' […] Further investigation in this
//! direction is needed, and is a matter of ongoing research." This
//! experiment is that investigation, with the quantity formalized in
//! `manet-sim::quantity`: four mobility models and several parameter
//! settings are placed on a common axis (mean per-step displacement ×
//! moving fraction) and their `r100/r_stationary` measured, showing
//! that the connectivity cost lines up with the measured quantity, not
//! with the model family.

use crate::common::{banner, fmt, r_stationary_for, RunOptions, Table};
use crate::obs::ObsSession;
use manet_core::mobility::{Drunkard, RandomWaypoint};
use manet_core::sim::quantity::{mean_quantity, measure_mobility_quantity};
use manet_core::sim::RangeQuantiles;
use manet_core::{AnyModel, CoreError, MtrmProblem};

/// Runs the quantity-of-mobility comparison at `l = 1024`, `n = 32`.
///
/// Without `--models`, sweeps a curated list: every registry family at
/// paper scale plus parameter variants (stationary fractions, no-pause,
/// always-busy) that spread the quantity axis. With `--models`, sweeps
/// exactly the requested registry names.
pub fn run(opts: &RunOptions, session: &mut ObsSession) -> Result<(), CoreError> {
    banner("X1 (extension): quantity of mobility vs r100 across models");
    // `--nodes` scales the cell beyond the paper's n = 32 so large-n
    // runs are reachable from this pipeline too; `r_stationary` tracks
    // the override so the r100/rs ratios stay meaningful.
    let (l, n) = (1024.0, opts.nodes.unwrap_or(32));
    session.note_nodes(n);
    session.span_enter("quantity/r_stationary");
    let rs = r_stationary_for(opts, l, n)?;
    session.span_exit();
    let step = 0.01 * l;
    let pause = opts.scale_steps(2000);

    let cases: Vec<(String, AnyModel<2>)> = match &opts.models {
        Some(_) => opts.resolve_models(&[], l)?,
        None => {
            vec![
                ("waypoint".into(), opts.model("waypoint", l)?),
                (
                    "waypoint p_s=0.5".into(),
                    RandomWaypoint::new(0.1, step, pause, 0.5)?.into(),
                ),
                (
                    "waypoint no-pause".into(),
                    RandomWaypoint::new(0.1, step, 0, 0.0)?.into(),
                ),
                ("drunkard".into(), opts.model("drunkard", l)?),
                (
                    "drunkard busy".into(),
                    Drunkard::new(0.0, 0.0, step)?.into(),
                ),
                ("walk".into(), opts.model("walk", l)?),
                ("direction".into(), opts.model("direction", l)?),
                ("gauss-markov".into(), opts.model("gauss-markov", l)?),
                ("rpgm".into(), opts.model("rpgm", l)?),
                ("stationary".into(), opts.model("stationary", l)?),
            ]
        }
    };

    let mut table = Table::new(&[
        "model",
        "mean_disp",
        "moving_frac",
        "never_moved",
        "r100/rs",
    ]);
    let total = cases.len();
    for (i, (name, model)) in cases.into_iter().enumerate() {
        session.note_model(&name);
        session.progress(&format!("quantity: {name} ({}/{total})", i + 1));
        session.span_enter("quantity/case");
        let mut builder = MtrmProblem::<2>::builder();
        builder
            .nodes(n)
            .side(l)
            .iterations(opts.iterations)
            .steps(opts.steps)
            .seed(opts.seed)
            .model(model);
        if let Some(t) = opts.threads {
            builder.threads(t);
        }
        if let Some(t) = opts.step_threads {
            builder.step_threads(t);
        }
        if let Some(s) = opts.skin {
            builder.skin(s);
        }
        let problem = builder.build()?;
        let quantity = mean_quantity(&measure_mobility_quantity(
            problem.config(),
            problem.model(),
        )?)
        .expect("at least one iteration");
        let sol = problem.solve()?;
        let pooled = sol.critical.pooled().map_err(CoreError::Sim)?;
        let q = RangeQuantiles::from_series(&pooled).map_err(CoreError::Sim)?;
        table.row(vec![
            name,
            fmt(quantity.mean_displacement),
            fmt(quantity.moving_fraction),
            fmt(quantity.never_moved_fraction),
            fmt(q.r100 / rs),
        ]);
        session.span_exit();
    }
    table.print();
    println!(
        "reading: r100 tracks the displacement/moving columns, not the model name —\n\
         the paper's 'quantity, not pattern' conjecture, measured."
    );
    let path = table
        .write_csv(&opts.out_dir, "quantity_x1")
        .map_err(|e| CoreError::Invalid {
            reason: format!("cannot write CSV: {e}"),
        })?;
    println!("wrote {}", path.display());
    Ok(())
}
