//! End-to-end tests of the `manet-repro` binary: spawn the real
//! executable, parse its stdout, verify its CSV artifacts.

use std::path::PathBuf;
use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_manet-repro"))
}

fn temp_out(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("manet_cli_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn help_prints_usage() {
    let out = repro().arg("--help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("usage"));
    assert!(text.contains("fig2"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = repro().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"));
}

#[test]
fn bad_option_fails() {
    let out = repro().args(["fig2", "--bogus"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn stationary_produces_csv_with_all_sizes() {
    let dir = temp_out("stationary");
    let out = repro()
        .args([
            "stationary",
            "--iterations",
            "2",
            "--steps",
            "10",
            "--placements",
            "50",
            "--out",
        ])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let csv = std::fs::read_to_string(dir.join("stationary.csv")).unwrap();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 5, "header + 4 system sizes");
    assert!(lines[0].starts_with("l,n,"));
    for (i, l) in ["256", "1024", "4096", "16384"].iter().enumerate() {
        assert!(
            lines[i + 1].starts_with(l),
            "row {i} should start with {l}: {}",
            lines[i + 1]
        );
    }
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn fig7_sweep_covers_fine_window() {
    let dir = temp_out("fig7");
    let out = repro()
        .args([
            "fig7",
            "--iterations",
            "2",
            "--steps",
            "20",
            "--placements",
            "30",
            "--out",
        ])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let csv = std::fs::read_to_string(dir.join("fig7.csv")).unwrap();
    // Coarse points + the 0.40..0.60 fine sweep (11 points) + header.
    let rows = csv.lines().count() - 1;
    assert_eq!(rows, 15, "expected 15 sweep points, got {rows}");
    // Ratios are positive numbers.
    for line in csv.lines().skip(1) {
        let ratio: f64 = line.split(',').nth(1).unwrap().parse().unwrap();
        assert!(ratio > 0.0);
    }
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn trace_artifacts_byte_identical_across_thread_counts() {
    let mut outputs = Vec::new();
    for threads in ["1", "3"] {
        let dir = temp_out(&format!("trace_t{threads}"));
        let out = repro()
            .args([
                "trace",
                "--iterations",
                "2",
                "--steps",
                "30",
                "--placements",
                "30",
                "--threads",
                threads,
                "--out",
            ])
            .arg(&dir)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let json = std::fs::read_to_string(dir.join("trace.json")).unwrap();
        let csv = std::fs::read_to_string(dir.join("trace.csv")).unwrap();
        outputs.push((json, csv));
        std::fs::remove_dir_all(dir).ok();
    }
    assert_eq!(
        outputs[0], outputs[1],
        "trace artifacts must not depend on the worker thread count"
    );
    let json = &outputs[0].0;
    // The JSON carries the temporal summaries the subsystem promises.
    for key in [
        "link_lifetime",
        "inter_contact",
        "outage",
        "repair",
        "path_availability",
        "survival",
        "r_stationary",
    ] {
        assert!(json.contains(key), "trace.json missing `{key}`");
    }
    // 4 default models (waypoint, drunkard, gauss-markov, rpgm)
    // x 4 multipliers.
    assert_eq!(json.matches("\"multiplier\"").count(), 16);
    for model in ["waypoint", "drunkard", "gauss-markov", "rpgm"] {
        assert!(
            json.contains(&format!("\"{model}\"")),
            "trace.json missing default model `{model}`"
        );
    }
    let csv = &outputs[0].1;
    assert_eq!(csv.lines().count(), 17, "header + 16 sweep rows");
}

#[test]
fn models_flag_selects_the_sweep_and_rejects_unknown_names() {
    let dir = temp_out("models_flag");
    let out = repro()
        .args([
            "fixed",
            "--iterations",
            "2",
            "--steps",
            "20",
            "--placements",
            "30",
            "--models",
            "gauss-markov-wrap,walk-bounce",
            "--out",
        ])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let csv = std::fs::read_to_string(dir.join("fixed.csv")).unwrap();
    assert_eq!(csv.lines().count(), 9, "header + 2 models x 4 multipliers");
    assert!(csv.contains("gauss-markov-wrap"));
    assert!(csv.contains("walk-bounce"));
    assert!(!csv.contains("drunkard"));
    std::fs::remove_dir_all(dir).ok();

    let out = repro()
        .args(["fixed", "--models", "no-such-model"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown model"), "stderr: {err}");
    assert!(err.contains("rpgm"), "error should list known names: {err}");
}

#[test]
fn theory_t4_reports_gap_probabilities() {
    let dir = temp_out("t4");
    let out = repro()
        .args(["theory", "t4", "--placements", "50", "--out"])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let csv = std::fs::read_to_string(dir.join("theory_t4.csv")).unwrap();
    let mut window_col = Vec::new();
    let mut connected_col = Vec::new();
    for line in csv.lines().skip(1) {
        let cells: Vec<&str> = line.split(',').collect();
        window_col.push(cells[1].parse::<f64>().unwrap());
        connected_col.push(cells[3].parse::<f64>().unwrap());
    }
    // Theorem 4: bounded away from zero in the window...
    assert!(window_col.iter().all(|&p| p > 0.9));
    // ...Theorem 3: decaying above the threshold.
    assert!(connected_col.windows(2).all(|w| w[1] <= w[0] + 1e-9));
    std::fs::remove_dir_all(dir).ok();
}

/// The incremental connectivity spine must not move a single output
/// byte: `fixed` and `uptime` at the pinned golden configuration
/// (pinned to the paper's two models, the pre-registry default) match
/// the goldens captured from the pre-refactor rebuild-and-relabel
/// engine, at any thread count.
#[test]
fn fixed_and_uptime_match_goldens_across_thread_counts() {
    let golden_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/goldens");
    for threads in ["1", "3"] {
        let dir = temp_out(&format!("goldens_t{threads}"));
        for cmd in ["fixed", "uptime"] {
            let out = repro()
                .args([
                    cmd,
                    "--iterations",
                    "3",
                    "--steps",
                    "120",
                    "--placements",
                    "200",
                    "--seed",
                    "20020623",
                    "--threads",
                    threads,
                    "--models",
                    "waypoint,drunkard",
                    "--out",
                ])
                .arg(&dir)
                .output()
                .unwrap();
            assert!(
                out.status.success(),
                "stderr: {}",
                String::from_utf8_lossy(&out.stderr)
            );
        }
        for artifact in ["fixed.csv", "uptime_x2.csv"] {
            let got = std::fs::read_to_string(dir.join(artifact)).unwrap();
            let want = std::fs::read_to_string(golden_dir.join(artifact)).unwrap();
            assert_eq!(
                got, want,
                "{artifact} diverged from tests/goldens at --threads {threads}"
            );
        }
        std::fs::remove_dir_all(dir).ok();
    }
}

/// Blanks the value following `start_pat` (up to `end`) so manifest
/// fields that legitimately vary between runs — the recorded worker
/// thread count and the build-profile `features` provenance — don't
/// break byte comparison. Everything else must match exactly.
fn blank_manifest_field(s: &str, start_pat: &str, end: char) -> String {
    match s.find(start_pat) {
        Some(i) => {
            let vstart = i + start_pat.len();
            let vend = vstart + s[vstart..].find(end).unwrap();
            format!("{}{}", &s[..vstart], &s[vend..])
        }
        None => s.to_string(),
    }
}

fn normalize_metrics(json: &str) -> String {
    let s = blank_manifest_field(json, "\"threads\":", ',');
    blank_manifest_field(&s, "\"features\":[", ']')
}

/// The deterministic telemetry artifact: `--metrics` writes a
/// manifest + counters JSON that reproduces the committed golden
/// byte-for-byte (modulo the recorded thread count and build-profile
/// provenance, which legitimately vary) at any thread count. The
/// counters themselves are `u64` event totals merged commutatively
/// over iterations — the byte identity below is the proof.
#[test]
fn metrics_artifact_matches_golden_across_thread_counts() {
    let golden_path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/goldens/trace_metrics.json");
    let golden = std::fs::read_to_string(&golden_path).unwrap();
    for threads in ["1", "3"] {
        let dir = temp_out(&format!("metrics_t{threads}"));
        let metrics_path = dir.join("metrics.json");
        let out = repro()
            .args([
                "trace",
                "--iterations",
                "2",
                "--steps",
                "30",
                "--placements",
                "30",
                "--seed",
                "20020623",
                "--threads",
                threads,
                "--models",
                "gauss-markov,rpgm",
                "--metrics",
            ])
            .arg(&metrics_path)
            .arg("--out")
            .arg(&dir)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let got = std::fs::read_to_string(&metrics_path).unwrap();
        assert_eq!(
            normalize_metrics(&got),
            normalize_metrics(&golden),
            "metrics.json diverged from tests/goldens at --threads {threads}"
        );
        // Un-normalized, the artifact records what was actually asked.
        assert!(got.contains(&format!("\"threads\":{threads}")));
        // Both planes are present; the span plane is empty without
        // `--profile` (it is the nondeterministic one).
        assert!(got.contains("\"counters\":["));
        assert!(got.ends_with("\"spans\":[]}"));
        std::fs::remove_dir_all(dir).ok();
    }
}

/// The sharded step kernel is a performance knob, not a semantics one:
/// `--step-threads` must not move a byte of the trace artifacts. This
/// is the end-to-end gate on intra-step parallelism (the unit layers
/// pin graph/diff/metrics equality; this pins the shipped files).
#[test]
fn trace_artifacts_byte_identical_across_step_thread_counts() {
    let mut outputs = Vec::new();
    for step_threads in ["1", "4"] {
        let dir = temp_out(&format!("trace_st{step_threads}"));
        let out = repro()
            .args([
                "trace",
                "--iterations",
                "2",
                "--steps",
                "30",
                "--placements",
                "30",
                "--models",
                "waypoint,drunkard",
                "--step-threads",
                step_threads,
                "--out",
            ])
            .arg(&dir)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let json = std::fs::read_to_string(dir.join("trace.json")).unwrap();
        let csv = std::fs::read_to_string(dir.join("trace.csv")).unwrap();
        outputs.push((json, csv));
        std::fs::remove_dir_all(dir).ok();
    }
    assert_eq!(
        outputs[0], outputs[1],
        "trace artifacts must not depend on --step-threads"
    );
}

/// Strips every embedded `kernel` counter block from an artifact:
/// the path counters (bulk vs verify vs rebuild) are *supposed* to
/// differ across skin settings — they record which kernel path ran —
/// while everything observable must not.
fn strip_kernel_counters(json: &str) -> String {
    let mut s = json.to_string();
    while let Some(start) = s.find("\"kernel\":{") {
        // The counter block holds only numeric fields (no strings), so
        // brace counting finds its end without a full JSON parse.
        let open = start + "\"kernel\":".len();
        let mut depth = 0usize;
        let mut end = s.len();
        for (j, c) in s[open..].char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = open + j + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        // Swallow one adjacent comma so the remainder stays valid JSON.
        if s[end..].starts_with(',') {
            s.replace_range(start..end + 1, "");
        } else if s[..start].ends_with(',') {
            s.replace_range(start - 1..end, "");
        } else {
            s.replace_range(start..end, "");
        }
    }
    s
}

/// The Verlet cache is a performance knob, not a semantics one: the
/// cached verify/rebuild path (`--skin auto`, the default) must
/// produce the same observables as the legacy kernel with the cache
/// off (`--skin 0`), crossed with the shard count. The CSV is
/// compared byte-for-byte; trace.json embeds kernel path counters
/// (which record *how* each step committed and so legitimately vary),
/// so those blocks are stripped first. This is the end-to-end
/// cache-path identity gate the CI smoke mirrors at larger n.
#[test]
fn trace_artifacts_byte_identical_across_skin_settings() {
    let mut outputs = Vec::new();
    for (skin, step_threads) in [("0", "1"), ("auto", "1"), ("0", "4"), ("auto", "4")] {
        let dir = temp_out(&format!("trace_skin{skin}_st{step_threads}"));
        let out = repro()
            .args([
                "trace",
                "--iterations",
                "2",
                "--steps",
                "30",
                "--placements",
                "30",
                "--models",
                "waypoint,drunkard",
                "--nodes",
                "48",
                "--skin",
                skin,
                "--step-threads",
                step_threads,
                "--out",
            ])
            .arg(&dir)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let json = std::fs::read_to_string(dir.join("trace.json")).unwrap();
        let csv = std::fs::read_to_string(dir.join("trace.csv")).unwrap();
        outputs.push(((skin, step_threads), strip_kernel_counters(&json), csv));
        std::fs::remove_dir_all(dir).ok();
    }
    let (_, ref want_json, ref want_csv) = outputs[0];
    for (cfg, json, csv) in &outputs[1..] {
        assert_eq!(
            (json, csv),
            (want_json, want_csv),
            "trace observables must not depend on --skin/--step-threads (at {cfg:?})"
        );
    }
}

/// Satellite gate: `--skin` and `--step-threads` reach the
/// critical-scaling probe construction, and the located thresholds
/// (the CSV) are byte-identical across both knobs. The JSON embeds
/// kernel counters, which legitimately differ across skin settings,
/// so only the CSV is compared.
#[test]
fn critical_scaling_csv_identical_across_skin_and_step_threads() {
    let mut outputs = Vec::new();
    for (skin, step_threads) in [("0", "1"), ("auto", "2"), ("15", "4")] {
        let dir = temp_out(&format!("critical_skin{skin}_st{step_threads}"));
        let out = repro()
            .args([
                "critical-scaling",
                "--iterations",
                "2",
                "--steps",
                "30",
                "--n-sweep",
                "8,12",
                "--models",
                "waypoint,drunkard",
                "--skin",
                skin,
                "--step-threads",
                step_threads,
                "--out",
            ])
            .arg(&dir)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let csv = std::fs::read_to_string(dir.join("critical_scaling.csv")).unwrap();
        outputs.push(((skin, step_threads), csv));
        std::fs::remove_dir_all(dir).ok();
    }
    let (_, ref want) = outputs[0];
    for (cfg, csv) in &outputs[1..] {
        assert_eq!(
            csv, want,
            "critical_scaling.csv must not depend on --skin/--step-threads (at {cfg:?})"
        );
    }
}

/// `--nodes` reaches every pipeline (PR 5 wired it into `trace` only):
/// `fixed`, `uptime`, and `quantity` all honor the override, so large-n
/// runs on the sharded step kernel are reachable from each.
#[test]
fn nodes_override_reaches_every_pipeline() {
    for (cmd, artifact) in [
        ("fixed", "fixed.csv"),
        ("uptime", "uptime_x2.csv"),
        ("quantity", "quantity_x1.csv"),
    ] {
        let dir = temp_out(&format!("nodes_{cmd}"));
        let out = repro()
            .args([
                cmd,
                "--iterations",
                "2",
                "--steps",
                "20",
                "--placements",
                "30",
                "--models",
                "waypoint",
                "--nodes",
                "12",
                "--step-threads",
                "2",
                "--out",
            ])
            .arg(&dir)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{cmd} --nodes 12 failed; stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let csv = std::fs::read_to_string(dir.join(artifact)).unwrap();
        assert!(
            csv.lines().count() > 1,
            "{artifact} should have at least one data row"
        );
        std::fs::remove_dir_all(dir).ok();
    }
}

/// `--progress` is a stderr-only affordance: it must not move a byte
/// of stdout or of any artifact.
#[test]
fn progress_lines_stay_on_stderr_and_leave_artifacts_untouched() {
    let base = [
        "fixed",
        "--iterations",
        "2",
        "--steps",
        "20",
        "--placements",
        "30",
        "--seed",
        "20020623",
        "--threads",
        "1",
        "--models",
        "waypoint",
    ];
    let mut artifacts = Vec::new();
    for progress in [false, true] {
        let dir = temp_out(&format!("progress_{progress}"));
        let mut cmd = repro();
        cmd.args(base);
        if progress {
            cmd.arg("--progress");
        }
        let out = cmd.arg("--out").arg(&dir).output().unwrap();
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8_lossy(&out.stderr).to_string();
        assert_eq!(
            stderr.contains("progress:"),
            progress,
            "progress lines present iff --progress was given; stderr: {stderr}"
        );
        // The `wrote <path>` lines embed the per-run temp dir; drop
        // them before comparing the rest of stdout byte-for-byte.
        let stdout: String = String::from_utf8_lossy(&out.stdout)
            .lines()
            .filter(|l| !l.starts_with("wrote "))
            .map(|l| format!("{l}\n"))
            .collect();
        artifacts.push((
            stdout,
            std::fs::read_to_string(dir.join("fixed.csv")).unwrap(),
        ));
        std::fs::remove_dir_all(dir).ok();
    }
    assert_eq!(
        artifacts[0], artifacts[1],
        "--progress must not change stdout or artifacts"
    );
}

/// The zoo's golden: the trace sweep over the two *new* model families
/// (`gauss-markov`, `rpgm`) at a pinned configuration reproduces
/// `tests/goldens/trace_zoo.csv` byte-for-byte at any thread count —
/// the same contract `fixed.csv` holds for the paper's models.
#[test]
fn trace_zoo_matches_golden_across_thread_counts() {
    let golden =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/goldens/trace_zoo.csv");
    for threads in ["1", "3"] {
        let dir = temp_out(&format!("trace_zoo_t{threads}"));
        let out = repro()
            .args([
                "trace",
                "--iterations",
                "3",
                "--steps",
                "120",
                "--placements",
                "200",
                "--seed",
                "20020623",
                "--threads",
                threads,
                "--models",
                "gauss-markov,rpgm",
                "--out",
            ])
            .arg(&dir)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let got = std::fs::read_to_string(dir.join("trace.csv")).unwrap();
        let want = std::fs::read_to_string(&golden).unwrap();
        assert_eq!(
            got, want,
            "trace_zoo.csv diverged from tests/goldens at --threads {threads}"
        );
        std::fs::remove_dir_all(dir).ok();
    }
}

#[test]
fn critical_scaling_matches_golden_across_thread_counts() {
    let golden_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/goldens");
    let want_csv = std::fs::read_to_string(golden_dir.join("critical_scaling.csv")).unwrap();
    let mut reference_json: Option<String> = None;
    // The acceptance bar: byte-identical artifacts at --threads 1/2/4.
    for threads in ["1", "2", "4"] {
        let dir = temp_out(&format!("critical_t{threads}"));
        let out = repro()
            .args([
                "critical-scaling",
                "--iterations",
                "3",
                "--steps",
                "120",
                "--n-sweep",
                "16,32,64",
                "--seed",
                "20020623",
                "--threads",
                threads,
                "--models",
                "waypoint,drunkard",
                "--out",
            ])
            .arg(&dir)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("beta"), "missing fit table: {stdout}");
        let got = std::fs::read_to_string(dir.join("critical_scaling.csv")).unwrap();
        assert_eq!(
            got, want_csv,
            "critical_scaling.csv diverged from tests/goldens at --threads {threads}"
        );
        let json = std::fs::read_to_string(dir.join("critical_scaling.json")).unwrap();
        assert!(json.contains("\"fits\""));
        match &reference_json {
            Some(want) => assert_eq!(
                &json, want,
                "critical_scaling.json diverged at --threads {threads}"
            ),
            None => reference_json = Some(json),
        }
        std::fs::remove_dir_all(dir).ok();
    }
}

#[test]
fn critical_scaling_checkpoint_resume_is_byte_identical() {
    let base = [
        "critical-scaling",
        "--iterations",
        "2",
        "--steps",
        "40",
        "--n-sweep",
        "12,16,24",
        "--models",
        "waypoint,drunkard",
    ];
    let full_dir = temp_out("critical_full");
    let out = repro()
        .args(base)
        .args(["--threads", "2", "--out"])
        .arg(&full_dir)
        .output()
        .unwrap();
    assert!(out.status.success());

    // Interrupt the grid after 2 of 6 cells: a checkpoint is written,
    // final artifacts are not.
    let resume_dir = temp_out("critical_resume");
    let ckpt = resume_dir.join("sweep.ckpt.json");
    let out = repro()
        .args(base)
        .args(["--threads", "3", "--max-cells", "2", "--checkpoint"])
        .arg(&ckpt)
        .arg("--out")
        .arg(&resume_dir)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("sweep paused"), "stdout: {stdout}");
    assert!(ckpt.exists(), "checkpoint file missing");
    assert!(
        !resume_dir.join("critical_scaling.csv").exists(),
        "interrupted run must not emit final artifacts"
    );

    // Resume from the checkpoint on yet another thread count.
    let out = repro()
        .args(base)
        .args(["--threads", "1", "--checkpoint"])
        .arg(&ckpt)
        .arg("--out")
        .arg(&resume_dir)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("resuming from"));

    for artifact in ["critical_scaling.csv", "critical_scaling.json"] {
        let full = std::fs::read_to_string(full_dir.join(artifact)).unwrap();
        let resumed = std::fs::read_to_string(resume_dir.join(artifact)).unwrap();
        assert_eq!(
            full, resumed,
            "{artifact} differs between resumed and uninterrupted runs"
        );
    }
    std::fs::remove_dir_all(full_dir).ok();
    std::fs::remove_dir_all(resume_dir).ok();
}

#[test]
fn k_target_thresholds_k_connectivity() {
    let run = |extra: &[&str], tag: &str| {
        let dir = temp_out(tag);
        let out = repro()
            .args([
                "critical-scaling",
                "--iterations",
                "2",
                "--steps",
                "30",
                "--n-sweep",
                "8,12,16",
                "--models",
                "waypoint",
                "--target",
                "1.0",
            ])
            .args(extra)
            .args(["--out"])
            .arg(&dir)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let csv = std::fs::read_to_string(dir.join("critical_scaling.csv")).unwrap();
        let r_c: Vec<f64> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(3).unwrap().parse().unwrap())
            .collect();
        std::fs::remove_dir_all(dir).ok();
        r_c
    };
    // Oracle: biconnectivity needs at least the range plain
    // connectivity needs, cell by cell.
    let k1 = run(&["--k-target", "1"], "ktarget_k1");
    let k2 = run(&["--k-target", "2"], "ktarget_k2");
    assert_eq!(k1.len(), 3);
    for (a, b) in k1.iter().zip(&k2) {
        assert!(b >= a, "k=2 range {b} below k=1 range {a}");
    }
    assert!(
        k2.iter().zip(&k1).any(|(b, a)| b > a),
        "k=2 should strictly exceed k=1 somewhere on sparse placements"
    );

    // Infeasible k (>= n) is rejected with a clear message.
    let out = repro()
        .args([
            "critical-scaling",
            "--iterations",
            "1",
            "--steps",
            "5",
            "--n-sweep",
            "8",
            "--models",
            "waypoint",
            "--k-target",
            "8",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("k-connectivity"));
}
