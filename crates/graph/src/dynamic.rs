//! Incremental graph maintenance over a moving point set.
//!
//! Every observer that wants graph structure at each mobility step used
//! to rebuild the adjacency from scratch and diff two full snapshots —
//! `O(n + E)` allocations and work per step even when almost nothing
//! changed. [`DynamicGraph`] is now a **zero-rebuild step kernel**: it
//! keeps a [`MovingCellGrid`] built once and updated per step, and
//! derives each step's [`EdgeDiff`] directly from the nodes that
//! actually moved.
//!
//! # The displacement argument
//!
//! Between two steps, the distance of a pair `(i, j)` changes by at
//! most `d_i + d_j <= 2·dmax`, where `d_i` is node `i`'s displacement
//! and `dmax` the per-step maximum. An edge can therefore appear or
//! disappear only for pairs whose previous distance lay in
//! `[r − 2·dmax, r + 2·dmax]` — and, structurally, only for pairs with
//! at least one *moved* endpoint (an unmoved pair's distance is
//! bit-identical). The kernel exploits the structural half exactly: it
//! rescans only moved nodes' `3^D`-cell neighborhoods, so per-step work
//! is proportional to the moved set and its local density, never to
//! `n + E`, and the result is exact for **any** displacement.
//!
//! The quantitative half is a *contract*: a mobility model may declare
//! a per-step displacement bound (`Mobility::max_step_displacement` in
//! `manet-mobility`, wired through the simulation stream). The kernel
//! measures the true maximum displacement while updating the grid
//! anyway — it is a byproduct of finding the moved set — so the
//! declaration costs nothing to police; if a declared bound
//! is ever exceeded, the model lied about its dynamics, and the kernel
//! routes that step through the full rebuild-and-diff oracle path
//! instead of trusting the incremental machinery — observable via
//! [`DynamicGraph::fallback_steps`], never silent.
//!
//! # Determinism
//!
//! Both paths emit `added`/`removed` sorted lexicographically over
//! `(a, b)` pairs with `a < b`, and the maintained snapshot keeps
//! sorted neighbor lists — bit-identical to
//! [`AdjacencyList::from_points`] followed by [`AdjacencyList::diff`],
//! which property tests enforce for every mobility model in the
//! registry. The bulk-rescan path may additionally fan a single step
//! out over scoped worker threads
//! ([`DynamicGraph::set_step_threads`]): the grid splits into axis-0
//! cell strips that examine disjoint pair sets, and fragments merge in
//! shard order, so the result is also bit-identical across thread
//! counts — the same invariance, one level deeper.
//!
//! # The Verlet candidate cache
//!
//! In all-moving regimes even the bulk rescan is wasteful: every step
//! re-enumerates the same cell neighborhoods to rediscover a pair set
//! that changed only marginally. Under a *declared* displacement bound
//! the kernel can do better with a classic Verlet (skin-radius) list:
//! cache every pair within `r + skin` once, then serve steps by
//! streaming only the cached candidates against the current positions
//! — no cell traversal at all. Soundness is the displacement argument
//! again: a pair outside `r + skin` at build time needs accumulated
//! motion `> skin` (i.e. `> skin/2` per endpoint) to close within `r`,
//! so as long as every node has drifted at most `skin/2` since the
//! build, the cached arena covers every pair that could possibly be an
//! edge. The kernel tracks the running maximum drift (an `O(moved)`
//! byproduct of the per-step measure pass) and rebuilds the arena the
//! moment the budget is exceeded; steps that violate the declared
//! bound route through the rebuild oracle and mark the arena stale —
//! exactly the fallback contract of the legacy paths. See
//! [`DynamicGraph::set_skin`] for how `skin` is chosen.

use crate::adjacency::AdjacencyList;
use crate::parallel;
use manet_geom::{MovingCellGrid, Point};
use manet_obs::{GridMetrics, ShardScan, StepKernelMetrics};

/// The symmetric difference between two graph snapshots on the same
/// node set.
///
/// Edges are reported as `(a, b)` with `a < b`, in lexicographic
/// order — a deterministic encoding that downstream consumers (and the
/// byte-identical artifact tests) rely on.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EdgeDiff {
    /// Edges present in the newer snapshot but not the older.
    pub added: Vec<(u32, u32)>,
    /// Edges present in the older snapshot but not the newer.
    pub removed: Vec<(u32, u32)>,
}

impl EdgeDiff {
    /// Total churn: number of added plus removed edges.
    pub fn churn(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// Whether the two snapshots had identical edge sets.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Empties both edge lists, keeping their capacity — the step
    /// kernels refill the same `EdgeDiff` every step instead of
    /// allocating fresh vectors.
    pub fn clear(&mut self) {
        self.added.clear();
        self.removed.clear();
    }
}

impl AdjacencyList {
    /// Computes the edge delta from `self` (the older snapshot) to
    /// `newer`.
    ///
    /// Both graphs must have sorted neighbor lists, which every
    /// `from_points*` constructor guarantees; graphs assembled by hand
    /// with [`AdjacencyList::add_edge`] must add edges in sorted order
    /// (checked in debug builds).
    ///
    /// # Panics
    ///
    /// Panics when the node counts differ.
    pub fn diff(&self, newer: &AdjacencyList) -> EdgeDiff {
        let mut diff = EdgeDiff::default();
        self.diff_into(newer, &mut diff);
        diff
    }

    /// [`AdjacencyList::diff`] writing into a caller-owned (cleared,
    /// capacity-reusing) `EdgeDiff`.
    ///
    /// # Panics
    ///
    /// Panics when the node counts differ.
    pub fn diff_into(&self, newer: &AdjacencyList, diff: &mut EdgeDiff) {
        assert_eq!(
            self.len(),
            newer.len(),
            "diff requires snapshots of the same node set"
        );
        diff.clear();
        for a in 0..self.len() {
            merge_row_diff(self.neighbors(a), newer.neighbors(a), a as u32, diff);
        }
    }
}

/// Sorted-merges one node's old and new neighbor rows into `diff`,
/// recording each changed undirected edge only from its lower endpoint
/// (`partner > a`) — so a pass over rows in ascending `a` emits events
/// already in lexicographic order. Shared by [`AdjacencyList::diff_into`]
/// and the step kernel's bulk-rescan path.
fn merge_row_diff(old: &[u32], new: &[u32], a: u32, diff: &mut EdgeDiff) {
    debug_assert!(old.windows(2).all(|w| w[0] < w[1]), "unsorted neighbors");
    debug_assert!(new.windows(2).all(|w| w[0] < w[1]), "unsorted neighbors");
    let (mut i, mut j) = (0usize, 0usize);
    while i < old.len() || j < new.len() {
        match (old.get(i), new.get(j)) {
            (Some(&o), Some(&n)) if o == n => {
                i += 1;
                j += 1;
            }
            (Some(&o), Some(&n)) if o < n => {
                if o > a {
                    diff.removed.push((a, o));
                }
                i += 1;
            }
            (Some(_), Some(&n)) => {
                if n > a {
                    diff.added.push((a, n));
                }
                j += 1;
            }
            (Some(&o), None) => {
                if o > a {
                    diff.removed.push((a, o));
                }
                i += 1;
            }
            (None, Some(&n)) => {
                if n > a {
                    diff.added.push((a, n));
                }
                j += 1;
            }
            (None, None) => unreachable!("loop condition"),
        }
    }
}

/// Relative slack on the declared displacement bound before the kernel
/// treats a step as a contract violation: motion arithmetic (unit
/// vectors, folds, clamps) may overshoot a model's nominal bound by a
/// few ULPs without the model being wrong about its dynamics.
const BOUND_SLACK: f64 = 1.0 + 1e-9;

/// How the step kernel chooses the Verlet-cache skin radius (the
/// margin added to the transmitting range when building the candidate
/// arena); see [`DynamicGraph::set_skin`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Skin {
    /// Never arm the cache: the kernel runs exactly its classic
    /// incremental/bulk/fallback paths.
    Off,
    /// Derive the skin from the observed per-step displacement via the
    /// rebuild-amortization cost model, declining to arm when the
    /// model predicts no win over per-step bulk rescans. The default.
    #[default]
    Auto,
    /// Arm with this skin radius (finite, strictly positive) on the
    /// first eligible step, bypassing the cost model.
    Fixed(f64),
}

impl std::str::FromStr for Skin {
    type Err = String;

    /// Parses the `--skin` flag grammar: `auto`, `off`, or a finite
    /// non-negative radius (`0` means `off`).
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "auto" => Ok(Skin::Auto),
            "off" => Ok(Skin::Off),
            _ => {
                let v: f64 = s.parse().map_err(|_| {
                    format!("invalid skin {s:?}: expected \"auto\", \"off\" or a radius")
                })?;
                if !v.is_finite() || v < 0.0 {
                    return Err(format!("skin must be finite and non-negative, got {v}"));
                }
                Ok(if v == 0.0 { Skin::Off } else { Skin::Fixed(v) })
            }
        }
    }
}

impl std::fmt::Display for Skin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Skin::Off => write!(f, "off"),
            Skin::Auto => write!(f, "auto"),
            Skin::Fixed(v) => write!(f, "{v}"),
        }
    }
}

/// Cost-model ratio between one candidate's share of an arena rebuild
/// (cell scan at `r + skin`, global pair sort, arena fill) and one
/// candidate's share of a verify pass (a single streamed distance
/// check). Measured on the `step_kernel` bench host; only the arming
/// decision and the auto skin depend on it, never correctness.
const SKIN_REBUILD_COST_RATIO: f64 = 3.0;

/// Minimum worthwhile drift budget, in units of the observed per-step
/// displacement: below this many steps per rebuild the cache would
/// thrash (rebuild almost every step) and auto-tuning declines to arm.
const SKIN_MIN_REBUILD_STEPS: f64 = 3.0;

/// Verify passes shorter than this stay serial: sharding a tiny arena
/// over scoped threads costs more than streaming it. Deterministic —
/// a pure function of the arena length, never of thread timing.
const VERIFY_SHARD_MIN_PAIRS: usize = 4096;

/// Packs a canonical pair (`a < b`) into one `u64` whose natural order
/// is the lexicographic `(a, b)` order — the bulk/verify paths sort
/// and merge flat `u64` lists instead of per-row neighbor merges.
#[inline]
fn pack_pair(a: u32, b: u32) -> u64 {
    ((a as u64) << 32) | b as u64
}

/// Inverse of [`pack_pair`].
#[inline]
fn unpack_pair(p: u64) -> (u32, u32) {
    ((p >> 32) as u32, p as u32)
}

/// Single linear merge of two lex-sorted packed edge lists into the
/// diff. Packed order is lexicographic pair order, so `added` and
/// `removed` come out exactly as the per-row oracle emits them.
fn merge_packed_diff(old: &[u64], new: &[u64], diff: &mut EdgeDiff) {
    debug_assert!(
        old.windows(2).all(|w| w[0] < w[1]),
        "unsorted packed edge list"
    );
    debug_assert!(
        new.windows(2).all(|w| w[0] < w[1]),
        "unsorted packed edge list"
    );
    diff.clear();
    let (mut i, mut j) = (0usize, 0usize);
    while i < old.len() && j < new.len() {
        let (o, n) = (old[i], new[j]);
        if o == n {
            i += 1;
            j += 1;
        } else if o < n {
            diff.removed.push(unpack_pair(o));
            i += 1;
        } else {
            diff.added.push(unpack_pair(n));
            j += 1;
        }
    }
    diff.removed
        .extend(old[i..].iter().map(|&p| unpack_pair(p)));
    diff.added.extend(new[j..].iter().map(|&p| unpack_pair(p)));
}

/// The displacement-tracked Verlet candidate arena: every pair within
/// `r + skin` at the last build, packed (`a < b`) and lex-sorted in
/// one contiguous buffer, with a CSR offset table over the lower
/// endpoint so the serial verify pass can hoist that node's position
/// out of its inner loop. Rebuilt in stable node order; both buffers
/// keep their capacity across rebuilds.
#[derive(Debug, Clone, Default)]
struct VerletCache {
    /// Lex-sorted packed candidate pairs.
    pairs: Vec<u64>,
    /// CSR row offsets into `pairs` by lower endpoint (`n + 1` entries).
    offsets: Vec<usize>,
    /// The arena no longer covers the trajectory (a fallback step
    /// rebuilt the snapshot behind it); forces a rebuild next step.
    stale: bool,
}

/// A communication graph maintained across mobility steps by an
/// incremental, allocation-free step kernel.
///
/// [`DynamicGraph::step`] updates the internal [`MovingCellGrid`] (only
/// boundary-crossing nodes relocate), rescans only the nodes that
/// moved, emits the step's [`EdgeDiff`] into a held, capacity-reusing
/// buffer, and patches the snapshot's sorted neighbor lists in place —
/// after warm-up the hot loop performs no allocation. A declared
/// per-step displacement bound (see
/// [`DynamicGraph::with_displacement_bound`]) is policed every step;
/// violations fall back to the full rebuild-and-diff oracle for that
/// step (bit-identical output, counted by
/// [`DynamicGraph::fallback_steps`]).
///
/// # Example
///
/// ```
/// use manet_geom::Point;
/// use manet_graph::DynamicGraph;
///
/// let mut pts = vec![Point::new([0.0]), Point::new([1.0]), Point::new([5.0])];
/// let mut dg = DynamicGraph::new(&pts, 10.0, 1.5);
/// assert_eq!(dg.last_diff().added, vec![(0, 1)]);
///
/// pts[2] = Point::new([2.0]); // node 2 walks into range of node 1
/// dg.step(&pts);
/// assert_eq!(dg.last_diff().added, vec![(1, 2)]);
/// assert!(dg.last_diff().removed.is_empty());
/// assert_eq!(dg.graph().edge_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct DynamicGraph<const D: usize> {
    side: f64,
    range: f64,
    /// Declared per-step displacement bound (squared, slack applied);
    /// `None` disables the contract check.
    bound_sq: Option<f64>,
    graph: AdjacencyList,
    /// The moving index; `None` for degenerate `side`/`range` where no
    /// grid can exist — every step then takes the rebuild path.
    grid: Option<MovingCellGrid<D>>,
    /// The last step's delta, held so capacity is reused every step.
    diff: EdgeDiff,
    /// Scratch: indices of nodes that moved this step, ascending.
    moved: Vec<u32>,
    /// Scratch: epoch stamps marking this step's moved set.
    moved_stamp: Vec<u32>,
    stamp_epoch: u32,
    /// Scratch: per-scan stamps marking the scanned node's old
    /// neighbors (`old_stamp`) and which of them were re-found in
    /// range (`matched_stamp`) — replaces per-node sorting/merging.
    old_stamp: Vec<u32>,
    matched_stamp: Vec<u32>,
    scan_id: u32,
    /// Scratch: next-snapshot neighbor rows for the bulk-rescan path;
    /// swapped wholesale with the live rows so both row sets' capacity
    /// is reused on alternating rescans.
    next_rows: Vec<Vec<u32>>,
    /// Worker threads for the sharded bulk rescan (`>= 1`); the output
    /// is invariant across this setting by construction (see
    /// [`DynamicGraph::set_step_threads`]).
    step_threads: usize,
    /// Scratch: per-shard packed-pair fragments for the sharded bulk
    /// rescan, cache rebuild and verify paths, persisted so worker
    /// buffers keep their capacity across steps.
    shard_pairs: Vec<Vec<u64>>,
    /// The snapshot's edge set as a lex-sorted packed list — the "old"
    /// side of the single-merge diff on the bulk/verify paths. Lazily
    /// re-derived from the snapshot after incremental/fallback steps
    /// (`edge_pairs_valid`).
    edge_pairs: Vec<u64>,
    edge_pairs_valid: bool,
    /// Scratch: the next snapshot's packed edge list.
    new_pairs: Vec<u64>,
    /// How the Verlet-cache skin is chosen (see
    /// [`DynamicGraph::set_skin`]).
    skin_cfg: Skin,
    /// Resolved skin radius once the cache armed; `0.0` while unarmed.
    skin: f64,
    /// `(skin/2)²`: the accumulated-displacement budget between arena
    /// rebuilds.
    drift_limit_sq: f64,
    /// The candidate arena (armed mode).
    cache: VerletCache,
    /// Armed mode: the previous step's positions. The legacy paths
    /// read these off the grid, but armed mode freezes the grid at the
    /// last arena build (its points *are* the drift reference), so the
    /// per-step measure needs its own copy.
    prev: Vec<Point<D>>,
    /// Armed mode: running max squared drift of any node from its
    /// position at the last arena build.
    max_drift_sq: f64,
    /// Deterministic per-path counters (see [`StepKernelMetrics`]):
    /// which path served each step, rescan candidate volumes, and
    /// edge-event magnitudes. The initial build is not counted.
    metrics: StepKernelMetrics,
}

/// Moved-set fraction at and above which [`DynamicGraph::step`]
/// abandons per-moved-node rescans for one bulk rescan of the whole
/// snapshot (still grid-indexed, allocation-free and byte-identical —
/// unlike the from-scratch [`AdjacencyList::from_points`] fallback).
///
/// Per-moved-node scanning examines each moved node's full `3^D`-cell
/// neighborhood and pays stamp bookkeeping per candidate; the bulk
/// rescan enumerates each candidate pair once with a bare `j > i`
/// filter and re-buckets the grid in one pass instead of relocating
/// node by node. Measured on the `step_kernel` bench (uniform 2-D
/// waypoint, sparse regime), the two cross between 40% and 60% of
/// nodes moving per step.
pub const BULK_RESCAN_FRACTION: f64 = 0.5;

impl<const D: usize> DynamicGraph<D> {
    /// Builds the step-0 snapshot for points in `[0, side]^D` at the
    /// given transmitting range; [`DynamicGraph::last_diff`] initially
    /// reports every present edge as added, so feeding it to a delta
    /// consumer makes step 0 uniform with the rest of the stream.
    pub fn new(points: &[Point<D>], side: f64, range: f64) -> Self {
        let graph = AdjacencyList::from_points(points, side, range);
        // Cell width >= range keeps the 3^D-cell candidate scan
        // complete, and any *coarser* lattice stays correct (it only
        // widens the candidate set), so the lattice is floored at
        // ~n total cells — a tiny range must not demand a
        // `(side/range)^D`-cell allocation. Degenerate parameters
        // disable the grid and the kernel rebuilds every step instead.
        let grid = if range.is_finite() && range > 0.0 && side.is_finite() && side > 0.0 {
            let per_axis_cap = (points.len().max(1) as f64)
                .powf(1.0 / D as f64)
                .ceil()
                .max(1.0);
            let cell_size = range.max(side / per_axis_cap);
            MovingCellGrid::build(points, side, cell_size).ok()
        } else {
            None
        };
        let diff = EdgeDiff {
            added: graph.edges().map(|(a, b)| (a as u32, b as u32)).collect(),
            removed: Vec::new(),
        };
        DynamicGraph {
            side,
            range,
            bound_sq: None,
            graph,
            grid,
            diff,
            moved: Vec::new(),
            moved_stamp: vec![0; points.len()],
            stamp_epoch: 0,
            old_stamp: vec![0; points.len()],
            matched_stamp: vec![0; points.len()],
            scan_id: 0,
            next_rows: Vec::new(),
            step_threads: 1,
            shard_pairs: Vec::new(),
            edge_pairs: Vec::new(),
            edge_pairs_valid: false,
            new_pairs: Vec::new(),
            skin_cfg: Skin::default(),
            skin: 0.0,
            drift_limit_sq: 0.0,
            cache: VerletCache::default(),
            prev: Vec::new(),
            max_drift_sq: 0.0,
            metrics: StepKernelMetrics::default(),
        }
    }

    /// Sets the worker-thread count for the sharded bulk rescan
    /// (chainable); see [`DynamicGraph::set_step_threads`].
    ///
    /// # Panics
    ///
    /// Panics when `threads` is zero.
    pub fn with_step_threads(mut self, threads: usize) -> Self {
        self.set_step_threads(threads);
        self
    }

    /// Sets how many scoped worker threads the bulk-rescan path may
    /// fan a single step out over (default 1: fully serial).
    ///
    /// This is a *performance* knob, never a semantic one: the bulk
    /// rescan splits the grid into axis-0 cell strips, each worker
    /// emits its strip's in-range pairs into a private buffer, and the
    /// merge consumes the buffers in shard order. The discovered pair
    /// set — and therefore the snapshot, the diff, and every counter —
    /// is a function of the positions alone, so results are
    /// bit-identical across thread counts (pinned by the registry-wide
    /// thread-invariance proptests).
    ///
    /// # Panics
    ///
    /// Panics when `threads` is zero.
    pub fn set_step_threads(&mut self, threads: usize) {
        assert!(threads >= 1, "step_threads must be at least 1");
        self.step_threads = threads;
    }

    /// The configured bulk-rescan worker-thread count.
    pub fn step_threads(&self) -> usize {
        self.step_threads
    }

    /// Declares the mobility model's per-step displacement bound
    /// (chainable). `None` removes the contract check; a bound must be
    /// non-negative and finite.
    ///
    /// # Panics
    ///
    /// Panics on a NaN, infinite or negative bound.
    pub fn with_displacement_bound(mut self, bound: Option<f64>) -> Self {
        self.set_displacement_bound(bound);
        self
    }

    /// Sets or clears the declared per-step displacement bound.
    ///
    /// # Panics
    ///
    /// Panics on a NaN, infinite or negative bound.
    pub fn set_displacement_bound(&mut self, bound: Option<f64>) {
        self.bound_sq = bound.map(|b| {
            assert!(
                b.is_finite() && b >= 0.0,
                "displacement bound must be finite and non-negative, got {b}"
            );
            let slacked = b * BOUND_SLACK;
            slacked * slacked
        });
    }

    /// Sets the Verlet-cache skin policy (chainable); see
    /// [`DynamicGraph::set_skin`].
    ///
    /// # Panics
    ///
    /// Panics on a NaN, infinite or non-positive fixed skin.
    pub fn with_skin(mut self, skin: Skin) -> Self {
        self.set_skin(skin);
        self
    }

    /// Configures the Verlet candidate cache's skin radius.
    ///
    /// The cache arms lazily, on the first step where (a) a
    /// displacement bound is declared
    /// ([`DynamicGraph::set_displacement_bound`]) — the drift tracking
    /// that keeps the arena sound is only meaningful under the
    /// `max_step_displacement` contract — (b) the step is in bound,
    /// (c) at least [`BULK_RESCAN_FRACTION`] of the nodes moved (the
    /// regime where the cache pays), and (d) under [`Skin::Auto`] the
    /// cost model predicts a win: it picks `s` minimizing per-step
    /// work `(r+s)²·(1 + 2Kd/s)` — candidate streaming plus a rebuild
    /// amortized over the `s/(2d)` steps the drift budget buys at
    /// observed per-step displacement `d` — and declines when the
    /// budget is too small to amortize anything. Models that never
    /// declare a bound (and degenerate grids) simply keep the classic
    /// paths; [`Skin::Off`] (or `--skin 0`) pins them unconditionally,
    /// byte-identical to a kernel without the cache.
    ///
    /// Reconfiguring disarms an armed cache; it re-arms (or not) under
    /// the new policy on a later eligible step. The widened grid cells
    /// stay — any cell width `>= range` remains correct for every
    /// path.
    ///
    /// # Panics
    ///
    /// Panics on a NaN, infinite or non-positive fixed skin (use
    /// [`Skin::Off`] to disable).
    pub fn set_skin(&mut self, skin: Skin) {
        if let Skin::Fixed(s) = skin {
            assert!(
                s.is_finite() && s > 0.0,
                "fixed skin must be finite and strictly positive, got {s}"
            );
        }
        self.skin_cfg = skin;
        self.skin = 0.0;
    }

    /// The configured skin policy.
    pub fn skin(&self) -> Skin {
        self.skin_cfg
    }

    /// The resolved skin radius, once the cache has armed (`None`
    /// while the kernel is on its classic paths).
    pub fn armed_skin(&self) -> Option<f64> {
        (self.skin > 0.0).then_some(self.skin)
    }

    /// The current snapshot.
    pub fn graph(&self) -> &AdjacencyList {
        &self.graph
    }

    /// The transmitting range every snapshot is built at.
    pub fn range(&self) -> f64 {
        self.range
    }

    /// The delta produced by the most recent [`DynamicGraph::step`]
    /// (or, before any step, the initial delta listing every present
    /// edge as added).
    pub fn last_diff(&self) -> &EdgeDiff {
        &self.diff
    }

    /// The delta that produces the current snapshot from an edgeless
    /// graph — every present edge reported as added.
    pub fn initial_diff(&self) -> EdgeDiff {
        EdgeDiff {
            added: self
                .graph
                .edges()
                .map(|(a, b)| (a as u32, b as u32))
                .collect(),
            removed: Vec::new(),
        }
    }

    /// Steps taken through the per-moved-node incremental kernel.
    pub fn incremental_steps(&self) -> u64 {
        self.metrics.incremental_steps
    }

    /// Steps that rescanned the whole snapshot through the grid in one
    /// allocation-free bulk pass (taken when at least
    /// [`BULK_RESCAN_FRACTION`] of the nodes moved).
    pub fn bulk_rescan_steps(&self) -> u64 {
        self.metrics.bulk_rescan_steps
    }

    /// Steps that took the full rebuild-and-diff oracle path instead:
    /// grid construction was impossible (degenerate side/range) or a
    /// declared displacement bound was violated.
    pub fn fallback_steps(&self) -> u64 {
        self.metrics.fallback_steps
    }

    /// Steps served by streaming the Verlet candidate arena instead of
    /// scanning cell neighborhoods.
    pub fn cache_verify_steps(&self) -> u64 {
        self.metrics.cache_verify_steps
    }

    /// The full deterministic counter set accumulated since
    /// construction: path decisions per step, moved-set and rescan
    /// candidate volumes, and edge-event magnitudes. Pure event counts
    /// — a function of the position history alone.
    pub fn metrics(&self) -> &StepKernelMetrics {
        &self.metrics
    }

    /// The internal moving grid's commit counters, when a grid exists
    /// (`None` on the degenerate side/range rebuild-every-step path).
    pub fn grid_metrics(&self) -> Option<&GridMetrics> {
        self.grid.as_ref().map(MovingCellGrid::metrics)
    }

    /// Advances to the next step's positions; read the delta off
    /// [`DynamicGraph::last_diff`] and the snapshot off
    /// [`DynamicGraph::graph`]. Allocation-free after warm-up.
    ///
    /// Dispatch: measure the step (moved set + max displacement) on
    /// the moving grid, then (1) police a declared displacement bound —
    /// violations go to the from-scratch oracle; (2) below
    /// [`BULK_RESCAN_FRACTION`] moved, relocate only moved nodes and
    /// rescan their neighborhoods; (3) otherwise re-bucket in one pass
    /// and bulk-rescan the snapshot. All three paths produce
    /// bit-identical snapshots and deltas.
    ///
    /// # Panics
    ///
    /// Panics when `points.len()` differs from the node count the
    /// graph was built with (a driver logic error).
    pub fn step(&mut self, points: &[Point<D>]) {
        assert_eq!(
            points.len(),
            self.graph.len(),
            "node count changed between steps"
        );
        self.step_dispatch(points);
        self.metrics.steps += 1;
        self.metrics.edges_added += self.diff.added.len() as u64;
        self.metrics.edges_removed += self.diff.removed.len() as u64;
        #[cfg(feature = "strict-invariants")]
        {
            self.debug_validate();
            if self.skin > 0.0 && !self.cache.stale {
                self.debug_validate_cache(points);
            }
        }
    }

    /// [`DynamicGraph::step`]'s path selection, factored out so the
    /// strict-invariants checker runs once after whichever path ran.
    fn step_dispatch(&mut self, points: &[Point<D>]) {
        if self.grid.is_none() {
            self.step_rebuild(points);
            return;
        }
        if self.skin > 0.0 {
            self.step_cached(points);
            return;
        }
        let grid = self.grid.as_mut().expect("checked above"); // lint:allow(R3): dispatch returns early when no grid exists
        let max_disp_sq = grid.measure(points, &mut self.moved);
        self.metrics.moved_nodes += self.moved.len() as u64;
        if let Some(bound_sq) = self.bound_sq {
            if max_disp_sq > bound_sq {
                // Contract violation: the model exceeded its declared
                // bound. Resync the grid in bulk and route the
                // snapshot/diff through the oracle path.
                grid.reset(points);
                self.step_rebuild(points);
                return;
            }
        }
        if (self.moved.len() as f64) < BULK_RESCAN_FRACTION * points.len() as f64 {
            grid.relocate(points, &self.moved);
            self.step_incremental();
        } else if self.try_arm(points, max_disp_sq) {
            // Armed: the arming rebuild served this step as its first
            // bulk pass at the inflated radius.
        } else {
            let grid = self.grid.as_mut().expect("checked above"); // lint:allow(R3): dispatch returns early when no grid exists
            grid.reset(points);
            self.step_bulk();
        }
    }

    /// Tries to switch the kernel into Verlet-cache mode on an
    /// in-bound step where at least [`BULK_RESCAN_FRACTION`] of the
    /// nodes moved; returns `true` when the cache armed (the arming
    /// rebuild also serves the current step). See
    /// [`DynamicGraph::set_skin`] for the eligibility conditions.
    fn try_arm(&mut self, points: &[Point<D>], max_disp_sq: f64) -> bool {
        // partial_cmp: a NaN displacement must read as "didn't move",
        // never as an armable drift observation.
        let moved = max_disp_sq.partial_cmp(&0.0) == Some(core::cmp::Ordering::Greater);
        if self.bound_sq.is_none() || !moved {
            return false;
        }
        let s = match self.skin_cfg {
            Skin::Off => return false,
            Skin::Fixed(s) => s,
            Skin::Auto => {
                // Per step the cache streams ~(r+s)² density-units of
                // candidates, plus a rebuild (cell scan, global sort,
                // arena fill — ~K·(r+s)²) amortized over the s/(2d)
                // steps the drift budget buys at observed per-step
                // displacement d. Minimizing (r+s)²·(1 + 2Kd/s) over s
                // gives s* = (√(K²d² + 4Kdr) − Kd)/2.
                let kd = SKIN_REBUILD_COST_RATIO * max_disp_sq.sqrt();
                let s_star = 0.5 * ((kd * kd + 4.0 * kd * self.range).sqrt() - kd);
                if s_star < SKIN_MIN_REBUILD_STEPS * max_disp_sq.sqrt() {
                    // Budget too small to amortize rebuilds: the cache
                    // would thrash. Stay on the bulk path.
                    return false;
                }
                s_star
            }
        };
        if !s.is_finite() || s <= 0.0 {
            return false;
        }
        // Widen the cells so one forward half-neighborhood still
        // covers the inflated candidate radius, with the same ~n-cell
        // lattice floor as construction. Metrics-preserving: the
        // switch counts as one grid reset.
        let per_axis_cap = (points.len().max(1) as f64)
            .powf(1.0 / D as f64)
            .ceil()
            .max(1.0);
        let cell_size = (self.range + s).max(self.side / per_axis_cap);
        let grid = self.grid.as_mut().expect("caller checked the grid"); // lint:allow(R3): step() dispatches here only when the grid exists
        if grid
            .rebuild_with_cell_size(points, self.side, cell_size)
            .is_err()
        {
            return false;
        }
        self.skin = s;
        self.drift_limit_sq = (0.5 * s) * (0.5 * s);
        if self.prev.len() == points.len() {
            self.prev.copy_from_slice(points);
        } else {
            self.prev = points.to_vec();
        }
        self.step_cache_rebuild(points);
        true
    }

    /// Armed-mode dispatch. Between arena builds the grid is frozen at
    /// the last build's positions (they *are* the drift reference), so
    /// one fused `O(n)` pass over `prev` measures the step: per-step
    /// moved count, declared-bound policing, and the running max drift
    /// from the build reference. Then: bound violation → oracle (arena
    /// marked stale); drift budget exceeded or stale arena → rebuild;
    /// otherwise stream the arena (trivially, when nothing moved
    /// bitwise).
    fn step_cached(&mut self, points: &[Point<D>]) {
        let grid = self.grid.as_ref().expect("caller checked the grid"); // lint:allow(R3): step() dispatches here only when the grid exists
        let refs = grid.points();
        let mut moved = 0u64;
        let mut max_step_sq = 0.0f64;
        let mut max_drift_sq = self.max_drift_sq;
        for (i, p) in points.iter().enumerate() {
            if *p == self.prev[i] {
                continue;
            }
            moved += 1;
            let d2 = p.distance_sq(&self.prev[i]);
            if d2 > max_step_sq {
                max_step_sq = d2;
            }
            let dr = p.distance_sq(&refs[i]);
            if dr > max_drift_sq {
                max_drift_sq = dr;
            }
            self.prev[i] = *p;
        }
        self.max_drift_sq = max_drift_sq;
        self.metrics.moved_nodes += moved;
        if let Some(bound_sq) = self.bound_sq {
            if max_step_sq > bound_sq {
                // Contract violation: the drift accounting no longer
                // covers this trajectory. Oracle this step; the next
                // step rebuilds the arena (and resyncs the grid).
                self.cache.stale = true;
                self.step_rebuild(points);
                return;
            }
        }
        if self.cache.stale || self.max_drift_sq > self.drift_limit_sq {
            let grid = self.grid.as_mut().expect("caller checked the grid"); // lint:allow(R3): step() dispatches here only when the grid exists
            grid.reset(points);
            self.step_cache_rebuild(points);
        } else if moved == 0 {
            // Bitwise-identical positions: the snapshot is already
            // exact — an empty verify step.
            self.diff.clear();
            self.metrics.cache_verify_steps += 1;
        } else {
            self.cache_verify_pass(points);
            self.metrics.cache_verify_steps += 1;
            self.metrics.verify_candidates += self.cache.pairs.len() as u64;
        }
    }

    /// (Re)builds the candidate arena from the grid — already synced
    /// to `points` by the caller — at radius `r + skin`, then serves
    /// the step through a verify pass over the fresh arena. Counted as
    /// a bulk rescan *and* a cache rebuild: it is one, at the inflated
    /// radius. Sharded over axis-0 strips exactly like
    /// [`DynamicGraph::step_bulk`]; packed pairs are unique, so the
    /// one global unstable sort is a function of the pair *set* alone
    /// — shard-count (and thread-count) invariance for free.
    fn step_cache_rebuild(&mut self, points: &[Point<D>]) {
        let mut frags = std::mem::take(&mut self.shard_pairs);
        let grid = self.grid.as_ref().expect("caller checked the grid"); // lint:allow(R3): step() dispatches here only when the grid exists
        let n = grid.len();
        let rs = self.range + self.skin;
        let rs2 = rs * rs;
        self.cache.pairs.clear();
        let cols = grid.cells_per_side();
        let n_shards = self.step_threads.min(cols).max(1);
        let mut shard_scan = ShardScan::default();
        if n_shards == 1 {
            let pairs = &mut self.cache.pairs;
            let examined = grid.scan_forward_pairs(0, cols, rs2, |a, b| {
                pairs.push(pack_pair(a, b));
            });
            shard_scan.absorb(examined, pairs.len() as u64);
        } else {
            frags.resize_with(n_shards, Vec::new);
            let (base, rem) = (cols / n_shards, cols % n_shards);
            let mut lo = 0usize;
            let jobs: Vec<_> = frags
                .drain(..)
                .enumerate()
                .map(|(w, mut buf)| {
                    buf.clear();
                    let (x_lo, x_hi) = (lo, lo + base + usize::from(w < rem));
                    lo = x_hi;
                    move || {
                        let examined = grid
                            .scan_forward_pairs(x_lo, x_hi, rs2, |a, b| buf.push(pack_pair(a, b)));
                        (buf, examined)
                    }
                })
                .collect();
            debug_assert_eq!(lo, cols, "strips must partition the lattice");
            for (buf, examined) in parallel::run_jobs(jobs) {
                shard_scan.absorb(examined, buf.len() as u64);
                self.cache.pairs.extend_from_slice(&buf);
                frags.push(buf);
            }
        }
        self.shard_pairs = frags;
        self.cache.pairs.sort_unstable();
        let offsets = &mut self.cache.offsets;
        offsets.clear();
        offsets.resize(n + 1, 0);
        for &p in &self.cache.pairs {
            offsets[(p >> 32) as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        self.cache.stale = false;
        self.max_drift_sq = 0.0;
        self.metrics.bulk_rescan_candidates += 2 * shard_scan.pairs_examined + n as u64;
        self.metrics.bulk_rescan_steps += 1;
        self.metrics.cache_rebuilds += 1;
        self.metrics.cached_pairs += self.cache.pairs.len() as u64;
        // The rebuild step still owes its snapshot and diff: stream
        // the fresh arena at the true range.
        self.cache_verify_pass(points);
    }

    /// Streams every cached candidate pair against the current
    /// positions, refilling the snapshot rows and the packed edge list
    /// and emitting the diff — the armed replacement for any cell
    /// neighborhood traversal. Sharded over contiguous arena slices
    /// when the arena is large enough: filtering a sorted list slice
    /// by slice and concatenating survivors in slice order preserves
    /// the lex order, so rows, edge list and diff are bit-identical at
    /// any thread count (and to the serial hoisted-row loop).
    fn cache_verify_pass(&mut self, points: &[Point<D>]) {
        self.ensure_edge_pairs();
        let n = points.len();
        let r2 = self.range * self.range;
        self.new_pairs.clear();
        if self.next_rows.len() != n {
            self.next_rows.resize_with(n, Vec::new);
        }
        for row in &mut self.next_rows {
            row.clear();
        }
        let next = &mut self.next_rows;
        let new_pairs = &mut self.new_pairs;
        let cand = &self.cache.pairs;
        let n_shards = if cand.len() >= VERIFY_SHARD_MIN_PAIRS {
            self.step_threads.min(cand.len()).max(1)
        } else {
            1
        };
        if n_shards == 1 {
            let offsets = &self.cache.offsets;
            for (a, pa) in points.iter().enumerate() {
                let (lo, hi) = (offsets[a], offsets[a + 1]);
                if lo == hi {
                    continue;
                }
                for &packed in &cand[lo..hi] {
                    let b = packed as u32;
                    if pa.distance_sq(&points[b as usize]) <= r2 {
                        new_pairs.push(packed);
                        next[a].push(b);
                        next[b as usize].push(a as u32);
                    }
                }
            }
        } else {
            let mut frags = std::mem::take(&mut self.shard_pairs);
            frags.resize_with(n_shards, Vec::new);
            let (base, rem) = (cand.len() / n_shards, cand.len() % n_shards);
            let mut lo = 0usize;
            let jobs: Vec<_> = frags
                .drain(..)
                .enumerate()
                .map(|(w, mut buf)| {
                    buf.clear();
                    let (p_lo, p_hi) = (lo, lo + base + usize::from(w < rem));
                    lo = p_hi;
                    let slice = &cand[p_lo..p_hi];
                    move || {
                        for &packed in slice {
                            let (a, b) = unpack_pair(packed);
                            if points[a as usize].distance_sq(&points[b as usize]) <= r2 {
                                buf.push(packed);
                            }
                        }
                        buf
                    }
                })
                .collect();
            debug_assert_eq!(lo, cand.len(), "slices must partition the arena");
            for buf in parallel::run_jobs(jobs) {
                for &packed in &buf {
                    let (a, b) = unpack_pair(packed);
                    new_pairs.push(packed);
                    next[a as usize].push(b);
                    next[b as usize].push(a);
                }
                frags.push(buf);
            }
            self.shard_pairs = frags;
        }
        // Rows filled from a lex-sorted pair list are already sorted:
        // for row x, every lower partner a (from pairs (a, x), keys
        // a·2³² + x) is pushed before — and ascending among — every
        // higher partner b (from pairs (x, b), keys x·2³² + b).
        merge_packed_diff(&self.edge_pairs, &self.new_pairs, &mut self.diff);
        let pair_count = self.new_pairs.len();
        self.graph
            .swap_neighbor_rows(&mut self.next_rows, pair_count);
        std::mem::swap(&mut self.edge_pairs, &mut self.new_pairs);
    }

    /// Re-derives the packed current-edge list from the snapshot after
    /// an incremental or fallback step patched the graph behind it.
    /// Row-major iteration over sorted rows yields lex order directly.
    fn ensure_edge_pairs(&mut self) {
        if self.edge_pairs_valid {
            return;
        }
        debug_assert!(
            (0..self.graph.len()).all(|a| self.graph.neighbors(a).windows(2).all(|w| w[0] < w[1])),
            "unsorted neighbors: snapshot rows must be sorted to derive the packed edge list"
        );
        self.edge_pairs.clear();
        self.edge_pairs.extend(
            self.graph
                .edges()
                .map(|(a, b)| pack_pair(a as u32, b as u32)),
        );
        self.edge_pairs_valid = true;
    }

    /// Advances and returns a fresh copy of the delta — the
    /// allocation-per-step convenience wrapper around
    /// [`DynamicGraph::step`] kept for non-hot callers.
    ///
    /// # Panics
    ///
    /// Panics when `points.len()` differs from the node count the
    /// graph was built with.
    pub fn advance(&mut self, points: &[Point<D>]) -> EdgeDiff {
        self.step(points);
        self.diff.clone()
    }

    /// Structural coherence of the snapshot and the last delta:
    /// neighbor rows strictly ascending (sorted, deduped, no
    /// self-loops) and symmetric; diff halves strictly ascending,
    /// canonically oriented (`a < b`), disjoint, with every added edge
    /// present in — and every removed edge absent from — the snapshot.
    /// `O(m log m)`-ish — run after every step under
    /// `strict-invariants`.
    #[cfg(feature = "strict-invariants")]
    fn debug_validate(&self) {
        let g = &self.graph;
        for a in 0..g.len() {
            let row = g.neighbors(a);
            debug_assert!(
                row.windows(2).all(|w| w[0] < w[1]),
                "strict-invariants: neighbor row of {a} is unsorted or duplicated"
            );
            for &b in row {
                debug_assert!(b as usize != a, "strict-invariants: self-loop on node {a}");
                debug_assert!(
                    g.neighbors(b as usize).binary_search(&(a as u32)).is_ok(),
                    "strict-invariants: edge ({a}, {b}) is not symmetric"
                );
            }
        }
        for (label, half) in [("added", &self.diff.added), ("removed", &self.diff.removed)] {
            debug_assert!(
                half.windows(2).all(|w| w[0] < w[1]),
                "strict-invariants: {label} edges are unsorted or duplicated"
            );
            debug_assert!(
                half.iter().all(|&(a, b)| a < b),
                "strict-invariants: {label} edges are not canonically oriented"
            );
        }
        for &(a, b) in &self.diff.added {
            debug_assert!(
                g.neighbors(a as usize).binary_search(&b).is_ok(),
                "strict-invariants: added edge ({a}, {b}) is missing from the snapshot"
            );
        }
        for &(a, b) in &self.diff.removed {
            debug_assert!(
                g.neighbors(a as usize).binary_search(&b).is_err(),
                "strict-invariants: removed edge ({a}, {b}) is still in the snapshot"
            );
        }
        if let Some(grid) = &self.grid {
            debug_assert_eq!(
                grid.len(),
                g.len(),
                "strict-invariants: grid and snapshot disagree on the node count"
            );
        }
        if self.edge_pairs_valid {
            debug_assert!(
                self.graph
                    .edges()
                    .map(|(a, b)| pack_pair(a as u32, b as u32))
                    .eq(self.edge_pairs.iter().copied()),
                "strict-invariants: packed edge list desynced from the snapshot"
            );
        }
    }

    /// Soundness of the armed Verlet cache, checked against brute
    /// force: every pair currently within range must appear in the
    /// candidate arena (the invariant that lets verify steps skip cell
    /// rescans entirely), and the tracked drift must be inside the
    /// `skin/2` budget whenever the arena was trusted this step.
    /// `O(n²)` — strict-invariants test builds only.
    #[cfg(feature = "strict-invariants")]
    fn debug_validate_cache(&self, points: &[Point<D>]) {
        debug_assert!(
            self.max_drift_sq <= self.drift_limit_sq,
            "strict-invariants: accumulated displacement exceeded skin/2 on a trusted arena"
        );
        let r2 = self.range * self.range;
        for a in 0..points.len() {
            for b in (a + 1)..points.len() {
                if points[a].distance_sq(&points[b]) <= r2 {
                    debug_assert!(
                        self.cache
                            .pairs
                            .binary_search(&pack_pair(a as u32, b as u32))
                            .is_ok(),
                        "strict-invariants: in-range pair ({a}, {b}) missing from the Verlet candidate arena"
                    );
                }
            }
        }
    }

    /// The oracle path: rebuild the snapshot from scratch and diff the
    /// two full snapshots. Taken when no grid exists or a declared
    /// displacement bound was violated.
    fn step_rebuild(&mut self, points: &[Point<D>]) {
        let next = AdjacencyList::from_points(points, self.side, self.range);
        self.graph.diff_into(&next, &mut self.diff);
        self.graph = next;
        self.edge_pairs_valid = false;
        self.metrics.fallback_steps += 1;
    }

    /// The per-moved-node kernel: the grid is already synced to the
    /// new positions and `self.moved` holds the moved set; emit the
    /// delta from moved-node rescans and patch the snapshot in place.
    fn step_incremental(&mut self) {
        let grid = self.grid.as_ref().expect("caller checked the grid"); // lint:allow(R3): step() dispatches here only when the grid exists
        let pts = grid.points();
        let r2 = self.range * self.range;
        self.diff.clear();

        // Stamp the moved set for O(1) membership tests.
        self.stamp_epoch = match self.stamp_epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.moved_stamp.fill(0);
                1
            }
        };
        let epoch = self.stamp_epoch;
        for &i in &self.moved {
            self.moved_stamp[i as usize] = epoch;
        }

        // Each changed pair has >= 1 moved endpoint; scanning every
        // moved node and skipping moved partners of lower index visits
        // each such pair exactly once, so no deduplication is needed
        // and one final sort restores the oracle's lexicographic order.
        let moved_stamp = &self.moved_stamp;
        let diff = &mut self.diff;
        let old_stamp = &mut self.old_stamp;
        let matched_stamp = &mut self.matched_stamp;
        let graph = &self.graph;
        let mut candidates: u64 = 0;
        for &a_u in &self.moved {
            let a = a_u as usize;
            let pa = pts[a];
            // A fresh scan id distinguishes this node's stamps from
            // every earlier scan without any clearing.
            self.scan_id = match self.scan_id.checked_add(1) {
                Some(s) => s,
                None => {
                    old_stamp.fill(0);
                    matched_stamp.fill(0);
                    1
                }
            };
            let sid = self.scan_id;
            let old = graph.neighbors(a);
            for &b in old {
                old_stamp[b as usize] = sid;
            }
            // Candidate pass: every in-range partner is either a
            // surviving old neighbor (mark it matched) or a new edge.
            // The fused scan reads distances off the grid's SoA
            // coordinate columns — bitwise equal to `distance_sq`
            // against `pts`.
            grid.for_each_candidate_dist2(&pa, |b_u, d2| {
                candidates += 1;
                let b = b_u as usize;
                if b_u == a_u || (moved_stamp[b] == epoch && b_u < a_u) {
                    return;
                }
                if d2 <= r2 {
                    if old_stamp[b] == sid {
                        matched_stamp[b] = sid;
                    } else {
                        diff.added.push((a_u.min(b_u), a_u.max(b_u)));
                    }
                }
            });
            // Any old neighbor not re-found in range has left it — no
            // distance computation needed.
            for &b in old {
                if moved_stamp[b as usize] == epoch && b < a_u {
                    continue;
                }
                if matched_stamp[b as usize] != sid {
                    diff.removed.push((a_u.min(b), a_u.max(b)));
                }
            }
        }
        self.diff.added.sort_unstable();
        self.diff.removed.sort_unstable();

        // Patch the snapshot in place: cost proportional to churn.
        for k in 0..self.diff.removed.len() {
            let (a, b) = self.diff.removed[k];
            self.graph.remove_edge_sorted(a as usize, b as usize);
        }
        for k in 0..self.diff.added.len() {
            let (a, b) = self.diff.added[k];
            self.graph.insert_edge_sorted(a as usize, b as usize);
        }
        self.edge_pairs_valid = false;
        self.metrics.moved_rescan_candidates += candidates;
        self.metrics.incremental_steps += 1;
    }

    /// The bulk-rescan path: most nodes moved, so re-derive the whole
    /// snapshot through the (already reset) grid as one flat packed
    /// pair list, diff it against the snapshot's packed edge list in a
    /// single linear merge, and fill/swap the rows — the
    /// allocation-free equivalent of `from_points` + `diff`, without
    /// per-row sorts or merges.
    ///
    /// The rescan is a forward half-neighborhood sweep (each unordered
    /// same-or-adjacent-cell pair examined exactly once, distances off
    /// the grid's SoA columns), sharded into axis-0 cell strips when
    /// [`DynamicGraph::set_step_threads`] asks for more than one
    /// worker. Disjoint strips examine disjoint pair sets, every
    /// worker fills a private fragment buffer, and fragments
    /// concatenate in shard order; packed pairs are unique, so the one
    /// global unstable sort is a function of the pair *set* alone —
    /// the rows, the diff, and all counters are bit-identical to the
    /// serial sweep at any thread count.
    fn step_bulk(&mut self) {
        self.ensure_edge_pairs();
        // Detach the fragment buffers before borrowing the grid: the
        // workers fill them while the grid is shared immutably.
        let mut frags = std::mem::take(&mut self.shard_pairs);
        let grid = self.grid.as_ref().expect("caller checked the grid"); // lint:allow(R3): step() dispatches here only when the grid exists
        let n = grid.len();
        let r2 = self.range * self.range;

        self.new_pairs.clear();
        let cols = grid.cells_per_side();
        let n_shards = self.step_threads.min(cols).max(1);
        let mut shard_scan = ShardScan::default();
        if n_shards == 1 {
            // Serial sweep: emit straight into the pair list.
            let new_pairs = &mut self.new_pairs;
            let examined = grid.scan_forward_pairs(0, cols, r2, |a, b| {
                new_pairs.push(pack_pair(a, b));
            });
            shard_scan.absorb(examined, new_pairs.len() as u64);
        } else {
            // Balanced axis-0 strips: base-width strips, the first
            // `rem` one cell wider — every cell covered exactly once.
            frags.resize_with(n_shards, Vec::new);
            let (base, rem) = (cols / n_shards, cols % n_shards);
            let mut lo = 0usize;
            let jobs: Vec<_> = frags
                .drain(..)
                .enumerate()
                .map(|(w, mut buf)| {
                    buf.clear();
                    let (x_lo, x_hi) = (lo, lo + base + usize::from(w < rem));
                    lo = x_hi;
                    move || {
                        let examined = grid
                            .scan_forward_pairs(x_lo, x_hi, r2, |a, b| buf.push(pack_pair(a, b)));
                        (buf, examined)
                    }
                })
                .collect();
            debug_assert_eq!(lo, cols, "strips must partition the lattice");
            for (buf, examined) in parallel::run_jobs(jobs) {
                shard_scan.absorb(examined, buf.len() as u64);
                self.new_pairs.extend_from_slice(&buf);
                frags.push(buf);
            }
        }
        self.shard_pairs = frags;
        self.new_pairs.sort_unstable();

        if self.next_rows.len() != n {
            self.next_rows.resize_with(n, Vec::new);
        }
        for row in &mut self.next_rows {
            row.clear();
        }
        // Rows filled from the lex-sorted pair list come out sorted
        // (see `cache_verify_pass` for the argument).
        let next = &mut self.next_rows;
        for &packed in &self.new_pairs {
            let (a, b) = unpack_pair(packed);
            next[a as usize].push(b);
            next[b as usize].push(a);
        }
        merge_packed_diff(&self.edge_pairs, &self.new_pairs, &mut self.diff);
        let pairs = self.new_pairs.len();
        self.graph.swap_neighbor_rows(&mut self.next_rows, pairs);
        std::mem::swap(&mut self.edge_pairs, &mut self.new_pairs);
        // Counter compatibility: the historical bulk counter tallied
        // every occupant visit of every node's 3^D-cell neighborhood,
        // which is one self-visit per node plus both directions of
        // each examined unordered pair: `2·examined + n`.
        self.metrics.bulk_rescan_candidates += 2 * shard_scan.pairs_examined + n as u64;
        self.metrics.bulk_rescan_steps += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngExt, SeedableRng};

    fn pts1(xs: &[f64]) -> Vec<Point<1>> {
        xs.iter().map(|&x| Point::new([x])).collect()
    }

    #[test]
    fn diff_of_identical_graphs_is_empty() {
        let pts = pts1(&[0.0, 1.0, 2.0]);
        let g = AdjacencyList::from_points_brute_force(&pts, 1.0);
        let d = g.diff(&g.clone());
        assert!(d.is_empty());
        assert_eq!(d.churn(), 0);
    }

    #[test]
    fn diff_reports_added_and_removed_in_order() {
        let old = AdjacencyList::from_points_brute_force(&pts1(&[0.0, 1.0, 5.0]), 1.0);
        let new = AdjacencyList::from_points_brute_force(&pts1(&[0.0, 4.9, 5.0]), 1.0);
        let d = old.diff(&new);
        assert_eq!(d.removed, vec![(0, 1)]);
        assert_eq!(d.added, vec![(1, 2)]);
        assert_eq!(d.churn(), 2);
    }

    #[test]
    fn diff_into_reuses_capacity() {
        let old = AdjacencyList::from_points_brute_force(&pts1(&[0.0, 1.0, 5.0]), 1.0);
        let new = AdjacencyList::from_points_brute_force(&pts1(&[0.0, 4.9, 5.0]), 1.0);
        let mut d = EdgeDiff::default();
        old.diff_into(&new, &mut d);
        let caps = (d.added.capacity(), d.removed.capacity());
        // A no-change diff into the same buffers keeps the capacity.
        old.diff_into(&old, &mut d);
        assert!(d.is_empty());
        assert_eq!((d.added.capacity(), d.removed.capacity()), caps);
    }

    #[test]
    fn diff_from_empty_lists_every_edge() {
        let pts = pts1(&[0.0, 0.5, 1.0]);
        let g = AdjacencyList::from_points_brute_force(&pts, 0.6);
        let d = AdjacencyList::empty(3).diff(&g);
        assert_eq!(d.added, vec![(0, 1), (1, 2)]);
        assert!(d.removed.is_empty());
        // And the reverse direction removes them all.
        let r = g.diff(&AdjacencyList::empty(3));
        assert_eq!(r.removed, vec![(0, 1), (1, 2)]);
    }

    #[test]
    #[should_panic(expected = "same node set")]
    fn diff_rejects_mismatched_node_counts() {
        let _ = AdjacencyList::empty(2).diff(&AdjacencyList::empty(3));
    }

    #[test]
    fn initial_diff_replays_snapshot() {
        let pts = pts1(&[0.0, 0.5, 1.0, 9.0]);
        let dg = DynamicGraph::new(&pts, 10.0, 0.6);
        let d = dg.initial_diff();
        assert_eq!(d.added.len(), dg.graph().edge_count());
        assert!(d.removed.is_empty());
        assert_eq!(&d, dg.last_diff());
    }

    #[test]
    fn advance_tracks_random_teleports_exactly() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(555);
        let side = 60.0;
        let r = 9.0;
        let mut pts: Vec<Point<2>> = (0..30)
            .map(|_| Point::new([rng.random_range(0.0..side), rng.random_range(0.0..side)]))
            .collect();
        let mut dg = DynamicGraph::new(&pts, side, r);
        for _ in 0..25 {
            for p in &mut pts {
                *p = Point::new([rng.random_range(0.0..side), rng.random_range(0.0..side)]);
            }
            dg.advance(&pts);
            assert_eq!(
                dg.graph(),
                &AdjacencyList::from_points_brute_force(&pts, r),
                "snapshot drifted from the from-scratch build"
            );
        }
        assert_eq!(dg.fallback_steps(), 0, "no bound declared, no fallback");
        // Every node teleports every step: all steps bulk-rescan.
        assert_eq!(dg.bulk_rescan_steps(), 25);
        assert_eq!(dg.incremental_steps(), 0);
    }

    /// The incremental kernel's delta and snapshot must be bit-identical
    /// to the from_points + diff oracle under mixed motion: paused
    /// nodes, small jitters, teleports.
    #[test]
    fn step_matches_rebuild_oracle_with_partial_movement() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4096);
        let side = 200.0;
        let r = 11.0;
        let n = 120;
        let mut pts: Vec<Point<2>> = (0..n)
            .map(|_| Point::new([rng.random_range(0.0..side), rng.random_range(0.0..side)]))
            .collect();
        let mut dg = DynamicGraph::new(&pts, side, r);
        let mut oracle = AdjacencyList::from_points(&pts, side, r);
        for step in 0..60 {
            // Alternate regimes so both the per-moved-node and the
            // bulk-rescan paths are replayed against the oracle:
            // most steps pause ~70% of nodes, every 5th moves all.
            let p_pause = if step % 5 == 4 { 0.0 } else { 0.7 };
            for p in &mut pts {
                let roll: f64 = rng.random_range(0.0..1.0);
                *p = if roll < p_pause {
                    *p // paused: bitwise identical position
                } else if roll < 0.95 {
                    let q =
                        *p + Point::new([rng.random_range(-3.0..3.0), rng.random_range(-3.0..3.0)]);
                    Point::new([q.coord(0).clamp(0.0, side), q.coord(1).clamp(0.0, side)])
                } else {
                    Point::new([rng.random_range(0.0..side), rng.random_range(0.0..side)])
                };
            }
            dg.step(&pts);
            let next = AdjacencyList::from_points(&pts, side, r);
            let expected = oracle.diff(&next);
            assert_eq!(dg.last_diff(), &expected, "diff diverged at step {step}");
            assert_eq!(dg.graph(), &next, "snapshot diverged at step {step}");
            oracle = next;
        }
        assert!(dg.incremental_steps() > 0, "moved-node path never taken");
        assert!(dg.bulk_rescan_steps() > 0, "bulk path never taken");
        assert_eq!(dg.fallback_steps(), 0);
    }

    #[test]
    fn declared_bound_violation_falls_back_to_full_diff() {
        let side = 100.0;
        let r = 10.0;
        let mut pts: Vec<Point<2>> = (0..20)
            .map(|i| Point::new([5.0 * i as f64, 50.0]))
            .collect();
        let mut dg = DynamicGraph::new(&pts, side, r).with_displacement_bound(Some(1.0));
        // An in-bound step stays incremental.
        pts[0] = Point::new([0.5, 50.0]);
        dg.step(&pts);
        assert_eq!((dg.incremental_steps(), dg.fallback_steps()), (1, 0));
        // A 40-unit teleport violates the declared bound: the kernel
        // must route through the full rebuild-and-diff oracle, still
        // producing the exact snapshot and delta.
        let old = dg.graph().clone();
        pts[0] = Point::new([40.5, 50.0]);
        dg.step(&pts);
        assert_eq!((dg.incremental_steps(), dg.fallback_steps()), (1, 1));
        let next = AdjacencyList::from_points(&pts, side, r);
        assert_eq!(dg.graph(), &next);
        assert_eq!(dg.last_diff(), &old.diff(&next));
        // Later in-bound steps return to the incremental path with a
        // consistent grid.
        pts[3] = Point::new([15.2, 50.3]);
        dg.step(&pts);
        assert_eq!((dg.incremental_steps(), dg.fallback_steps()), (2, 1));
        assert_eq!(dg.graph(), &AdjacencyList::from_points(&pts, side, r));
    }

    #[test]
    fn zero_displacement_bound_allows_stationary_steps() {
        let pts = pts1(&[0.0, 1.0, 2.0]);
        let mut dg = DynamicGraph::new(&pts, 10.0, 1.5).with_displacement_bound(Some(0.0));
        dg.step(&pts);
        assert!(dg.last_diff().is_empty());
        assert_eq!(dg.fallback_steps(), 0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_bound_rejected() {
        let pts = pts1(&[0.0]);
        let _ = DynamicGraph::new(&pts, 10.0, 1.0).with_displacement_bound(Some(-1.0));
    }

    #[test]
    fn degenerate_range_runs_on_the_rebuild_path() {
        let pts = pts1(&[0.0, 1.0]);
        let mut dg = DynamicGraph::new(&pts, 10.0, f64::NAN);
        assert_eq!(dg.graph().edge_count(), 0); // NaN range: edgeless
        dg.step(&pts1(&[0.0, 0.5]));
        assert_eq!(dg.fallback_steps(), 1);
        assert_eq!(dg.incremental_steps(), 0);
        assert_eq!(dg.graph().edge_count(), 0);
    }

    #[test]
    fn diff_capacity_is_reused_across_steps() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let side = 50.0;
        let mut pts: Vec<Point<2>> = (0..40)
            .map(|_| Point::new([rng.random_range(0.0..side), rng.random_range(0.0..side)]))
            .collect();
        let mut dg = DynamicGraph::new(&pts, side, 6.0);
        // A held buffer that is only ever `clear()`ed has monotonically
        // non-decreasing capacity. A kernel that allocated a fresh
        // EdgeDiff each step would report capacity ~= that step's churn,
        // which fluctuates — dipping below an earlier high-water mark.
        let mut prev_cap = (0usize, 0usize);
        let mut churn_varied = false;
        let mut prev_churn = None;
        for step in 0..30 {
            for p in &mut pts {
                let q = *p + Point::new([rng.random_range(-2.0..2.0), rng.random_range(-2.0..2.0)]);
                *p = Point::new([q.coord(0).clamp(0.0, side), q.coord(1).clamp(0.0, side)]);
            }
            dg.step(&pts);
            let cap = (
                dg.last_diff().added.capacity(),
                dg.last_diff().removed.capacity(),
            );
            assert!(
                cap.0 >= prev_cap.0 && cap.1 >= prev_cap.1,
                "held diff buffers shrank at step {step}: {prev_cap:?} -> {cap:?} \
                 (reallocated instead of reused)"
            );
            prev_cap = cap;
            let churn = dg.last_diff().churn();
            churn_varied |= prev_churn.is_some_and(|c| c != churn);
            prev_churn = Some(churn);
        }
        // The monotonicity assertion only has teeth if per-step churn
        // actually fluctuated below its high-water mark.
        assert!(churn_varied, "trajectory produced constant churn");
    }

    #[test]
    fn metrics_partition_steps_and_match_diff_totals() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(321);
        let side = 80.0;
        let r = 8.0;
        let mut pts: Vec<Point<2>> = (0..50)
            .map(|_| Point::new([rng.random_range(0.0..side), rng.random_range(0.0..side)]))
            .collect();
        let mut dg = DynamicGraph::new(&pts, side, r);
        assert_eq!(*dg.metrics(), StepKernelMetrics::default());
        let (mut oracle_added, mut oracle_removed, mut oracle_moved) = (0u64, 0u64, 0u64);
        for step in 0..40 {
            let p_pause = if step % 4 == 3 { 0.0 } else { 0.8 };
            let mut moved_now = 0u64;
            for p in &mut pts {
                if rng.random_range(0.0..1.0) < p_pause {
                    continue;
                }
                let q = *p + Point::new([rng.random_range(-2.0..2.0), rng.random_range(-2.0..2.0)]);
                let q = Point::new([q.coord(0).clamp(0.0, side), q.coord(1).clamp(0.0, side)]);
                if q != *p {
                    moved_now += 1;
                    *p = q;
                }
            }
            dg.step(&pts);
            oracle_moved += moved_now;
            oracle_added += dg.last_diff().added.len() as u64;
            oracle_removed += dg.last_diff().removed.len() as u64;
        }
        let m = *dg.metrics();
        assert_eq!(m.steps, 40);
        assert_eq!(
            m.incremental_steps + m.bulk_rescan_steps + m.cache_verify_steps + m.fallback_steps,
            m.steps,
            "every step commits through exactly one path"
        );
        // No bound declared: the (default-auto) cache must never arm.
        assert_eq!(m.cache_verify_steps, 0);
        assert_eq!(m.cache_rebuilds, 0);
        assert_eq!(dg.armed_skin(), None);
        assert!(m.incremental_steps > 0 && m.bulk_rescan_steps > 0);
        assert_eq!(m.moved_nodes, oracle_moved);
        assert_eq!(m.edges_added, oracle_added);
        assert_eq!(m.edges_removed, oracle_removed);
        assert!(m.moved_rescan_candidates > 0 && m.bulk_rescan_candidates > 0);
        // The grid saw one commit per step, all nodes accounted for.
        let g = dg.grid_metrics().copied().unwrap();
        assert_eq!(g.relocations, m.incremental_steps);
        assert_eq!(g.resets, m.bulk_rescan_steps);
    }

    #[test]
    #[should_panic(expected = "node count changed")]
    fn advance_rejects_resized_point_set() {
        let pts = pts1(&[0.0, 1.0]);
        let mut dg = DynamicGraph::new(&pts, 10.0, 1.0);
        dg.advance(&pts1(&[0.0]));
    }

    /// The sharded bulk rescan must be bit-identical to the serial
    /// kernel — snapshots, diffs, and every counter — at any thread
    /// count, including counts above the strip count and an odd count
    /// that misaligns with the lattice.
    #[test]
    fn step_threads_do_not_change_any_observable() {
        let side = 60.0;
        let r = 6.0;
        let n = 80;
        let trajectory: Vec<Vec<Point<2>>> = {
            let mut rng = rand::rngs::StdRng::seed_from_u64(909);
            let mut pts: Vec<Point<2>> = (0..n)
                .map(|_| Point::new([rng.random_range(0.0..side), rng.random_range(0.0..side)]))
                .collect();
            (0..30)
                .map(|step| {
                    for p in &mut pts {
                        // Mostly all-moving (bulk path), every 6th step
                        // mostly paused (incremental path).
                        if step % 6 == 5 && rng.random_range(0.0..1.0) < 0.8 {
                            continue;
                        }
                        let q = *p
                            + Point::new([
                                rng.random_range(-2.0..2.0),
                                rng.random_range(-2.0..2.0),
                            ]);
                        *p = Point::new([q.coord(0).clamp(0.0, side), q.coord(1).clamp(0.0, side)]);
                    }
                    pts.clone()
                })
                .collect()
        };
        let mut serial = DynamicGraph::new(&trajectory[0], side, r);
        assert_eq!(serial.step_threads(), 1);
        let mut replicas: Vec<_> = [2usize, 4, 7, 64]
            .into_iter()
            .map(|t| DynamicGraph::new(&trajectory[0], side, r).with_step_threads(t))
            .collect();
        for pts in &trajectory[1..] {
            serial.step(pts);
            for dg in &mut replicas {
                dg.step(pts);
                assert_eq!(
                    dg.graph(),
                    serial.graph(),
                    "{}-thread snapshot diverged",
                    dg.step_threads()
                );
                assert_eq!(dg.last_diff(), serial.last_diff());
                assert_eq!(
                    dg.metrics(),
                    serial.metrics(),
                    "{}-thread counters diverged",
                    dg.step_threads()
                );
                assert_eq!(dg.grid_metrics(), serial.grid_metrics());
            }
        }
        assert!(serial.bulk_rescan_steps() > 0, "bulk path never exercised");
        assert!(
            serial.incremental_steps() > 0,
            "incremental path never exercised"
        );
    }

    /// The bulk path derives its packed edge list from the snapshot's
    /// sorted rows; the sortedness check in that derivation is the
    /// runtime guard against corrupted input: a row injected out of
    /// order behind the kernel's back must be caught on the next
    /// sharded bulk step.
    #[cfg(feature = "strict-invariants")]
    #[test]
    #[should_panic(expected = "unsorted neighbors")]
    fn strict_invariants_detects_corrupt_shard_merge_input() {
        let side = 30.0;
        let r = 4.0;
        let pts: Vec<Point<2>> = (0..12)
            .map(|i| Point::new([2.5 * i as f64, 15.0]))
            .collect();
        let mut dg = DynamicGraph::new(&pts, side, r).with_step_threads(3);
        // Corrupt one snapshot row out of sorted order behind the
        // kernel's back.
        let mut rows: Vec<Vec<u32>> = (0..pts.len())
            .map(|a| dg.graph().neighbors(a).to_vec())
            .collect();
        rows[5].reverse();
        let edge_count = dg.graph().edge_count();
        dg.graph.swap_neighbor_rows(&mut rows, edge_count);
        // All nodes move: the sharded bulk rescan must notice the
        // unsorted old row while merging shard fragments against it.
        let moved: Vec<Point<2>> = pts.iter().map(|p| *p + Point::new([0.3, 0.3])).collect();
        dg.step(&moved);
    }

    #[test]
    fn skin_parses_and_displays() {
        assert_eq!("auto".parse::<Skin>(), Ok(Skin::Auto));
        assert_eq!("off".parse::<Skin>(), Ok(Skin::Off));
        assert_eq!("0".parse::<Skin>(), Ok(Skin::Off));
        assert_eq!("12.5".parse::<Skin>(), Ok(Skin::Fixed(12.5)));
        assert!("-1".parse::<Skin>().is_err());
        assert!("nan".parse::<Skin>().is_err());
        assert!("inf".parse::<Skin>().is_err());
        assert!("fast".parse::<Skin>().is_err());
        for s in [Skin::Auto, Skin::Off, Skin::Fixed(7.25)] {
            assert_eq!(s.to_string().parse::<Skin>(), Ok(s), "display round-trip");
        }
        assert_eq!(Skin::default(), Skin::Auto);
    }

    #[test]
    #[should_panic(expected = "finite and strictly positive")]
    fn zero_fixed_skin_rejected() {
        let pts = pts1(&[0.0]);
        let _ = DynamicGraph::new(&pts, 10.0, 1.0).with_skin(Skin::Fixed(0.0));
    }

    /// Drives an all-moving drift trajectory (every node steps by at
    /// most `step_len`) and checks the kernel against the
    /// from-scratch oracle every step. Returns the kernel.
    fn drive_drift(
        mut dg: DynamicGraph<2>,
        side: f64,
        r: f64,
        steps: usize,
        step_len: f64,
        seed: u64,
    ) -> DynamicGraph<2> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut pts = dg.grid.as_ref().unwrap().points().to_vec();
        let mut oracle = AdjacencyList::from_points(&pts, side, r);
        for step in 0..steps {
            for p in &mut pts {
                let q = *p
                    + Point::new([
                        rng.random_range(-step_len..step_len),
                        rng.random_range(-step_len..step_len),
                    ]);
                *p = Point::new([q.coord(0).clamp(0.0, side), q.coord(1).clamp(0.0, side)]);
            }
            dg.step(&pts);
            let next = AdjacencyList::from_points(&pts, side, r);
            assert_eq!(
                dg.last_diff(),
                &oracle.diff(&next),
                "diff diverged at {step}"
            );
            assert_eq!(dg.graph(), &next, "snapshot diverged at {step}");
            oracle = next;
        }
        dg
    }

    /// The armed cache must be bit-identical to the oracle while
    /// actually taking the verify path, and its counters must keep the
    /// four-way partition identity auditable.
    #[test]
    fn verlet_cache_matches_oracle_and_partitions_steps() {
        let side = 100.0;
        let r = 12.0;
        let mut rng = rand::rngs::StdRng::seed_from_u64(2020);
        let pts: Vec<Point<2>> = (0..90)
            .map(|_| Point::new([rng.random_range(0.0..side), rng.random_range(0.0..side)]))
            .collect();
        let step_len = 0.4;
        let bound = (2.0f64 * step_len * step_len).sqrt();
        let dg = DynamicGraph::new(&pts, side, r)
            .with_displacement_bound(Some(bound))
            .with_skin(Skin::Fixed(4.0));
        let dg = drive_drift(dg, side, r, 40, step_len, 2021);
        assert_eq!(dg.armed_skin(), Some(4.0));
        let m = *dg.metrics();
        assert_eq!(m.steps, 40);
        assert_eq!(
            m.incremental_steps + m.bulk_rescan_steps + m.cache_verify_steps + m.fallback_steps,
            m.steps,
            "path partition identity"
        );
        assert!(m.cache_verify_steps > 0, "verify path never taken");
        assert!(m.cache_rebuilds >= 1, "cache never built");
        assert!(
            m.cache_rebuilds <= m.bulk_rescan_steps,
            "rebuilds are a subset of the bulk bucket"
        );
        assert!(m.cached_pairs > 0 && m.verify_candidates > 0);
        assert_eq!(m.fallback_steps, 0);
        // Most steps must ride the cache, not rebuild it: with skin 4
        // and steps <= ~0.57, the drift budget (2.0) buys >= 3 steps.
        assert!(
            m.cache_verify_steps >= 2 * m.cache_rebuilds,
            "cache thrashing: {} rebuilds vs {} verifies",
            m.cache_rebuilds,
            m.cache_verify_steps
        );
    }

    /// Auto skin arms only under a declared bound, and the armed
    /// kernel keeps matching the oracle.
    #[test]
    fn auto_skin_arms_only_with_declared_bound() {
        let side = 100.0;
        let r = 12.0;
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let pts: Vec<Point<2>> = (0..90)
            .map(|_| Point::new([rng.random_range(0.0..side), rng.random_range(0.0..side)]))
            .collect();
        let unbounded = DynamicGraph::new(&pts, side, r);
        assert_eq!(unbounded.skin(), Skin::Auto, "auto is the default");
        let unbounded = drive_drift(unbounded, side, r, 20, 0.3, 77);
        assert_eq!(unbounded.armed_skin(), None, "no bound, no cache");
        assert_eq!(unbounded.metrics().cache_verify_steps, 0);

        let bound = (2.0f64 * 0.3 * 0.3).sqrt();
        let bounded = DynamicGraph::new(&pts, side, r).with_displacement_bound(Some(bound));
        let bounded = drive_drift(bounded, side, r, 20, 0.3, 77);
        let skin = bounded.armed_skin().expect("auto skin should arm");
        assert!(skin > 0.0 && skin.is_finite());
        assert!(bounded.metrics().cache_verify_steps > 0);
    }

    /// A bound violation while armed must oracle that step, mark the
    /// arena stale, and rebuild on the next in-bound step — snapshots
    /// exact throughout.
    #[test]
    fn armed_bound_violation_falls_back_then_rebuilds() {
        let side = 100.0;
        let r = 10.0;
        let mut pts: Vec<Point<2>> = (0..30)
            .map(|i| Point::new([3.0 * i as f64, 50.0]))
            .collect();
        let mut dg = DynamicGraph::new(&pts, side, r)
            .with_displacement_bound(Some(1.0))
            .with_skin(Skin::Fixed(3.0));
        let shift = |pts: &mut Vec<Point<2>>, dx: f64| {
            for p in pts.iter_mut() {
                *p = Point::new([(p.coord(0) + dx).clamp(0.0, side), p.coord(1)]);
            }
        };
        // Arm on an all-moving in-bound step.
        shift(&mut pts, 0.5);
        dg.step(&pts);
        assert!(dg.armed_skin().is_some());
        assert_eq!(dg.metrics().cache_rebuilds, 1);
        // Violate the declared bound: node 0 teleports.
        let old = dg.graph().clone();
        pts[0] = Point::new([80.0, 50.0]);
        dg.step(&pts);
        assert_eq!(dg.fallback_steps(), 1, "violation must oracle");
        let next = AdjacencyList::from_points(&pts, side, r);
        assert_eq!(dg.graph(), &next);
        assert_eq!(dg.last_diff(), &old.diff(&next));
        // The next in-bound step rebuilds the stale arena and keeps
        // serving exact snapshots.
        shift(&mut pts, 0.5);
        dg.step(&pts);
        assert_eq!(dg.metrics().cache_rebuilds, 2, "stale arena must rebuild");
        assert_eq!(dg.graph(), &AdjacencyList::from_points(&pts, side, r));
        // And a quiet follow-up step verifies off the fresh arena.
        dg.step(&pts.clone());
        assert!(dg.last_diff().is_empty());
        assert!(dg.metrics().cache_verify_steps >= 1);
    }

    /// Armed-mode byte-identity across step-thread counts: snapshots,
    /// diffs, and every counter, with rebuilds and verifies sharded.
    #[test]
    fn step_threads_invariant_with_cache_armed() {
        let side = 60.0;
        let r = 7.0;
        let n = 80;
        let step_len = 0.35;
        let bound = (2.0f64 * step_len * step_len).sqrt();
        let trajectory: Vec<Vec<Point<2>>> = {
            let mut rng = rand::rngs::StdRng::seed_from_u64(1212);
            let mut pts: Vec<Point<2>> = (0..n)
                .map(|_| Point::new([rng.random_range(0.0..side), rng.random_range(0.0..side)]))
                .collect();
            (0..30)
                .map(|_| {
                    for p in &mut pts {
                        let q = *p
                            + Point::new([
                                rng.random_range(-step_len..step_len),
                                rng.random_range(-step_len..step_len),
                            ]);
                        *p = Point::new([q.coord(0).clamp(0.0, side), q.coord(1).clamp(0.0, side)]);
                    }
                    pts.clone()
                })
                .collect()
        };
        let build = |threads: usize| {
            DynamicGraph::new(&trajectory[0], side, r)
                .with_displacement_bound(Some(bound))
                .with_skin(Skin::Fixed(3.0))
                .with_step_threads(threads)
        };
        let mut serial = build(1);
        let mut replicas: Vec<_> = [2usize, 4, 7].into_iter().map(build).collect();
        for pts in &trajectory[1..] {
            serial.step(pts);
            for dg in &mut replicas {
                dg.step(pts);
                assert_eq!(
                    dg.graph(),
                    serial.graph(),
                    "{}-thread armed snapshot diverged",
                    dg.step_threads()
                );
                assert_eq!(dg.last_diff(), serial.last_diff());
                assert_eq!(
                    dg.metrics(),
                    serial.metrics(),
                    "{}-thread armed counters diverged",
                    dg.step_threads()
                );
            }
        }
        assert!(serial.metrics().cache_verify_steps > 0);
        assert!(serial.metrics().cache_rebuilds > 0);
    }

    /// Corrupting the candidate arena (dropping the pair that covers a
    /// true edge) must be caught by the strict-invariants cache
    /// checker on the next verify step.
    #[cfg(feature = "strict-invariants")]
    #[test]
    #[should_panic(expected = "missing from the Verlet candidate arena")]
    fn strict_invariants_detects_corrupt_candidate_arena() {
        let side = 100.0;
        let r = 4.0;
        let mut pts: Vec<Point<2>> = (0..20)
            .map(|i| Point::new([2.0 * i as f64, 10.0]))
            .collect();
        let mut dg = DynamicGraph::new(&pts, side, r)
            .with_displacement_bound(Some(0.5))
            .with_skin(Skin::Fixed(2.0));
        let shift = |pts: &mut Vec<Point<2>>, dy: f64| {
            for p in pts.iter_mut() {
                *p = Point::new([p.coord(0), p.coord(1) + dy]);
            }
        };
        shift(&mut pts, 0.3);
        dg.step(&pts);
        assert!(dg.armed_skin().is_some(), "cache must arm first");
        // Remove the arena entry covering true edge (0, 1) and patch
        // the CSR offsets so the arena stays structurally consistent —
        // only the coverage invariant is broken.
        let idx = dg.cache.pairs.binary_search(&pack_pair(0, 1)).unwrap();
        dg.cache.pairs.remove(idx);
        for off in dg.cache.offsets.iter_mut().skip(1) {
            *off -= 1;
        }
        // An in-bound verify step must now trip the coverage check.
        shift(&mut pts, 0.3);
        dg.step(&pts);
    }
}
