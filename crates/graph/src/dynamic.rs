//! Incremental graph maintenance over a moving point set.
//!
//! Every observer that wants graph structure at each mobility step used
//! to rebuild the adjacency from scratch — `O(n²)` per step on the
//! brute-force path. The temporal-connectivity subsystem instead works
//! from **edge deltas**: [`AdjacencyList::diff`] computes the edges
//! that appeared and disappeared between two snapshots by a sorted
//! merge of neighbor lists (`O(n + E_old + E_new)`), and
//! [`DynamicGraph`] packages the per-step loop — grid-accelerated
//! reconstruction via [`AdjacencyList::from_points`] followed by a
//! diff — so downstream consumers (link-lifetime tracking, episode
//! detection) touch only the changed edges.

use crate::adjacency::AdjacencyList;
use manet_geom::Point;

/// The symmetric difference between two graph snapshots on the same
/// node set.
///
/// Edges are reported as `(a, b)` with `a < b`, in lexicographic
/// order — a deterministic encoding that downstream consumers (and the
/// byte-identical artifact tests) rely on.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EdgeDiff {
    /// Edges present in the newer snapshot but not the older.
    pub added: Vec<(u32, u32)>,
    /// Edges present in the older snapshot but not the newer.
    pub removed: Vec<(u32, u32)>,
}

impl EdgeDiff {
    /// Total churn: number of added plus removed edges.
    pub fn churn(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// Whether the two snapshots had identical edge sets.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

impl AdjacencyList {
    /// Computes the edge delta from `self` (the older snapshot) to
    /// `newer`.
    ///
    /// Both graphs must have sorted neighbor lists, which every
    /// `from_points*` constructor guarantees; graphs assembled by hand
    /// with [`AdjacencyList::add_edge`] must add edges in sorted order
    /// (checked in debug builds).
    ///
    /// # Panics
    ///
    /// Panics when the node counts differ.
    pub fn diff(&self, newer: &AdjacencyList) -> EdgeDiff {
        assert_eq!(
            self.len(),
            newer.len(),
            "diff requires snapshots of the same node set"
        );
        let mut diff = EdgeDiff::default();
        for a in 0..self.len() {
            let old = self.neighbors(a);
            let new = newer.neighbors(a);
            debug_assert!(old.windows(2).all(|w| w[0] < w[1]), "unsorted neighbors");
            debug_assert!(new.windows(2).all(|w| w[0] < w[1]), "unsorted neighbors");
            let (mut i, mut j) = (0usize, 0usize);
            // Sorted merge; each undirected edge appears in both
            // endpoint lists, so record it only from its lower end.
            while i < old.len() || j < new.len() {
                match (old.get(i), new.get(j)) {
                    (Some(&o), Some(&n)) if o == n => {
                        i += 1;
                        j += 1;
                    }
                    (Some(&o), Some(&n)) if o < n => {
                        if o as usize > a {
                            diff.removed.push((a as u32, o));
                        }
                        i += 1;
                    }
                    (Some(_), Some(&n)) => {
                        if n as usize > a {
                            diff.added.push((a as u32, n));
                        }
                        j += 1;
                    }
                    (Some(&o), None) => {
                        if o as usize > a {
                            diff.removed.push((a as u32, o));
                        }
                        i += 1;
                    }
                    (None, Some(&n)) => {
                        if n as usize > a {
                            diff.added.push((a as u32, n));
                        }
                        j += 1;
                    }
                    (None, None) => unreachable!("loop condition"),
                }
            }
        }
        diff
    }
}

/// A communication graph maintained across mobility steps by deltas.
///
/// [`DynamicGraph::advance`] rebuilds the snapshot through
/// [`AdjacencyList::from_points`] — expected `O(n + E)` in the sparse
/// regime (`side >= 14·range`) where the grid index pays off; the
/// dense regime stays on the brute-force branch, where `E = Θ(n²)`
/// anyway — and returns the [`EdgeDiff`] against the previous step,
/// so per-step consumers do work proportional to the number of
/// *changed* edges.
///
/// # Example
///
/// ```
/// use manet_geom::Point;
/// use manet_graph::DynamicGraph;
///
/// let mut pts = vec![Point::new([0.0]), Point::new([1.0]), Point::new([5.0])];
/// let mut dg = DynamicGraph::new(&pts, 10.0, 1.5);
/// assert_eq!(dg.initial_diff().added, vec![(0, 1)]);
///
/// pts[2] = Point::new([2.0]); // node 2 walks into range of node 1
/// let diff = dg.advance(&pts);
/// assert_eq!(diff.added, vec![(1, 2)]);
/// assert!(diff.removed.is_empty());
/// assert_eq!(dg.graph().edge_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct DynamicGraph {
    side: f64,
    range: f64,
    graph: AdjacencyList,
}

impl DynamicGraph {
    /// Builds the step-0 snapshot for points in `[0, side]^D` at the
    /// given transmitting range.
    pub fn new<const D: usize>(points: &[Point<D>], side: f64, range: f64) -> Self {
        DynamicGraph {
            side,
            range,
            graph: AdjacencyList::from_points(points, side, range),
        }
    }

    /// The current snapshot.
    pub fn graph(&self) -> &AdjacencyList {
        &self.graph
    }

    /// The transmitting range every snapshot is built at.
    pub fn range(&self) -> f64 {
        self.range
    }

    /// The delta that produces the current snapshot from an edgeless
    /// graph — every present edge reported as added. Feeding this to a
    /// delta consumer before the first [`DynamicGraph::advance`] makes
    /// step 0 uniform with the rest of the stream.
    pub fn initial_diff(&self) -> EdgeDiff {
        EdgeDiff {
            added: self
                .graph
                .edges()
                .map(|(a, b)| (a as u32, b as u32))
                .collect(),
            removed: Vec::new(),
        }
    }

    /// Advances to the next step's positions, returning the edge delta
    /// from the previous snapshot.
    ///
    /// # Panics
    ///
    /// Panics when `points.len()` differs from the node count the
    /// graph was built with (a driver logic error).
    pub fn advance<const D: usize>(&mut self, points: &[Point<D>]) -> EdgeDiff {
        assert_eq!(
            points.len(),
            self.graph.len(),
            "node count changed between steps"
        );
        let next = AdjacencyList::from_points(points, self.side, self.range);
        let diff = self.graph.diff(&next);
        self.graph = next;
        diff
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngExt, SeedableRng};

    fn pts1(xs: &[f64]) -> Vec<Point<1>> {
        xs.iter().map(|&x| Point::new([x])).collect()
    }

    #[test]
    fn diff_of_identical_graphs_is_empty() {
        let pts = pts1(&[0.0, 1.0, 2.0]);
        let g = AdjacencyList::from_points_brute_force(&pts, 1.0);
        let d = g.diff(&g.clone());
        assert!(d.is_empty());
        assert_eq!(d.churn(), 0);
    }

    #[test]
    fn diff_reports_added_and_removed_in_order() {
        let old = AdjacencyList::from_points_brute_force(&pts1(&[0.0, 1.0, 5.0]), 1.0);
        let new = AdjacencyList::from_points_brute_force(&pts1(&[0.0, 4.9, 5.0]), 1.0);
        let d = old.diff(&new);
        assert_eq!(d.removed, vec![(0, 1)]);
        assert_eq!(d.added, vec![(1, 2)]);
        assert_eq!(d.churn(), 2);
    }

    #[test]
    fn diff_from_empty_lists_every_edge() {
        let pts = pts1(&[0.0, 0.5, 1.0]);
        let g = AdjacencyList::from_points_brute_force(&pts, 0.6);
        let d = AdjacencyList::empty(3).diff(&g);
        assert_eq!(d.added, vec![(0, 1), (1, 2)]);
        assert!(d.removed.is_empty());
        // And the reverse direction removes them all.
        let r = g.diff(&AdjacencyList::empty(3));
        assert_eq!(r.removed, vec![(0, 1), (1, 2)]);
    }

    #[test]
    #[should_panic(expected = "same node set")]
    fn diff_rejects_mismatched_node_counts() {
        let _ = AdjacencyList::empty(2).diff(&AdjacencyList::empty(3));
    }

    #[test]
    fn initial_diff_replays_snapshot() {
        let pts = pts1(&[0.0, 0.5, 1.0, 9.0]);
        let dg = DynamicGraph::new(&pts, 10.0, 0.6);
        let d = dg.initial_diff();
        assert_eq!(d.added.len(), dg.graph().edge_count());
        assert!(d.removed.is_empty());
    }

    #[test]
    fn advance_tracks_random_teleports_exactly() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(555);
        let side = 60.0;
        let r = 9.0;
        let mut pts: Vec<Point<2>> = (0..30)
            .map(|_| Point::new([rng.random_range(0.0..side), rng.random_range(0.0..side)]))
            .collect();
        let mut dg = DynamicGraph::new(&pts, side, r);
        for _ in 0..25 {
            for p in &mut pts {
                *p = Point::new([rng.random_range(0.0..side), rng.random_range(0.0..side)]);
            }
            dg.advance(&pts);
            assert_eq!(
                dg.graph(),
                &AdjacencyList::from_points_brute_force(&pts, r),
                "snapshot drifted from the from-scratch build"
            );
        }
    }

    #[test]
    #[should_panic(expected = "node count changed")]
    fn advance_rejects_resized_point_set() {
        let pts = pts1(&[0.0, 1.0]);
        let mut dg = DynamicGraph::new(&pts, 10.0, 1.0);
        dg.advance(&pts1(&[0.0]));
    }
}
