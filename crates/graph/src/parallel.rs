//! Deterministic fan-out for the sharded step kernel.
//!
//! One function: run a vector of closures, one scoped worker thread
//! each, and return their results **in job order**. Determinism does
//! not come from the scheduler — threads race freely — but from the
//! structure: every job owns its inputs and output buffer, nothing is
//! shared mutably, and the caller consumes results in the fixed job
//! order. The pattern matches `crates/sim/src/engine.rs` (iteration
//! fan-out) one layer down, inside a single step.
//!
//! This module is one of the three sanctioned `std::thread` sites in the
//! workspace (see `R6_EXEMPT_MODULES` in `crates/lint/src/walk.rs` and
//! the root `clippy.toml`): kernel code must not spawn threads except
//! through this fan-out, whose merge discipline is what the
//! thread-invariance proptests pin.

/// Runs `jobs` concurrently on scoped threads and returns their
/// results in job order. A single job (or none) runs inline on the
/// caller's thread — the one-shard path pays no thread overhead.
///
/// # Panics
///
/// Propagates a panic from any job.
#[allow(clippy::disallowed_methods)] // thread::scope/spawn: the sanctioned fan-out site
pub(crate) fn run_jobs<R, F>(jobs: Vec<F>) -> Vec<R>
where
    R: Send,
    F: FnOnce() -> R + Send,
{
    if jobs.len() <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = jobs.into_iter().map(|job| scope.spawn(job)).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("step kernel worker panicked")) // lint:allow(R3): a worker panic is already a crash; propagate it
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order() {
        let jobs: Vec<_> = (0..8).map(|i| move || i * 10).collect();
        assert_eq!(run_jobs(jobs), vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn zero_and_one_job_run_inline() {
        let none: Vec<fn() -> u32> = Vec::new();
        assert!(run_jobs(none).is_empty());
        assert_eq!(run_jobs(vec![|| 7u32]), vec![7]);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panics_propagate() {
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> =
            vec![Box::new(|| 1), Box::new(|| panic!("boom"))];
        let _ = run_jobs(jobs);
    }
}
