//! Graph algorithms for geometric point graphs.
//!
//! The paper's *communication graph* `G_M(t)` places an edge between
//! two nodes iff their Euclidean distance is at most the common
//! transmitting range `r` (a *point graph*, after Sen & Huson). This
//! crate implements, from scratch, everything the reproduction needs to
//! reason about such graphs:
//!
//! * [`UnionFind`] — disjoint sets with size tracking, the engine
//!   behind component counting and the Kruskal merge process;
//! * [`AdjacencyList`] — point-graph construction (grid-accelerated or
//!   brute force) and degree/isolation queries;
//! * [`components`] — connected components, largest component size;
//! * [`mst`] — dense Prim Euclidean MST and the **critical
//!   transmitting range** (the bottleneck = longest MST edge), the
//!   single quantity from which all of the paper's `r_f` metrics are
//!   derived;
//! * [`merge`] — the full Kruskal merge profile: largest component
//!   size as a step function of the range;
//! * [`dynamic`] — edge deltas between snapshots and [`DynamicGraph`],
//!   the streaming path that feeds the temporal-connectivity subsystem
//!   (`manet-trace`) with per-step changed edges instead of `O(n²)`
//!   rebuilds;
//! * [`dynamic_components`] — [`DynamicComponents`], the incremental
//!   component summary maintained under that delta stream (DSU
//!   insertions, epoch-based partial rebuilds for deletions), the
//!   engine behind every per-step connectivity query in `manet-sim`;
//! * [`bfs`] — hop distances and diameter (multi-hop relay depth);
//! * [`kconn`] — vertex connectivity (an extension beyond the paper's
//!   1-connectivity, useful for dependability margins).
//!
//! # Example
//!
//! ```
//! use manet_geom::Point;
//! use manet_graph::{critical_range, AdjacencyList};
//!
//! let pts = vec![
//!     Point::new([0.0, 0.0]),
//!     Point::new([1.0, 0.0]),
//!     Point::new([2.5, 0.0]),
//! ];
//! // Longest MST edge: the 1.5 gap.
//! let ctr = critical_range(&pts);
//! assert!((ctr - 1.5).abs() < 1e-12);
//!
//! let graph = AdjacencyList::from_points_brute_force(&pts, 1.5);
//! assert!(manet_graph::components::is_connected(&graph));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod adjacency;
pub mod bfs;
pub mod components;
pub mod dsu;
pub mod dynamic;
pub mod dynamic_components;
pub mod kconn;
pub mod merge;
pub mod mst;
mod parallel;

pub use adjacency::AdjacencyList;
pub use components::ComponentSummary;
pub use dsu::UnionFind;
pub use dynamic::{DynamicGraph, EdgeDiff, Skin};
pub use dynamic_components::{DynamicComponents, FULL_REBUILD_CHURN_FRACTION};
pub use merge::MergeProfile;
pub use mst::{critical_range, minimum_spanning_tree, MstEdge};
