//! Point-graph construction and adjacency queries.

use manet_geom::{CellGrid, GeomError, Point};

/// Undirected graph stored as per-node neighbor lists.
///
/// Construction from a point set and a transmitting range builds the
/// paper's communication graph: `(u, v)` is an edge iff
/// `dist(u, v) <= r`. Two construction paths exist — grid-accelerated
/// (expected `O(n + E)`) and brute force (`O(n²)`) — which property
/// tests hold to produce identical graphs.
///
/// # Example
///
/// ```
/// use manet_geom::Point;
/// use manet_graph::AdjacencyList;
///
/// let pts = vec![
///     Point::new([0.0]),
///     Point::new([1.0]),
///     Point::new([5.0]),
/// ];
/// let g = AdjacencyList::from_points_brute_force(&pts, 1.0);
/// assert_eq!(g.degree(0), 1);
/// assert_eq!(g.degree(2), 0);
/// assert_eq!(g.isolated_nodes(), vec![2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AdjacencyList {
    neighbors: Vec<Vec<u32>>,
    edge_count: usize,
}

impl AdjacencyList {
    /// Creates an edgeless graph on `n` nodes.
    pub fn empty(n: usize) -> Self {
        AdjacencyList {
            neighbors: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Builds the communication graph by checking all `O(n²)` pairs.
    ///
    /// Exact and dependency-free; preferred for the small `n` of the
    /// paper's experiments (`n <= 128`) where it also tends to beat the
    /// grid on constant factors.
    pub fn from_points_brute_force<const D: usize>(points: &[Point<D>], range: f64) -> Self {
        let n = points.len();
        let mut g = AdjacencyList::empty(n);
        let r2 = range * range;
        for i in 0..n {
            for j in (i + 1)..n {
                if points[i].distance_sq(&points[j]) <= r2 {
                    g.add_edge(i, j);
                }
            }
        }
        g
    }

    /// Builds the communication graph, choosing between the brute-force
    /// and grid-accelerated paths automatically.
    ///
    /// The brute-force path wins on constant factors for small point
    /// sets (no bucketing, no sort, a tight pair loop), while the grid
    /// pays off only when the range is small relative to the side —
    /// each 3^D-cell neighborhood then holds a small fraction of all
    /// nodes — *and* `n` is large enough to amortize index
    /// construction. Measured on uniform 2-D placements (see the
    /// `traces` bench), the grid starts winning around `n ≈ 200` once
    /// `side >= 14·range` (candidate fraction `9(r/side)² ≲ 5%`), and
    /// never wins below that cell count regardless of `n`; hence the
    /// crossover: grid iff `n > `[`Self::GRID_CROSSOVER`]` && side >=
    /// 14·range`.
    ///
    /// Degenerate inputs (non-positive or non-finite `side`/`range`)
    /// never error: they fall back to brute force, which treats the
    /// range check exactly (`NaN` compares false, so a `NaN` range
    /// yields an edgeless graph).
    pub fn from_points<const D: usize>(points: &[Point<D>], side: f64, range: f64) -> Self {
        let grid_pays = side.is_finite()
            && range.is_finite()
            && range > 0.0
            && side > 0.0
            && side >= 14.0 * range;
        if points.len() <= Self::GRID_CROSSOVER || !grid_pays {
            return Self::from_points_brute_force(points, range);
        }
        Self::from_points_grid(points, side, range)
            .unwrap_or_else(|_| Self::from_points_brute_force(points, range))
    }

    /// Node count up to which [`AdjacencyList::from_points`] always
    /// prefers the brute-force construction.
    pub const GRID_CROSSOVER: usize = 192;

    /// Builds the communication graph with a [`CellGrid`] index over
    /// `[0, side]^D`.
    ///
    /// # Errors
    ///
    /// Propagates [`GeomError`] from grid construction (non-positive
    /// `side`/`range`, non-finite values).
    pub fn from_points_grid<const D: usize>(
        points: &[Point<D>],
        side: f64,
        range: f64,
    ) -> Result<Self, GeomError> {
        let grid = CellGrid::build(points, side, range)?;
        let mut g = AdjacencyList::empty(points.len());
        grid.for_each_pair_within(range, |i, j, _d2| {
            g.add_edge(i, j);
        });
        // Grid enumeration order is by cell; normalize for Eq with the
        // brute-force path.
        for list in &mut g.neighbors {
            list.sort_unstable();
        }
        Ok(g)
    }

    /// Adds the undirected edge `(a, b)`.
    ///
    /// # Panics
    ///
    /// Panics when `a == b` (self loops are meaningless in a point
    /// graph) or when an endpoint is out of range.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        assert_ne!(a, b, "self loops are not allowed");
        assert!(
            a < self.len() && b < self.len(),
            "edge endpoint out of range"
        );
        self.neighbors[a].push(b as u32);
        self.neighbors[b].push(a as u32);
        self.edge_count += 1;
    }

    /// Inserts the undirected edge `(a, b)` keeping both neighbor
    /// lists sorted — the in-place maintenance path of the incremental
    /// step kernel. Reuses list capacity; `O(deg)` per endpoint.
    pub(crate) fn insert_edge_sorted(&mut self, a: usize, b: usize) {
        debug_assert_ne!(a, b, "self loops are not allowed");
        for (x, y) in [(a, b), (b, a)] {
            let list = &mut self.neighbors[x];
            let pos = list
                .binary_search(&(y as u32))
                .expect_err("edge already present");
            list.insert(pos, y as u32);
        }
        self.edge_count += 1;
    }

    /// Removes the undirected edge `(a, b)` from both sorted neighbor
    /// lists; `O(deg)` per endpoint.
    pub(crate) fn remove_edge_sorted(&mut self, a: usize, b: usize) {
        for (x, y) in [(a, b), (b, a)] {
            let list = &mut self.neighbors[x];
            let pos = list
                .binary_search(&(y as u32))
                .expect("edge present in both lists"); // lint:allow(R3): undirected symmetry invariant of the representation
            list.remove(pos);
        }
        self.edge_count -= 1;
    }

    /// Swaps in a fully rebuilt set of (sorted) neighbor rows with its
    /// edge count — the bulk-rescan path of the step kernel, which
    /// assembles the next snapshot into persistent scratch rows and
    /// exchanges them wholesale so the displaced rows' capacity is
    /// reused on the following rescan.
    ///
    /// # Panics
    ///
    /// Panics when the row count differs from the node count.
    pub(crate) fn swap_neighbor_rows(&mut self, rows: &mut Vec<Vec<u32>>, edge_count: usize) {
        assert_eq!(rows.len(), self.neighbors.len(), "row count must match");
        core::mem::swap(&mut self.neighbors, rows);
        self.edge_count = edge_count;
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.neighbors.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.neighbors.is_empty()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Neighbors of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn neighbors(&self, i: usize) -> &[u32] {
        &self.neighbors[i]
    }

    /// Degree of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn degree(&self, i: usize) -> usize {
        self.neighbors[i].len()
    }

    /// Nodes with no neighbors. The existence of an isolated node is
    /// the disconnection witness used by the earlier lower-bound
    /// analysis the paper improves upon (reference \[11\] there).
    pub fn isolated_nodes(&self) -> Vec<usize> {
        self.neighbors
            .iter()
            .enumerate()
            .filter(|(_, l)| l.is_empty())
            .map(|(i, _)| i)
            .collect()
    }

    /// Minimum degree over all nodes (`None` for the empty graph).
    pub fn min_degree(&self) -> Option<usize> {
        self.neighbors.iter().map(|l| l.len()).min()
    }

    /// Average degree (`NaN` for the empty graph).
    pub fn mean_degree(&self) -> f64 {
        if self.is_empty() {
            return f64::NAN;
        }
        2.0 * self.edge_count as f64 / self.len() as f64
    }

    /// Iterates over all undirected edges as `(a, b)` with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.neighbors.iter().enumerate().flat_map(|(a, list)| {
            list.iter()
                .filter(move |&&b| (b as usize) > a)
                .map(move |&b| (a, b as usize))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn empty_graph() {
        let g = AdjacencyList::empty(3);
        assert_eq!(g.len(), 3);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.isolated_nodes(), vec![0, 1, 2]);
        assert_eq!(g.min_degree(), Some(0));
    }

    #[test]
    fn zero_node_graph() {
        let g = AdjacencyList::empty(0);
        assert!(g.is_empty());
        assert_eq!(g.min_degree(), None);
        assert!(g.mean_degree().is_nan());
    }

    #[test]
    fn brute_force_builds_expected_edges() {
        let pts = vec![Point::new([0.0]), Point::new([1.0]), Point::new([2.1])];
        let g = AdjacencyList::from_points_brute_force(&pts, 1.1);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert!(g.isolated_nodes().is_empty());
    }

    #[test]
    fn range_is_inclusive() {
        let pts = vec![Point::new([0.0]), Point::new([1.0])];
        let g = AdjacencyList::from_points_brute_force(&pts, 1.0);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn grid_and_brute_force_agree() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4242);
        for _ in 0..10 {
            let pts: Vec<Point<2>> = (0..80)
                .map(|_| Point::new([rng.random_range(0.0..64.0), rng.random_range(0.0..64.0)]))
                .collect();
            let r = rng.random_range(1.0..12.0);
            let brute = AdjacencyList::from_points_brute_force(&pts, r);
            let grid = AdjacencyList::from_points_grid(&pts, 64.0, r).unwrap();
            assert_eq!(brute, grid);
        }
    }

    #[test]
    fn from_points_agrees_with_both_paths_across_crossover() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1717);
        // Straddle GRID_CROSSOVER so both branches are exercised
        // (side = 200, r < 200/14: the grid branch is eligible).
        for n in [8usize, 160, 193, 400] {
            let pts: Vec<Point<2>> = (0..n)
                .map(|_| Point::new([rng.random_range(0.0..200.0), rng.random_range(0.0..200.0)]))
                .collect();
            let r = rng.random_range(5.0..13.0);
            let auto = AdjacencyList::from_points(&pts, 200.0, r);
            let brute = AdjacencyList::from_points_brute_force(&pts, r);
            assert_eq!(auto, brute, "n={n} r={r}");
        }
    }

    #[test]
    fn from_points_degenerate_inputs_fall_back_to_brute_force() {
        let pts = vec![Point::new([0.0]), Point::new([1.0])];
        // Non-finite side: grid would error; brute force still exact.
        let g = AdjacencyList::from_points(&pts, f64::NAN, 1.0);
        assert_eq!(g.edge_count(), 1);
        // Huge range relative to the side: single-cell grid territory.
        let g = AdjacencyList::from_points(&pts, 2.0, 10.0);
        assert_eq!(g.edge_count(), 1);
        // NaN range: exact comparison yields no edges, no panic.
        let g = AdjacencyList::from_points(&pts, 2.0, f64::NAN);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn edges_iterator_matches_edge_count() {
        let pts = vec![
            Point::new([0.0, 0.0]),
            Point::new([1.0, 0.0]),
            Point::new([0.0, 1.0]),
        ];
        let g = AdjacencyList::from_points_brute_force(&pts, 1.2);
        let listed: Vec<_> = g.edges().collect();
        assert_eq!(listed.len(), g.edge_count());
        assert!(listed.contains(&(0, 1)));
        assert!(listed.contains(&(0, 2)));
    }

    #[test]
    fn mean_degree_matches_handshake() {
        let pts = vec![Point::new([0.0]), Point::new([0.5]), Point::new([1.0])];
        let g = AdjacencyList::from_points_brute_force(&pts, 0.6);
        // Edges: (0,1), (1,2) -> mean degree = 4/3
        assert!((g.mean_degree() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "self loops")]
    fn self_loop_panics() {
        let mut g = AdjacencyList::empty(2);
        g.add_edge(1, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_endpoint_panics() {
        let mut g = AdjacencyList::empty(2);
        g.add_edge(0, 5);
    }
}
