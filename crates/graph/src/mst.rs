//! Euclidean minimum spanning trees and the critical transmitting range.
//!
//! For a fixed point set `P`, the communication graph at range `r` is
//! connected **iff** `r` is at least the longest edge of the Euclidean
//! MST of `P` (the *bottleneck*): every MST edge of length `<= r` is
//! present at range `r`, so the MST connects the graph; conversely, any
//! MST edge of length `> r` corresponds to a cut that no shorter edge
//! crosses. This single number — the **critical transmitting range**
//! (CTR) — is therefore the exact solution of the paper's MTR problem
//! for a known placement, and its per-step time series drives the whole
//! mobile evaluation (see `manet-sim`).

use manet_geom::Point;

/// One edge of a minimum spanning tree.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MstEdge {
    /// First endpoint (index into the input point slice).
    pub a: u32,
    /// Second endpoint.
    pub b: u32,
    /// Euclidean length of the edge.
    pub length: f64,
}

/// Computes the Euclidean MST with dense Prim in `O(n²)` time and
/// `O(n)` memory — optimal for the complete geometric graph, where
/// just enumerating candidate edges already costs `n²/2` distance
/// evaluations.
///
/// Returns `n - 1` edges for `n >= 1` points (empty for `n <= 1`).
/// Edges are returned in the order Prim adds them; lengths are exact
/// Euclidean distances.
///
/// # Example
///
/// ```
/// use manet_geom::Point;
/// use manet_graph::minimum_spanning_tree;
///
/// let pts = vec![Point::new([0.0]), Point::new([3.0]), Point::new([1.0])];
/// let mst = minimum_spanning_tree(&pts);
/// assert_eq!(mst.len(), 2);
/// let total: f64 = mst.iter().map(|e| e.length).sum();
/// assert!((total - 3.0).abs() < 1e-12);
/// ```
pub fn minimum_spanning_tree<const D: usize>(points: &[Point<D>]) -> Vec<MstEdge> {
    let n = points.len();
    if n <= 1 {
        return Vec::new();
    }
    let mut in_tree = vec![false; n];
    let mut best_d2 = vec![f64::INFINITY; n];
    let mut best_parent = vec![0u32; n];
    let mut edges = Vec::with_capacity(n - 1);

    let mut current = 0usize;
    in_tree[0] = true;
    for _ in 1..n {
        // Relax distances against the vertex just added, then pick the
        // closest non-tree vertex.
        let p = points[current];
        let mut next = usize::MAX;
        let mut next_d2 = f64::INFINITY;
        for j in 0..n {
            if in_tree[j] {
                continue;
            }
            let d2 = p.distance_sq(&points[j]);
            if d2 < best_d2[j] {
                best_d2[j] = d2;
                best_parent[j] = current as u32;
            }
            if best_d2[j] < next_d2 {
                next_d2 = best_d2[j];
                next = j;
            }
        }
        debug_assert!(next != usize::MAX);
        in_tree[next] = true;
        edges.push(MstEdge {
            a: best_parent[next],
            b: next as u32,
            length: next_d2.sqrt(),
        });
        current = next;
    }
    edges
}

/// The critical transmitting range of a placement: the longest MST
/// edge, i.e. the minimum common range `r` making the communication
/// graph connected.
///
/// Returns `0.0` for fewer than two points (a single node is trivially
/// connected).
///
/// # Example
///
/// ```
/// use manet_geom::Point;
/// use manet_graph::critical_range;
///
/// // Nodes at 0, 1 and 4: the MST edges are 1 and 3, so r = 3 connects.
/// let pts = vec![Point::new([0.0]), Point::new([1.0]), Point::new([4.0])];
/// assert_eq!(critical_range(&pts), 3.0);
/// ```
pub fn critical_range<const D: usize>(points: &[Point<D>]) -> f64 {
    minimum_spanning_tree(points)
        .iter()
        .map(|e| e.length)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::AdjacencyList;
    use crate::components::is_connected;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn degenerate_inputs() {
        let empty: Vec<Point<2>> = vec![];
        assert!(minimum_spanning_tree(&empty).is_empty());
        assert_eq!(critical_range(&empty), 0.0);
        let one = vec![Point::new([3.0, 3.0])];
        assert!(minimum_spanning_tree(&one).is_empty());
        assert_eq!(critical_range(&one), 0.0);
    }

    #[test]
    fn two_points() {
        let pts = vec![Point::new([0.0, 0.0]), Point::new([3.0, 4.0])];
        let mst = minimum_spanning_tree(&pts);
        assert_eq!(mst.len(), 1);
        assert_eq!(mst[0].length, 5.0);
        assert_eq!(critical_range(&pts), 5.0);
    }

    #[test]
    fn collinear_points_mst_is_chain() {
        let pts: Vec<Point<1>> = [0.0, 1.0, 2.0, 3.5]
            .iter()
            .map(|&x| Point::new([x]))
            .collect();
        let mst = minimum_spanning_tree(&pts);
        let total: f64 = mst.iter().map(|e| e.length).sum();
        assert!((total - 3.5).abs() < 1e-12);
        assert_eq!(critical_range(&pts), 1.5);
    }

    #[test]
    fn duplicate_points_zero_edges() {
        let pts = vec![Point::new([1.0, 1.0]); 4];
        let mst = minimum_spanning_tree(&pts);
        assert_eq!(mst.len(), 3);
        assert!(mst.iter().all(|e| e.length == 0.0));
        assert_eq!(critical_range(&pts), 0.0);
    }

    #[test]
    fn square_with_diagonal_avoided() {
        // Unit square: MST uses three sides (total 3), never a diagonal.
        let pts = vec![
            Point::new([0.0, 0.0]),
            Point::new([1.0, 0.0]),
            Point::new([1.0, 1.0]),
            Point::new([0.0, 1.0]),
        ];
        let mst = minimum_spanning_tree(&pts);
        let total: f64 = mst.iter().map(|e| e.length).sum();
        assert!((total - 3.0).abs() < 1e-12);
        assert_eq!(critical_range(&pts), 1.0);
    }

    #[test]
    fn mst_total_matches_kruskal_on_random_inputs() {
        // Independent Kruskal implementation as a test oracle.
        fn kruskal_total<const D: usize>(pts: &[Point<D>]) -> f64 {
            let n = pts.len();
            let mut edges = Vec::new();
            for i in 0..n {
                for j in (i + 1)..n {
                    edges.push((pts[i].distance(&pts[j]), i, j));
                }
            }
            edges.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let mut uf = crate::dsu::UnionFind::new(n);
            let mut total = 0.0;
            for (d, i, j) in edges {
                if uf.union(i, j) {
                    total += d;
                }
            }
            total
        }

        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        for trial in 0..10 {
            let pts: Vec<Point<2>> = (0..60)
                .map(|_| Point::new([rng.random_range(0.0..10.0), rng.random_range(0.0..10.0)]))
                .collect();
            let prim: f64 = minimum_spanning_tree(&pts).iter().map(|e| e.length).sum();
            let kr = kruskal_total(&pts);
            assert!((prim - kr).abs() < 1e-9, "trial {trial}: {prim} vs {kr}");
        }
    }

    #[test]
    fn critical_range_is_exact_connectivity_threshold() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(55);
        for _ in 0..10 {
            let pts: Vec<Point<2>> = (0..40)
                .map(|_| Point::new([rng.random_range(0.0..30.0), rng.random_range(0.0..30.0)]))
                .collect();
            let ctr = critical_range(&pts);
            // `ctr` is a square root; squaring it back inside the range
            // test can round one ulp below the original squared
            // distance, so probe a hair above and below.
            let at = AdjacencyList::from_points_brute_force(&pts, ctr * (1.0 + 1e-12));
            let below = AdjacencyList::from_points_brute_force(&pts, ctr * (1.0 - 1e-9));
            assert!(is_connected(&at), "graph at CTR must be connected");
            assert!(
                !is_connected(&below),
                "graph just below CTR must be disconnected"
            );
        }
    }

    #[test]
    fn mst_edges_span_all_nodes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let pts: Vec<Point<3>> = (0..30)
            .map(|_| {
                Point::new([
                    rng.random_range(0.0..5.0),
                    rng.random_range(0.0..5.0),
                    rng.random_range(0.0..5.0),
                ])
            })
            .collect();
        let mst = minimum_spanning_tree(&pts);
        let mut uf = crate::dsu::UnionFind::new(pts.len());
        for e in &mst {
            uf.union(e.a as usize, e.b as usize);
        }
        assert!(uf.is_single_component());
    }
}
