//! Connected components of a point graph.
//!
//! The paper's availability metrics all reduce to two questions about
//! each simulated step: *is the graph connected?* and *how large is the
//! largest connected component?* This module answers both from an
//! [`AdjacencyList`] via iterative depth-first search.

use crate::adjacency::AdjacencyList;

/// Sizes and labeling of all connected components.
///
/// # Example
///
/// ```
/// use manet_geom::Point;
/// use manet_graph::{AdjacencyList, ComponentSummary};
///
/// let pts = vec![
///     Point::new([0.0]),
///     Point::new([1.0]),
///     Point::new([10.0]),
/// ];
/// let g = AdjacencyList::from_points_brute_force(&pts, 1.5);
/// let c = ComponentSummary::of(&g);
/// assert_eq!(c.count(), 2);
/// assert_eq!(c.largest_size(), 2);
/// assert_eq!(c.label(0), c.label(1));
/// assert_ne!(c.label(0), c.label(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ComponentSummary {
    labels: Vec<u32>,
    sizes: Vec<u32>,
}

impl ComponentSummary {
    /// Computes the components of `graph`.
    pub fn of(graph: &AdjacencyList) -> Self {
        let n = graph.len();
        let mut labels = vec![u32::MAX; n];
        let mut sizes = Vec::new();
        let mut stack = Vec::new();
        for start in 0..n {
            if labels[start] != u32::MAX {
                continue;
            }
            let label = sizes.len() as u32;
            let mut size = 0u32;
            labels[start] = label;
            stack.push(start as u32);
            while let Some(v) = stack.pop() {
                size += 1;
                for &w in graph.neighbors(v as usize) {
                    if labels[w as usize] == u32::MAX {
                        labels[w as usize] = label;
                        stack.push(w);
                    }
                }
            }
            sizes.push(size);
        }
        ComponentSummary { labels, sizes }
    }

    /// Number of connected components (0 for the empty graph).
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Component label of node `i` (labels are dense, `0..count()`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn label(&self, i: usize) -> u32 {
        self.labels[i]
    }

    /// Sizes of all components, indexed by label.
    pub fn sizes(&self) -> &[u32] {
        &self.sizes
    }

    /// Size of the largest component (0 for the empty graph).
    pub fn largest_size(&self) -> usize {
        self.sizes.iter().copied().max().unwrap_or(0) as usize
    }

    /// Whether the graph is connected. Graphs with at most one node
    /// are connected by convention.
    pub fn is_connected(&self) -> bool {
        self.sizes.len() <= 1
    }
}

/// Convenience: whether `graph` is connected.
pub fn is_connected(graph: &AdjacencyList) -> bool {
    if graph.len() <= 1 {
        return true;
    }
    // Early exit: any isolated node disconnects the graph.
    if graph.min_degree() == Some(0) {
        return false;
    }
    ComponentSummary::of(graph).is_connected()
}

/// Convenience: size of the largest connected component.
pub fn largest_component_size(graph: &AdjacencyList) -> usize {
    ComponentSummary::of(graph).largest_size()
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_geom::Point;

    fn line_graph(gaps: &[f64], range: f64) -> AdjacencyList {
        // Build points at cumulative positions of `gaps`.
        let mut pos = vec![0.0];
        for g in gaps {
            pos.push(pos.last().unwrap() + g);
        }
        let pts: Vec<Point<1>> = pos.into_iter().map(|x| Point::new([x])).collect();
        AdjacencyList::from_points_brute_force(&pts, range)
    }

    #[test]
    fn empty_graph_is_connected() {
        let g = AdjacencyList::empty(0);
        assert!(is_connected(&g));
        assert_eq!(ComponentSummary::of(&g).count(), 0);
        assert_eq!(largest_component_size(&g), 0);
    }

    #[test]
    fn singleton_is_connected() {
        let g = AdjacencyList::empty(1);
        assert!(is_connected(&g));
        assert_eq!(largest_component_size(&g), 1);
    }

    #[test]
    fn two_isolated_nodes_disconnected() {
        let g = AdjacencyList::empty(2);
        assert!(!is_connected(&g));
        let c = ComponentSummary::of(&g);
        assert_eq!(c.count(), 2);
        assert_eq!(c.largest_size(), 1);
    }

    #[test]
    fn chain_connectivity_depends_on_largest_gap() {
        // Gaps 1, 1, 3, 1 with range 2: the 3-gap splits the chain.
        let g = line_graph(&[1.0, 1.0, 3.0, 1.0], 2.0);
        assert!(!is_connected(&g));
        let c = ComponentSummary::of(&g);
        assert_eq!(c.count(), 2);
        assert_eq!(c.largest_size(), 3);

        let g2 = line_graph(&[1.0, 1.0, 3.0, 1.0], 3.0);
        assert!(is_connected(&g2));
    }

    #[test]
    fn labels_are_dense_and_consistent() {
        let g = line_graph(&[1.0, 5.0, 1.0], 2.0);
        let c = ComponentSummary::of(&g);
        assert_eq!(c.count(), 2);
        for i in 0..g.len() {
            assert!(c.label(i) < c.count() as u32);
        }
        assert_eq!(c.label(0), c.label(1));
        assert_eq!(c.label(2), c.label(3));
        assert_ne!(c.label(0), c.label(2));
        let total: u32 = c.sizes().iter().sum();
        assert_eq!(total as usize, g.len());
    }

    #[test]
    fn star_graph_connected() {
        let mut g = AdjacencyList::empty(6);
        for leaf in 1..6 {
            g.add_edge(0, leaf);
        }
        assert!(is_connected(&g));
        assert_eq!(largest_component_size(&g), 6);
    }

    #[test]
    fn early_exit_isolated_node() {
        let mut g = AdjacencyList::empty(3);
        g.add_edge(0, 1);
        // node 2 isolated -> early path must say disconnected
        assert!(!is_connected(&g));
    }
}
