//! Incremental connected components over an edge-delta stream.
//!
//! [`ComponentSummary::of`](crate::ComponentSummary::of) answers the
//! paper's two per-step questions — *connected?* and *how large is the
//! largest component?* — by a full `O(n + E)` relabeling of the
//! snapshot. Over a mobile trajectory the snapshot barely changes
//! between steps, so the spine of every simulation pipeline is better
//! served by maintaining the answer under the [`EdgeDiff`] stream that
//! [`DynamicGraph`](crate::DynamicGraph) already produces:
//!
//! * **insertions** are plain union-find merges (`O(α)` each);
//! * **deletions** may split a component, which union-find cannot
//!   undo, so they trigger an *epoch-based partial rebuild*: a BFS
//!   over the new snapshot seeded at the removed edges' endpoints
//!   relabels only the affected region (every old component that lost
//!   an edge, plus any component a simultaneous insertion fused onto
//!   it — provably a union of complete old components, see below);
//! * when a step's churn exceeds [`FULL_REBUILD_CHURN_FRACTION`]`·n`,
//!   the partial machinery is abandoned for one amortized full
//!   rebuild, which is cheaper than chasing a mostly-new topology
//!   delta by delta.
//!
//! Correctness of the affected region: for any node `x` of an old
//! component `C` that lost an edge, walk an old path from `x` to a
//! removed edge inside `C`. Either the path survives into the new
//! snapshot (then `x` reaches that edge's endpoint) or it dies at some
//! removed edge `(p, q)` — and then `x` reaches `p`, also a seed. So a
//! BFS from all removed-edge endpoints over the new snapshot visits
//! every node of every edge-losing component; any *unaffected*
//! component the BFS enters through a freshly added edge is connected
//! in the new snapshot, hence fully visited too. The visited set is
//! therefore a union of complete old components, which is what lets
//! the accounting drop exactly those components and insert the BFS
//! trees in their place.
//!
//! The replay contract — after applying each step's diff, `count`,
//! `largest_size` and the full size multiset equal
//! `ComponentSummary::of` on that step's snapshot — is enforced by
//! unit tests here and property tests over every mobility model in
//! `tests/properties.rs` (and again at the simulation layer).

use crate::adjacency::AdjacencyList;
use crate::dynamic::EdgeDiff;
use manet_obs::ComponentMetrics;
use std::collections::BTreeMap;

/// Churn fraction (relative to the node count) above which
/// [`DynamicComponents::apply`] abandons the partial rebuild for one
/// full relabeling of the snapshot.
///
/// Measured by the `apply_strategy` group of the `dynamic_components`
/// Criterion bench (apply strategies timed on a precomputed
/// diff/snapshot stream, n = 500, random waypoint, sparse regime):
/// incremental apply beats one full relabel ~5.9× at churn 0.024·n
/// per step and ~1.2× at 0.157·n, and loses (~1.2× slower) by
/// 0.388·n, where BFS re-exploration of the affected region plus
/// multiset bookkeeping overtakes one clean sweep — an interpolated
/// crossover of ≈ 0.25·n. Teleport-like steps (churn ≈ E ≫ n/4) route
/// straight to the rebuild.
pub const FULL_REBUILD_CHURN_FRACTION: f64 = 0.25;

/// Connected-component summary maintained incrementally under the
/// [`EdgeDiff`] stream of a [`DynamicGraph`](crate::DynamicGraph).
///
/// Tracks the component count, the size multiset, and the largest
/// component size — the quantities every pipeline of `manet-sim`
/// consumes — bit-identically to recomputing
/// [`ComponentSummary::of`](crate::ComponentSummary::of) from scratch
/// at each step.
///
/// # Example
///
/// ```
/// use manet_geom::Point;
/// use manet_graph::{DynamicComponents, DynamicGraph};
///
/// let mut pts = vec![Point::new([0.0]), Point::new([1.0]), Point::new([5.0])];
/// let mut dg = DynamicGraph::new(&pts, 10.0, 1.5);
/// let mut dc = DynamicComponents::new(pts.len());
/// dc.apply(&dg.initial_diff(), dg.graph());
/// assert_eq!(dc.count(), 2);
/// assert_eq!(dc.largest_size(), 2);
///
/// pts[2] = Point::new([2.0]); // node 2 walks into range of node 1
/// let diff = dg.advance(&pts);
/// dc.apply(&diff, dg.graph());
/// assert!(dc.is_connected());
/// assert_eq!(dc.largest_size(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct DynamicComponents {
    /// Union-find forest; roots index `size`.
    parent: Vec<u32>,
    /// Component size, valid at roots only.
    size: Vec<u32>,
    /// Multiset of component sizes: size -> multiplicity. The BTreeMap
    /// keeps `largest_size` an O(log n) last-key lookup and iteration
    /// deterministic.
    size_counts: BTreeMap<u32, u32>,
    /// Number of components.
    count: usize,
    /// Epoch stamps replacing a per-step `visited` clear in the
    /// partial-rebuild BFS.
    visit_epoch: Vec<u32>,
    /// Epoch stamps deduplicating old roots during a partial rebuild.
    root_epoch: Vec<u32>,
    epoch: u32,
    /// Scratch: BFS stack (kept to avoid per-step allocation).
    stack: Vec<u32>,
    /// Scratch: visited nodes of the current partial rebuild, flat.
    tree_nodes: Vec<u32>,
    /// Scratch: offsets into `tree_nodes`, one past each tree's end.
    tree_ends: Vec<u32>,
    /// Deterministic path counters (see [`ComponentMetrics`]); only
    /// [`DynamicComponents::apply`] counts, constructors do not.
    metrics: ComponentMetrics,
}

impl DynamicComponents {
    /// Creates the summary of the edgeless graph on `n` nodes (`n`
    /// singleton components). Feed it
    /// [`DynamicGraph::initial_diff`](crate::DynamicGraph::initial_diff)
    /// to reach step 0.
    pub fn new(n: usize) -> Self {
        assert!(
            n <= u32::MAX as usize,
            "DynamicComponents supports up to 2^32 - 1 nodes"
        );
        let mut size_counts = BTreeMap::new();
        if n > 0 {
            size_counts.insert(1, n as u32);
        }
        DynamicComponents {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            size_counts,
            count: n,
            visit_epoch: vec![0; n],
            root_epoch: vec![0; n],
            epoch: 0,
            stack: Vec::new(),
            tree_nodes: Vec::new(),
            tree_ends: Vec::new(),
            metrics: ComponentMetrics::default(),
        }
    }

    /// Builds the summary of an existing snapshot directly.
    pub fn from_graph(graph: &AdjacencyList) -> Self {
        let mut dc = DynamicComponents::new(graph.len());
        dc.relabel(graph);
        dc
    }

    /// Node count.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of connected components (0 for the empty graph).
    pub fn count(&self) -> usize {
        self.count
    }

    /// Size of the largest component (0 for the empty graph).
    pub fn largest_size(&self) -> usize {
        self.size_counts
            .last_key_value()
            .map(|(&s, _)| s as usize)
            .unwrap_or(0)
    }

    /// Whether the graph is connected (graphs with at most one node
    /// are connected by convention, matching
    /// [`ComponentSummary::is_connected`](crate::ComponentSummary::is_connected)).
    pub fn is_connected(&self) -> bool {
        self.count <= 1
    }

    /// Number of singleton components — equivalently, of isolated
    /// (degree-0) nodes. An O(log n) lookup, versus the O(n) degree
    /// scan of [`AdjacencyList::isolated_nodes`].
    pub fn singleton_count(&self) -> usize {
        self.size_counts.get(&1).copied().unwrap_or(0) as usize
    }

    /// The component sizes as `(size, multiplicity)` pairs in
    /// ascending size order.
    pub fn size_counts(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.size_counts.iter().map(|(&s, &m)| (s, m))
    }

    /// All component sizes, ascending (the oracle-comparison view:
    /// equals `ComponentSummary::of(graph).sizes()` sorted).
    pub fn sizes_sorted(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.count);
        for (&s, &m) in &self.size_counts {
            out.extend(std::iter::repeat_n(s, m as usize));
        }
        out
    }

    /// Number of ordered node pairs joined by some path:
    /// `Σ s·(s−1)` over components. Exact integer arithmetic, so the
    /// derived path-availability is bit-identical to the label-order
    /// sum over [`ComponentSummary::sizes`](crate::ComponentSummary::sizes).
    pub fn ordered_reachable_pairs(&self) -> u64 {
        self.size_counts
            .iter()
            .map(|(&s, &m)| m as u64 * (s as u64 * (s as u64 - 1)))
            .sum()
    }

    /// Whether `a` and `b` are currently in the same component.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn same_component(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Partial (epoch) rebuilds performed so far — the deletion path.
    pub fn partial_rebuilds(&self) -> u64 {
        self.metrics.partial_rebuilds
    }

    /// Amortized full rebuilds performed so far — the high-churn path.
    pub fn full_rebuilds(&self) -> u64 {
        self.metrics.full_rebuilds
    }

    /// The full deterministic counter set accumulated over every
    /// [`DynamicComponents::apply`]: per-path rebuild counts, actual
    /// DSU merges, and affected-region sizes. Constructors (including
    /// [`DynamicComponents::from_graph`]'s initial relabel) count as
    /// zero.
    pub fn metrics(&self) -> &ComponentMetrics {
        &self.metrics
    }

    /// Applies one step's edge delta. `graph` must be the snapshot the
    /// delta produces (i.e. [`DynamicGraph::graph`](crate::DynamicGraph::graph)
    /// *after* the corresponding `advance`), and deltas must be applied
    /// in stream order.
    ///
    /// # Panics
    ///
    /// Panics when `graph` has a different node count than this
    /// structure (a driver logic error).
    pub fn apply(&mut self, diff: &EdgeDiff, graph: &AdjacencyList) {
        assert_eq!(
            graph.len(),
            self.parent.len(),
            "node count changed between steps"
        );
        self.apply_dispatch(diff, graph);
        #[cfg(feature = "strict-invariants")]
        self.debug_validate();
    }

    /// [`DynamicComponents::apply`]'s path selection, factored out so
    /// the strict-invariants checker runs once after whichever path
    /// ran.
    fn apply_dispatch(&mut self, diff: &EdgeDiff, graph: &AdjacencyList) {
        self.metrics.applies += 1;
        if !diff.removed.is_empty() {
            let threshold = FULL_REBUILD_CHURN_FRACTION * self.parent.len() as f64;
            if diff.churn() as f64 >= threshold {
                self.relabel(graph);
                self.metrics.full_rebuilds += 1;
                self.metrics.full_nodes_relabeled += graph.len() as u64;
                return;
            }
            self.partial_rebuild(&diff.removed, graph);
        }
        for &(a, b) in &diff.added {
            self.union(a as usize, b as usize);
        }
    }

    /// DSU forest and accounting coherence: every parent pointer is in
    /// range and reaches a root without cycling, `size[]` at every root
    /// equals the member tally of that root's tree, the component
    /// count equals the number of distinct roots, and the size
    /// multiset both matches the per-root tallies and conserves the
    /// node count (`Σ size · multiplicity = n`). `O(n · height)` — run
    /// after every [`DynamicComponents::apply`] under
    /// `strict-invariants`. Read-only: roots are found without path
    /// halving so the checker cannot mask a broken forest.
    #[cfg(feature = "strict-invariants")]
    fn debug_validate(&self) {
        let n = self.parent.len();
        let mut members: BTreeMap<u32, u32> = BTreeMap::new();
        for x in 0..n {
            let mut cur = x as u32;
            let mut hops = 0usize;
            loop {
                debug_assert!(
                    (self.parent[cur as usize] as usize) < n,
                    "strict-invariants: parent pointer of {cur} out of range"
                );
                let p = self.parent[cur as usize];
                if p == cur {
                    break;
                }
                cur = p;
                hops += 1;
                debug_assert!(hops <= n, "strict-invariants: parent chain of {x} cycles");
            }
            *members.entry(cur).or_insert(0) += 1;
        }
        debug_assert_eq!(
            members.len(),
            self.count,
            "strict-invariants: component count diverged from the forest"
        );
        let mut multiset: BTreeMap<u32, u32> = BTreeMap::new();
        for (&root, &tally) in &members {
            debug_assert_eq!(
                self.size[root as usize], tally,
                "strict-invariants: size[] at root {root} diverged from its member tally"
            );
            *multiset.entry(tally).or_insert(0) += 1;
        }
        debug_assert_eq!(
            multiset, self.size_counts,
            "strict-invariants: size multiset out of sync with the forest"
        );
        let conserved: u64 = self
            .size_counts
            .iter()
            .map(|(&s, &m)| s as u64 * m as u64)
            .sum();
        debug_assert_eq!(
            conserved, n as u64,
            "strict-invariants: size multiset does not conserve the node count"
        );
    }

    /// Representative of `x`'s component (path halving).
    fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        loop {
            let p = self.parent[x as usize];
            if p == x {
                return x as usize;
            }
            let gp = self.parent[p as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
    }

    fn insert_size(&mut self, s: u32) {
        *self.size_counts.entry(s).or_insert(0) += 1;
    }

    fn remove_size(&mut self, s: u32) {
        match self.size_counts.get_mut(&s) {
            Some(m) if *m > 1 => *m -= 1,
            Some(_) => {
                self.size_counts.remove(&s);
            }
            None => unreachable!("size multiset out of sync"),
        }
    }

    /// Union-by-size merge of the components of `a` and `b`, with
    /// multiset/count maintenance.
    fn union(&mut self, a: usize, b: usize) {
        let mut ra = self.find(a);
        let mut rb = self.find(b);
        if ra == rb {
            return;
        }
        self.metrics.dsu_merges += 1;
        if self.size[ra] < self.size[rb] {
            core::mem::swap(&mut ra, &mut rb);
        }
        self.remove_size(self.size[ra]);
        self.remove_size(self.size[rb]);
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        self.insert_size(self.size[ra]);
        self.count -= 1;
    }

    /// Advances the visit/root epoch, resetting stamps on wraparound.
    fn next_epoch(&mut self) -> u32 {
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.visit_epoch.fill(0);
                self.root_epoch.fill(0);
                1
            }
        };
        self.epoch
    }

    /// The deletion path: relabels exactly the affected region (the
    /// union of complete old components touched by `removed` or fused
    /// onto them by this step's insertions) via BFS over the new
    /// snapshot, leaving every other component's forest untouched.
    fn partial_rebuild(&mut self, removed: &[(u32, u32)], graph: &AdjacencyList) {
        let epoch = self.next_epoch();
        self.tree_nodes.clear();
        self.tree_ends.clear();

        // Phase A: collect the BFS trees and the distinct old roots of
        // every visited node (before any re-parenting, so `find` still
        // reports pre-step components).
        let mut old_roots = 0usize;
        let mut dropped_sizes: u64 = 0; // defensive balance check
        for &(a, b) in removed {
            for seed in [a, b] {
                if self.visit_epoch[seed as usize] == epoch {
                    continue;
                }
                self.visit_epoch[seed as usize] = epoch;
                self.stack.push(seed);
                while let Some(v) = self.stack.pop() {
                    self.tree_nodes.push(v);
                    let r = self.find(v as usize);
                    if self.root_epoch[r] != epoch {
                        self.root_epoch[r] = epoch;
                        old_roots += 1;
                        dropped_sizes += self.size[r] as u64;
                        self.remove_size(self.size[r]);
                    }
                    for &w in graph.neighbors(v as usize) {
                        if self.visit_epoch[w as usize] != epoch {
                            self.visit_epoch[w as usize] = epoch;
                            self.stack.push(w);
                        }
                    }
                }
                self.tree_ends.push(self.tree_nodes.len() as u32);
            }
        }
        debug_assert_eq!(
            dropped_sizes,
            self.tree_nodes.len() as u64,
            "partial rebuild visited a strict subset of some old component"
        );
        self.count -= old_roots;

        // Phase B: install each tree as a fresh component rooted at its
        // first-visited node.
        let mut start = 0usize;
        let tree_ends = std::mem::take(&mut self.tree_ends);
        for &end in &tree_ends {
            let end = end as usize;
            let root = self.tree_nodes[start];
            for i in start..end {
                self.parent[self.tree_nodes[i] as usize] = root;
            }
            self.size[root as usize] = (end - start) as u32;
            self.insert_size((end - start) as u32);
            self.count += 1;
            start = end;
        }
        self.tree_ends = tree_ends;
        self.metrics.partial_rebuilds += 1;
        self.metrics.partial_nodes_relabeled += self.tree_nodes.len() as u64;
    }

    /// Full relabeling of `graph` (the amortized high-churn path and
    /// the [`DynamicComponents::from_graph`] constructor).
    fn relabel(&mut self, graph: &AdjacencyList) {
        let n = graph.len();
        let epoch = self.next_epoch();
        self.size_counts.clear();
        self.count = 0;
        for start in 0..n {
            if self.visit_epoch[start] == epoch {
                continue;
            }
            self.visit_epoch[start] = epoch;
            self.stack.push(start as u32);
            let mut members = 0u32;
            while let Some(v) = self.stack.pop() {
                members += 1;
                self.parent[v as usize] = start as u32;
                for &w in graph.neighbors(v as usize) {
                    if self.visit_epoch[w as usize] != epoch {
                        self.visit_epoch[w as usize] = epoch;
                        self.stack.push(w);
                    }
                }
            }
            self.size[start] = members;
            self.insert_size(members);
            self.count += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::ComponentSummary;
    use manet_geom::Point;
    use rand::{RngExt, SeedableRng};

    fn pts1(xs: &[f64]) -> Vec<Point<1>> {
        xs.iter().map(|&x| Point::new([x])).collect()
    }

    /// Oracle check: count, largest, and the size multiset agree with
    /// the from-scratch summary.
    fn assert_matches_oracle(dc: &DynamicComponents, graph: &AdjacencyList) {
        let oracle = ComponentSummary::of(graph);
        assert_eq!(dc.count(), oracle.count(), "component count diverged");
        assert_eq!(dc.largest_size(), oracle.largest_size(), "largest diverged");
        let mut oracle_sizes = oracle.sizes().to_vec();
        oracle_sizes.sort_unstable();
        assert_eq!(dc.sizes_sorted(), oracle_sizes, "size multiset diverged");
        assert_eq!(dc.is_connected(), oracle.is_connected());
    }

    /// The strict-invariants checker must actually fire: a forest with
    /// corrupted size accounting panics on the next `apply`.
    #[cfg(feature = "strict-invariants")]
    #[test]
    #[should_panic(expected = "strict-invariants")]
    fn strict_invariants_detects_corrupted_accounting() {
        let mut dc = DynamicComponents::new(3);
        dc.size[0] = 2; // root 0's tally no longer matches its tree
        let diff = EdgeDiff {
            added: Vec::new(),
            removed: Vec::new(),
        };
        dc.apply(&diff, &AdjacencyList::empty(3));
    }

    #[test]
    fn new_matches_edgeless_oracle() {
        let dc = DynamicComponents::new(4);
        assert_matches_oracle(&dc, &AdjacencyList::empty(4));
        assert_eq!(dc.singleton_count(), 4);
        assert_eq!(dc.ordered_reachable_pairs(), 0);
    }

    #[test]
    fn empty_graph_is_connected_by_convention() {
        let dc = DynamicComponents::new(0);
        assert!(dc.is_connected());
        assert_eq!(dc.count(), 0);
        assert_eq!(dc.largest_size(), 0);
        assert!(dc.is_empty());
    }

    #[test]
    fn insertions_merge_components() {
        let pts = pts1(&[0.0, 1.0, 2.0, 9.0]);
        let g = AdjacencyList::from_points_brute_force(&pts, 1.2);
        let mut dc = DynamicComponents::new(4);
        dc.apply(&AdjacencyList::empty(4).diff(&g), &g);
        assert_matches_oracle(&dc, &g);
        assert_eq!(dc.count(), 2);
        assert_eq!(dc.largest_size(), 3);
        assert_eq!(dc.singleton_count(), 1);
        assert_eq!(dc.ordered_reachable_pairs(), 6);
        assert_eq!(dc.partial_rebuilds(), 0);
        assert!(dc.same_component(0, 2));
        assert!(!dc.same_component(0, 3));
    }

    #[test]
    fn deletion_splits_via_partial_rebuild() {
        // An 8-node path loses its middle edge: churn 1 stays below
        // the full-rebuild threshold (0.25 * 8 = 2), so the epoch
        // partial rebuild must handle the split.
        let xs: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let mut moved = xs.clone();
        for x in &mut moved[4..] {
            *x += 0.5; // widen only the 3-4 gap past the range
        }
        let old = AdjacencyList::from_points_brute_force(&pts1(&xs), 1.1);
        let new = AdjacencyList::from_points_brute_force(&pts1(&moved), 1.1);
        assert_eq!(old.diff(&new).churn(), 1);
        let mut dc = DynamicComponents::from_graph(&old);
        assert!(dc.is_connected());
        dc.apply(&old.diff(&new), &new);
        assert_matches_oracle(&dc, &new);
        assert_eq!(dc.count(), 2);
        assert_eq!(dc.sizes_sorted(), vec![4, 4]);
        assert_eq!(dc.partial_rebuilds(), 1);
        assert_eq!(dc.full_rebuilds(), 0);
    }

    #[test]
    fn simultaneous_deletion_and_insertion_fusing_unaffected_component() {
        // {0..5} loses edge 4-5 while node 5 walks over to the
        // untouched {6..11}: the partial-rebuild BFS enters the
        // unaffected component through the freshly added edge and must
        // absorb it whole (churn 2 < 0.25 * 12 keeps this off the
        // full-rebuild path).
        let old_xs: Vec<f64> = (0..6)
            .map(|i| i as f64)
            .chain((0..6).map(|i| 20.0 + i as f64))
            .collect();
        let mut new_xs = old_xs.clone();
        new_xs[5] = 19.0; // node 5: leaves 4's range, enters 6's
        let old = AdjacencyList::from_points_brute_force(&pts1(&old_xs), 1.1);
        let new = AdjacencyList::from_points_brute_force(&pts1(&new_xs), 1.1);
        let diff = old.diff(&new);
        assert_eq!((diff.removed.len(), diff.added.len()), (1, 1));
        let mut dc = DynamicComponents::from_graph(&old);
        dc.apply(&diff, &new);
        assert_matches_oracle(&dc, &new);
        assert_eq!(dc.sizes_sorted(), vec![5, 7]);
        assert_eq!(dc.partial_rebuilds(), 1);
        assert_eq!(dc.full_rebuilds(), 0);
    }

    #[test]
    fn high_churn_takes_the_full_rebuild_path() {
        // Scatter a 6-node path entirely: churn 5 (all edges removed)
        // >= 0.25 * 6 = 1.5, so apply must route to the full rebuild.
        let old =
            AdjacencyList::from_points_brute_force(&pts1(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]), 1.1);
        let new = AdjacencyList::from_points_brute_force(
            &pts1(&[0.0, 10.0, 20.0, 30.0, 40.0, 50.0]),
            1.1,
        );
        let mut dc = DynamicComponents::from_graph(&old);
        dc.apply(&old.diff(&new), &new);
        assert_matches_oracle(&dc, &new);
        assert_eq!(dc.full_rebuilds(), 1);
        assert_eq!(dc.partial_rebuilds(), 0);
    }

    #[test]
    #[should_panic(expected = "node count changed")]
    fn apply_rejects_mismatched_graph() {
        let mut dc = DynamicComponents::new(3);
        dc.apply(&EdgeDiff::default(), &AdjacencyList::empty(2));
    }

    #[test]
    fn random_teleport_replay_matches_oracle_every_step() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let side = 50.0;
        let r = 8.0;
        let n = 40;
        let mut pts: Vec<Point<2>> = (0..n)
            .map(|_| Point::new([rng.random_range(0.0..side), rng.random_range(0.0..side)]))
            .collect();
        let mut dg = crate::DynamicGraph::new(&pts, side, r);
        let mut dc = DynamicComponents::new(n);
        dc.apply(&dg.initial_diff(), dg.graph());
        assert_matches_oracle(&dc, dg.graph());
        for step in 0..60 {
            // Mix small jitters (deletion/partial path) with full
            // teleports every 10th step (high churn / rebuild path).
            for p in &mut pts {
                *p = if step % 10 == 9 {
                    Point::new([rng.random_range(0.0..side), rng.random_range(0.0..side)])
                } else {
                    let dx = rng.random_range(-2.0..2.0);
                    let dy = rng.random_range(-2.0..2.0);
                    Point::new([
                        (p.coords()[0] + dx).clamp(0.0, side),
                        (p.coords()[1] + dy).clamp(0.0, side),
                    ])
                };
            }
            let diff = dg.advance(&pts);
            dc.apply(&diff, dg.graph());
            assert_matches_oracle(&dc, dg.graph());
        }
        assert!(dc.partial_rebuilds() > 0, "deletion path never exercised");
        assert!(dc.full_rebuilds() > 0, "high-churn path never exercised");
    }

    #[test]
    fn metrics_count_merges_rebuilds_and_affected_regions() {
        // Same 8-node path split as `deletion_splits_via_partial_rebuild`:
        // the BFS from the removed edge's endpoints relabels all 8 nodes.
        let xs: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let mut moved = xs.clone();
        for x in &mut moved[4..] {
            *x += 0.5;
        }
        let old = AdjacencyList::from_points_brute_force(&pts1(&xs), 1.1);
        let new = AdjacencyList::from_points_brute_force(&pts1(&moved), 1.1);
        let mut dc = DynamicComponents::from_graph(&old);
        assert_eq!(
            *dc.metrics(),
            ComponentMetrics::default(),
            "constructors must not count"
        );
        dc.apply(&old.diff(&new), &new);
        let m = *dc.metrics();
        assert_eq!(m.applies, 1);
        assert_eq!(m.partial_rebuilds, 1);
        assert_eq!(m.partial_nodes_relabeled, 8);
        assert_eq!((m.full_rebuilds, m.full_nodes_relabeled), (0, 0));
        assert_eq!(m.dsu_merges, 0);

        // Rejoining the path is pure insertion: one merge, no rebuild.
        dc.apply(&new.diff(&old), &old);
        let m = *dc.metrics();
        assert_eq!(m.applies, 2);
        assert_eq!(m.dsu_merges, 1);
        assert_eq!(m.partial_rebuilds, 1);

        // A redundant edge (both endpoints already joined) is not a merge.
        let extra = EdgeDiff {
            added: vec![(0, 2)],
            removed: Vec::new(),
        };
        let mut with_extra = old.clone();
        with_extra.insert_edge_sorted(0, 2);
        dc.apply(&extra, &with_extra);
        assert_eq!(dc.metrics().dsu_merges, 1, "same-root union is not a merge");

        // High churn routes to the full relabel and counts every node.
        let scattered = AdjacencyList::from_points_brute_force(
            &pts1(&[0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0]),
            1.1,
        );
        dc.apply(&with_extra.diff(&scattered), &scattered);
        let m = *dc.metrics();
        assert_eq!(m.full_rebuilds, 1);
        assert_eq!(m.full_nodes_relabeled, 8);
    }

    #[test]
    fn epoch_wraparound_resets_stamps() {
        let old = AdjacencyList::from_points_brute_force(&pts1(&[0.0, 1.0, 2.0]), 1.1);
        let new = AdjacencyList::from_points_brute_force(&pts1(&[0.0, 1.0, 5.0]), 1.1);
        let mut dc = DynamicComponents::from_graph(&old);
        dc.epoch = u32::MAX - 1; // force a wrap on the next two applies
        dc.apply(&old.diff(&new), &new);
        assert_matches_oracle(&dc, &new);
        dc.apply(&new.diff(&old), &old);
        assert_matches_oracle(&dc, &old);
    }
}
