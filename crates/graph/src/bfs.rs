//! Breadth-first search: hop distances, eccentricity, diameter.
//!
//! Wireless ad hoc networks are *multi-hop*: a message travels through
//! intermediate nodes. Hop distances quantify relay depth — e.g. how
//! many car-to-car hops a congestion warning needs on the paper's
//! freeway scenario (`examples/freeway.rs`).

use crate::adjacency::AdjacencyList;
use std::collections::VecDeque;

/// Hop distance from `src` to every node; `None` for unreachable nodes.
///
/// # Panics
///
/// Panics if `src` is out of range.
///
/// # Example
///
/// ```
/// use manet_geom::Point;
/// use manet_graph::{bfs::hop_distances, AdjacencyList};
///
/// let pts = vec![Point::new([0.0]), Point::new([1.0]), Point::new([2.0])];
/// let g = AdjacencyList::from_points_brute_force(&pts, 1.0);
/// let d = hop_distances(&g, 0);
/// assert_eq!(d, vec![Some(0), Some(1), Some(2)]);
/// ```
pub fn hop_distances(graph: &AdjacencyList, src: usize) -> Vec<Option<u32>> {
    assert!(src < graph.len(), "source {src} out of range");
    let mut dist = vec![None; graph.len()];
    dist[src] = Some(0);
    let mut queue = VecDeque::new();
    queue.push_back(src as u32);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize].expect("enqueued nodes have distances"); // lint:allow(R3): BFS assigns a distance before enqueueing a node
        for &w in graph.neighbors(v as usize) {
            if dist[w as usize].is_none() {
                dist[w as usize] = Some(dv + 1);
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Eccentricity of `src`: the largest hop distance to any reachable
/// node (0 for a graph with a single node).
///
/// # Panics
///
/// Panics if `src` is out of range.
pub fn eccentricity(graph: &AdjacencyList, src: usize) -> u32 {
    hop_distances(graph, src)
        .into_iter()
        .flatten()
        .max()
        .unwrap_or(0)
}

/// Hop diameter of the graph: `None` when the graph is disconnected
/// (the diameter is then infinite), `Some(0)` for graphs with at most
/// one node.
pub fn hop_diameter(graph: &AdjacencyList) -> Option<u32> {
    let n = graph.len();
    if n <= 1 {
        return Some(0);
    }
    let mut diameter = 0;
    for v in 0..n {
        let d = hop_distances(graph, v);
        let mut local_max = 0;
        for dv in d {
            match dv {
                Some(x) => local_max = local_max.max(x),
                None => return None,
            }
        }
        diameter = diameter.max(local_max);
    }
    Some(diameter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_geom::Point;

    fn path(n: usize) -> AdjacencyList {
        let pts: Vec<Point<1>> = (0..n).map(|i| Point::new([i as f64])).collect();
        AdjacencyList::from_points_brute_force(&pts, 1.0)
    }

    #[test]
    fn distances_on_path() {
        let g = path(5);
        let d = hop_distances(&g, 0);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
        let d2 = hop_distances(&g, 2);
        assert_eq!(d2, vec![Some(2), Some(1), Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn unreachable_nodes_are_none() {
        let mut g = AdjacencyList::empty(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        let d = hop_distances(&g, 0);
        assert_eq!(d[2], None);
        assert_eq!(d[3], None);
    }

    #[test]
    fn eccentricity_on_path() {
        let g = path(5);
        assert_eq!(eccentricity(&g, 0), 4);
        assert_eq!(eccentricity(&g, 2), 2);
    }

    #[test]
    fn diameter_of_path_and_disconnected() {
        assert_eq!(hop_diameter(&path(6)), Some(5));
        let mut g = AdjacencyList::empty(3);
        g.add_edge(0, 1);
        assert_eq!(hop_diameter(&g), None);
    }

    #[test]
    fn diameter_edge_cases() {
        assert_eq!(hop_diameter(&AdjacencyList::empty(0)), Some(0));
        assert_eq!(hop_diameter(&AdjacencyList::empty(1)), Some(0));
    }

    #[test]
    fn star_has_diameter_two() {
        let mut g = AdjacencyList::empty(5);
        for leaf in 1..5 {
            g.add_edge(0, leaf);
        }
        assert_eq!(hop_diameter(&g), Some(2));
        assert_eq!(eccentricity(&g, 0), 1);
    }
}
