//! Disjoint-set union (union-find) with component-size tracking.

/// Union-find over `0..n` with union by size, path halving, and
/// maintenance of the component count and the largest component size.
///
/// The largest-component tracking is what lets the simulation engine
/// read "average size of the largest connected component" (paper
/// Figures 4–6) directly off the merge process without recomputing
/// components.
///
/// # Example
///
/// ```
/// use manet_graph::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// assert_eq!(uf.component_count(), 4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert_eq!(uf.component_count(), 2);
/// assert_eq!(uf.largest_component(), 2);
/// uf.union(1, 2);
/// assert!(uf.is_single_component());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
    largest: u32,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        assert!(
            n <= u32::MAX as usize,
            "UnionFind supports up to 2^32 - 1 elements"
        );
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
            largest: if n == 0 { 0 } else { 1 },
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure has no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of the set containing `x` (path halving).
    ///
    /// # Panics
    ///
    /// Panics if `x >= len()`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        loop {
            let p = self.parent[x as usize];
            if p == x {
                return x as usize;
            }
            let gp = self.parent[p as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
    }

    /// Merges the sets containing `a` and `b`.
    ///
    /// Returns `true` when a merge happened (the sets were distinct).
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let mut ra = self.find(a);
        let mut rb = self.find(b);
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            core::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        self.components -= 1;
        if self.size[ra] > self.largest {
            self.largest = self.size[ra];
        }
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn component_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }

    /// Current number of disjoint sets.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Size of the largest set.
    pub fn largest_component(&self) -> usize {
        self.largest as usize
    }

    /// Whether all elements are in one set (`true` for `n <= 1`).
    pub fn is_single_component(&self) -> bool {
        self.components <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_structure_is_all_singletons() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.len(), 5);
        assert_eq!(uf.component_count(), 5);
        assert_eq!(uf.largest_component(), 1);
        for i in 0..5 {
            assert_eq!(uf.find(i), i);
            assert_eq!(uf.component_size(i), 1);
        }
    }

    #[test]
    fn union_merges_and_reports() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0), "repeated union must report no-op");
        assert_eq!(uf.component_count(), 3);
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 2));
    }

    #[test]
    fn sizes_accumulate() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 1);
        uf.union(2, 3);
        uf.union(0, 2);
        assert_eq!(uf.component_size(3), 4);
        assert_eq!(uf.largest_component(), 4);
        assert_eq!(uf.component_count(), 3); // {0,1,2,3}, {4}, {5}
    }

    #[test]
    fn single_component_detection() {
        let mut uf = UnionFind::new(3);
        assert!(!uf.is_single_component());
        uf.union(0, 1);
        uf.union(1, 2);
        assert!(uf.is_single_component());
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert!(uf.is_single_component());
        assert_eq!(uf.largest_component(), 0);

        let uf1 = UnionFind::new(1);
        assert!(uf1.is_single_component());
        assert_eq!(uf1.largest_component(), 1);
    }

    #[test]
    fn long_chain_compresses() {
        let n = 10_000;
        let mut uf = UnionFind::new(n);
        for i in 0..n - 1 {
            uf.union(i, i + 1);
        }
        assert!(uf.is_single_component());
        assert_eq!(uf.largest_component(), n);
        // After find, paths should be short; just exercise it.
        for i in 0..n {
            assert_eq!(uf.find(i), uf.find(0));
        }
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let mut uf = UnionFind::new(2);
        uf.find(5);
    }
}
