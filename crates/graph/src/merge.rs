//! The Kruskal merge profile: largest component size as a function of
//! the transmitting range.
//!
//! For fixed node positions, raising the range `r` only adds edges, so
//! the size of the largest connected component is a nondecreasing step
//! function of `r`. [`MergeProfile`] materializes that step function by
//! running Kruskal's algorithm over all pairwise distances and
//! recording every range at which the maximum component size grows.
//!
//! This is the device behind the paper's Figures 4–6: the average size
//! of the largest component at an arbitrary range — and the ranges
//! `rl90`, `rl75`, `rl50` at which it crosses `0.9n`, `0.75n`, `0.5n`
//! — can be evaluated *exactly* from one profile per simulation step,
//! instead of re-simulating for every candidate range.

use crate::dsu::UnionFind;
use manet_geom::Point;

/// Step function `r -> size of largest connected component`.
///
/// # Example
///
/// ```
/// use manet_geom::Point;
/// use manet_graph::MergeProfile;
///
/// // Nodes at 0, 1, 3: pairs at distance 1, 2, 3.
/// let pts = vec![Point::new([0.0]), Point::new([1.0]), Point::new([3.0])];
/// let prof = MergeProfile::of(&pts);
/// assert_eq!(prof.largest_component_at(0.5), 1);
/// assert_eq!(prof.largest_component_at(1.0), 2);
/// assert_eq!(prof.largest_component_at(2.0), 3);
/// assert_eq!(prof.critical_range(), Some(2.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MergeProfile {
    n: usize,
    /// `(range, size)` events, strictly increasing in both coordinates:
    /// at ranges `>= range`, the largest component has at least `size`
    /// nodes.
    events: Vec<(f64, u32)>,
}

impl MergeProfile {
    /// Builds the profile of `points` by sorting all `O(n²)` pairwise
    /// distances and merging with union-find.
    pub fn of<const D: usize>(points: &[Point<D>]) -> Self {
        let n = points.len();
        let mut dists = Vec::with_capacity(n.saturating_mul(n.saturating_sub(1)) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                dists.push((points[i].distance_sq(&points[j]), i as u32, j as u32));
            }
        }
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("distances are finite")); // lint:allow(R3): distances of finite points are finite, so the comparator is total

        let mut uf = UnionFind::new(n);
        let mut events = Vec::new();
        let mut current_max = if n == 0 { 0 } else { 1u32 };
        for (d2, i, j) in dists {
            uf.union(i as usize, j as usize);
            let m = uf.largest_component() as u32;
            if m > current_max {
                current_max = m;
                events.push((d2.sqrt(), m));
                if m as usize == n {
                    break;
                }
            }
        }
        MergeProfile { n, events }
    }

    /// Number of nodes the profile describes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The recorded `(range, size)` growth events.
    pub fn events(&self) -> &[(f64, u32)] {
        &self.events
    }

    /// Size of the largest connected component at range `r`.
    ///
    /// For `n = 0` this is 0; for any `n >= 1` and `r` below the first
    /// merge it is 1.
    pub fn largest_component_at(&self, r: f64) -> usize {
        let mut size = if self.n == 0 { 0u32 } else { 1 };
        for &(range, s) in &self.events {
            if range <= r {
                size = s;
            } else {
                break;
            }
        }
        size as usize
    }

    /// The smallest range at which the largest component reaches
    /// `target` nodes, or `None` when `target > n`.
    ///
    /// `target <= 1` yields `Some(0.0)`: a single node needs no range.
    pub fn range_for_size(&self, target: usize) -> Option<f64> {
        if target > self.n {
            return None;
        }
        if target <= 1 {
            return Some(0.0);
        }
        for &(range, s) in &self.events {
            if s as usize >= target {
                return Some(range);
            }
        }
        // target <= n and every merge was recorded, so the last event
        // reaches n >= target; unreachable unless n <= 1 handled above.
        None
    }

    /// The critical transmitting range (range at which all `n` nodes
    /// join one component), or `None` for `n == 0`. Equals
    /// `Some(0.0)` for `n == 1`.
    pub fn critical_range(&self) -> Option<f64> {
        match self.n {
            0 => None,
            1 => Some(0.0),
            n => self.range_for_size(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::AdjacencyList;
    use crate::components::largest_component_size;
    use crate::mst::critical_range;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<Point<1>> = vec![];
        let p0 = MergeProfile::of(&empty);
        assert_eq!(p0.largest_component_at(10.0), 0);
        assert_eq!(p0.critical_range(), None);
        assert_eq!(p0.range_for_size(1), None);

        let one = vec![Point::new([2.0])];
        let p1 = MergeProfile::of(&one);
        assert_eq!(p1.largest_component_at(0.0), 1);
        assert_eq!(p1.critical_range(), Some(0.0));
        assert_eq!(p1.range_for_size(1), Some(0.0));
    }

    #[test]
    fn events_are_monotone() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let pts: Vec<Point<2>> = (0..50)
            .map(|_| Point::new([rng.random_range(0.0..20.0), rng.random_range(0.0..20.0)]))
            .collect();
        let prof = MergeProfile::of(&pts);
        for w in prof.events().windows(2) {
            assert!(w[0].0 <= w[1].0, "ranges must be nondecreasing");
            assert!(w[0].1 < w[1].1, "sizes must strictly increase");
        }
        assert_eq!(prof.events().last().unwrap().1 as usize, pts.len());
    }

    #[test]
    fn profile_matches_direct_component_computation() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let pts: Vec<Point<2>> = (0..40)
            .map(|_| Point::new([rng.random_range(0.0..15.0), rng.random_range(0.0..15.0)]))
            .collect();
        let prof = MergeProfile::of(&pts);
        for r in [0.5, 1.0, 2.0, 3.5, 5.0, 8.0, 20.0] {
            let g = AdjacencyList::from_points_brute_force(&pts, r);
            assert_eq!(
                prof.largest_component_at(r),
                largest_component_size(&g),
                "mismatch at r = {r}"
            );
        }
    }

    #[test]
    fn critical_range_matches_mst_bottleneck() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(29);
        for _ in 0..5 {
            let pts: Vec<Point<2>> = (0..35)
                .map(|_| Point::new([rng.random_range(0.0..25.0), rng.random_range(0.0..25.0)]))
                .collect();
            let from_profile = MergeProfile::of(&pts).critical_range().unwrap();
            let from_mst = critical_range(&pts);
            assert!((from_profile - from_mst).abs() < 1e-9);
        }
    }

    #[test]
    fn range_for_size_is_inverse_of_largest_at() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        let pts: Vec<Point<2>> = (0..30)
            .map(|_| Point::new([rng.random_range(0.0..12.0), rng.random_range(0.0..12.0)]))
            .collect();
        let prof = MergeProfile::of(&pts);
        for target in 2..=pts.len() {
            let r = prof.range_for_size(target).unwrap();
            assert!(prof.largest_component_at(r) >= target);
            assert!(prof.largest_component_at(r * (1.0 - 1e-9)) < target);
        }
        assert_eq!(prof.range_for_size(pts.len() + 1), None);
    }

    #[test]
    fn duplicates_merge_at_zero() {
        let pts = vec![Point::new([1.0]); 3];
        let prof = MergeProfile::of(&pts);
        assert_eq!(prof.largest_component_at(0.0), 3);
        assert_eq!(prof.critical_range(), Some(0.0));
    }
}
