//! Vertex connectivity (Menger) via unit-capacity max-flow.
//!
//! The paper evaluates simple (1-)connectivity. As a dependability
//! extension, this module computes the **vertex connectivity** `κ(G)`:
//! the minimum number of node failures that can disconnect the network.
//! `κ >= 2` means no single sensor failure partitions the network — a
//! natural hardening target for the safety-critical scenario the paper
//! motivates with `r100`.
//!
//! The implementation is the classical reduction to max-flow with node
//! splitting: each vertex `v` becomes `v_in -> v_out` with capacity 1,
//! each undirected edge becomes two directed unit edges, and the
//! number of vertex-disjoint `s`–`t` paths equals the max flow.
//! Designed for the modest `n` of ad hoc simulations (hundreds), not
//! for massive graphs.

use crate::adjacency::AdjacencyList;

/// Maximum number of internally vertex-disjoint paths between two
/// distinct, **non-adjacent** vertices, computed by augmenting BFS
/// paths one unit at a time (Edmonds–Karp on the split graph).
///
/// When `stop_at` is `Some(k)`, the search stops early once `k` paths
/// are found — sufficient for threshold queries like
/// [`is_k_connected`].
///
/// # Panics
///
/// Panics if `s == t`, if either index is out of range, or if `s` and
/// `t` are adjacent (Menger's theorem for vertex cuts is stated for
/// non-adjacent pairs; the direct edge admits no vertex cut).
pub fn disjoint_paths(graph: &AdjacencyList, s: usize, t: usize, stop_at: Option<usize>) -> usize {
    assert!(s < graph.len() && t < graph.len(), "endpoint out of range");
    assert_ne!(s, t, "endpoints must differ");
    assert!(
        !graph.neighbors(s).contains(&(t as u32)),
        "disjoint_paths requires non-adjacent endpoints"
    );

    let n = graph.len();
    // Split graph: node v -> in(v) = 2v, out(v) = 2v + 1.
    let mut flow = FlowNetwork::new(2 * n);
    for v in 0..n {
        // Internal capacity 1, unbounded for the terminals.
        let cap = if v == s || v == t { u32::MAX } else { 1 };
        flow.add_edge(2 * v, 2 * v + 1, cap);
    }
    for (a, b) in graph.edges() {
        flow.add_edge(2 * a + 1, 2 * b, 1);
        flow.add_edge(2 * b + 1, 2 * a, 1);
    }

    let source = 2 * s + 1; // out(s)
    let sink = 2 * t; // in(t)
    let limit = stop_at.unwrap_or(usize::MAX);
    let mut total = 0;
    while total < limit && flow.augment(source, sink) {
        total += 1;
    }
    total
}

/// The vertex connectivity `κ(G)`.
///
/// * Empty or single-node graphs and disconnected graphs have `κ = 0`.
/// * The complete graph on `n` nodes has `κ = n - 1` by convention.
/// * Otherwise `κ = min` over non-adjacent pairs of their disjoint-path
///   count (Menger), evaluated with early termination at the running
///   minimum.
///
/// # Example
///
/// ```
/// use manet_graph::{kconn::vertex_connectivity, AdjacencyList};
///
/// // A 4-cycle: removing any one node leaves a path, κ = 2.
/// let mut g = AdjacencyList::empty(4);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// g.add_edge(2, 3);
/// g.add_edge(3, 0);
/// assert_eq!(vertex_connectivity(&g), 2);
/// ```
pub fn vertex_connectivity(graph: &AdjacencyList) -> usize {
    let n = graph.len();
    if n <= 1 {
        return 0;
    }
    if !crate::components::is_connected(graph) {
        return 0;
    }
    // Complete graph: no non-adjacent pair exists.
    if graph.edge_count() == n * (n - 1) / 2 {
        return n - 1;
    }
    let mut best = n - 1;
    for s in 0..n {
        // κ <= min degree, a cheap upper bound that tightens early exits.
        best = best.min(graph.degree(s));
    }
    for s in 0..n {
        for t in (s + 1)..n {
            if graph.neighbors(s).contains(&(t as u32)) {
                continue;
            }
            let paths = disjoint_paths(graph, s, t, Some(best));
            best = best.min(paths);
            if best == 0 {
                return 0;
            }
        }
    }
    best
}

/// Whether `κ(G) >= k`. `k = 0` is always true; `k = 1` is
/// connectivity.
pub fn is_k_connected(graph: &AdjacencyList, k: usize) -> bool {
    if k == 0 {
        return true;
    }
    if k == 1 {
        return crate::components::is_connected(graph);
    }
    let n = graph.len();
    if n <= k {
        // Fewer than k+1 nodes cannot be k-connected (complete graph
        // K_n has κ = n - 1 < k).
        return false;
    }
    if graph.edge_count() == n * (n - 1) / 2 {
        return true; // complete, κ = n - 1 >= k since n > k
    }
    if graph.min_degree().unwrap_or(0) < k {
        return false;
    }
    for s in 0..n {
        for t in (s + 1)..n {
            if graph.neighbors(s).contains(&(t as u32)) {
                continue;
            }
            if disjoint_paths(graph, s, t, Some(k)) < k {
                return false;
            }
        }
    }
    true
}

/// Minimal adjacency-list max-flow network with unit-ish capacities.
struct FlowNetwork {
    /// For each node, outgoing arcs as (to, capacity, reverse index).
    arcs: Vec<Vec<(u32, u32, u32)>>,
}

impl FlowNetwork {
    fn new(n: usize) -> Self {
        FlowNetwork {
            arcs: vec![Vec::new(); n],
        }
    }

    fn add_edge(&mut self, from: usize, to: usize, cap: u32) {
        let rev_from = self.arcs[to].len() as u32;
        let rev_to = self.arcs[from].len() as u32;
        self.arcs[from].push((to as u32, cap, rev_from));
        self.arcs[to].push((from as u32, 0, rev_to));
    }

    /// Finds one augmenting path by BFS and pushes one unit of flow.
    fn augment(&mut self, source: usize, sink: usize) -> bool {
        let n = self.arcs.len();
        // parent[v] = (prev_node, arc_index)
        let mut parent: Vec<Option<(u32, u32)>> = vec![None; n];
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(source as u32);
        parent[source] = Some((source as u32, u32::MAX));
        while let Some(v) = queue.pop_front() {
            if v as usize == sink {
                break;
            }
            for (idx, &(to, cap, _)) in self.arcs[v as usize].iter().enumerate() {
                if cap > 0 && parent[to as usize].is_none() {
                    parent[to as usize] = Some((v, idx as u32));
                    queue.push_back(to);
                }
            }
        }
        if parent[sink].is_none() {
            return false;
        }
        // Trace back and push one unit.
        let mut v = sink;
        while v != source {
            let (prev, arc) = parent[v].expect("path traced from sink"); // lint:allow(R3): parent pointers were set along the augmenting path before tracing
            let (_, cap, rev) = &mut self.arcs[prev as usize][arc as usize];
            *cap -= 1;
            let rev = *rev;
            self.arcs[v][rev as usize].1 += 1;
            v = prev as usize;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_geom::Point;

    fn cycle(n: usize) -> AdjacencyList {
        let mut g = AdjacencyList::empty(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
        }
        g
    }

    fn complete(n: usize) -> AdjacencyList {
        let mut g = AdjacencyList::empty(n);
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_edge(i, j);
            }
        }
        g
    }

    #[test]
    fn path_graph_has_connectivity_one() {
        let pts: Vec<Point<1>> = (0..5).map(|i| Point::new([i as f64])).collect();
        let g = AdjacencyList::from_points_brute_force(&pts, 1.0);
        assert_eq!(vertex_connectivity(&g), 1);
        assert!(is_k_connected(&g, 1));
        assert!(!is_k_connected(&g, 2));
    }

    #[test]
    fn cycle_is_two_connected() {
        let g = cycle(6);
        assert_eq!(vertex_connectivity(&g), 2);
        assert!(is_k_connected(&g, 2));
        assert!(!is_k_connected(&g, 3));
    }

    #[test]
    fn complete_graph_connectivity() {
        for n in 2..6 {
            let g = complete(n);
            assert_eq!(vertex_connectivity(&g), n - 1, "K_{n}");
            assert!(is_k_connected(&g, n - 1));
            assert!(!is_k_connected(&g, n));
        }
    }

    #[test]
    fn disconnected_graph_has_zero_connectivity() {
        let mut g = AdjacencyList::empty(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        assert_eq!(vertex_connectivity(&g), 0);
        assert!(!is_k_connected(&g, 1));
        assert!(is_k_connected(&g, 0));
    }

    #[test]
    fn cut_vertex_detected() {
        // Two triangles sharing vertex 2: removing 2 disconnects.
        let mut g = AdjacencyList::empty(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        g.add_edge(2, 3);
        g.add_edge(3, 4);
        g.add_edge(4, 2);
        assert_eq!(vertex_connectivity(&g), 1);
    }

    #[test]
    fn complete_bipartite_k23() {
        // K_{2,3}: κ = 2.
        let mut g = AdjacencyList::empty(5);
        for a in 0..2 {
            for b in 2..5 {
                g.add_edge(a, b);
            }
        }
        assert_eq!(vertex_connectivity(&g), 2);
    }

    #[test]
    fn disjoint_paths_on_known_graph() {
        // Two disjoint 0->3 paths through 1 and 2.
        let mut g = AdjacencyList::empty(4);
        g.add_edge(0, 1);
        g.add_edge(1, 3);
        g.add_edge(0, 2);
        g.add_edge(2, 3);
        assert_eq!(disjoint_paths(&g, 0, 3, None), 2);
        assert_eq!(disjoint_paths(&g, 0, 3, Some(1)), 1);
    }

    #[test]
    #[should_panic(expected = "non-adjacent")]
    fn disjoint_paths_rejects_adjacent() {
        let g = complete(3);
        disjoint_paths(&g, 0, 1, None);
    }

    #[test]
    fn small_graphs() {
        assert_eq!(vertex_connectivity(&AdjacencyList::empty(0)), 0);
        assert_eq!(vertex_connectivity(&AdjacencyList::empty(1)), 0);
        assert!(is_k_connected(&AdjacencyList::empty(1), 0));
        assert!(!is_k_connected(&AdjacencyList::empty(2), 1));
    }
}
