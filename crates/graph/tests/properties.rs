//! Property-based tests for the graph algorithms, centered on the
//! invariant the whole reproduction rests on: the MST bottleneck is the
//! exact connectivity threshold of the point graph.

use manet_geom::Point;
use manet_graph::{
    components, critical_range, kconn, minimum_spanning_tree, AdjacencyList, DynamicGraph,
    MergeProfile, UnionFind,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn points_strategy(max_n: usize) -> impl Strategy<Value = Vec<Point<2>>> {
    prop::collection::vec((0.0..100.0f64, 0.0..100.0f64), 2..max_n)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point::new([x, y])).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn critical_range_is_the_exact_threshold(pts in points_strategy(40)) {
        let ctr = critical_range(&pts);
        let at = AdjacencyList::from_points_brute_force(&pts, ctr * (1.0 + 1e-12));
        prop_assert!(components::is_connected(&at));
        if ctr > 0.0 {
            let below = AdjacencyList::from_points_brute_force(&pts, ctr * (1.0 - 1e-9));
            prop_assert!(!components::is_connected(&below));
        }
    }

    #[test]
    fn mst_has_n_minus_1_edges_and_spans(pts in points_strategy(40)) {
        let mst = minimum_spanning_tree(&pts);
        prop_assert_eq!(mst.len(), pts.len() - 1);
        let mut uf = UnionFind::new(pts.len());
        for e in &mst {
            prop_assert!(uf.union(e.a as usize, e.b as usize), "MST contains a cycle");
        }
        prop_assert!(uf.is_single_component());
    }

    #[test]
    fn mst_is_minimum_against_kruskal(pts in points_strategy(30)) {
        let prim_total: f64 = minimum_spanning_tree(&pts).iter().map(|e| e.length).sum();
        // Independent Kruskal oracle.
        let n = pts.len();
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                edges.push((pts[i].distance(&pts[j]), i, j));
            }
        }
        edges.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut uf = UnionFind::new(n);
        let mut kruskal_total = 0.0;
        for (d, i, j) in edges {
            if uf.union(i, j) {
                kruskal_total += d;
            }
        }
        prop_assert!((prim_total - kruskal_total).abs() < 1e-7);
    }

    #[test]
    fn merge_profile_matches_components_at_any_range(
        pts in points_strategy(30),
        r in 0.0..150.0f64,
    ) {
        let profile = MergeProfile::of(&pts);
        let g = AdjacencyList::from_points_brute_force(&pts, r);
        prop_assert_eq!(
            profile.largest_component_at(r),
            components::largest_component_size(&g)
        );
    }

    #[test]
    fn component_sizes_partition_nodes(pts in points_strategy(40), r in 0.0..100.0f64) {
        let g = AdjacencyList::from_points_brute_force(&pts, r);
        let summary = components::ComponentSummary::of(&g);
        let total: u32 = summary.sizes().iter().sum();
        prop_assert_eq!(total as usize, pts.len());
        prop_assert!(summary.largest_size() <= pts.len());
        prop_assert_eq!(summary.is_connected(), components::is_connected(&g));
    }

    #[test]
    fn grid_and_brute_force_graphs_identical(pts in points_strategy(50), r in 0.5..30.0f64) {
        let brute = AdjacencyList::from_points_brute_force(&pts, r);
        let grid = AdjacencyList::from_points_grid(&pts, 100.0, r).unwrap();
        prop_assert_eq!(brute, grid);
    }

    #[test]
    fn vertex_connectivity_bounded_by_min_degree(pts in points_strategy(14), r in 10.0..80.0f64) {
        let g = AdjacencyList::from_points_brute_force(&pts, r);
        let kappa = kconn::vertex_connectivity(&g);
        prop_assert!(kappa <= g.min_degree().unwrap_or(0));
        // k-connectivity predicate consistent with kappa.
        prop_assert!(kconn::is_k_connected(&g, kappa));
        prop_assert!(!kconn::is_k_connected(&g, kappa + 1));
    }

    #[test]
    fn union_find_agrees_with_component_labels(pts in points_strategy(30), r in 0.0..100.0f64) {
        let g = AdjacencyList::from_points_brute_force(&pts, r);
        let mut uf = UnionFind::new(pts.len());
        for (a, b) in g.edges() {
            uf.union(a, b);
        }
        let summary = components::ComponentSummary::of(&g);
        prop_assert_eq!(uf.component_count(), summary.count());
        prop_assert_eq!(uf.largest_component(), summary.largest_size());
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                prop_assert_eq!(
                    uf.connected(i, j),
                    summary.label(i) == summary.label(j)
                );
            }
        }
    }

    #[test]
    fn dynamic_graph_delta_replay_matches_brute_force(
        n in 2usize..24,
        flat in prop::collection::vec((0.0..100.0f64, 0.0..100.0f64), 24..360),
        r in 0.5..40.0f64,
    ) {
        // Chunk one flat coordinate stream into a trajectory of
        // `flat.len() / n` steps of `n` nodes each (teleporting motion —
        // the worst case for a delta stream: arbitrarily large churn).
        let steps: Vec<Vec<Point<2>>> = flat
            .chunks_exact(n)
            .map(|c| c.iter().map(|&(x, y)| Point::new([x, y])).collect())
            .collect();
        prop_assume!(!steps.is_empty());

        let mut dg = DynamicGraph::new(&steps[0], 100.0, r);
        // Replay the delta stream into a bare edge set on the side.
        let mut replayed: BTreeSet<(u32, u32)> = BTreeSet::new();
        let init = dg.initial_diff();
        prop_assert!(init.removed.is_empty());
        for e in init.added {
            prop_assert!(replayed.insert(e), "initial diff repeated an edge");
        }
        for pts in &steps {
            // (First iteration: empty diff against itself is exercised
            // implicitly since advance(step 0 positions) is a no-op.)
            let diff = dg.advance(pts);
            for e in diff.removed {
                prop_assert!(replayed.remove(&e), "removed edge that was not live");
            }
            for e in diff.added {
                prop_assert!(replayed.insert(e), "added edge that was already live");
            }
            let brute = AdjacencyList::from_points_brute_force(pts, r);
            prop_assert_eq!(dg.graph(), &brute, "snapshot diverged from rebuild");
            let brute_edges: BTreeSet<(u32, u32)> = brute
                .edges()
                .map(|(a, b)| (a as u32, b as u32))
                .collect();
            prop_assert_eq!(&replayed, &brute_edges, "replayed deltas diverged");
        }
    }

    #[test]
    fn edge_count_matches_inclusive_range_semantics(pts in points_strategy(25), r in 0.0..100.0f64) {
        let g = AdjacencyList::from_points_brute_force(&pts, r);
        let manual = {
            let mut c = 0;
            for i in 0..pts.len() {
                for j in (i + 1)..pts.len() {
                    if pts[i].distance_sq(&pts[j]) <= r * r {
                        c += 1;
                    }
                }
            }
            c
        };
        prop_assert_eq!(g.edge_count(), manual);
    }
}

// ---------------------------------------------------------------------------
// DynamicComponents replay: bit-identical to the ComponentSummary oracle
// at every step, over every mobility model.
// ---------------------------------------------------------------------------

use manet_geom::Region;
use manet_graph::{ComponentSummary, DynamicComponents};
use manet_mobility::{
    Drunkard, Mobility, RandomDirection, RandomWalk, RandomWaypoint, StationaryModel,
};
use rand::SeedableRng;

/// The workspace's mobility models as boxed trait objects, so the
/// proptest can range over all of them uniformly.
fn model_for(kind: u8, side: f64) -> Box<dyn Mobility<2>> {
    match kind % 5 {
        0 => Box::new(StationaryModel::new()),
        1 => Box::new(RandomWaypoint::new(0.5, 0.05 * side, 2, 0.1).expect("valid waypoint")),
        2 => Box::new(Drunkard::new(0.1, 0.3, 0.05 * side).expect("valid drunkard")),
        3 => Box::new(RandomWalk::new(0.03 * side, 0.1).expect("valid walk")),
        _ => Box::new(RandomDirection::new(0.5, 0.05 * side, 2, 0.1).expect("valid direction")),
    }
}

/// Drives one trajectory through `DynamicGraph` + `DynamicComponents`,
/// asserting oracle equality at every step; returns the rebuild-path
/// counters so callers can assert coverage of the deletion paths.
fn replay_against_oracle(
    kind: u8,
    n: usize,
    side: f64,
    range: f64,
    steps: usize,
    seed: u64,
) -> Result<(u64, u64), TestCaseError> {
    let region: Region<2> = Region::new(side).expect("positive side");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut positions = region.place_uniform(n, &mut rng);
    let mut model = model_for(kind, side);
    model.init(&positions, &region, &mut rng);

    let mut dg = DynamicGraph::new(&positions, side, range);
    let mut dc = DynamicComponents::new(n);
    dc.apply(&dg.initial_diff(), dg.graph());
    for step in 0..steps {
        if step > 0 {
            model.step(&mut positions, &region, &mut rng);
            let diff = dg.advance(&positions);
            dc.apply(&diff, dg.graph());
        }
        let oracle = ComponentSummary::of(dg.graph());
        prop_assert_eq!(
            dc.count(),
            oracle.count(),
            "count diverged at step {}",
            step
        );
        prop_assert_eq!(
            dc.largest_size(),
            oracle.largest_size(),
            "largest diverged at step {}",
            step
        );
        let mut sizes = oracle.sizes().to_vec();
        sizes.sort_unstable();
        prop_assert_eq!(
            dc.sizes_sorted(),
            sizes,
            "size multiset diverged at step {}",
            step
        );
        prop_assert_eq!(dc.is_connected(), oracle.is_connected());
    }
    Ok((dc.partial_rebuilds(), dc.full_rebuilds()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dynamic_components_replay_matches_oracle(
        kind in 0u8..5,
        n in 2usize..48,
        range_frac in 0.02..0.4f64,
        steps in 1usize..40,
        seed in 0u64..1_000_000,
    ) {
        let side = 100.0;
        replay_against_oracle(kind, n, side, range_frac * side, steps, seed)?;
    }
}

#[test]
fn replay_exercises_partial_and_full_rebuild_paths_for_every_mobile_model() {
    // Deterministic coverage check: over fast, long trajectories every
    // mobile model must hit the deletion (epoch partial-rebuild) path,
    // and the teleport-heavy drunkard must also hit the amortized full
    // rebuild. (The stationary model, kind 0, never churns.)
    let mut partial_total = 0;
    let mut full_total = 0;
    for kind in 1u8..5 {
        let (partial, full) =
            replay_against_oracle(kind, 32, 100.0, 18.0, 120, 7 + kind as u64).unwrap();
        assert!(
            partial > 0 || full > 0,
            "model kind {kind} never exercised a deletion path"
        );
        partial_total += partial;
        full_total += full;
    }
    assert!(partial_total > 0, "no model took the epoch partial rebuild");
    assert!(full_total > 0, "no model took the amortized full rebuild");
}

// ---------------------------------------------------------------------------
// The zero-rebuild step kernel: bit-identical EdgeDiff streams and
// snapshots against the from_points + diff oracle, for every mobility
// model in the registry (including wrap/bounce variants and the
// unbounded-displacement Gauss-Markov family).
// ---------------------------------------------------------------------------

use manet_graph::{EdgeDiff, Skin};
use manet_mobility::{ModelRegistry, PaperScale};

/// The skin settings the kernel suite pins everywhere: the cache
/// disabled (legacy paths byte-for-byte), the auto-tuned default, and a
/// deliberately oversized fixed skin (cheap rebuild cadence, expensive
/// verify sets — the worst case for arena coverage).
const SKIN_SWEEP: [Skin; 3] = [Skin::Off, Skin::Auto, Skin::Fixed(25.0)];

/// Replays `steps` of the named registry model through the incremental
/// kernel, asserting at every step that the held diff and the
/// maintained snapshot are bit-identical to rebuilding via
/// `AdjacencyList::from_points` and diffing the two full snapshots.
/// Alongside the structural oracle, the kernel's deterministic
/// counters (`dg.metrics()`) are cross-checked against brute-force
/// recomputation: edge-event totals against summed oracle diff sizes,
/// the moved-node total against a bitwise position comparison, and the
/// step count against the path partition (including the Verlet cache
/// buckets). Returns the kernel's final counter block.
fn replay_kernel_against_oracle(
    model_name: &str,
    n: usize,
    side: f64,
    range: f64,
    steps: usize,
    seed: u64,
    (step_threads, skin): (usize, Skin),
) -> Result<manet_obs::StepKernelMetrics, TestCaseError> {
    let registry = ModelRegistry::<2>::with_builtins();
    let scale = PaperScale::new(side).with_pause(3);
    let mut model = registry.build(model_name, &scale).expect("registry model");

    let region: Region<2> = Region::new(side).expect("positive side");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut positions = region.place_uniform(n, &mut rng);
    model.init(&positions, &region, &mut rng);

    let mut dg = DynamicGraph::new(&positions, side, range)
        .with_displacement_bound(model.max_step_displacement())
        .with_step_threads(step_threads)
        .with_skin(skin);
    let mut oracle = AdjacencyList::from_points(&positions, side, range);
    prop_assert_eq!(dg.graph(), &oracle, "{}: initial snapshot", model_name);

    let mut expected = EdgeDiff::default();
    let mut brute_added = 0u64;
    let mut brute_removed = 0u64;
    let mut brute_moved = 0u64;
    let mut previous = positions.clone();
    for step in 0..steps {
        model.step(&mut positions, &region, &mut rng);
        brute_moved += positions
            .iter()
            .zip(&previous)
            .filter(|(a, b)| a != b)
            .count() as u64;
        previous.copy_from_slice(&positions);
        dg.step(&positions);
        let next = AdjacencyList::from_points(&positions, side, range);
        oracle.diff_into(&next, &mut expected);
        brute_added += expected.added.len() as u64;
        brute_removed += expected.removed.len() as u64;
        prop_assert_eq!(
            dg.last_diff(),
            &expected,
            "{}: diff diverged at step {}",
            model_name,
            step
        );
        prop_assert_eq!(
            dg.graph(),
            &next,
            "{}: snapshot diverged at step {}",
            model_name,
            step
        );
        oracle = next;
    }

    let m = *dg.metrics();
    prop_assert_eq!(m.steps, steps as u64, "{}: step counter", model_name);
    prop_assert_eq!(
        m.incremental_steps + m.bulk_rescan_steps + m.cache_verify_steps + m.fallback_steps,
        m.steps,
        "{}: every step commits through exactly one path",
        model_name
    );
    prop_assert!(
        m.cache_rebuilds <= m.bulk_rescan_steps,
        "{}: cache rebuilds must be a subset of the bulk bucket",
        model_name
    );
    if skin == Skin::Off {
        // Disabled cache degenerates to the legacy kernel: every cache
        // counter stays zero and no step takes the verify path.
        prop_assert_eq!(m.cache_verify_steps, 0, "{}: skin off", model_name);
        prop_assert_eq!(m.cache_rebuilds, 0, "{}: skin off", model_name);
        prop_assert_eq!(m.cached_pairs, 0, "{}: skin off", model_name);
        prop_assert_eq!(m.verify_candidates, 0, "{}: skin off", model_name);
    }
    prop_assert_eq!(
        m.edges_added,
        brute_added,
        "{}: edges_added vs summed oracle diffs",
        model_name
    );
    prop_assert_eq!(
        m.edges_removed,
        brute_removed,
        "{}: edges_removed vs summed oracle diffs",
        model_name
    );
    prop_assert_eq!(
        m.moved_nodes,
        brute_moved,
        "{}: moved_nodes vs bitwise position recount",
        model_name
    );
    Ok(m)
}

/// The thread counts the sharded bulk rescan is pinned at everywhere
/// in the suite: serial, the even splits, and a prime that cannot
/// divide the cell columns evenly (exercising ragged shard widths).
const STEP_THREAD_SWEEP: [usize; 4] = [1, 2, 4, 7];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn step_kernel_matches_oracle_for_every_registry_model(
        model_idx in 0usize..13,
        threads_idx in 0usize..4,
        skin_idx in 0usize..3,
        n in 2usize..48,
        range_frac in 0.02..0.4f64,
        steps in 1usize..30,
        seed in 0u64..1_000_000,
    ) {
        let registry = ModelRegistry::<2>::with_builtins();
        let names: Vec<String> =
            registry.names().iter().map(|s| s.to_string()).collect();
        prop_assert_eq!(names.len(), 13, "registry model count drifted");
        let side = 100.0;
        // The oracle is single-threaded by construction, so every
        // sharded case in the sweep proves byte-equality with the
        // serial kernel transitively through the rebuild-and-diff
        // stream; the skin sweep does the same for every cache
        // configuration (off, auto-tuned, oversized).
        replay_kernel_against_oracle(
            &names[model_idx % names.len()],
            n,
            side,
            range_frac * side,
            steps,
            seed,
            (STEP_THREAD_SWEEP[threads_idx], SKIN_SWEEP[skin_idx]),
        )?;
    }
}

/// Deterministic coverage: the per-moved-node path must carry paused
/// models, the bulk path must carry all-moving models, and a declared
/// steady-state bound may be exceeded at most on the structurally
/// special first step (RPGM's gathering step) — never later. The
/// replay helper also cross-checks the kernel's deterministic counters
/// against brute-force recomputation, so this doubles as the
/// counter-integrity check for every registry model.
#[test]
fn step_kernel_paths_cover_every_registry_model_with_bounded_fallback() {
    let registry = ModelRegistry::<2>::with_builtins();
    let mut incremental_total = 0;
    let mut bulk_total = 0;
    for (i, name) in registry.names().into_iter().enumerate() {
        // Rotate the thread sweep across the registry: the counters
        // (asserted inside the replay helper against brute-force
        // recomputation) are part of the thread-invariant surface.
        // Skin stays off here — this test pins the legacy two-path
        // split; the armed cache has its own coverage test below.
        let step_threads = STEP_THREAD_SWEEP[i % STEP_THREAD_SWEEP.len()];
        let m =
            replay_kernel_against_oracle(name, 40, 100.0, 18.0, 80, 99, (step_threads, Skin::Off))
                .unwrap();
        let (incremental, bulk, fallback) =
            (m.incremental_steps, m.bulk_rescan_steps, m.fallback_steps);
        assert!(
            fallback <= 1,
            "{name}: steady-state steps must respect the declared bound \
             (got {fallback} fallbacks over 80 steps)"
        );
        assert_eq!(
            fallback,
            u64::from(name == "rpgm"),
            "{name}: only RPGM's first (gathering) step may fall back"
        );
        assert!(
            incremental + bulk > 0,
            "{name}: kernel never stepped incrementally"
        );
        incremental_total += incremental;
        bulk_total += bulk;
    }
    assert!(incremental_total > 0, "no model took the moved-node path");
    assert!(bulk_total > 0, "no model took the bulk-rescan path");
}

/// Deterministic armed-cache coverage across the registry: under the
/// auto-tuned skin the all-moving, bound-declaring models must arm the
/// Verlet cache and spend most post-arm steps on the verify path, while
/// models that decline a displacement bound must never arm. Exactness
/// is asserted inside the replay helper at every step either way.
#[test]
fn verlet_cache_arms_across_registry_models_under_auto_skin() {
    let registry = ModelRegistry::<2>::with_builtins();
    let scale = PaperScale::new(100.0).with_pause(3);
    let mut armed_models = 0u32;
    let mut verify_total = 0u64;
    for name in registry.names() {
        let bounded = registry
            .build(name, &scale)
            .expect("registry model")
            .max_step_displacement()
            .is_some();
        let m =
            replay_kernel_against_oracle(name, 40, 100.0, 18.0, 80, 99, (1, Skin::Auto)).unwrap();
        if !bounded {
            assert_eq!(
                m.cache_verify_steps + m.cache_rebuilds,
                0,
                "{name}: no declared bound, the cache must never arm"
            );
        }
        if m.cache_rebuilds > 0 {
            armed_models += 1;
            assert!(
                m.cached_pairs > 0,
                "{name}: armed cache recorded no arena pairs"
            );
        }
        verify_total += m.cache_verify_steps;
    }
    assert!(
        armed_models >= 2,
        "auto skin armed on only {armed_models} registry models"
    );
    assert!(verify_total > 0, "no registry model took the verify path");
}

/// A model that teleports while declaring a tiny displacement bound:
/// the kernel must detect the violation on exactly the violating steps
/// and route them through the full rebuild-and-diff oracle — the
/// output stays exact (checked against the oracle), the lie costs only
/// throughput.
#[test]
fn step_kernel_dmax_violation_falls_back_not_corrupts() {
    let side = 100.0;
    let range = 15.0;
    let n = 30;
    let region: Region<2> = Region::new(side).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(4242);
    let mut positions = region.place_uniform(n, &mut rng);

    // Declared bound of 1.0; every 4th step teleports one node.
    let mut dg = DynamicGraph::new(&positions, side, range).with_displacement_bound(Some(1.0));
    let mut oracle = AdjacencyList::from_points(&positions, side, range);
    let mut violations = 0u64;
    for step in 0..40 {
        for (i, p) in positions.iter_mut().enumerate() {
            if step % 4 == 3 && i == step % n {
                *p = region.sample_uniform(&mut rng); // teleport: bound lie
            } else if i % 3 == 0 {
                let q = *p + Point::new([0.3, -0.2]);
                *p = region.clamp(&q);
            }
        }
        if step % 4 == 3 {
            violations += 1;
        }
        dg.step(&positions);
        let next = AdjacencyList::from_points(&positions, side, range);
        assert_eq!(dg.last_diff(), &oracle.diff(&next), "diff at step {step}");
        assert_eq!(dg.graph(), &next, "snapshot at step {step}");
        oracle = next;
    }
    assert_eq!(
        dg.fallback_steps(),
        violations,
        "every violating step (and only those) must take the oracle path"
    );
    assert!(
        dg.incremental_steps() > 0,
        "in-bound steps stay incremental"
    );
}

/// Replays the named registry model and returns every observable the
/// kernel emits: the full per-step `EdgeDiff` stream, the final
/// snapshot, and the deterministic counters.
fn kernel_observables(
    model_name: &str,
    n: usize,
    side: f64,
    range: f64,
    steps: usize,
    seed: u64,
    (step_threads, skin): (usize, Skin),
) -> (Vec<EdgeDiff>, AdjacencyList, manet_obs::StepKernelMetrics) {
    let registry = ModelRegistry::<2>::with_builtins();
    let scale = PaperScale::new(side).with_pause(3);
    let mut model = registry.build(model_name, &scale).expect("registry model");

    let region: Region<2> = Region::new(side).expect("positive side");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut positions = region.place_uniform(n, &mut rng);
    model.init(&positions, &region, &mut rng);

    let mut dg = DynamicGraph::new(&positions, side, range)
        .with_displacement_bound(model.max_step_displacement())
        .with_step_threads(step_threads)
        .with_skin(skin);
    let mut diffs = Vec::with_capacity(steps);
    for _ in 0..steps {
        model.step(&mut positions, &region, &mut rng);
        dg.step(&positions);
        diffs.push(dg.last_diff().clone());
    }
    let metrics = *dg.metrics();
    let graph = dg.graph().clone();
    (diffs, graph, metrics)
}

/// Direct (oracle-free) statement of the sharding contract: for every
/// registry model and every skin setting in the sweep, the sharded
/// kernel's complete observable surface — diff stream, snapshot, and
/// counters — is bit-identical at every thread count in the sweep. The
/// oracle proptest above establishes correctness; this pins the
/// stronger cross-thread equality the repo's byte-identical artifact
/// gates rely on, deterministically for all 13 models, with the Verlet
/// cache disabled, auto-armed, and oversized.
#[test]
fn sharded_step_observables_bit_identical_across_thread_counts_for_every_model() {
    let registry = ModelRegistry::<2>::with_builtins();
    for name in registry.names() {
        for skin in SKIN_SWEEP {
            let serial = kernel_observables(name, 36, 100.0, 17.0, 28, 20020623, (1, skin));
            for threads in STEP_THREAD_SWEEP.into_iter().skip(1) {
                let sharded =
                    kernel_observables(name, 36, 100.0, 17.0, 28, 20020623, (threads, skin));
                assert_eq!(
                    serial.0, sharded.0,
                    "{name} skin {skin}: diff stream diverged at {threads} threads"
                );
                assert_eq!(
                    serial.1, sharded.1,
                    "{name} skin {skin}: snapshot diverged at {threads} threads"
                );
                assert_eq!(
                    serial.2, sharded.2,
                    "{name} skin {skin}: counters diverged at {threads} threads"
                );
            }
        }
    }
}
