//! Property-based tests for the geometry substrate.

use manet_geom::{sampling, CellGrid, Point, Region};
use proptest::prelude::*;
use rand::SeedableRng;

fn coord() -> impl Strategy<Value = f64> {
    -1.0e3..1.0e3
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn distance_is_a_metric(
        ax in coord(), ay in coord(),
        bx in coord(), by in coord(),
        cx in coord(), cy in coord(),
    ) {
        let a = Point::new([ax, ay]);
        let b = Point::new([bx, by]);
        let c = Point::new([cx, cy]);
        // Symmetry
        prop_assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-9);
        // Identity
        prop_assert_eq!(a.distance(&a), 0.0);
        // Non-negativity
        prop_assert!(a.distance(&b) >= 0.0);
        // Triangle inequality (with fp slack)
        prop_assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c) + 1e-9);
    }

    #[test]
    fn distance_sq_consistent(ax in coord(), ay in coord(), bx in coord(), by in coord()) {
        let a = Point::new([ax, ay]);
        let b = Point::new([bx, by]);
        let d = a.distance(&b);
        prop_assert!((d * d - a.distance_sq(&b)).abs() <= 1e-6 * (1.0 + d * d));
    }

    #[test]
    fn step_toward_never_overshoots(
        ax in coord(), ay in coord(),
        bx in coord(), by in coord(),
        step in 0.0..2.0e3,
    ) {
        let a = Point::new([ax, ay]);
        let b = Point::new([bx, by]);
        let (next, arrived) = a.step_toward(&b, step);
        let moved = a.distance(&next);
        prop_assert!(moved <= step + 1e-9, "moved {moved} > step {step}");
        if arrived {
            prop_assert_eq!(next, b);
        } else {
            // Remaining distance shrank by exactly the step.
            let before = a.distance(&b);
            let after = next.distance(&b);
            prop_assert!((before - after - step).abs() < 1e-6);
        }
    }

    #[test]
    fn clamp_and_reflect_land_inside(side in 0.1..1.0e3, x in -5.0e3..5.0e3, y in -5.0e3..5.0e3) {
        let region: Region<2> = Region::new(side).unwrap();
        let p = Point::new([x, y]);
        prop_assert!(region.contains(&region.clamp(&p)));
        prop_assert!(region.contains(&region.reflect(&p)));
    }

    #[test]
    fn reflect_is_identity_inside(side in 0.1..1.0e3, fx in 0.0..1.0, fy in 0.0..1.0) {
        let region: Region<2> = Region::new(side).unwrap();
        let p = Point::new([fx * side, fy * side]);
        let r = region.reflect(&p);
        prop_assert!((r[0] - p[0]).abs() < 1e-9 && (r[1] - p[1]).abs() < 1e-9);
    }

    #[test]
    fn uniform_samples_always_inside(side in 0.1..1.0e4, seed in any::<u64>()) {
        let region: Region<2> = Region::new(side).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..32 {
            prop_assert!(region.contains(&region.sample_uniform(&mut rng)));
        }
    }

    #[test]
    fn ball_samples_within_radius(
        cx in coord(), cy in coord(),
        radius in 0.01..100.0,
        seed in any::<u64>(),
    ) {
        let c = Point::new([cx, cy]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..16 {
            let p = sampling::sample_in_ball(&c, radius, &mut rng).unwrap();
            prop_assert!(c.distance(&p) <= radius + 1e-9);
        }
    }

    #[test]
    fn grid_pair_enumeration_matches_brute_force(
        seed in any::<u64>(),
        n in 2usize..60,
        r in 0.5..20.0,
    ) {
        let side = 100.0;
        let region: Region<2> = Region::new(side).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let pts = region.place_uniform(n, &mut rng);
        let grid = CellGrid::build(&pts, side, r).unwrap();
        let mut got = Vec::new();
        grid.for_each_pair_within(r, |i, j, _| got.push((i, j)));
        got.sort_unstable();
        let mut want = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if pts[i].distance(&pts[j]) <= r {
                    want.push((i, j));
                }
            }
        }
        prop_assert_eq!(got, want);
    }

    #[test]
    fn unit_vectors_unit_norm(seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let v: Point<3> = sampling::sample_unit_vector(&mut rng);
        prop_assert!((v.norm() - 1.0).abs() < 1e-9);
    }
}
