//! Shared cell-indexing arithmetic for the grid spatial indexes.
//!
//! Both [`CellGrid`](crate::CellGrid) (rebuild-per-query-set) and
//! [`MovingCellGrid`](crate::MovingCellGrid) (built once, updated per
//! step) bucket points of `[0, side]^D` into a `cells_per_side^D`
//! lattice; this module holds the layout math they share so the two
//! indexes cannot drift apart on cell assignment.

use crate::{GeomError, Point};

/// Cell layout over `[0, side]^D`: cells at least `cell_size` wide.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct CellLayout {
    pub cells_per_side: usize,
    pub cell_width: f64,
}

impl CellLayout {
    /// Validates `side`/`cell_size` and computes the layout.
    pub fn new(side: f64, cell_size: f64) -> Result<Self, GeomError> {
        if !side.is_finite() || !cell_size.is_finite() {
            return Err(GeomError::NonFinite {
                name: "side/cell_size",
            });
        }
        if side <= 0.0 {
            return Err(GeomError::NonPositive {
                name: "side",
                value: side,
            });
        }
        if cell_size <= 0.0 {
            return Err(GeomError::NonPositive {
                name: "cell_size",
                value: cell_size,
            });
        }
        let cells_per_side = ((side / cell_size).floor() as usize).max(1);
        Ok(CellLayout {
            cells_per_side,
            cell_width: side / cells_per_side as f64,
        })
    }

    /// Total number of cells.
    pub fn n_cells<const D: usize>(&self) -> usize {
        self.cells_per_side.pow(D as u32)
    }

    /// Per-axis cell coordinates of `p` (out-of-region points clamp to
    /// the nearest boundary cell; distance checks stay exact).
    #[inline]
    pub fn cell_coords<const D: usize>(&self, p: &Point<D>) -> [usize; D] {
        let mut out = [0usize; D];
        for (i, o) in out.iter_mut().enumerate() {
            *o = ((p.coord(i) / self.cell_width).floor() as isize)
                .clamp(0, self.cells_per_side as isize - 1) as usize;
        }
        out
    }

    /// Row-major linear index of per-axis coordinates.
    #[inline]
    pub fn linear_index<const D: usize>(&self, coords: &[usize; D]) -> usize {
        let mut idx = 0usize;
        for c in coords {
            idx = idx * self.cells_per_side + c;
        }
        idx
    }

    /// Linear cell index of `p`.
    #[inline]
    pub fn cell_of<const D: usize>(&self, p: &Point<D>) -> usize {
        self.linear_index(&self.cell_coords(p))
    }

    /// Calls `f` with the linear index of every cell adjacent to (or
    /// equal to) the cell at `base`, iterating offsets in `{-1,0,1}^D`
    /// in a fixed (row-major offset) order.
    pub fn for_each_neighbor_cell<const D: usize, F: FnMut(usize)>(
        &self,
        base: &[usize; D],
        mut f: F,
    ) {
        let n_offsets = 3usize.pow(D as u32);
        'outer: for code in 0..n_offsets {
            let mut coords = [0usize; D];
            let mut c = code;
            for k in 0..D {
                let off = (c % 3) as isize - 1;
                c /= 3;
                let v = base[k] as isize + off;
                if v < 0 || v >= self.cells_per_side as isize {
                    continue 'outer;
                }
                coords[k] = v as usize;
            }
            f(self.linear_index(&coords));
        }
    }

    /// Calls `f` with the linear index of every in-bounds cell at a
    /// *forward* offset of `base`: the `(3^D - 1) / 2` members of
    /// `{-1,0,1}^D \ {0}` whose first nonzero component (in axis
    /// order) is `+1`. Negating a nonzero offset flips that component,
    /// so every unordered pair of adjacent cells has exactly one
    /// forward representation — the half-neighborhood scan that visits
    /// each cell pair once instead of twice.
    pub fn for_each_forward_neighbor_cell<const D: usize, F: FnMut(usize)>(
        &self,
        base: &[usize; D],
        mut f: F,
    ) {
        let n_offsets = 3usize.pow(D as u32);
        'outer: for code in 0..n_offsets {
            let mut offs = [0isize; D];
            let mut c = code;
            for o in offs.iter_mut() {
                *o = (c % 3) as isize - 1;
                c /= 3;
            }
            let mut forward = false;
            for &o in &offs {
                if o != 0 {
                    forward = o == 1;
                    break;
                }
            }
            if !forward {
                continue;
            }
            let mut coords = [0usize; D];
            for k in 0..D {
                let v = base[k] as isize + offs[k];
                if v < 0 || v >= self.cells_per_side as isize {
                    continue 'outer;
                }
                coords[k] = v as usize;
            }
            f(self.linear_index(&coords));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_validates() {
        assert!(CellLayout::new(0.0, 1.0).is_err());
        assert!(CellLayout::new(1.0, 0.0).is_err());
        assert!(CellLayout::new(f64::NAN, 1.0).is_err());
        assert!(CellLayout::new(1.0, f64::INFINITY).is_err());
    }

    #[test]
    fn cell_width_at_least_requested() {
        let l = CellLayout::new(10.0, 3.0).unwrap();
        assert_eq!(l.cells_per_side, 3);
        assert!(l.cell_width >= 3.0);
        // A cell size above the side collapses to a single cell.
        let one = CellLayout::new(1.0, 5.0).unwrap();
        assert_eq!(one.cells_per_side, 1);
    }

    #[test]
    fn out_of_region_points_clamp_to_boundary_cells() {
        let l = CellLayout::new(10.0, 1.0).unwrap();
        assert_eq!(l.cell_coords(&Point::new([-3.0, 25.0])), [0, 9]);
        assert_eq!(l.cell_of(&Point::new([10.0, 10.0])), l.n_cells::<2>() - 1);
    }

    #[test]
    fn neighbor_cells_clip_at_the_border() {
        let l = CellLayout::new(10.0, 1.0).unwrap();
        let mut corner = Vec::new();
        l.for_each_neighbor_cell(&[0usize, 0], |c| corner.push(c));
        assert_eq!(corner.len(), 4); // 2x2 corner neighborhood
        let mut interior = Vec::new();
        l.for_each_neighbor_cell(&[5usize, 5], |c| interior.push(c));
        assert_eq!(interior.len(), 9);
    }

    /// Forward offsets cover each unordered pair of adjacent cells
    /// exactly once: unioning `{base} x forward(base)` over every base
    /// cell must equal the set of unordered adjacent pairs from the
    /// full neighborhood enumeration.
    #[test]
    fn forward_neighbors_halve_the_neighborhood_exactly() {
        let l = CellLayout::new(10.0, 2.0).unwrap(); // 5x5 lattice
        let mut forward_pairs = std::collections::BTreeSet::new();
        let mut full_pairs = std::collections::BTreeSet::new();
        for x in 0..l.cells_per_side {
            for y in 0..l.cells_per_side {
                let base = [x, y];
                let b = l.linear_index(&base);
                l.for_each_forward_neighbor_cell(&base, |c| {
                    assert_ne!(c, b, "forward offsets exclude the zero offset");
                    assert!(
                        forward_pairs.insert((b.min(c), b.max(c))),
                        "cell pair ({b}, {c}) visited twice"
                    );
                });
                l.for_each_neighbor_cell(&base, |c| {
                    if c != b {
                        full_pairs.insert((b.min(c), b.max(c)));
                    }
                });
            }
        }
        assert_eq!(forward_pairs, full_pairs);
        // An interior cell sees (3^2 - 1) / 2 = 4 forward neighbors.
        let mut interior = Vec::new();
        l.for_each_forward_neighbor_cell(&[2usize, 2], |c| interior.push(c));
        assert_eq!(interior.len(), 4);
    }
}
