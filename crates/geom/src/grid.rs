//! Uniform-grid spatial index for fixed-radius neighbor queries.
//!
//! Building the communication graph naively costs `O(n²)` distance
//! checks. A [`CellGrid`] with cell width `>= r` buckets nodes so that
//! all neighbors of a node within range `r` lie in its own or the `3^D`
//! adjacent cells, giving expected `O(n + E)` graph construction for
//! uniformly placed nodes. The brute-force path is kept in
//! `manet-graph` and the two are cross-checked by property tests.

use crate::{GeomError, Point};

/// A bucket grid over `[0, side]^D` with cells of width `>= cell_size`.
///
/// # Example
///
/// ```
/// use manet_geom::{CellGrid, Point};
///
/// let pts = vec![
///     Point::new([0.5, 0.5]),
///     Point::new([1.0, 0.5]),
///     Point::new([9.0, 9.0]),
/// ];
/// let grid = CellGrid::build(&pts, 10.0, 1.0)?;
/// let mut pairs = Vec::new();
/// grid.for_each_pair_within(1.0, |i, j, _d2| pairs.push((i, j)));
/// assert_eq!(pairs, vec![(0, 1)]);
/// # Ok::<(), manet_geom::GeomError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CellGrid<const D: usize> {
    cells_per_side: usize,
    cell_width: f64,
    /// `start[c]..start[c+1]` indexes into `order` for cell `c`.
    start: Vec<u32>,
    /// Point indices sorted by cell.
    order: Vec<u32>,
    points: Vec<Point<D>>,
}

impl<const D: usize> CellGrid<D> {
    /// Builds the index over `points` living in `[0, side]^D`, with
    /// cells at least `cell_size` wide.
    ///
    /// Points outside the region are tolerated: they are bucketed into
    /// the nearest boundary cell, and distance checks remain exact.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::NonPositive`] when `side` or `cell_size`
    /// is not strictly positive, and [`GeomError::NonFinite`] when
    /// either is NaN/infinite.
    pub fn build(points: &[Point<D>], side: f64, cell_size: f64) -> Result<Self, GeomError> {
        if !side.is_finite() || !cell_size.is_finite() {
            return Err(GeomError::NonFinite {
                name: "side/cell_size",
            });
        }
        if side <= 0.0 {
            return Err(GeomError::NonPositive {
                name: "side",
                value: side,
            });
        }
        if cell_size <= 0.0 {
            return Err(GeomError::NonPositive {
                name: "cell_size",
                value: cell_size,
            });
        }
        let cells_per_side = ((side / cell_size).floor() as usize).max(1);
        let cell_width = side / cells_per_side as f64;
        let n_cells = cells_per_side.pow(D as u32);

        // Counting sort of points into cells.
        let mut counts = vec![0u32; n_cells + 1];
        let cell_of = |p: &Point<D>| -> usize {
            let mut idx = 0usize;
            for i in 0..D {
                let c = ((p.coord(i) / cell_width).floor() as isize)
                    .clamp(0, cells_per_side as isize - 1) as usize;
                idx = idx * cells_per_side + c;
            }
            idx
        };
        for p in points {
            counts[cell_of(p) + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let start = counts.clone();
        let mut cursor = counts;
        let mut order = vec![0u32; points.len()];
        for (i, p) in points.iter().enumerate() {
            let c = cell_of(p);
            order[cursor[c] as usize] = i as u32;
            cursor[c] += 1;
        }

        Ok(CellGrid {
            cells_per_side,
            cell_width,
            start,
            order,
            points: points.to_vec(),
        })
    }

    /// Number of cells along each axis.
    pub fn cells_per_side(&self) -> usize {
        self.cells_per_side
    }

    /// Actual width of each cell (`>= cell_size` requested at build).
    pub fn cell_width(&self) -> f64 {
        self.cell_width
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    fn cell_coords(&self, p: &Point<D>) -> [usize; D] {
        let mut out = [0usize; D];
        for (i, o) in out.iter_mut().enumerate() {
            *o = ((p.coord(i) / self.cell_width).floor() as isize)
                .clamp(0, self.cells_per_side as isize - 1) as usize;
        }
        out
    }

    fn linear_index(&self, coords: &[usize; D]) -> usize {
        let mut idx = 0usize;
        for c in coords {
            idx = idx * self.cells_per_side + c;
        }
        idx
    }

    /// Visits each unordered pair `(i, j)` with `i < j` and
    /// `dist(points[i], points[j]) <= radius` exactly once, passing the
    /// squared distance.
    ///
    /// # Panics
    ///
    /// Panics if `radius` exceeds the cell width — neighbors could then
    /// sit beyond adjacent cells and the enumeration would be
    /// incomplete. Build the grid with `cell_size >= radius`.
    pub fn for_each_pair_within<F: FnMut(usize, usize, f64)>(&self, radius: f64, mut f: F) {
        assert!(
            radius <= self.cell_width * (1.0 + 1e-9),
            "radius {radius} exceeds cell width {}",
            self.cell_width
        );
        let r2 = radius * radius;
        for idx_pos in 0..self.order.len() {
            let i = self.order[idx_pos] as usize;
            let pi = self.points[i];
            let base = self.cell_coords(&pi);
            self.for_each_neighbor_cell(&base, |cell| {
                let s = self.start[cell] as usize;
                let e = self.start[cell + 1] as usize;
                for &j_raw in &self.order[s..e] {
                    let j = j_raw as usize;
                    if j <= i {
                        continue;
                    }
                    let d2 = pi.distance_sq(&self.points[j]);
                    if d2 <= r2 {
                        f(i, j, d2);
                    }
                }
            });
        }
    }

    /// Indices of all points within `radius` of point `i` (excluding
    /// `i` itself).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `radius` exceeds the cell
    /// width (see [`CellGrid::for_each_pair_within`]).
    pub fn neighbors_within(&self, i: usize, radius: f64) -> Vec<usize> {
        assert!(i < self.points.len(), "point index {i} out of range");
        assert!(
            radius <= self.cell_width * (1.0 + 1e-9),
            "radius {radius} exceeds cell width {}",
            self.cell_width
        );
        let r2 = radius * radius;
        let pi = self.points[i];
        let base = self.cell_coords(&pi);
        let mut out = Vec::new();
        self.for_each_neighbor_cell(&base, |cell| {
            let s = self.start[cell] as usize;
            let e = self.start[cell + 1] as usize;
            for &j_raw in &self.order[s..e] {
                let j = j_raw as usize;
                if j != i && pi.distance_sq(&self.points[j]) <= r2 {
                    out.push(j);
                }
            }
        });
        out.sort_unstable();
        out
    }

    /// Calls `f` with the linear index of every cell adjacent to (or
    /// equal to) the cell at `base`, iterating offsets in `{-1,0,1}^D`.
    fn for_each_neighbor_cell<F: FnMut(usize)>(&self, base: &[usize; D], mut f: F) {
        let n_offsets = 3usize.pow(D as u32);
        'outer: for code in 0..n_offsets {
            let mut coords = [0usize; D];
            let mut c = code;
            for k in 0..D {
                let off = (c % 3) as isize - 1;
                c /= 3;
                let v = base[k] as isize + off;
                if v < 0 || v >= self.cells_per_side as isize {
                    continue 'outer;
                }
                coords[k] = v as usize;
            }
            f(self.linear_index(&coords));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngExt, SeedableRng};

    fn brute_force_pairs<const D: usize>(pts: &[Point<D>], r: f64) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                if pts[i].distance(&pts[j]) <= r {
                    out.push((i, j));
                }
            }
        }
        out
    }

    #[test]
    fn build_validates() {
        let pts = [Point::new([0.5])];
        assert!(CellGrid::build(&pts, 0.0, 1.0).is_err());
        assert!(CellGrid::build(&pts, 1.0, 0.0).is_err());
        assert!(CellGrid::build(&pts, f64::NAN, 1.0).is_err());
    }

    #[test]
    fn empty_point_set() {
        let grid: CellGrid<2> = CellGrid::build(&[], 10.0, 1.0).unwrap();
        assert!(grid.is_empty());
        let mut called = false;
        grid.for_each_pair_within(1.0, |_, _, _| called = true);
        assert!(!called);
    }

    #[test]
    fn cell_width_at_least_requested() {
        let pts = [Point::new([0.5, 0.5])];
        let grid = CellGrid::build(&pts, 10.0, 3.0).unwrap();
        assert!(grid.cell_width() >= 3.0);
        assert_eq!(grid.cells_per_side(), 3);
    }

    #[test]
    fn tiny_region_single_cell() {
        let pts = [Point::new([0.1]), Point::new([0.9])];
        let grid = CellGrid::build(&pts, 1.0, 5.0).unwrap();
        assert_eq!(grid.cells_per_side(), 1);
        let mut pairs = Vec::new();
        grid.for_each_pair_within(1.0, |i, j, _| pairs.push((i, j)));
        assert_eq!(pairs, vec![(0, 1)]);
    }

    #[test]
    fn pairs_match_brute_force_2d() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for trial in 0..20 {
            let n = 50 + trial;
            let pts: Vec<Point<2>> = (0..n)
                .map(|_| Point::new([rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]))
                .collect();
            let r = rng.random_range(2.0..15.0);
            let grid = CellGrid::build(&pts, 100.0, r).unwrap();
            let mut got = Vec::new();
            grid.for_each_pair_within(r, |i, j, _| got.push((i, j)));
            got.sort_unstable();
            let mut want = brute_force_pairs(&pts, r);
            want.sort_unstable();
            assert_eq!(got, want, "trial {trial} r={r}");
        }
    }

    #[test]
    fn pairs_match_brute_force_1d_and_3d() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let pts1: Vec<Point<1>> = (0..200)
            .map(|_| Point::new([rng.random_range(0.0..50.0)]))
            .collect();
        let grid1 = CellGrid::build(&pts1, 50.0, 2.0).unwrap();
        let mut got = Vec::new();
        grid1.for_each_pair_within(2.0, |i, j, _| got.push((i, j)));
        got.sort_unstable();
        let mut want = brute_force_pairs(&pts1, 2.0);
        want.sort_unstable();
        assert_eq!(got, want);

        let pts3: Vec<Point<3>> = (0..100)
            .map(|_| {
                Point::new([
                    rng.random_range(0.0..20.0),
                    rng.random_range(0.0..20.0),
                    rng.random_range(0.0..20.0),
                ])
            })
            .collect();
        let grid3 = CellGrid::build(&pts3, 20.0, 4.0).unwrap();
        let mut got3 = Vec::new();
        grid3.for_each_pair_within(4.0, |i, j, _| got3.push((i, j)));
        got3.sort_unstable();
        let mut want3 = brute_force_pairs(&pts3, 4.0);
        want3.sort_unstable();
        assert_eq!(got3, want3);
    }

    #[test]
    fn neighbors_within_matches_pairs() {
        let pts = vec![
            Point::new([1.0, 1.0]),
            Point::new([1.5, 1.0]),
            Point::new([5.0, 5.0]),
            Point::new([1.0, 1.4]),
        ];
        let grid = CellGrid::build(&pts, 10.0, 1.0).unwrap();
        assert_eq!(grid.neighbors_within(0, 1.0), vec![1, 3]);
        assert_eq!(grid.neighbors_within(2, 1.0), Vec::<usize>::new());
    }

    #[test]
    #[should_panic(expected = "exceeds cell width")]
    fn radius_larger_than_cell_panics() {
        let pts = [Point::new([0.5, 0.5]), Point::new([3.0, 3.0])];
        let grid = CellGrid::build(&pts, 10.0, 1.0).unwrap();
        grid.for_each_pair_within(5.0, |_, _, _| {});
    }

    #[test]
    fn points_on_boundary_are_indexed() {
        let pts = vec![Point::new([0.0, 0.0]), Point::new([10.0, 10.0])];
        let grid = CellGrid::build(&pts, 10.0, 1.0).unwrap();
        assert_eq!(grid.len(), 2);
        // The corner point at side=10 must be clamped into the last cell.
        assert_eq!(grid.neighbors_within(1, 1.0), Vec::<usize>::new());
    }

    #[test]
    fn squared_distance_reported() {
        let pts = vec![Point::new([0.0]), Point::new([0.6])];
        let grid = CellGrid::build(&pts, 10.0, 1.0).unwrap();
        let mut seen = None;
        grid.for_each_pair_within(1.0, |i, j, d2| seen = Some((i, j, d2)));
        let (i, j, d2) = seen.unwrap();
        assert_eq!((i, j), (0, 1));
        assert!((d2 - 0.36).abs() < 1e-12);
    }
}
