//! Uniform-grid spatial index for fixed-radius neighbor queries.
//!
//! Building the communication graph naively costs `O(n²)` distance
//! checks. A [`CellGrid`] with cell width `>= r` buckets nodes so that
//! all neighbors of a node within range `r` lie in its own or the `3^D`
//! adjacent cells, giving expected `O(n + E)` graph construction for
//! uniformly placed nodes. The brute-force path is kept in
//! `manet-graph` and the two are cross-checked by property tests.
//!
//! The occupancy tables are **epoch-stamped and sparse**: filling the
//! index touches only the cells that actually hold points (at most `n`
//! of them), never the full `cells_per_side^D` lattice — the earlier
//! dense layout's per-build `O(n_cells)` counting-buffer zeroing and
//! prefix-sum passes are gone. A one-shot [`CellGrid::build`] still
//! allocates the stamp tables once (zeroed pages from the allocator,
//! no explicit pass); callers that index many point sets at the same
//! `side`/`cell_size` should hold the grid and use
//! [`CellGrid::rebuild`], which reuses every buffer and costs
//! `O(n + t log t)` for `t <= n` occupied cells.

use crate::cells::CellLayout;
use crate::{GeomError, Point};

/// A bucket grid over `[0, side]^D` with cells of width `>= cell_size`.
///
/// # Example
///
/// ```
/// use manet_geom::{CellGrid, Point};
///
/// let pts = vec![
///     Point::new([0.5, 0.5]),
///     Point::new([1.0, 0.5]),
///     Point::new([9.0, 9.0]),
/// ];
/// let grid = CellGrid::build(&pts, 10.0, 1.0)?;
/// let mut pairs = Vec::new();
/// grid.for_each_pair_within(1.0, |i, j, _d2| pairs.push((i, j)));
/// assert_eq!(pairs, vec![(0, 1)]);
/// # Ok::<(), manet_geom::GeomError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CellGrid<const D: usize> {
    layout: CellLayout,
    /// Build epoch; a cell's `start`/`end` entries are valid only when
    /// its stamp equals the current epoch, so empty cells need no
    /// per-rebuild clearing.
    epoch: u32,
    stamp: Vec<u32>,
    cell_start: Vec<u32>,
    cell_end: Vec<u32>,
    /// Scratch: occupied cell ids of the current build, sorted.
    touched: Vec<u32>,
    /// Scratch: per-cell counts, valid only for stamped cells mid-build.
    counts: Vec<u32>,
    /// Point indices sorted by cell (original index order within each
    /// cell — the counting-sort order, kept for determinism).
    order: Vec<u32>,
    points: Vec<Point<D>>,
}

impl<const D: usize> CellGrid<D> {
    /// Builds the index over `points` living in `[0, side]^D`, with
    /// cells at least `cell_size` wide.
    ///
    /// Points outside the region are tolerated: they are bucketed into
    /// the nearest boundary cell, and distance checks remain exact.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::NonPositive`] when `side` or `cell_size`
    /// is not strictly positive, and [`GeomError::NonFinite`] when
    /// either is NaN/infinite.
    pub fn build(points: &[Point<D>], side: f64, cell_size: f64) -> Result<Self, GeomError> {
        let layout = CellLayout::new(side, cell_size)?;
        let n_cells = layout.n_cells::<D>();
        let mut grid = CellGrid {
            layout,
            epoch: 0,
            stamp: vec![0; n_cells],
            cell_start: vec![0; n_cells],
            cell_end: vec![0; n_cells],
            touched: Vec::new(),
            counts: vec![0; n_cells],
            order: Vec::new(),
            points: Vec::new(),
        };
        grid.rebuild(points);
        Ok(grid)
    }

    /// Re-indexes a fresh point set (any length) at the same
    /// `side`/`cell_size`, reusing every internal buffer.
    ///
    /// Cost is `O(n + t log t)` where `t <= n` is the number of
    /// occupied cells — independent of the total cell count, so sparse
    /// point sets in large regions don't pay for empty cells (the
    /// epoch stamps make stale occupancy entries unreadable without
    /// clearing them).
    pub fn rebuild(&mut self, points: &[Point<D>]) {
        let layout = self.layout;
        self.points.clear();
        self.points.extend_from_slice(points);
        self.touched.clear();
        let epoch = self.next_epoch();
        for p in points {
            let c = layout.cell_of(p);
            if self.stamp[c] != epoch {
                self.stamp[c] = epoch;
                self.counts[c] = 0;
                self.touched.push(c as u32);
            }
            self.counts[c] += 1;
        }
        self.touched.sort_unstable();
        let mut off = 0u32;
        for &cu in &self.touched {
            let c = cu as usize;
            self.cell_start[c] = off;
            off += self.counts[c];
            self.cell_end[c] = off;
        }
        self.order.clear();
        self.order.resize(points.len(), 0);
        for (i, p) in points.iter().enumerate() {
            let c = layout.cell_of(p);
            let slot = (self.cell_end[c] - self.counts[c]) as usize;
            self.order[slot] = i as u32;
            self.counts[c] -= 1;
        }
    }

    /// Advances the build epoch, resetting stamps on wraparound.
    fn next_epoch(&mut self) -> u32 {
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.stamp.fill(0);
                1
            }
        };
        self.epoch
    }

    /// The `order` range of cell `c` (empty for untouched cells).
    #[inline]
    fn cell_range(&self, c: usize) -> core::ops::Range<usize> {
        if self.stamp[c] == self.epoch {
            self.cell_start[c] as usize..self.cell_end[c] as usize
        } else {
            0..0
        }
    }

    /// Number of cells along each axis.
    pub fn cells_per_side(&self) -> usize {
        self.layout.cells_per_side
    }

    /// Actual width of each cell (`>= cell_size` requested at build).
    pub fn cell_width(&self) -> f64 {
        self.layout.cell_width
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Visits each unordered pair `(i, j)` with `i < j` and
    /// `dist(points[i], points[j]) <= radius` exactly once, passing the
    /// squared distance.
    ///
    /// # Panics
    ///
    /// Panics if `radius` exceeds the cell width — neighbors could then
    /// sit beyond adjacent cells and the enumeration would be
    /// incomplete. Build the grid with `cell_size >= radius`.
    pub fn for_each_pair_within<F: FnMut(usize, usize, f64)>(&self, radius: f64, mut f: F) {
        assert!(
            radius <= self.layout.cell_width * (1.0 + 1e-9),
            "radius {radius} exceeds cell width {}",
            self.layout.cell_width
        );
        let r2 = radius * radius;
        for idx_pos in 0..self.order.len() {
            let i = self.order[idx_pos] as usize;
            let pi = self.points[i];
            let base = self.layout.cell_coords(&pi);
            self.layout.for_each_neighbor_cell(&base, |cell| {
                for &j_raw in &self.order[self.cell_range(cell)] {
                    let j = j_raw as usize;
                    if j <= i {
                        continue;
                    }
                    let d2 = pi.distance_sq(&self.points[j]);
                    if d2 <= r2 {
                        f(i, j, d2);
                    }
                }
            });
        }
    }

    /// Indices of all points within `radius` of point `i` (excluding
    /// `i` itself).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `radius` exceeds the cell
    /// width (see [`CellGrid::for_each_pair_within`]).
    pub fn neighbors_within(&self, i: usize, radius: f64) -> Vec<usize> {
        assert!(i < self.points.len(), "point index {i} out of range");
        assert!(
            radius <= self.layout.cell_width * (1.0 + 1e-9),
            "radius {radius} exceeds cell width {}",
            self.layout.cell_width
        );
        let r2 = radius * radius;
        let pi = self.points[i];
        let base = self.layout.cell_coords(&pi);
        let mut out = Vec::new();
        self.layout.for_each_neighbor_cell(&base, |cell| {
            for &j_raw in &self.order[self.cell_range(cell)] {
                let j = j_raw as usize;
                if j != i && pi.distance_sq(&self.points[j]) <= r2 {
                    out.push(j);
                }
            }
        });
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngExt, SeedableRng};

    fn brute_force_pairs<const D: usize>(pts: &[Point<D>], r: f64) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                if pts[i].distance(&pts[j]) <= r {
                    out.push((i, j));
                }
            }
        }
        out
    }

    #[test]
    fn build_validates() {
        let pts = [Point::new([0.5])];
        assert!(CellGrid::build(&pts, 0.0, 1.0).is_err());
        assert!(CellGrid::build(&pts, 1.0, 0.0).is_err());
        assert!(CellGrid::build(&pts, f64::NAN, 1.0).is_err());
    }

    #[test]
    fn empty_point_set() {
        let grid: CellGrid<2> = CellGrid::build(&[], 10.0, 1.0).unwrap();
        assert!(grid.is_empty());
        let mut called = false;
        grid.for_each_pair_within(1.0, |_, _, _| called = true);
        assert!(!called);
    }

    #[test]
    fn cell_width_at_least_requested() {
        let pts = [Point::new([0.5, 0.5])];
        let grid = CellGrid::build(&pts, 10.0, 3.0).unwrap();
        assert!(grid.cell_width() >= 3.0);
        assert_eq!(grid.cells_per_side(), 3);
    }

    #[test]
    fn tiny_region_single_cell() {
        let pts = [Point::new([0.1]), Point::new([0.9])];
        let grid = CellGrid::build(&pts, 1.0, 5.0).unwrap();
        assert_eq!(grid.cells_per_side(), 1);
        let mut pairs = Vec::new();
        grid.for_each_pair_within(1.0, |i, j, _| pairs.push((i, j)));
        assert_eq!(pairs, vec![(0, 1)]);
    }

    #[test]
    fn pairs_match_brute_force_2d() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for trial in 0..20 {
            let n = 50 + trial;
            let pts: Vec<Point<2>> = (0..n)
                .map(|_| Point::new([rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]))
                .collect();
            let r = rng.random_range(2.0..15.0);
            let grid = CellGrid::build(&pts, 100.0, r).unwrap();
            let mut got = Vec::new();
            grid.for_each_pair_within(r, |i, j, _| got.push((i, j)));
            got.sort_unstable();
            let mut want = brute_force_pairs(&pts, r);
            want.sort_unstable();
            assert_eq!(got, want, "trial {trial} r={r}");
        }
    }

    #[test]
    fn pairs_match_brute_force_1d_and_3d() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let pts1: Vec<Point<1>> = (0..200)
            .map(|_| Point::new([rng.random_range(0.0..50.0)]))
            .collect();
        let grid1 = CellGrid::build(&pts1, 50.0, 2.0).unwrap();
        let mut got = Vec::new();
        grid1.for_each_pair_within(2.0, |i, j, _| got.push((i, j)));
        got.sort_unstable();
        let mut want = brute_force_pairs(&pts1, 2.0);
        want.sort_unstable();
        assert_eq!(got, want);

        let pts3: Vec<Point<3>> = (0..100)
            .map(|_| {
                Point::new([
                    rng.random_range(0.0..20.0),
                    rng.random_range(0.0..20.0),
                    rng.random_range(0.0..20.0),
                ])
            })
            .collect();
        let grid3 = CellGrid::build(&pts3, 20.0, 4.0).unwrap();
        let mut got3 = Vec::new();
        grid3.for_each_pair_within(4.0, |i, j, _| got3.push((i, j)));
        got3.sort_unstable();
        let mut want3 = brute_force_pairs(&pts3, 4.0);
        want3.sort_unstable();
        assert_eq!(got3, want3);
    }

    #[test]
    fn rebuild_matches_fresh_build_and_reuses_capacity() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(515);
        let mut grid: CellGrid<2> = CellGrid::build(&[], 100.0, 5.0).unwrap();
        for trial in 0..12 {
            // Rebuild with varying point counts, including shrinking.
            let n = [40usize, 80, 10, 0, 60][trial % 5];
            let pts: Vec<Point<2>> = (0..n)
                .map(|_| Point::new([rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]))
                .collect();
            grid.rebuild(&pts);
            let fresh = CellGrid::build(&pts, 100.0, 5.0).unwrap();
            let collect = |g: &CellGrid<2>| {
                let mut v = Vec::new();
                g.for_each_pair_within(5.0, |i, j, d2| v.push((i, j, d2.to_bits())));
                v
            };
            assert_eq!(collect(&grid), collect(&fresh), "trial {trial} n={n}");
            assert_eq!(grid.len(), n);
        }
    }

    #[test]
    fn rebuild_survives_epoch_wraparound() {
        let pts = [Point::new([0.5, 0.5]), Point::new([0.9, 0.5])];
        let mut grid = CellGrid::build(&pts, 10.0, 1.0).unwrap();
        grid.epoch = u32::MAX; // force a wrap on the next rebuild
        grid.rebuild(&pts);
        let mut pairs = Vec::new();
        grid.for_each_pair_within(1.0, |i, j, _| pairs.push((i, j)));
        assert_eq!(pairs, vec![(0, 1)]);
    }

    #[test]
    fn neighbors_within_matches_pairs() {
        let pts = vec![
            Point::new([1.0, 1.0]),
            Point::new([1.5, 1.0]),
            Point::new([5.0, 5.0]),
            Point::new([1.0, 1.4]),
        ];
        let grid = CellGrid::build(&pts, 10.0, 1.0).unwrap();
        assert_eq!(grid.neighbors_within(0, 1.0), vec![1, 3]);
        assert_eq!(grid.neighbors_within(2, 1.0), Vec::<usize>::new());
    }

    #[test]
    #[should_panic(expected = "exceeds cell width")]
    fn radius_larger_than_cell_panics() {
        let pts = [Point::new([0.5, 0.5]), Point::new([3.0, 3.0])];
        let grid = CellGrid::build(&pts, 10.0, 1.0).unwrap();
        grid.for_each_pair_within(5.0, |_, _, _| {});
    }

    #[test]
    fn points_on_boundary_are_indexed() {
        let pts = vec![Point::new([0.0, 0.0]), Point::new([10.0, 10.0])];
        let grid = CellGrid::build(&pts, 10.0, 1.0).unwrap();
        assert_eq!(grid.len(), 2);
        // The corner point at side=10 must be clamped into the last cell.
        assert_eq!(grid.neighbors_within(1, 1.0), Vec::<usize>::new());
    }

    #[test]
    fn squared_distance_reported() {
        let pts = vec![Point::new([0.0]), Point::new([0.6])];
        let grid = CellGrid::build(&pts, 10.0, 1.0).unwrap();
        let mut seen = None;
        grid.for_each_pair_within(1.0, |i, j, d2| seen = Some((i, j, d2)));
        let (i, j, d2) = seen.unwrap();
        assert_eq!((i, j), (0, 1));
        assert!((d2 - 0.36).abs() < 1e-12);
    }
}
