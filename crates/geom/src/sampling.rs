//! Uniform sampling in balls and related helpers.
//!
//! The drunkard mobility model moves a node to a point chosen uniformly
//! at random in the disk of radius `m` centered at its current
//! location (paper §4.1). [`sample_in_ball`] implements that draw for
//! any dimension via rejection from the bounding cube — for `d <= 3`
//! the acceptance probability is at least `π/6 ≈ 0.52`, so the expected
//! number of draws is below 2.

use crate::{GeomError, Point};
use rand::{Rng, RngExt};

/// Draws a point uniformly from the closed ball of radius `radius`
/// centered at `center`.
///
/// # Errors
///
/// Returns [`GeomError::NonPositive`] when `radius <= 0` and
/// [`GeomError::NonFinite`] when it is not finite.
///
/// # Example
///
/// ```
/// use manet_geom::{sampling::sample_in_ball, Point};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let c = Point::new([5.0, 5.0]);
/// let p = sample_in_ball(&c, 2.0, &mut rng)?;
/// assert!(c.distance(&p) <= 2.0);
/// # Ok::<(), manet_geom::GeomError>(())
/// ```
pub fn sample_in_ball<const D: usize, R: Rng + ?Sized>(
    center: &Point<D>,
    radius: f64,
    rng: &mut R,
) -> Result<Point<D>, GeomError> {
    if !radius.is_finite() {
        return Err(GeomError::NonFinite { name: "radius" });
    }
    if radius <= 0.0 {
        return Err(GeomError::NonPositive {
            name: "radius",
            value: radius,
        });
    }
    loop {
        let mut offset = [0.0; D];
        let mut norm_sq = 0.0;
        for c in &mut offset {
            *c = rng.random_range(-radius..=radius);
            norm_sq += *c * *c;
        }
        if norm_sq <= radius * radius {
            let mut out = center.coords();
            for (o, d) in out.iter_mut().zip(&offset) {
                *o += d;
            }
            return Ok(Point::new(out));
        }
    }
}

/// Draws one standard-normal (`N(0, 1)`) variate.
///
/// Implemented with the Marsaglia polar method, consuming a
/// deterministic number of uniforms per *accepted* pair, so the draw is
/// a pure function of the RNG stream. The second variate of each pair
/// is intentionally discarded: carrying it across calls would make the
/// sample depend on call history, breaking the workspace's
/// clone-and-replay determinism contract for mobility models.
///
/// Used by the Gauss–Markov mobility model's velocity noise.
///
/// # Example
///
/// ```
/// use manet_geom::sampling::sample_standard_normal;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let x = sample_standard_normal(&mut rng);
/// assert!(x.is_finite());
/// ```
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u = rng.random_range(-1.0..=1.0);
        let v = rng.random_range(-1.0..=1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Draws a unit vector uniformly from the sphere `S^{D-1}`.
///
/// Implemented by rejection-sampling a point in the unit ball
/// (excluding a tiny core for numerical stability) and normalizing.
/// Used by the random-direction mobility extension.
pub fn sample_unit_vector<const D: usize, R: Rng + ?Sized>(rng: &mut R) -> Point<D> {
    loop {
        let mut v = [0.0; D];
        let mut norm_sq: f64 = 0.0;
        for c in &mut v {
            *c = rng.random_range(-1.0..=1.0);
            norm_sq += *c * *c;
        }
        if norm_sq <= 1.0 && norm_sq > 1e-12 {
            let norm = norm_sq.sqrt();
            for c in &mut v {
                *c /= norm;
            }
            return Point::new(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(777)
    }

    #[test]
    fn ball_samples_stay_in_ball() {
        let c = Point::new([10.0, -3.0]);
        let mut g = rng();
        for _ in 0..2000 {
            let p = sample_in_ball(&c, 1.5, &mut g).unwrap();
            assert!(c.distance(&p) <= 1.5 + 1e-12);
        }
    }

    #[test]
    fn ball_sampling_validates_radius() {
        let c = Point::new([0.0]);
        let mut g = rng();
        assert!(sample_in_ball(&c, 0.0, &mut g).is_err());
        assert!(sample_in_ball(&c, -1.0, &mut g).is_err());
        assert!(sample_in_ball(&c, f64::NAN, &mut g).is_err());
    }

    #[test]
    fn ball_samples_are_uniform_not_clustered() {
        // For the uniform law on a disk, E[dist²]/r² = 1/2.
        let c = Point::new([0.0, 0.0]);
        let mut g = rng();
        let trials = 20_000;
        let mean_d2: f64 = (0..trials)
            .map(|_| {
                let p = sample_in_ball(&c, 2.0, &mut g).unwrap();
                c.distance_sq(&p) / 4.0
            })
            .sum::<f64>()
            / trials as f64;
        assert!((mean_d2 - 0.5).abs() < 0.01, "E[d²]/r² = {mean_d2}");
    }

    #[test]
    fn ball_sampling_1d_is_interval() {
        let c: Point<1> = 5.0.into();
        let mut g = rng();
        for _ in 0..500 {
            let p = sample_in_ball(&c, 0.5, &mut g).unwrap();
            assert!((4.5..=5.5).contains(&p[0]));
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut g = rng();
        let trials = 40_000;
        let (mut sum, mut sum_sq) = (0.0, 0.0);
        for _ in 0..trials {
            let x = sample_standard_normal(&mut g);
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / trials as f64;
        let var = sum_sq / trials as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn standard_normal_deterministic() {
        let draw = |seed| {
            let mut g = rand::rngs::StdRng::seed_from_u64(seed);
            (0..10)
                .map(|_| sample_standard_normal(&mut g))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(5), draw(5));
        assert_ne!(draw(5), draw(6));
    }

    #[test]
    fn unit_vectors_have_unit_norm() {
        let mut g = rng();
        for _ in 0..1000 {
            let v: Point<3> = sample_unit_vector(&mut g);
            assert!((v.norm() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn unit_vectors_cover_directions() {
        // Mean of each coordinate over the sphere is 0.
        let mut g = rng();
        let trials = 20_000;
        let mut sums = [0.0; 2];
        for _ in 0..trials {
            let v: Point<2> = sample_unit_vector(&mut g);
            sums[0] += v[0];
            sums[1] += v[1];
        }
        for s in sums {
            assert!((s / trials as f64).abs() < 0.02, "direction bias: {s}");
        }
    }
}
