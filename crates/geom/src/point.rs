//! `d`-dimensional points.

use core::ops::{Add, Index, Mul, Sub};

/// A point (or displacement vector) in `R^D`.
///
/// The paper works in `[0, l]^d` with Euclidean distances; `Point` is a
/// thin `Copy` wrapper over `[f64; D]` with the arithmetic the mobility
/// models and graph builders need.
///
/// # Example
///
/// ```
/// use manet_geom::Point;
///
/// let a = Point::new([0.0, 0.0]);
/// let b = Point::new([3.0, 4.0]);
/// assert_eq!(a.distance(&b), 5.0);
/// assert_eq!(a.distance_sq(&b), 25.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point<const D: usize>(pub(crate) [f64; D]);

// serde's derive does not support const-generic arrays, so (de)serialize
// as a fixed-length tuple by hand.
#[cfg(feature = "serde")]
impl<const D: usize> serde::Serialize for Point<D> {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeTuple;
        let mut tuple = serializer.serialize_tuple(D)?;
        for c in &self.0 {
            tuple.serialize_element(c)?;
        }
        tuple.end()
    }
}

#[cfg(feature = "serde")]
impl<'de, const D: usize> serde::Deserialize<'de> for Point<D> {
    fn deserialize<Des: serde::Deserializer<'de>>(deserializer: Des) -> Result<Self, Des::Error> {
        struct TupleVisitor<const D: usize>;

        impl<'de, const D: usize> serde::de::Visitor<'de> for TupleVisitor<D> {
            type Value = Point<D>;

            fn expecting(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, "an array of {D} floating-point coordinates")
            }

            fn visit_seq<A: serde::de::SeqAccess<'de>>(
                self,
                mut seq: A,
            ) -> Result<Point<D>, A::Error> {
                let mut out = [0.0; D];
                for (i, slot) in out.iter_mut().enumerate() {
                    *slot = seq
                        .next_element()?
                        .ok_or_else(|| serde::de::Error::invalid_length(i, &self))?;
                }
                Ok(Point(out))
            }
        }

        deserializer.deserialize_tuple(D, TupleVisitor::<D>)
    }
}

impl<const D: usize> Point<D> {
    /// The origin.
    pub const ORIGIN: Point<D> = Point([0.0; D]);

    /// Creates a point from its coordinates.
    pub fn new(coords: [f64; D]) -> Self {
        Point(coords)
    }

    /// The coordinates as an array.
    pub fn coords(&self) -> [f64; D] {
        self.0
    }

    /// Coordinate `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= D`.
    pub fn coord(&self, i: usize) -> f64 {
        self.0[i]
    }

    /// Euclidean distance to `other`.
    pub fn distance(&self, other: &Point<D>) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (avoids the square root in
    /// hot loops; range tests compare against `r²`).
    pub fn distance_sq(&self, other: &Point<D>) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            let d = self.0[i] - other.0[i];
            acc += d * d;
        }
        acc
    }

    /// Euclidean norm when the point is interpreted as a vector.
    pub fn norm(&self) -> f64 {
        self.distance(&Point::ORIGIN)
    }

    /// Linear interpolation: `self + t * (other - self)`.
    ///
    /// `t = 0` yields `self`, `t = 1` yields `other`; values outside
    /// `[0, 1]` extrapolate.
    pub fn lerp(&self, other: &Point<D>, t: f64) -> Point<D> {
        let mut out = [0.0; D];
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.0[i] + t * (other.0[i] - self.0[i]);
        }
        Point(out)
    }

    /// Moves from `self` toward `target` by at most `step`, stopping
    /// exactly at `target` when it is closer than `step`.
    ///
    /// Returns the new position and whether the target was reached.
    /// This is the kinematic primitive of the random waypoint model.
    pub fn step_toward(&self, target: &Point<D>, step: f64) -> (Point<D>, bool) {
        let dist = self.distance(target);
        if dist <= step || dist == 0.0 {
            (*target, true)
        } else {
            (self.lerp(target, step / dist), false)
        }
    }

    /// Returns `true` when every coordinate is finite.
    pub fn is_finite(&self) -> bool {
        self.0.iter().all(|c| c.is_finite())
    }
}

impl<const D: usize> Default for Point<D> {
    fn default() -> Self {
        Point::ORIGIN
    }
}

impl<const D: usize> From<[f64; D]> for Point<D> {
    fn from(coords: [f64; D]) -> Self {
        Point(coords)
    }
}

impl<const D: usize> From<Point<D>> for [f64; D] {
    fn from(p: Point<D>) -> Self {
        p.0
    }
}

impl From<f64> for Point<1> {
    fn from(x: f64) -> Self {
        Point([x])
    }
}

impl<const D: usize> Index<usize> for Point<D> {
    type Output = f64;

    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl<const D: usize> Add for Point<D> {
    type Output = Point<D>;

    fn add(self, rhs: Point<D>) -> Point<D> {
        let mut out = [0.0; D];
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.0[i] + rhs.0[i];
        }
        Point(out)
    }
}

impl<const D: usize> Sub for Point<D> {
    type Output = Point<D>;

    fn sub(self, rhs: Point<D>) -> Point<D> {
        let mut out = [0.0; D];
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.0[i] - rhs.0[i];
        }
        Point(out)
    }
}

impl<const D: usize> Mul<f64> for Point<D> {
    type Output = Point<D>;

    fn mul(self, s: f64) -> Point<D> {
        let mut out = [0.0; D];
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.0[i] * s;
        }
        Point(out)
    }
}

impl<const D: usize> core::fmt::Display for Point<D> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new([1.0, 2.0, 3.0]);
        let b = Point::new([-1.0, 0.5, 9.0]);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = Point::new([4.2, -1.0]);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn one_dimensional_distance_is_abs_diff() {
        let a: Point<1> = 3.0.into();
        let b: Point<1> = 7.5.into();
        assert_eq!(a.distance(&b), 4.5);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Point::new([0.0, 0.0]);
        let b = Point::new([2.0, 4.0]);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.lerp(&b, 0.5), Point::new([1.0, 2.0]));
    }

    #[test]
    fn step_toward_reaches_close_target() {
        let a = Point::new([0.0, 0.0]);
        let b = Point::new([1.0, 0.0]);
        let (pos, arrived) = a.step_toward(&b, 5.0);
        assert!(arrived);
        assert_eq!(pos, b);
    }

    #[test]
    fn step_toward_partial_move_preserves_direction() {
        let a = Point::new([0.0, 0.0]);
        let b = Point::new([10.0, 0.0]);
        let (pos, arrived) = a.step_toward(&b, 4.0);
        assert!(!arrived);
        assert!((pos.coord(0) - 4.0).abs() < 1e-12);
        assert_eq!(pos.coord(1), 0.0);
    }

    #[test]
    fn step_toward_zero_distance() {
        let a = Point::new([1.0]);
        let (pos, arrived) = a.step_toward(&a, 0.0);
        assert!(arrived);
        assert_eq!(pos, a);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Point::new([1.0, 2.0]);
        let b = Point::new([3.0, 5.0]);
        assert_eq!(a + b, Point::new([4.0, 7.0]));
        assert_eq!(b - a, Point::new([2.0, 3.0]));
        assert_eq!(a * 2.0, Point::new([2.0, 4.0]));
        assert_eq!(a[1], 2.0);
    }

    #[test]
    fn norm_matches_pythagoras() {
        assert_eq!(Point::new([3.0, 4.0]).norm(), 5.0);
    }

    #[test]
    fn display_roundtrip_readable() {
        let p = Point::new([1.5, -2.0]);
        assert_eq!(p.to_string(), "(1.5, -2)");
    }

    #[test]
    fn is_finite_detects_nan() {
        assert!(Point::new([1.0, 2.0]).is_finite());
        assert!(!Point::new([f64::NAN, 2.0]).is_finite());
        assert!(!Point::new([1.0, f64::INFINITY]).is_finite());
    }

    #[test]
    fn conversion_roundtrip() {
        let arr = [1.0, 2.0, 3.0];
        let p: Point<3> = arr.into();
        let back: [f64; 3] = p.into();
        assert_eq!(arr, back);
    }
}
