//! A spatial index that *moves with* its point set.
//!
//! [`CellGrid`](crate::CellGrid) answers fixed-radius queries for one
//! frozen placement; a mobile trajectory would have to rebuild it every
//! step, paying the full counting sort and buffer traffic even when
//! almost nothing moved. [`MovingCellGrid`] is built once and then
//! [`MovingCellGrid::update`]d per step: only the nodes whose position
//! changed are examined, and only those that crossed a cell boundary
//! are relocated between buckets. The update also *measures* the step —
//! it reports which nodes moved and the maximum squared displacement —
//! which is exactly the information an incremental neighbor kernel
//! needs to scan only moved nodes and to police a mobility model's
//! declared displacement bound.
//!
//! Bucket membership lists preserve a stable order (relocation removes
//! in place instead of swap-removing), so iteration order — and
//! therefore any downstream tie-breaking — is a deterministic function
//! of the update history.

use crate::cells::CellLayout;
use crate::{GeomError, Point};
use manet_obs::GridMetrics;

/// A per-cell bucket index over `[0, side]^D`, updated in place as its
/// points move.
///
/// # Example
///
/// ```
/// use manet_geom::{MovingCellGrid, Point};
///
/// let mut pts = vec![Point::new([0.5, 0.5]), Point::new([9.0, 9.0])];
/// let mut grid = MovingCellGrid::build(&pts, 10.0, 1.0)?;
///
/// pts[1] = Point::new([1.2, 0.5]); // node 1 walks next to node 0
/// let mut moved = Vec::new();
/// grid.update(&pts, &mut moved);
/// assert_eq!(moved, vec![1]);
///
/// let mut near0 = Vec::new();
/// grid.for_each_candidate(&pts[0], |j| near0.push(j));
/// near0.sort_unstable();
/// assert_eq!(near0, vec![0, 1]);
/// # Ok::<(), manet_geom::GeomError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MovingCellGrid<const D: usize> {
    layout: CellLayout,
    /// Occupant node ids per cell, in stable (insertion) order.
    buckets: Vec<Vec<u32>>,
    /// Struct-of-arrays mirror of `buckets`: per cell, one coordinate
    /// column per axis, in bucket (slot) order — the hot distance
    /// loops read contiguous `f64` runs instead of chasing `Point`s
    /// through `points`, so the per-candidate `d² ≤ r²` checks
    /// vectorize.
    coords: Vec<[Vec<f64>; D]>,
    /// Current cell of each node.
    node_cell: Vec<u32>,
    /// Index of each node within its cell's bucket (and coordinate
    /// columns) — O(1) in-cell coordinate updates and O(shifted)
    /// order-preserving removals, no bucket scans.
    node_slot: Vec<u32>,
    /// Current positions (the *new* positions after an `update`).
    points: Vec<Point<D>>,
    /// Deterministic commit counters (see [`GridMetrics`]); the build
    /// itself is not counted, only subsequent commits.
    metrics: GridMetrics,
}

impl<const D: usize> MovingCellGrid<D> {
    /// Builds the index over `points` in `[0, side]^D` with cells at
    /// least `cell_size` wide (points outside the region clamp to the
    /// nearest boundary cell).
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::NonPositive`] when `side` or `cell_size`
    /// is not strictly positive, and [`GeomError::NonFinite`] when
    /// either is NaN/infinite.
    pub fn build(points: &[Point<D>], side: f64, cell_size: f64) -> Result<Self, GeomError> {
        let layout = CellLayout::new(side, cell_size)?;
        let n_cells = layout.n_cells::<D>();
        let mut grid = MovingCellGrid {
            layout,
            buckets: vec![Vec::new(); n_cells],
            coords: (0..n_cells)
                .map(|_| std::array::from_fn(|_| Vec::new()))
                .collect(),
            node_cell: Vec::with_capacity(points.len()),
            node_slot: Vec::with_capacity(points.len()),
            points: points.to_vec(),
            metrics: GridMetrics::default(),
        };
        for (i, p) in points.iter().enumerate() {
            let c = layout.cell_of(p);
            grid.node_slot.push(grid.buckets[c].len() as u32);
            grid.buckets[c].push(i as u32);
            for (k, col) in grid.coords[c].iter_mut().enumerate() {
                col.push(p.coord(k));
            }
            grid.node_cell.push(c as u32);
        }
        #[cfg(feature = "strict-invariants")]
        grid.debug_validate();
        Ok(grid)
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of cells along each axis.
    pub fn cells_per_side(&self) -> usize {
        self.layout.cells_per_side
    }

    /// Actual cell width (`>= cell_size` requested at build).
    pub fn cell_width(&self) -> f64 {
        self.layout.cell_width
    }

    /// The current positions (after the most recent update).
    pub fn points(&self) -> &[Point<D>] {
        &self.points
    }

    /// Deterministic counters accumulated over every commit since the
    /// build ([`MovingCellGrid::relocate`] and
    /// [`MovingCellGrid::reset`] calls; the build itself counts as
    /// zero). Pure event counts — identical for identical update
    /// histories regardless of timing or thread placement.
    pub fn metrics(&self) -> &GridMetrics {
        &self.metrics
    }

    /// Measures the next step without mutating the index: appends the
    /// indices of every node whose position changed (bitwise coordinate
    /// comparison) to `moved` in ascending order — the vector is
    /// cleared first, so its capacity is reused across steps — and
    /// returns the maximum squared displacement over the moved nodes
    /// (`0.0` when nothing moved).
    ///
    /// Callers then commit the step with [`MovingCellGrid::relocate`]
    /// (cost proportional to the moved set) or
    /// [`MovingCellGrid::reset`] (one bulk re-bucketing pass) — the
    /// split lets an adaptive kernel pick the cheaper commit *after*
    /// seeing how much actually moved.
    ///
    /// # Panics
    ///
    /// Panics when `new_points.len()` differs from the indexed node
    /// count (a driver logic error).
    pub fn measure(&self, new_points: &[Point<D>], moved: &mut Vec<u32>) -> f64 {
        assert_eq!(
            new_points.len(),
            self.points.len(),
            "node count changed between updates"
        );
        moved.clear();
        let mut max_d2 = 0.0f64;
        for (i, (&new_p, &old_p)) in new_points.iter().zip(&self.points).enumerate() {
            if new_p == old_p {
                continue;
            }
            moved.push(i as u32);
            let d2 = old_p.distance_sq(&new_p);
            if d2 > max_d2 {
                max_d2 = d2;
            }
        }
        max_d2
    }

    /// Commits a measured step by relocating exactly the nodes in
    /// `moved` (as produced by [`MovingCellGrid::measure`] for the same
    /// `new_points`); only nodes that crossed a cell boundary touch the
    /// buckets.
    ///
    /// # Panics
    ///
    /// Panics when `new_points.len()` differs from the indexed node
    /// count or a `moved` index is out of range.
    pub fn relocate(&mut self, new_points: &[Point<D>], moved: &[u32]) {
        assert_eq!(
            new_points.len(),
            self.points.len(),
            "node count changed between updates"
        );
        self.metrics.relocations += 1;
        self.metrics.nodes_moved += moved.len() as u64;
        for &iu in moved {
            let i = iu as usize;
            let new_p = new_points[i];
            let c = self.layout.cell_of(&new_p);
            let old_c = self.node_cell[i] as usize;
            let slot = self.node_slot[i] as usize;
            if c != old_c {
                self.metrics.boundary_crossings += 1;
                self.metrics.cells_touched += 2; // source and destination buckets
                                                 // Order-preserving removal at the recorded slot keeps
                                                 // bucket iteration stable (see module docs); every
                                                 // occupant behind the gap shifts one slot down.
                let bucket = &mut self.buckets[old_c];
                debug_assert_eq!(bucket[slot], iu, "node slot desynced from its bucket");
                bucket.remove(slot);
                for &shifted in &bucket[slot..] {
                    self.node_slot[shifted as usize] -= 1;
                }
                for col in &mut self.coords[old_c] {
                    col.remove(slot);
                }
                self.node_slot[i] = self.buckets[c].len() as u32;
                self.buckets[c].push(iu);
                for (k, col) in self.coords[c].iter_mut().enumerate() {
                    col.push(new_p.coord(k));
                }
                self.node_cell[i] = c as u32;
            } else {
                // In-cell move: O(1) coordinate-column update.
                for (k, col) in self.coords[c].iter_mut().enumerate() {
                    col[slot] = new_p.coord(k);
                }
            }
            self.points[i] = new_p;
        }
        #[cfg(feature = "strict-invariants")]
        self.debug_validate();
    }

    /// Moves the index to the next step's positions in one call:
    /// [`MovingCellGrid::measure`] followed by
    /// [`MovingCellGrid::relocate`].
    ///
    /// # Panics
    ///
    /// Panics when `new_points.len()` differs from the indexed node
    /// count (a driver logic error).
    pub fn update(&mut self, new_points: &[Point<D>], moved: &mut Vec<u32>) -> f64 {
        let max_d2 = self.measure(new_points, moved);
        self.relocate(new_points, moved);
        max_d2
    }

    /// Re-buckets every node from scratch at `new_points`, reusing the
    /// bucket allocations. Restores the canonical ascending-id order
    /// inside each bucket; useful to resynchronize after a caller
    /// bypassed [`MovingCellGrid::update`].
    ///
    /// # Panics
    ///
    /// Panics when `new_points.len()` differs from the indexed node
    /// count.
    pub fn reset(&mut self, new_points: &[Point<D>]) {
        assert_eq!(
            new_points.len(),
            self.points.len(),
            "node count changed between updates"
        );
        self.metrics.resets += 1;
        // Clear only the buckets that hold someone (<= n of them).
        for &c in &self.node_cell {
            if !self.buckets[c as usize].is_empty() {
                self.metrics.cells_touched += 1;
                self.buckets[c as usize].clear();
                for col in &mut self.coords[c as usize] {
                    col.clear();
                }
            }
        }
        for (i, p) in new_points.iter().enumerate() {
            let c = self.layout.cell_of(p);
            self.node_slot[i] = self.buckets[c].len() as u32;
            self.buckets[c].push(i as u32);
            for (k, col) in self.coords[c].iter_mut().enumerate() {
                col.push(p.coord(k));
            }
            self.node_cell[i] = c as u32;
            self.points[i] = *p;
        }
        #[cfg(feature = "strict-invariants")]
        self.debug_validate();
    }

    /// Re-derives the cell layout at a different `cell_size` (over the
    /// same region `side` the grid was built with) and re-buckets
    /// every node at `new_points`, preserving the accumulated
    /// [`GridMetrics`] — the switch is committed as one
    /// [`MovingCellGrid::reset`]. The step kernel uses this to widen
    /// cells to `r + skin` when it arms its Verlet candidate cache
    /// mid-run, so one forward half-neighborhood still covers the
    /// inflated candidate radius.
    ///
    /// # Errors
    ///
    /// Returns the same [`GeomError`] conditions as
    /// [`MovingCellGrid::build`]; on error the grid is unchanged.
    ///
    /// # Panics
    ///
    /// Panics when `new_points.len()` differs from the indexed node
    /// count.
    pub fn rebuild_with_cell_size(
        &mut self,
        new_points: &[Point<D>],
        side: f64,
        cell_size: f64,
    ) -> Result<(), GeomError> {
        assert_eq!(
            new_points.len(),
            self.points.len(),
            "node count changed between updates"
        );
        let layout = CellLayout::new(side, cell_size)?;
        let n_cells = layout.n_cells::<D>();
        self.metrics.resets += 1;
        // Drop the old occupancy while the old layout's cell indices
        // are still valid; any bucket truncated below is empty.
        for &c in &self.node_cell {
            if !self.buckets[c as usize].is_empty() {
                self.metrics.cells_touched += 1;
                self.buckets[c as usize].clear();
                for col in &mut self.coords[c as usize] {
                    col.clear();
                }
            }
        }
        self.layout = layout;
        self.buckets.resize_with(n_cells, Vec::new);
        self.coords
            .resize_with(n_cells, || std::array::from_fn(|_| Vec::new()));
        for (i, p) in new_points.iter().enumerate() {
            let c = self.layout.cell_of(p);
            self.node_slot[i] = self.buckets[c].len() as u32;
            self.buckets[c].push(i as u32);
            for (k, col) in self.coords[c].iter_mut().enumerate() {
                col.push(p.coord(k));
            }
            self.node_cell[i] = c as u32;
            self.points[i] = *p;
        }
        #[cfg(feature = "strict-invariants")]
        self.debug_validate();
        Ok(())
    }

    /// Occupancy-vs-position consistency: the buckets partition the
    /// node set, every node's recorded cell matches its position,
    /// every node is listed in (exactly) its own bucket at its
    /// recorded slot, and the coordinate columns mirror the buckets
    /// bitwise. `O(n)` — run after every commit under
    /// `strict-invariants`.
    #[cfg(feature = "strict-invariants")]
    fn debug_validate(&self) {
        let occupancy: usize = self.buckets.iter().map(Vec::len).sum();
        debug_assert_eq!(
            occupancy,
            self.points.len(),
            "strict-invariants: bucket occupancy lost or duplicated nodes"
        );
        debug_assert_eq!(self.node_cell.len(), self.points.len());
        debug_assert_eq!(self.node_slot.len(), self.points.len());
        for (c, (bucket, cols)) in self.buckets.iter().zip(&self.coords).enumerate() {
            for col in cols {
                debug_assert_eq!(
                    col.len(),
                    bucket.len(),
                    "strict-invariants: coordinate column of cell {c} desynced from its bucket"
                );
            }
        }
        for (i, p) in self.points.iter().enumerate() {
            let c = self.layout.cell_of(p);
            debug_assert_eq!(
                self.node_cell[i] as usize, c,
                "strict-invariants: node {i} recorded in the wrong cell"
            );
            debug_assert!(
                self.buckets[c].iter().filter(|&&x| x == i as u32).count() == 1,
                "strict-invariants: node {i} not listed exactly once in its bucket"
            );
            let slot = self.node_slot[i] as usize;
            debug_assert!(
                self.buckets[c].get(slot) == Some(&(i as u32)),
                "strict-invariants: node {i} slot record points at the wrong occupant"
            );
            for (k, col) in self.coords[c].iter().enumerate() {
                debug_assert!(
                    col[slot].to_bits() == p.coord(k).to_bits(),
                    "strict-invariants: coordinate column of node {i} axis {k} desynced"
                );
            }
        }
    }

    /// Visits the id of every node in the `3^D` cells adjacent to (or
    /// containing) `p` — a superset of all nodes within
    /// [`MovingCellGrid::cell_width`] of `p`, including any node at `p`
    /// itself. Callers filter by exact distance.
    pub fn for_each_candidate<F: FnMut(u32)>(&self, p: &Point<D>, mut f: F) {
        let base = self.layout.cell_coords(p);
        self.layout.for_each_neighbor_cell(&base, |cell| {
            for &j in &self.buckets[cell] {
                f(j);
            }
        });
    }

    /// [`MovingCellGrid::for_each_candidate`] fused with the distance
    /// computation: visits every candidate id together with its exact
    /// squared distance from `p`, read from the contiguous
    /// struct-of-arrays coordinate columns. The accumulation runs in
    /// ascending axis order — bitwise the same result as
    /// [`Point::distance_sq`] against the stored position.
    pub fn for_each_candidate_dist2<F: FnMut(u32, f64)>(&self, p: &Point<D>, mut f: F) {
        let base = self.layout.cell_coords(p);
        self.layout.for_each_neighbor_cell(&base, |cell| {
            let bucket = &self.buckets[cell];
            let cols = &self.coords[cell];
            for (slot, &j) in bucket.iter().enumerate() {
                let mut acc = 0.0f64;
                for (k, col) in cols.iter().enumerate() {
                    let d = p.coord(k) - col[slot];
                    acc += d * d;
                }
                f(j, acc);
            }
        });
    }

    /// Forward half-neighborhood scan over an axis-0 strip of cells:
    /// emits every unordered node pair `(min, max)` with squared
    /// distance `<= r2` whose *lower-indexed cell edge* lives in a base
    /// cell with axis-0 coordinate in `[x_lo, x_hi)` — intra-cell pairs
    /// once (`slot_a < slot_b`), cross-cell pairs once via the forward
    /// cell offsets (`CellLayout::for_each_forward_neighbor_cell`:
    /// first nonzero component `+1`) — and returns the number of
    /// candidate pairs *examined* (in range or not).
    ///
    /// Because axis 0 is the most significant digit of the row-major
    /// linear index, the strip's base cells form one contiguous linear
    /// range, and disjoint strips examine disjoint pair sets: summed
    /// over a partition of `[0, cells_per_side)`, the emitted pairs and
    /// the examined count are exactly those of the full scan,
    /// independent of how the strip boundaries fall. Distances
    /// accumulate per axis in ascending order over the
    /// struct-of-arrays columns — bitwise equal to
    /// [`Point::distance_sq`] on the stored positions.
    pub fn scan_forward_pairs<F: FnMut(u32, u32)>(
        &self,
        x_lo: usize,
        x_hi: usize,
        r2: f64,
        mut emit: F,
    ) -> u64 {
        debug_assert!(x_lo <= x_hi && x_hi <= self.layout.cells_per_side);
        let col_cells = if D > 1 {
            self.layout.cells_per_side.pow(D as u32 - 1)
        } else {
            1
        };
        let mut examined = 0u64;
        // Odometer over the strip's per-axis coordinates, kept in sync
        // with the contiguous linear range the strip occupies.
        let mut base = [0usize; D];
        base[0] = x_lo;
        for lin in (x_lo * col_cells)..(x_hi * col_cells) {
            let bucket = &self.buckets[lin];
            let cols = &self.coords[lin];
            if !bucket.is_empty() {
                // Intra-cell pairs, each once (ascending slot order).
                for (sa, &a) in bucket.iter().enumerate() {
                    for (sb, &b) in bucket.iter().enumerate().skip(sa + 1) {
                        examined += 1;
                        let mut acc = 0.0f64;
                        for col in cols {
                            let d = col[sa] - col[sb];
                            acc += d * d;
                        }
                        if acc <= r2 {
                            emit(a.min(b), a.max(b));
                        }
                    }
                }
                // Cross pairs against each forward-adjacent cell.
                self.layout.for_each_forward_neighbor_cell(&base, |other| {
                    let obucket = &self.buckets[other];
                    let ocols = &self.coords[other];
                    for (sa, &a) in bucket.iter().enumerate() {
                        for (sb, &b) in obucket.iter().enumerate() {
                            examined += 1;
                            let mut acc = 0.0f64;
                            for (col, ocol) in cols.iter().zip(ocols) {
                                let d = col[sa] - ocol[sb];
                                acc += d * d;
                            }
                            if acc <= r2 {
                                emit(a.min(b), a.max(b));
                            }
                        }
                    }
                });
            }
            // Advance the odometer (least-significant axis is D-1).
            for k in (1..D).rev() {
                base[k] += 1;
                if base[k] < self.layout.cells_per_side {
                    break;
                }
                base[k] = 0;
                if k == 1 {
                    base[0] += 1;
                }
            }
            if D == 1 {
                base[0] += 1;
            }
        }
        examined
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngExt, SeedableRng};

    fn candidates(grid: &MovingCellGrid<2>, p: &Point<2>) -> Vec<u32> {
        let mut out = Vec::new();
        grid.for_each_candidate(p, |j| out.push(j));
        out.sort_unstable();
        out
    }

    #[test]
    fn build_validates() {
        let pts = [Point::new([0.5])];
        assert!(MovingCellGrid::build(&pts, 0.0, 1.0).is_err());
        assert!(MovingCellGrid::build(&pts, 1.0, -1.0).is_err());
        assert!(MovingCellGrid::build(&pts, f64::INFINITY, 1.0).is_err());
    }

    #[test]
    fn empty_grid() {
        let grid: MovingCellGrid<2> = MovingCellGrid::build(&[], 10.0, 1.0).unwrap();
        assert!(grid.is_empty());
        let mut moved = vec![7u32]; // must be cleared
        assert_eq!(grid.clone().update(&[], &mut moved), 0.0);
        assert!(moved.is_empty());
    }

    /// Candidate completeness: after arbitrary updates, every pair
    /// within `cell_width` must be covered by some candidate scan.
    #[test]
    fn candidates_cover_all_in_range_pairs_under_updates() {
        let side = 50.0;
        let r = 4.0;
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut pts: Vec<Point<2>> = (0..40)
            .map(|_| Point::new([rng.random_range(0.0..side), rng.random_range(0.0..side)]))
            .collect();
        let mut grid = MovingCellGrid::build(&pts, side, r).unwrap();
        let mut moved = Vec::new();
        for step in 0..30 {
            for p in &mut pts {
                // Mix small moves with occasional teleports.
                *p = if rng.random_range(0.0..1.0) < 0.1 {
                    Point::new([rng.random_range(0.0..side), rng.random_range(0.0..side)])
                } else {
                    let q =
                        *p + Point::new([rng.random_range(-1.0..1.0), rng.random_range(-1.0..1.0)]);
                    Point::new([q.coord(0).clamp(0.0, side), q.coord(1).clamp(0.0, side)])
                };
            }
            grid.update(&pts, &mut moved);
            assert_eq!(grid.points(), &pts[..]);
            for i in 0..pts.len() {
                let cand = candidates(&grid, &pts[i]);
                for j in 0..pts.len() {
                    if pts[i].distance(&pts[j]) <= r {
                        assert!(
                            cand.binary_search(&(j as u32)).is_ok(),
                            "step {step}: candidate scan of {i} missed in-range node {j}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn update_reports_moved_set_and_max_displacement() {
        let mut pts = vec![
            Point::new([1.0, 1.0]),
            Point::new([5.0, 5.0]),
            Point::new([9.0, 9.0]),
        ];
        let mut grid = MovingCellGrid::build(&pts, 10.0, 1.0).unwrap();
        let mut moved = Vec::new();
        // Nothing moved.
        assert_eq!(grid.update(&pts.clone(), &mut moved), 0.0);
        assert!(moved.is_empty());
        // Node 1 moves by (3, 4): squared displacement 25.
        pts[1] = Point::new([8.0, 9.0]);
        let d2 = grid.update(&pts, &mut moved);
        assert_eq!(moved, vec![1]);
        assert!((d2 - 25.0).abs() < 1e-12);
    }

    #[test]
    fn relocation_preserves_stable_bucket_order() {
        // Three nodes share a cell; the middle one leaves and returns.
        let side = 30.0;
        let mut pts = vec![
            Point::new([1.0, 1.0]),
            Point::new([1.2, 1.2]),
            Point::new([1.4, 1.4]),
        ];
        let mut grid = MovingCellGrid::build(&pts, side, 3.0).unwrap();
        let mut moved = Vec::new();
        pts[1] = Point::new([20.0, 20.0]);
        grid.update(&pts, &mut moved);
        pts[1] = Point::new([1.2, 1.2]);
        grid.update(&pts, &mut moved);
        // 0 and 2 kept their relative order; 1 re-enters at the back.
        let mut seen = Vec::new();
        grid.for_each_candidate(&pts[0], |j| seen.push(j));
        assert_eq!(seen, vec![0, 2, 1]);
    }

    #[test]
    fn reset_restores_canonical_order_and_matches_update_positions() {
        let side = 30.0;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut pts: Vec<Point<2>> = (0..20)
            .map(|_| Point::new([rng.random_range(0.0..side), rng.random_range(0.0..side)]))
            .collect();
        let mut grid = MovingCellGrid::build(&pts, side, 3.0).unwrap();
        let mut moved = Vec::new();
        for _ in 0..10 {
            for p in &mut pts {
                let q = *p + Point::new([rng.random_range(-2.0..2.0), rng.random_range(-2.0..2.0)]);
                *p = Point::new([q.coord(0).clamp(0.0, side), q.coord(1).clamp(0.0, side)]);
            }
            grid.update(&pts, &mut moved);
        }
        grid.reset(&pts);
        let fresh = MovingCellGrid::build(&pts, side, 3.0).unwrap();
        for p in &pts {
            assert_eq!(candidates(&grid, p), candidates(&fresh, p));
        }
        assert_eq!(grid.points(), fresh.points());
    }

    /// Widening (or narrowing) the cells mid-run re-buckets every node
    /// into the new layout — equivalent to a fresh build at the new
    /// cell size — while the commit metrics keep accumulating (the
    /// switch counts as one reset).
    #[test]
    fn rebuild_with_cell_size_matches_fresh_build_and_keeps_metrics() {
        let side = 40.0;
        let (mut grid, pts) = random_walk_grid(17, 50, side, 3.0);
        let before = *grid.metrics();
        assert!(before.relocations > 0);

        for cell in [9.0, 2.0] {
            grid.rebuild_with_cell_size(&pts, side, cell).unwrap();
            let fresh = MovingCellGrid::build(&pts, side, cell).unwrap();
            assert_eq!(grid.cells_per_side(), fresh.cells_per_side());
            assert_eq!(grid.cell_width(), fresh.cell_width());
            assert_eq!(grid.points(), fresh.points());
            for p in &pts {
                assert_eq!(candidates(&grid, p), candidates(&fresh, p));
            }
        }
        let after = *grid.metrics();
        assert_eq!(after.relocations, before.relocations, "history kept");
        assert_eq!(after.resets, before.resets + 2, "each switch is a reset");

        // Invalid layouts leave the grid untouched.
        assert!(grid.rebuild_with_cell_size(&pts, side, 0.0).is_err());
        assert!(grid.rebuild_with_cell_size(&pts, side, f64::NAN).is_err());
        assert_eq!(*grid.metrics(), after);
    }

    /// The strict-invariants checker must actually fire: a grid whose
    /// recorded cells no longer match the positions panics on the next
    /// commit.
    #[cfg(feature = "strict-invariants")]
    #[test]
    #[should_panic(expected = "strict-invariants")]
    fn strict_invariants_detects_stale_occupancy() {
        let pts = [Point::new([0.5, 0.5]), Point::new([9.5, 9.5])];
        let mut grid = MovingCellGrid::build(&pts, 10.0, 1.0).unwrap();
        grid.node_cell.swap(0, 1); // desync recorded cells from positions
        grid.relocate(&pts, &[]);
    }

    #[test]
    fn metrics_count_commits_crossings_and_resets() {
        let mut pts = vec![
            Point::new([0.5, 0.5]),
            Point::new([0.6, 0.6]),
            Point::new([9.5, 9.5]),
        ];
        let mut grid = MovingCellGrid::build(&pts, 10.0, 1.0).unwrap();
        assert_eq!(*grid.metrics(), GridMetrics::default());

        // Node 0 moves within its cell, node 2 crosses a boundary.
        pts[0] = Point::new([0.7, 0.7]);
        pts[2] = Point::new([5.5, 5.5]);
        let mut moved = Vec::new();
        grid.update(&pts, &mut moved);
        let m = *grid.metrics();
        assert_eq!(m.relocations, 1);
        assert_eq!(m.nodes_moved, 2);
        assert_eq!(m.boundary_crossings, 1);
        assert_eq!(m.cells_touched, 2);
        assert_eq!(m.resets, 0);

        // A reset touches each occupied bucket exactly once: nodes 0
        // and 1 share a cell, node 2 has its own.
        grid.reset(&pts);
        let m = *grid.metrics();
        assert_eq!(m.resets, 1);
        assert_eq!(m.cells_touched, 2 + 2);
        assert_eq!(m.relocations, 1, "reset is not a relocation");
    }

    #[test]
    #[should_panic(expected = "node count changed")]
    fn update_rejects_resized_point_set() {
        let pts = [Point::new([1.0, 1.0])];
        let mut grid = MovingCellGrid::build(&pts, 10.0, 1.0).unwrap();
        grid.update(&[], &mut Vec::new());
    }

    fn random_walk_grid(
        seed: u64,
        n: usize,
        side: f64,
        r: f64,
    ) -> (MovingCellGrid<2>, Vec<Point<2>>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut pts: Vec<Point<2>> = (0..n)
            .map(|_| Point::new([rng.random_range(0.0..side), rng.random_range(0.0..side)]))
            .collect();
        let mut grid = MovingCellGrid::build(&pts, side, r).unwrap();
        let mut moved = Vec::new();
        for _ in 0..12 {
            for p in &mut pts {
                let q = *p + Point::new([rng.random_range(-2.0..2.0), rng.random_range(-2.0..2.0)]);
                *p = Point::new([q.coord(0).clamp(0.0, side), q.coord(1).clamp(0.0, side)]);
            }
            grid.update(&pts, &mut moved);
        }
        (grid, pts)
    }

    /// The fused candidate+distance scan visits the same id multiset
    /// as `for_each_candidate`, with squared distances bitwise equal
    /// to `Point::distance_sq` on the stored positions.
    #[test]
    fn candidate_dist2_matches_point_distance_sq_bitwise() {
        let (grid, pts) = random_walk_grid(11, 50, 40.0, 3.0);
        for p in &pts {
            let mut plain = Vec::new();
            grid.for_each_candidate(p, |j| plain.push(j));
            let mut fused = Vec::new();
            grid.for_each_candidate_dist2(p, |j, d2| {
                assert_eq!(
                    d2.to_bits(),
                    p.distance_sq(&pts[j as usize]).to_bits(),
                    "fused distance differs bitwise for candidate {j}"
                );
                fused.push(j);
            });
            assert_eq!(plain, fused, "fused scan changed the visit order");
        }
    }

    /// The forward scan over the full strip range finds exactly the
    /// brute-force in-range pairs, each once, and examines exactly the
    /// unordered same-or-adjacent-cell pairs.
    #[test]
    fn forward_scan_matches_brute_force_pairs() {
        let side = 40.0;
        let r = 3.0;
        let (grid, pts) = random_walk_grid(23, 60, side, r);
        let mut scanned = Vec::new();
        let examined = grid.scan_forward_pairs(0, grid.cells_per_side(), r * r, |a, b| {
            scanned.push((a, b));
        });
        scanned.sort_unstable();
        let mut brute = Vec::new();
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                if pts[i].distance_sq(&pts[j]) <= r * r {
                    brute.push((i as u32, j as u32));
                }
            }
        }
        assert_eq!(scanned, brute, "forward scan missed or duplicated a pair");
        // Examined = unordered pairs sharing a same-or-adjacent cell:
        // cross-check against the full-neighborhood candidate scan,
        // which visits each such pair twice plus every node once.
        let mut visits = 0u64;
        for p in &pts {
            grid.for_each_candidate(p, |_| visits += 1);
        }
        assert_eq!(2 * examined + pts.len() as u64, visits);
    }

    /// Splitting the strip range over any shard partition yields the
    /// same pair set and the same examined total as one full scan —
    /// the determinism contract of the sharded bulk step.
    #[test]
    fn forward_scan_is_invariant_under_strip_sharding() {
        let side = 40.0;
        let r = 3.0;
        let (grid, _) = random_walk_grid(31, 60, side, r);
        let cols = grid.cells_per_side();
        let mut full = Vec::new();
        let full_examined = grid.scan_forward_pairs(0, cols, r * r, |a, b| full.push((a, b)));
        for n_shards in [2usize, 3, 4, 7] {
            let n_shards = n_shards.min(cols);
            let (base, rem) = (cols / n_shards, cols % n_shards);
            let mut sharded = Vec::new();
            let mut examined = 0u64;
            let mut lo = 0usize;
            for w in 0..n_shards {
                let hi = lo + base + usize::from(w < rem);
                examined += grid.scan_forward_pairs(lo, hi, r * r, |a, b| sharded.push((a, b)));
                lo = hi;
            }
            assert_eq!(lo, cols);
            // Shard-order concatenation, then canonical sort: the
            // sharded and full scans agree as sets *and* totals.
            let mut full_sorted = full.clone();
            full_sorted.sort_unstable();
            sharded.sort_unstable();
            assert_eq!(
                sharded, full_sorted,
                "shard split {n_shards} changed the pair set"
            );
            assert_eq!(
                examined, full_examined,
                "shard split {n_shards} changed examined"
            );
        }
    }

    /// A desynced coordinate column (SoA mirror out of step with the
    /// authoritative `points`) must be caught on the next commit.
    #[cfg(feature = "strict-invariants")]
    #[test]
    #[should_panic(expected = "strict-invariants")]
    fn strict_invariants_detects_corrupt_coordinate_column() {
        let pts = [Point::new([0.5, 0.5]), Point::new([9.5, 9.5])];
        let mut grid = MovingCellGrid::build(&pts, 10.0, 1.0).unwrap();
        let c = grid.node_cell[0] as usize;
        grid.coords[c][0][0] += 0.25; // silent SoA drift
        grid.relocate(&pts, &[]);
    }

    /// A stale slot record (node claims the wrong bucket position)
    /// must be caught on the next commit.
    #[cfg(feature = "strict-invariants")]
    #[test]
    #[should_panic(expected = "strict-invariants")]
    fn strict_invariants_detects_stale_slot_record() {
        let pts = [Point::new([0.5, 0.5]), Point::new([0.6, 0.6])];
        let mut grid = MovingCellGrid::build(&pts, 10.0, 1.0).unwrap();
        grid.node_slot.swap(0, 1); // both nodes share a bucket; slots lie
        grid.relocate(&pts, &[]);
    }
}
