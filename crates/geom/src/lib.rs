//! Geometry substrate for d-dimensional ad hoc network models.
//!
//! The paper places `n` nodes in the cube `[0, l]^d` (`d ∈ {1, 2, 3}` in
//! practice; the theory of Section 3 uses `d = 1`, the simulations of
//! Section 4 use `d = 2`). This crate provides:
//!
//! * [`Point`] — a `d`-dimensional point with distance arithmetic,
//!   generic over the dimension via const generics;
//! * [`Region`] — the deployment region `[0, l]^d` with uniform
//!   sampling, containment and boundary policies;
//! * [`sampling`] — uniform sampling in balls and on spheres (the
//!   drunkard model's jump distribution);
//! * [`CellGrid`] — a uniform-grid spatial index answering fixed-radius
//!   neighbor queries in `O(1)` expected per node, used to build
//!   communication graphs without the `O(n²)` distance matrix;
//! * [`MovingCellGrid`] — the same lattice maintained *incrementally*
//!   across mobility steps: built once, then updated by relocating only
//!   the nodes that crossed a cell boundary, while measuring the moved
//!   set and maximum displacement for the incremental step kernels.
//!
//! # Example
//!
//! ```
//! use manet_geom::{Point, Region};
//! use rand::SeedableRng;
//!
//! let region: Region<2> = Region::new(100.0)?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let p = region.sample_uniform(&mut rng);
//! assert!(region.contains(&p));
//! # Ok::<(), manet_geom::GeomError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod cells;
pub mod grid;
pub mod moving_grid;
pub mod point;
pub mod region;
pub mod sampling;

pub use grid::CellGrid;
pub use moving_grid::MovingCellGrid;
pub use point::Point;
pub use region::{BoundaryPolicy, Region};

/// Errors produced by geometry routines.
#[derive(Debug, Clone, PartialEq)]
pub enum GeomError {
    /// A length parameter (side, radius) must be strictly positive.
    NonPositive {
        /// Name of the offending parameter.
        name: &'static str,
        /// Value supplied by the caller.
        value: f64,
    },
    /// A parameter must be finite.
    NonFinite {
        /// Name of the offending parameter.
        name: &'static str,
    },
    /// The dimension `D` is unsupported by this routine.
    UnsupportedDimension(usize),
}

impl core::fmt::Display for GeomError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            GeomError::NonPositive { name, value } => {
                write!(f, "parameter `{name}` must be positive, got {value}")
            }
            GeomError::NonFinite { name } => write!(f, "parameter `{name}` must be finite"),
            GeomError::UnsupportedDimension(d) => write!(f, "dimension {d} is not supported"),
        }
    }
}

impl std::error::Error for GeomError {}

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn error_display_nonempty() {
        for e in [
            GeomError::NonPositive {
                name: "side",
                value: -1.0,
            },
            GeomError::NonFinite { name: "radius" },
            GeomError::UnsupportedDimension(9),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GeomError>();
    }
}
