//! The deployment region `[0, l]^d`.

use crate::{GeomError, Point};
use rand::{Rng, RngExt};

/// How positions that would leave the region are handled.
///
/// The paper does not specify boundary behaviour for the drunkard
/// model; [`BoundaryPolicy::Resample`] (rejection) is the default used
/// in the reproduction and [`BoundaryPolicy::Reflect`] is provided for
/// ablation (see DESIGN.md §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum BoundaryPolicy {
    /// Re-draw the proposed position until it falls inside the region.
    #[default]
    Resample,
    /// Reflect the offending coordinates back into the region.
    Reflect,
    /// Clamp the offending coordinates to the boundary.
    Clamp,
}

/// The cube `[0, side]^D` in which nodes live.
///
/// # Example
///
/// ```
/// use manet_geom::{Point, Region};
///
/// let r: Region<2> = Region::new(10.0)?;
/// assert!(r.contains(&Point::new([5.0, 5.0])));
/// assert!(!r.contains(&Point::new([11.0, 5.0])));
/// assert_eq!(r.diameter(), 200.0f64.sqrt());
/// # Ok::<(), manet_geom::GeomError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Region<const D: usize> {
    side: f64,
}

impl<const D: usize> Region<D> {
    /// Creates the region `[0, side]^D`.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::NonPositive`] when `side <= 0` and
    /// [`GeomError::NonFinite`] when it is NaN or infinite.
    pub fn new(side: f64) -> Result<Self, GeomError> {
        if !side.is_finite() {
            return Err(GeomError::NonFinite { name: "side" });
        }
        if side <= 0.0 {
            return Err(GeomError::NonPositive {
                name: "side",
                value: side,
            });
        }
        Ok(Region { side })
    }

    /// Side length `l`.
    pub fn side(&self) -> f64 {
        self.side
    }

    /// Spatial dimension `d`.
    pub fn dimension(&self) -> usize {
        D
    }

    /// `l^d`, the volume (length/area/volume) of the region.
    pub fn volume(&self) -> f64 {
        self.side.powi(D as i32)
    }

    /// Length of the region's main diagonal, `l·√d` — the worst-case
    /// transmitting range when node positions are adversarial.
    pub fn diameter(&self) -> f64 {
        self.side * (D as f64).sqrt()
    }

    /// Whether `p` lies inside the closed cube.
    pub fn contains(&self, p: &Point<D>) -> bool {
        p.coords().iter().all(|&c| (0.0..=self.side).contains(&c))
    }

    /// Draws a point uniformly at random in the region.
    pub fn sample_uniform<R: Rng + ?Sized>(&self, rng: &mut R) -> Point<D> {
        let mut out = [0.0; D];
        for c in &mut out {
            *c = rng.random_range(0.0..=self.side);
        }
        Point::new(out)
    }

    /// Places `n` nodes independently and uniformly at random — the
    /// paper's placement assumption for both MTR and MTRM.
    pub fn place_uniform<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<Point<D>> {
        (0..n).map(|_| self.sample_uniform(rng)).collect()
    }

    /// Clamps each coordinate of `p` into `[0, side]`.
    pub fn clamp(&self, p: &Point<D>) -> Point<D> {
        let mut out = p.coords();
        for c in &mut out {
            *c = c.clamp(0.0, self.side);
        }
        Point::new(out)
    }

    /// Wraps each coordinate of `p` onto the torus `[0, side)^D`
    /// (`x mod side`, with the seam `side` itself mapping to `0`).
    ///
    /// This changes the *motion* topology only: positions stay in the
    /// region and the communication graph remains Euclidean in
    /// `[0, l]^d` — wrap-around mobility does not create wrap-around
    /// radio links.
    ///
    /// # Example
    ///
    /// ```
    /// use manet_geom::{Point, Region};
    ///
    /// let r: Region<1> = Region::new(10.0)?;
    /// assert_eq!(r.wrap(&Point::new([12.5]))[0], 2.5);
    /// assert_eq!(r.wrap(&Point::new([-0.5]))[0], 9.5);
    /// # Ok::<(), manet_geom::GeomError>(())
    /// ```
    pub fn wrap(&self, p: &Point<D>) -> Point<D> {
        let mut out = p.coords();
        for c in &mut out {
            if !(0.0..self.side).contains(c) {
                let mut x = *c % self.side;
                if x < 0.0 {
                    x += self.side;
                }
                // `-1e-17 % side` rounds to `side` after the shift.
                if x >= self.side {
                    x = 0.0;
                }
                *c = x;
            }
        }
        Point::new(out)
    }

    /// Reflects each out-of-range coordinate back into the region
    /// (mirror at the violated boundary, repeated until inside).
    pub fn reflect(&self, p: &Point<D>) -> Point<D> {
        let mut out = p.coords();
        let period = 2.0 * self.side;
        for c in &mut out {
            if !(0.0..=self.side).contains(c) {
                // Fold into [0, 2l) then mirror the upper half.
                let mut x = *c % period;
                if x < 0.0 {
                    x += period;
                }
                if x > self.side {
                    x = period - x;
                }
                *c = x;
            }
        }
        Point::new(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(12345)
    }

    #[test]
    fn construction_validates() {
        assert!(Region::<2>::new(0.0).is_err());
        assert!(Region::<2>::new(-3.0).is_err());
        assert!(Region::<2>::new(f64::NAN).is_err());
        assert!(Region::<2>::new(f64::INFINITY).is_err());
        assert!(Region::<2>::new(1.0).is_ok());
    }

    #[test]
    fn geometry_quantities() {
        let r: Region<3> = Region::new(2.0).unwrap();
        assert_eq!(r.side(), 2.0);
        assert_eq!(r.dimension(), 3);
        assert_eq!(r.volume(), 8.0);
        assert!((r.diameter() - 2.0 * 3f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn contains_boundary_inclusive() {
        let r: Region<1> = Region::new(5.0).unwrap();
        assert!(r.contains(&Point::new([0.0])));
        assert!(r.contains(&Point::new([5.0])));
        assert!(!r.contains(&Point::new([5.0 + 1e-12])));
        assert!(!r.contains(&Point::new([-1e-12])));
    }

    #[test]
    fn uniform_samples_inside() {
        let r: Region<2> = Region::new(7.0).unwrap();
        let mut g = rng();
        for _ in 0..1000 {
            assert!(r.contains(&r.sample_uniform(&mut g)));
        }
    }

    #[test]
    fn uniform_samples_cover_the_region() {
        // Mean of uniform on [0, l] is l/2; with 20k draws the sample
        // mean is within ~1% of l/2 with overwhelming probability.
        let r: Region<1> = Region::new(10.0).unwrap();
        let mut g = rng();
        let mean: f64 = (0..20_000)
            .map(|_| r.sample_uniform(&mut g)[0])
            .sum::<f64>()
            / 20_000.0;
        assert!((mean - 5.0).abs() < 0.15, "mean = {mean}");
    }

    #[test]
    fn place_uniform_counts() {
        let r: Region<2> = Region::new(1.0).unwrap();
        let pts = r.place_uniform(37, &mut rng());
        assert_eq!(pts.len(), 37);
        assert!(pts.iter().all(|p| r.contains(p)));
    }

    #[test]
    fn clamp_projects_to_boundary() {
        let r: Region<2> = Region::new(1.0).unwrap();
        let p = r.clamp(&Point::new([-0.5, 1.7]));
        assert_eq!(p, Point::new([0.0, 1.0]));
        // Inside points unchanged.
        let q = Point::new([0.3, 0.4]);
        assert_eq!(r.clamp(&q), q);
    }

    #[test]
    fn reflect_mirrors_small_overshoot() {
        let r: Region<1> = Region::new(10.0).unwrap();
        assert!((r.reflect(&Point::new([10.5]))[0] - 9.5).abs() < 1e-12);
        assert!((r.reflect(&Point::new([-0.5]))[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reflect_handles_large_overshoot() {
        let r: Region<1> = Region::new(10.0).unwrap();
        // 25 -> fold to 5; -13 -> fold to 7
        assert!((r.reflect(&Point::new([25.0]))[0] - 5.0).abs() < 1e-12);
        assert!((r.reflect(&Point::new([-13.0]))[0] - 7.0).abs() < 1e-12);
        // Result always inside.
        for x in [-100.0, -7.3, 3.0, 17.9, 99.9] {
            assert!(r.contains(&r.reflect(&Point::new([x]))), "x = {x}");
        }
    }

    #[test]
    fn wrap_folds_onto_torus() {
        let r: Region<1> = Region::new(10.0).unwrap();
        assert_eq!(r.wrap(&Point::new([3.0]))[0], 3.0);
        assert_eq!(r.wrap(&Point::new([10.0]))[0], 0.0);
        assert!((r.wrap(&Point::new([12.5]))[0] - 2.5).abs() < 1e-12);
        assert!((r.wrap(&Point::new([-0.5]))[0] - 9.5).abs() < 1e-12);
        assert!((r.wrap(&Point::new([-13.0]))[0] - 7.0).abs() < 1e-12);
        for x in [-100.0, -7.3, 3.0, 17.9, 99.9, -1e-17] {
            let w = r.wrap(&Point::new([x]))[0];
            assert!((0.0..10.0).contains(&w), "x = {x} wrapped to {w}");
        }
    }

    #[test]
    fn boundary_policy_default_is_resample() {
        assert_eq!(BoundaryPolicy::default(), BoundaryPolicy::Resample);
    }
}
