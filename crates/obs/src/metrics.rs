//! Plane 1: deterministic kernel counters.
//!
//! Every field in these structs is a plain event count incremented by
//! kernel code on the path that did the work. No clocks, no hashing,
//! no floats: the values are a pure function of the simulated
//! trajectory, so two runs with the same seed produce bit-identical
//! metrics regardless of thread count, and `u64` sums over iterations
//! commute — per-iteration metrics merged in any order give the same
//! totals. That property is what lets `metrics.json` sit behind the
//! same byte-identity CI gates as the trace goldens.
//!
//! The structs are deliberately flat and field-ordered: the vendored
//! `serde` derive emits fields in declaration order, so the JSON/CSV
//! encodings are byte-stable as long as the declarations are.

/// Counters for the [`MovingCellGrid`] incremental spatial index.
///
/// [`MovingCellGrid`]: https://example.invalid/manet
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GridMetrics {
    /// Committed relocation passes (one per `relocate`/`update` call).
    pub relocations: u64,
    /// Nodes examined by relocation passes (the moved sets' total size).
    pub nodes_moved: u64,
    /// Moved nodes that actually crossed a cell boundary.
    pub boundary_crossings: u64,
    /// Cell buckets mutated: two per boundary crossing (source and
    /// destination), plus every occupied bucket cleared by a reset.
    pub cells_touched: u64,
    /// Bulk re-bucketing passes (`reset` calls).
    pub resets: u64,
}

impl GridMetrics {
    /// Adds `other`'s counts into `self` (commutative, associative).
    pub fn merge(&mut self, other: &GridMetrics) {
        self.relocations += other.relocations;
        self.nodes_moved += other.nodes_moved;
        self.boundary_crossings += other.boundary_crossings;
        self.cells_touched += other.cells_touched;
        self.resets += other.resets;
    }
}

/// Counters for the zero-rebuild step kernel (`DynamicGraph::step`).
///
/// `incremental_steps + bulk_rescan_steps + cache_verify_steps +
/// fallback_steps == steps` always holds: every step commits through
/// exactly one path. Verlet-cache rebuild steps are a subset of the
/// bulk bucket (`cache_rebuilds <= bulk_rescan_steps`): a rebuild *is*
/// a bulk rescan, just at the inflated `r + skin` radius.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StepKernelMetrics {
    /// Steps committed (excluding the initial build).
    pub steps: u64,
    /// Steps served by the moved-node incremental rescan.
    pub incremental_steps: u64,
    /// Steps that fell back to a full bulk rescan (moved fraction at or
    /// above the bulk threshold).
    pub bulk_rescan_steps: u64,
    /// Steps that violated the declared displacement bound and rebuilt
    /// against the oracle.
    pub fallback_steps: u64,
    /// Total size of the moved sets across all steps.
    pub moved_nodes: u64,
    /// Candidate pairs examined by incremental (moved-node) rescans.
    pub moved_rescan_candidates: u64,
    /// Candidate pairs examined by bulk rescans.
    pub bulk_rescan_candidates: u64,
    /// Directed edge insertions applied across all step diffs.
    pub edges_added: u64,
    /// Directed edge removals applied across all step diffs.
    pub edges_removed: u64,
    /// Steps served by streaming the Verlet candidate arena (no cell
    /// neighborhood rescans).
    pub cache_verify_steps: u64,
    /// Verlet candidate-arena (re)builds; each such step is also
    /// counted in `bulk_rescan_steps`.
    pub cache_rebuilds: u64,
    /// Candidate pairs stored by cache (re)builds (arena sizes).
    pub cached_pairs: u64,
    /// Candidate pairs streamed by cache-verify steps.
    pub verify_candidates: u64,
}

impl StepKernelMetrics {
    /// Adds `other`'s counts into `self` (commutative, associative).
    pub fn merge(&mut self, other: &StepKernelMetrics) {
        self.steps += other.steps;
        self.incremental_steps += other.incremental_steps;
        self.bulk_rescan_steps += other.bulk_rescan_steps;
        self.fallback_steps += other.fallback_steps;
        self.moved_nodes += other.moved_nodes;
        self.moved_rescan_candidates += other.moved_rescan_candidates;
        self.bulk_rescan_candidates += other.bulk_rescan_candidates;
        self.edges_added += other.edges_added;
        self.edges_removed += other.edges_removed;
        self.cache_verify_steps += other.cache_verify_steps;
        self.cache_rebuilds += other.cache_rebuilds;
        self.cached_pairs += other.cached_pairs;
        self.verify_candidates += other.verify_candidates;
    }

    /// Fraction of steps served by the incremental path (`0.0` when no
    /// steps were taken).
    pub fn incremental_fraction(&self) -> f64 {
        fraction(self.incremental_steps, self.steps)
    }

    /// Fraction of steps that took the bulk-rescan path.
    pub fn bulk_fraction(&self) -> f64 {
        fraction(self.bulk_rescan_steps, self.steps)
    }

    /// Fraction of steps that fell back to the rebuild oracle.
    pub fn fallback_fraction(&self) -> f64 {
        fraction(self.fallback_steps, self.steps)
    }

    /// Fraction of steps served by streaming the Verlet candidate
    /// arena.
    pub fn cache_verify_fraction(&self) -> f64 {
        fraction(self.cache_verify_steps, self.steps)
    }
}

fn fraction(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64
    }
}

/// Per-shard scan roll-up for the sharded bulk-rescan path: each worker
/// counts the candidate pairs it examined and the in-range pairs it
/// emitted, and the merge step folds the per-shard counts into one
/// total in shard order. Addition over `u64` commutes, so the totals
/// are invariant across shard counts (and therefore thread counts) —
/// the same argument that makes [`StepKernelMetrics`] mergeable.
///
/// This is working state for a single step, not an artifact: it is
/// deliberately *not* serialized (the `metrics.json` schema and the
/// committed goldens stay byte-stable), and the kernel folds it into
/// [`StepKernelMetrics::bulk_rescan_candidates`] at the end of the
/// step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardScan {
    /// Candidate pairs examined (in range or not) across shards so far.
    pub pairs_examined: u64,
    /// In-range pairs emitted across shards so far.
    pub pairs_emitted: u64,
}

impl ShardScan {
    /// Folds one shard's scan counts into the roll-up.
    pub fn absorb(&mut self, examined: u64, emitted: u64) {
        self.pairs_examined += examined;
        self.pairs_emitted += emitted;
    }

    /// Adds `other`'s counts into `self` (commutative, associative).
    pub fn merge(&mut self, other: &ShardScan) {
        self.pairs_examined += other.pairs_examined;
        self.pairs_emitted += other.pairs_emitted;
    }
}

/// Counters for the dynamic component tracker
/// (`DynamicComponents::apply`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ComponentMetrics {
    /// Diff applications (one per simulation step).
    pub applies: u64,
    /// DSU unions that actually merged two distinct components.
    pub dsu_merges: u64,
    /// Epoch-based partial rebuilds triggered by edge removals.
    pub partial_rebuilds: u64,
    /// Full relabels triggered by churn above the rebuild threshold.
    pub full_rebuilds: u64,
    /// Nodes relabeled by partial rebuilds (affected-region sizes).
    pub partial_nodes_relabeled: u64,
    /// Nodes relabeled by full rebuilds.
    pub full_nodes_relabeled: u64,
}

impl ComponentMetrics {
    /// Adds `other`'s counts into `self` (commutative, associative).
    pub fn merge(&mut self, other: &ComponentMetrics) {
        self.applies += other.applies;
        self.dsu_merges += other.dsu_merges;
        self.partial_rebuilds += other.partial_rebuilds;
        self.full_rebuilds += other.full_rebuilds;
        self.partial_nodes_relabeled += other.partial_nodes_relabeled;
        self.full_nodes_relabeled += other.full_nodes_relabeled;
    }
}

/// Per-step roll-up of all three kernel layers, as exposed on the
/// connectivity stream's step view and folded into trace artifacts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct KernelMetrics {
    /// Moving-grid counters.
    pub grid: GridMetrics,
    /// Step-kernel counters.
    pub step: StepKernelMetrics,
    /// Component-tracker counters.
    pub components: ComponentMetrics,
}

impl KernelMetrics {
    /// Adds `other`'s counts into `self` (commutative, associative).
    pub fn merge(&mut self, other: &KernelMetrics) {
        self.grid.merge(&other.grid);
        self.step.merge(&other.step);
        self.components.merge(&other.components);
    }

    /// Column names for [`KernelMetrics::csv_row`], in matching order.
    pub fn csv_header() -> String {
        [
            "grid_relocations",
            "grid_nodes_moved",
            "grid_boundary_crossings",
            "grid_cells_touched",
            "grid_resets",
            "step_steps",
            "step_incremental",
            "step_bulk_rescan",
            "step_fallback",
            "step_moved_nodes",
            "step_moved_rescan_candidates",
            "step_bulk_rescan_candidates",
            "step_edges_added",
            "step_edges_removed",
            "step_cache_verify",
            "step_cache_rebuilds",
            "step_cached_pairs",
            "step_verify_candidates",
            "comp_applies",
            "comp_dsu_merges",
            "comp_partial_rebuilds",
            "comp_full_rebuilds",
            "comp_partial_nodes_relabeled",
            "comp_full_nodes_relabeled",
        ]
        .join(",")
    }

    /// The counters as one comma-separated row (column order matches
    /// [`KernelMetrics::csv_header`]).
    pub fn csv_row(&self) -> String {
        let g = &self.grid;
        let s = &self.step;
        let c = &self.components;
        [
            g.relocations,
            g.nodes_moved,
            g.boundary_crossings,
            g.cells_touched,
            g.resets,
            s.steps,
            s.incremental_steps,
            s.bulk_rescan_steps,
            s.fallback_steps,
            s.moved_nodes,
            s.moved_rescan_candidates,
            s.bulk_rescan_candidates,
            s.edges_added,
            s.edges_removed,
            s.cache_verify_steps,
            s.cache_rebuilds,
            s.cached_pairs,
            s.verify_candidates,
            c.applies,
            c.dsu_merges,
            c.partial_rebuilds,
            c.full_rebuilds,
            c.partial_nodes_relabeled,
            c.full_nodes_relabeled,
        ]
        .map(|v| v.to_string())
        .join(",")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(k: u64) -> KernelMetrics {
        KernelMetrics {
            grid: GridMetrics {
                relocations: k,
                nodes_moved: 2 * k,
                boundary_crossings: 3 * k,
                cells_touched: 6 * k,
                resets: k,
            },
            step: StepKernelMetrics {
                steps: 10 * k,
                incremental_steps: 6 * k,
                bulk_rescan_steps: 2 * k,
                fallback_steps: k,
                moved_nodes: 20 * k,
                moved_rescan_candidates: 100 * k,
                bulk_rescan_candidates: 50 * k,
                edges_added: 5 * k,
                edges_removed: 4 * k,
                cache_verify_steps: k,
                cache_rebuilds: k,
                cached_pairs: 40 * k,
                verify_candidates: 35 * k,
            },
            components: ComponentMetrics {
                applies: 10 * k,
                dsu_merges: 3 * k,
                partial_rebuilds: 2 * k,
                full_rebuilds: k,
                partial_nodes_relabeled: 8 * k,
                full_nodes_relabeled: 30 * k,
            },
        }
    }

    #[test]
    fn merge_is_commutative_and_sums_fields() {
        let (a, b) = (sample(3), sample(5));
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab, sample(8));
        assert_eq!(ab.step.steps, 80);
        assert_eq!(ab.grid.cells_touched, 48);
    }

    #[test]
    fn default_is_all_zero_and_merge_identity() {
        let mut m = KernelMetrics::default();
        m.merge(&KernelMetrics::default());
        assert_eq!(m, KernelMetrics::default());
        assert_eq!(m.step.steps, 0);
        let mut n = sample(2);
        n.merge(&KernelMetrics::default());
        assert_eq!(n, sample(2));
    }

    #[test]
    fn fractions_partition_the_step_count() {
        let s = sample(4).step;
        let total = s.incremental_fraction()
            + s.bulk_fraction()
            + s.cache_verify_fraction()
            + s.fallback_fraction();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(s.cache_rebuilds <= s.bulk_rescan_steps);
        assert_eq!(StepKernelMetrics::default().fallback_fraction(), 0.0);
        assert_eq!(StepKernelMetrics::default().cache_verify_fraction(), 0.0);
    }

    #[test]
    fn csv_row_matches_header_arity() {
        let header = KernelMetrics::csv_header();
        let row = sample(1).csv_row();
        assert_eq!(
            header.split(',').count(),
            row.split(',').count(),
            "header and row column counts must match"
        );
        assert!(row.split(',').all(|f| f.parse::<u64>().is_ok()));
    }

    #[test]
    fn shard_scan_totals_are_order_invariant() {
        let shards = [(10u64, 3u64), (7, 2), (0, 0), (25, 9)];
        let mut fwd = ShardScan::default();
        for &(e, m) in &shards {
            fwd.absorb(e, m);
        }
        let mut rev = ShardScan::default();
        for &(e, m) in shards.iter().rev() {
            rev.absorb(e, m);
        }
        assert_eq!(fwd, rev);
        assert_eq!((fwd.pairs_examined, fwd.pairs_emitted), (42, 14));
        let mut merged = ShardScan::default();
        merged.merge(&fwd);
        merged.merge(&ShardScan::default());
        assert_eq!(merged, fwd);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn json_round_trips_and_is_field_ordered() {
        let m = sample(7);
        let json = serde_json::to_string(&m).unwrap();
        let back: KernelMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
        // Declaration order is the byte-stability contract.
        let grid_pos = json.find("\"grid\"").unwrap();
        let step_pos = json.find("\"step\"").unwrap();
        let comp_pos = json.find("\"components\"").unwrap();
        assert!(grid_pos < step_pos && step_pos < comp_pos);
    }
}
