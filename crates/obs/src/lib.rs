//! Two-plane telemetry for the simulation spine.
//!
//! The kernels of this workspace (the moving grid, the zero-rebuild
//! step kernel, the dynamic component tracker) make per-step *path
//! decisions* — moved-rescan vs bulk rescan vs oracle fallback, DSU
//! union vs epoch partial rebuild vs full relabel — that determine
//! their cost but were invisible to every artifact the repo emitted.
//! This crate provides the observability substrate in two strictly
//! separated planes:
//!
//! * **Plane 1 — deterministic counters** ([`metrics`]): plain-integer
//!   event counts ([`GridMetrics`], [`StepKernelMetrics`],
//!   [`ComponentMetrics`], rolled up into [`KernelMetrics`]) that are a
//!   pure function of the simulated trajectory. Summed across
//!   iterations they are independent of thread count and wall-clock by
//!   construction, so they slot straight into the byte-identity CI
//!   gates alongside the trace goldens.
//! * **Plane 2 — wall-clock span profiling** ([`span`]): a hierarchical
//!   [`SpanTimer`] for bench/CLI drivers. Timing is inherently
//!   nondeterministic, so this plane is confined by the `manet-lint`
//!   `R2` contract to tool code; the [`span`] module itself carries the
//!   documented R2 exemption (see `crates/lint/src/walk.rs`).
//!
//! [`manifest::RunManifest`] records run provenance (command, seed,
//! models, sizes, thread count, compiled features) so any `metrics.json`
//! artifact can be traced back to the exact invocation that produced it.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod manifest;
pub mod metrics;
pub mod span;

pub use manifest::RunManifest;
pub use metrics::{ComponentMetrics, GridMetrics, KernelMetrics, ShardScan, StepKernelMetrics};
pub use span::{SpanEntry, SpanReport, SpanStats, SpanTimer};
