//! Run provenance: what invocation produced an artifact.
//!
//! A `metrics.json` (or any derived artifact) is only as trustworthy
//! as the record of how it was made. [`RunManifest`] captures the
//! knobs that determine a run's output — subcommand, seed, model
//! list, sweep sizes, thread count and compiled cargo features — in a
//! flat, declaration-ordered struct so the serialized form is
//! byte-stable. Every field is either copied from parsed CLI options
//! or from `cfg!` feature probes; nothing here reads clocks or the
//! environment, so the manifest itself stays inside the deterministic
//! plane (thread count is recorded, and the CI identity gate
//! normalizes that one field before diffing across thread counts).

/// Provenance block written at the head of every `metrics.json`.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RunManifest {
    /// Subcommand that produced the artifact (e.g. `trace`, `fig3`).
    pub command: String,
    /// Base RNG seed for the run.
    pub seed: u64,
    /// Mobility models in sweep order.
    pub models: Vec<String>,
    /// Node counts in sweep order.
    pub nodes: Vec<usize>,
    /// Monte-Carlo iterations per sweep point.
    pub iterations: usize,
    /// Mobility steps per iteration.
    pub steps: usize,
    /// Transmission ranges swept, when the subcommand sweeps ranges
    /// directly (empty when ranges are derived per sweep point).
    pub ranges: Vec<f64>,
    /// Worker thread count the run was invoked with.
    pub threads: usize,
    /// Cargo features compiled into the binary, sorted.
    pub features: Vec<String>,
    /// The step kernel's Verlet skin policy (`"auto"`, `"off"` or a
    /// radius), as invoked. Recorded for provenance only: artifacts
    /// are byte-identical across settings, and like `threads` the CI
    /// identity gate normalizes this field before diffing.
    pub skin: String,
}

impl RunManifest {
    /// Starts a manifest for `command` with everything else defaulted.
    pub fn new(command: &str) -> RunManifest {
        RunManifest {
            command: command.to_string(),
            ..RunManifest::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(feature = "serde")]
    #[test]
    fn serializes_in_declaration_order() {
        let mut m = RunManifest::new("trace");
        m.seed = 7;
        m.models = vec!["waypoint".into()];
        m.threads = 4;
        m.features = vec!["serde".into()];
        let json = serde_json::to_string(&m).unwrap();
        let keys = [
            "\"command\"",
            "\"seed\"",
            "\"models\"",
            "\"nodes\"",
            "\"iterations\"",
            "\"steps\"",
            "\"ranges\"",
            "\"threads\"",
            "\"features\"",
            "\"skin\"",
        ];
        let positions: Vec<usize> = keys.iter().map(|k| json.find(k).unwrap()).collect();
        assert!(positions.windows(2).all(|w| w[0] < w[1]));
        let back: RunManifest = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn new_sets_only_the_command() {
        let m = RunManifest::new("uptime");
        assert_eq!(m.command, "uptime");
        assert_eq!(m.seed, 0);
        assert!(m.models.is_empty() && m.features.is_empty());
    }
}
