//! Plane 2: wall-clock span profiling for bench/CLI drivers.
//!
//! This module is the *only* library code in the workspace allowed to
//! read the monotonic clock: `manet-lint` rule `R2` bans wall-clock
//! sources from deterministic library crates, and this file is carried
//! in the lint's module exemption table (`crates/lint/src/walk.rs`)
//! with the reason recorded there. The boundary is kept honest by
//! construction: a [`SpanTimer`] only ever *observes* durations — no
//! simulated value may depend on one — and the drivers that arm it
//! (the experiments CLI under `--profile`, `step_kernel_capture`)
//! route its output to `metrics.json`'s clearly-nondeterministic
//! `spans` block or to stderr, never into a golden-gated artifact.
//!
//! Spans nest: entering `step` while `run` is open records the leaf
//! under the path `run/step`, so a report reads like a call tree
//! flattened to dotted paths with per-path count/min/mean/max/total.

use std::collections::BTreeMap;
use std::time::Instant;

/// Aggregated timings for one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SpanStats {
    /// Times the span was entered and exited.
    pub count: u64,
    /// Total nanoseconds across all entries.
    pub total_ns: u64,
    /// Shortest single entry, in nanoseconds.
    pub min_ns: u64,
    /// Longest single entry, in nanoseconds.
    pub max_ns: u64,
}

impl SpanStats {
    fn record(&mut self, ns: u64) {
        if self.count == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.count += 1;
        self.total_ns += ns;
    }

    /// Mean nanoseconds per entry (`0` when never entered).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// One row of a [`SpanReport`]: a span path with its statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SpanEntry {
    /// Slash-joined nesting path, e.g. `run/step/apply`.
    pub path: String,
    /// Times the span was entered.
    pub count: u64,
    /// Total nanoseconds across entries.
    pub total_ns: u64,
    /// Shortest entry in nanoseconds.
    pub min_ns: u64,
    /// Mean nanoseconds per entry.
    pub mean_ns: u64,
    /// Longest entry in nanoseconds.
    pub max_ns: u64,
}

/// A finished profile: every span path observed, in sorted path order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SpanReport {
    /// Rows in ascending path order (BTree iteration order).
    pub spans: Vec<SpanEntry>,
}

impl SpanReport {
    /// Renders the report as an aligned text table for stderr display.
    /// Returns an empty string when no spans were recorded.
    pub fn render_table(&self) -> String {
        if self.spans.is_empty() {
            return String::new();
        }
        let mut width = "span".len();
        for e in &self.spans {
            width = width.max(e.path.len());
        }
        let mut out = format!(
            "{:<width$}  {:>8}  {:>12}  {:>12}  {:>12}  {:>14}\n",
            "span", "count", "min_ns", "mean_ns", "max_ns", "total_ns"
        );
        for e in &self.spans {
            out.push_str(&format!(
                "{:<width$}  {:>8}  {:>12}  {:>12}  {:>12}  {:>14}\n",
                e.path, e.count, e.min_ns, e.mean_ns, e.max_ns, e.total_ns
            ));
        }
        out
    }
}

/// A hierarchical wall-clock profiler.
///
/// Construct disarmed ([`SpanTimer::disarmed`]) to make every call a
/// no-op — drivers thread one timer unconditionally and only arm it
/// under `--profile`. Spans are entered/exited in LIFO order; the
/// scoped [`SpanTimer::time`] wrapper keeps that pairing safe.
///
/// # Example
///
/// ```
/// let mut t = manet_obs::SpanTimer::armed();
/// let x = t.time("outer", |t| t.time("inner", |_| 2 + 2));
/// assert_eq!(x, 4);
/// let report = t.report();
/// let paths: Vec<&str> = report.spans.iter().map(|e| e.path.as_str()).collect();
/// assert_eq!(paths, ["outer", "outer/inner"]);
/// ```
#[derive(Debug)]
pub struct SpanTimer {
    armed: bool,
    /// Open spans: (full path, entry instant).
    stack: Vec<(String, Instant)>,
    stats: BTreeMap<String, SpanStats>,
}

impl SpanTimer {
    /// A timer that records every span.
    pub fn armed() -> SpanTimer {
        SpanTimer {
            armed: true,
            stack: Vec::new(),
            stats: BTreeMap::new(),
        }
    }

    /// A timer whose every operation is a no-op (reports stay empty).
    pub fn disarmed() -> SpanTimer {
        SpanTimer {
            armed: false,
            stack: Vec::new(),
            stats: BTreeMap::new(),
        }
    }

    /// Whether this timer records spans.
    pub fn is_armed(&self) -> bool {
        self.armed
    }

    /// Opens a span named `name`, nested under the currently open span
    /// (if any). Pair with [`SpanTimer::exit`], or prefer
    /// [`SpanTimer::time`].
    // This module is the R2 exemption doorway (see the module docs and
    // manet-lint's R2_EXEMPT_MODULES); the clippy mirror of that rule
    // is waived at exactly the one clock read.
    #[allow(clippy::disallowed_methods)]
    pub fn enter(&mut self, name: &str) {
        if !self.armed {
            return;
        }
        let path = match self.stack.last() {
            Some((parent, _)) => format!("{parent}/{name}"),
            None => name.to_string(),
        };
        self.stack.push((path, Instant::now()));
    }

    /// Closes the innermost open span and records its duration. A
    /// no-op when disarmed or when no span is open.
    pub fn exit(&mut self) {
        if let Some((path, start)) = self.stack.pop() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.stats.entry(path).or_default().record(ns);
        }
    }

    /// Runs `f` inside a span named `name`, passing the timer back in
    /// so `f` can open child spans.
    pub fn time<R>(&mut self, name: &str, f: impl FnOnce(&mut SpanTimer) -> R) -> R {
        self.enter(name);
        let out = f(self);
        self.exit();
        out
    }

    /// Snapshots the recorded statistics (open spans are not included
    /// until exited).
    pub fn report(&self) -> SpanReport {
        SpanReport {
            spans: self
                .stats
                .iter()
                .map(|(path, s)| SpanEntry {
                    path: path.clone(),
                    count: s.count,
                    total_ns: s.total_ns,
                    min_ns: s.min_ns,
                    mean_ns: s.mean_ns(),
                    max_ns: s.max_ns,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_timer_records_nothing() {
        let mut t = SpanTimer::disarmed();
        assert!(!t.is_armed());
        t.enter("a");
        t.exit();
        let r = t.time("b", |t| {
            t.enter("c");
            t.exit();
            5
        });
        assert_eq!(r, 5);
        assert!(t.report().spans.is_empty());
        assert_eq!(t.report().render_table(), "");
    }

    #[test]
    fn nesting_builds_slash_paths_and_counts() {
        let mut t = SpanTimer::armed();
        for _ in 0..3 {
            t.time("run", |t| {
                t.time("step", |_| ());
                t.time("step", |_| ());
            });
        }
        let report = t.report();
        let paths: Vec<(&str, u64)> = report
            .spans
            .iter()
            .map(|e| (e.path.as_str(), e.count))
            .collect();
        assert_eq!(paths, [("run", 3), ("run/step", 6)]);
        for e in &report.spans {
            assert!(e.min_ns <= e.mean_ns && e.mean_ns <= e.max_ns);
            assert!(e.total_ns >= e.max_ns);
        }
        let table = report.render_table();
        assert!(table.contains("run/step") && table.contains("mean_ns"));
    }

    #[test]
    fn unbalanced_exit_is_a_no_op() {
        let mut t = SpanTimer::armed();
        t.exit(); // nothing open
        assert!(t.report().spans.is_empty());
        t.enter("open-but-never-exited");
        assert!(t.report().spans.is_empty());
    }

    #[cfg(feature = "serde")]
    #[test]
    fn report_serializes() {
        let mut t = SpanTimer::armed();
        t.time("x", |_| ());
        let json = serde_json::to_string(&t.report()).unwrap();
        assert!(json.contains("\"path\":\"x\""));
        let back: SpanReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.spans.len(), 1);
    }
}
