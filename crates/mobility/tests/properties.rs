//! Property-based tests for the mobility models: containment,
//! determinism, and parameter contracts under random configurations.

use manet_geom::{Point, Region};
use manet_mobility::{
    Drunkard, Mobility, RandomDirection, RandomWalk, RandomWaypoint, StationaryModel,
};
use proptest::prelude::*;
use rand::SeedableRng;

fn run_model<M: Mobility<2>>(
    model: &mut M,
    side: f64,
    n: usize,
    steps: usize,
    seed: u64,
) -> Vec<Point<2>> {
    let region: Region<2> = Region::new(side).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut pos = region.place_uniform(n, &mut rng);
    model.init(&pos, &region, &mut rng);
    for _ in 0..steps {
        model.step(&mut pos, &region, &mut rng);
    }
    pos
}

fn all_inside(side: f64, pos: &[Point<2>]) -> bool {
    let region: Region<2> = Region::new(side).unwrap();
    pos.iter().all(|p| region.contains(p))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn waypoint_contains_and_repeats(
        side in 10.0..500.0f64,
        n in 1usize..20,
        v_max_frac in 0.001..0.2f64,
        pause in 0u32..10,
        p_stat in 0.0..=1.0f64,
        seed in any::<u64>(),
    ) {
        let v_max = (v_max_frac * side).max(0.1);
        let mut m1 = RandomWaypoint::new(0.1, v_max.max(0.1), pause, p_stat).unwrap();
        let out1 = run_model(&mut m1, side, n, 50, seed);
        prop_assert!(all_inside(side, &out1));
        // Determinism: a fresh clone with the same seed replays exactly.
        let mut m2 = RandomWaypoint::new(0.1, v_max.max(0.1), pause, p_stat).unwrap();
        let out2 = run_model(&mut m2, side, n, 50, seed);
        prop_assert_eq!(out1, out2);
    }

    #[test]
    fn waypoint_speed_bound_respected(
        side in 50.0..300.0f64,
        seed in any::<u64>(),
    ) {
        let v_max = 0.02 * side;
        let region: Region<2> = Region::new(side).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut pos = region.place_uniform(8, &mut rng);
        let mut m = RandomWaypoint::new(0.1, v_max, 2, 0.0).unwrap();
        m.init(&pos, &region, &mut rng);
        for _ in 0..30 {
            let before = pos.clone();
            m.step(&mut pos, &region, &mut rng);
            for (a, b) in before.iter().zip(&pos) {
                prop_assert!(a.distance(b) <= v_max + 1e-9);
            }
        }
    }

    #[test]
    fn drunkard_contains_and_bounds_jumps(
        side in 10.0..500.0f64,
        n in 1usize..20,
        p_stat in 0.0..=1.0f64,
        p_pause in 0.0..=1.0f64,
        m_frac in 0.001..0.5f64,
        seed in any::<u64>(),
    ) {
        let radius = (m_frac * side).max(1e-3);
        let region: Region<2> = Region::new(side).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut pos = region.place_uniform(n, &mut rng);
        let mut model = Drunkard::new(p_stat, p_pause, radius).unwrap();
        model.init(&pos, &region, &mut rng);
        for _ in 0..40 {
            let before = pos.clone();
            model.step(&mut pos, &region, &mut rng);
            prop_assert!(all_inside(side, &pos));
            for (a, b) in before.iter().zip(&pos) {
                prop_assert!(a.distance(b) <= radius + 1e-9);
            }
        }
    }

    #[test]
    fn walk_and_direction_contain(
        side in 10.0..300.0f64,
        n in 1usize..15,
        speed_frac in 0.001..0.3f64,
        seed in any::<u64>(),
    ) {
        let speed = (speed_frac * side).max(1e-3);
        let mut walk = RandomWalk::new(speed, 0.0).unwrap();
        prop_assert!(all_inside(side, &run_model(&mut walk, side, n, 40, seed)));
        let mut dir = RandomDirection::new(speed, speed, 1, 0.0).unwrap();
        prop_assert!(all_inside(side, &run_model(&mut dir, side, n, 40, seed)));
    }

    #[test]
    fn stationary_model_is_frozen(side in 10.0..300.0f64, n in 1usize..20, seed in any::<u64>()) {
        let region: Region<2> = Region::new(side).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let pos0 = region.place_uniform(n, &mut rng);
        let mut pos = pos0.clone();
        let mut m = StationaryModel::new();
        Mobility::<2>::init(&mut m, &pos, &region, &mut rng);
        for _ in 0..10 {
            m.step(&mut pos, &region, &mut rng);
        }
        prop_assert_eq!(pos, pos0);
    }

    #[test]
    fn p_stationary_extremes(side in 20.0..200.0f64, n in 2usize..15, seed in any::<u64>()) {
        // p = 1: nothing moves, regardless of model.
        let region: Region<2> = Region::new(side).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let pos0 = region.place_uniform(n, &mut rng);
        let mut pos = pos0.clone();
        let mut m = RandomWaypoint::new(0.5, 5.0, 0, 1.0).unwrap();
        m.init(&pos, &region, &mut rng);
        for _ in 0..20 {
            m.step(&mut pos, &region, &mut rng);
        }
        prop_assert_eq!(&pos, &pos0);

        let mut d = Drunkard::new(1.0, 0.0, 5.0).unwrap();
        let mut pos = pos0.clone();
        d.init(&pos, &region, &mut rng);
        for _ in 0..20 {
            d.step(&mut pos, &region, &mut rng);
        }
        prop_assert_eq!(&pos, &pos0);
    }
}
