//! Property-based tests for the mobility models: containment,
//! determinism, and parameter contracts under random configurations.

use manet_geom::{Point, Region};
use manet_mobility::{
    BoundaryMode, Bounded, Drunkard, GaussMarkov, Mobility, ModelRegistry, PaperScale,
    RandomDirection, RandomWalk, RandomWaypoint, ReferencePointGroup, StationaryModel,
};
use proptest::prelude::*;
use rand::SeedableRng;

fn run_model<M: Mobility<2>>(
    model: &mut M,
    side: f64,
    n: usize,
    steps: usize,
    seed: u64,
) -> Vec<Point<2>> {
    let region: Region<2> = Region::new(side).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut pos = region.place_uniform(n, &mut rng);
    model.init(&pos, &region, &mut rng);
    for _ in 0..steps {
        model.step(&mut pos, &region, &mut rng);
    }
    pos
}

fn all_inside(side: f64, pos: &[Point<2>]) -> bool {
    let region: Region<2> = Region::new(side).unwrap();
    pos.iter().all(|p| region.contains(p))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn waypoint_contains_and_repeats(
        side in 10.0..500.0f64,
        n in 1usize..20,
        v_max_frac in 0.001..0.2f64,
        pause in 0u32..10,
        p_stat in 0.0..=1.0f64,
        seed in any::<u64>(),
    ) {
        let v_max = (v_max_frac * side).max(0.1);
        let mut m1 = RandomWaypoint::new(0.1, v_max.max(0.1), pause, p_stat).unwrap();
        let out1 = run_model(&mut m1, side, n, 50, seed);
        prop_assert!(all_inside(side, &out1));
        // Determinism: a fresh clone with the same seed replays exactly.
        let mut m2 = RandomWaypoint::new(0.1, v_max.max(0.1), pause, p_stat).unwrap();
        let out2 = run_model(&mut m2, side, n, 50, seed);
        prop_assert_eq!(out1, out2);
    }

    #[test]
    fn waypoint_speed_bound_respected(
        side in 50.0..300.0f64,
        seed in any::<u64>(),
    ) {
        let v_max = 0.02 * side;
        let region: Region<2> = Region::new(side).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut pos = region.place_uniform(8, &mut rng);
        let mut m = RandomWaypoint::new(0.1, v_max, 2, 0.0).unwrap();
        m.init(&pos, &region, &mut rng);
        for _ in 0..30 {
            let before = pos.clone();
            m.step(&mut pos, &region, &mut rng);
            for (a, b) in before.iter().zip(&pos) {
                prop_assert!(a.distance(b) <= v_max + 1e-9);
            }
        }
    }

    #[test]
    fn drunkard_contains_and_bounds_jumps(
        side in 10.0..500.0f64,
        n in 1usize..20,
        p_stat in 0.0..=1.0f64,
        p_pause in 0.0..=1.0f64,
        m_frac in 0.001..0.5f64,
        seed in any::<u64>(),
    ) {
        let radius = (m_frac * side).max(1e-3);
        let region: Region<2> = Region::new(side).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut pos = region.place_uniform(n, &mut rng);
        let mut model = Drunkard::new(p_stat, p_pause, radius).unwrap();
        model.init(&pos, &region, &mut rng);
        for _ in 0..40 {
            let before = pos.clone();
            model.step(&mut pos, &region, &mut rng);
            prop_assert!(all_inside(side, &pos));
            for (a, b) in before.iter().zip(&pos) {
                prop_assert!(a.distance(b) <= radius + 1e-9);
            }
        }
    }

    #[test]
    fn walk_and_direction_contain(
        side in 10.0..300.0f64,
        n in 1usize..15,
        speed_frac in 0.001..0.3f64,
        seed in any::<u64>(),
    ) {
        let speed = (speed_frac * side).max(1e-3);
        let mut walk = RandomWalk::new(speed, 0.0).unwrap();
        prop_assert!(all_inside(side, &run_model(&mut walk, side, n, 40, seed)));
        let mut dir = RandomDirection::new(speed, speed, 1, 0.0).unwrap();
        prop_assert!(all_inside(side, &run_model(&mut dir, side, n, 40, seed)));
    }

    #[test]
    fn stationary_model_is_frozen(side in 10.0..300.0f64, n in 1usize..20, seed in any::<u64>()) {
        let region: Region<2> = Region::new(side).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let pos0 = region.place_uniform(n, &mut rng);
        let mut pos = pos0.clone();
        let mut m = StationaryModel::new();
        Mobility::<2>::init(&mut m, &pos, &region, &mut rng);
        for _ in 0..10 {
            m.step(&mut pos, &region, &mut rng);
        }
        prop_assert_eq!(pos, pos0);
    }

    #[test]
    fn gauss_markov_contains_and_repeats(
        side in 10.0..500.0f64,
        n in 1usize..20,
        alpha in 0.0..=1.0f64,
        speed_frac in 0.0..0.1f64,
        sigma_frac in 0.001..0.1f64,
        p_stat in 0.0..=1.0f64,
        seed in any::<u64>(),
    ) {
        let mean_speed = speed_frac * side;
        let sigma = (sigma_frac * side).max(1e-6);
        let mut m1 = GaussMarkov::new(alpha, mean_speed, sigma, p_stat).unwrap();
        let out1 = run_model(&mut m1, side, n, 60, seed);
        prop_assert!(all_inside(side, &out1));
        // Determinism: a fresh instance with the same seed replays
        // byte-identically (f64 bit equality via ==).
        let mut m2 = GaussMarkov::new(alpha, mean_speed, sigma, p_stat).unwrap();
        prop_assert_eq!(out1, run_model(&mut m2, side, n, 60, seed));
    }

    #[test]
    fn rpgm_tether_containment_and_determinism(
        side in 20.0..500.0f64,
        n in 2usize..24,
        group_size in 1usize..6,
        tether_frac in 0.01..0.3f64,
        speed_frac in 0.001..0.05f64,
        pause in 0u32..5,
        seed in any::<u64>(),
    ) {
        let tether = (tether_frac * side).max(1e-3);
        let v_max = (speed_frac * side).max(0.2);
        let region: Region<2> = Region::new(side).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut pos = region.place_uniform(n, &mut rng);
        let mut model =
            ReferencePointGroup::new(group_size, tether, 0.1, v_max, pause).unwrap();
        model.init(&pos, &region, &mut rng);
        for _ in 0..40 {
            model.step(&mut pos, &region, &mut rng);
            prop_assert!(all_inside(side, &pos));
            // The member-tether invariant, at every step.
            for i in 0..n {
                let d = pos[i].distance(&pos[model.leader_of(i)]);
                prop_assert!(d <= tether + 1e-9, "node {} strayed {}", i, d);
            }
        }
        // Byte-identical replay from a fresh instance.
        let mut replay =
            ReferencePointGroup::new(group_size, tether, 0.1, v_max, pause).unwrap();
        prop_assert_eq!(pos, run_model(&mut replay, side, n, 40, seed));
    }

    #[test]
    fn bounded_modes_contain_and_repeat(
        side in 10.0..300.0f64,
        n in 1usize..15,
        speed_frac in 0.01..0.5f64,
        mode_idx in 0usize..3,
        seed in any::<u64>(),
    ) {
        let mode = [BoundaryMode::Reflect, BoundaryMode::Wrap, BoundaryMode::Bounce][mode_idx];
        let speed = (speed_frac * side).max(1e-3);

        let mut walk = Bounded::new(RandomWalk::new(speed, 0.0).unwrap(), mode);
        let out = run_model(&mut walk, side, n, 40, seed);
        prop_assert!(all_inside(side, &out));
        let mut replay = Bounded::new(RandomWalk::new(speed, 0.0).unwrap(), mode);
        prop_assert_eq!(out, run_model(&mut replay, side, n, 40, seed));

        let mut gm = Bounded::new(
            GaussMarkov::new(0.9, speed, speed / 2.0, 0.0).unwrap(),
            mode,
        );
        let out = run_model(&mut gm, side, n, 40, seed);
        prop_assert!(all_inside(side, &out));

        let mut dir = Bounded::new(RandomDirection::new(speed, speed, 1, 0.0).unwrap(), mode);
        prop_assert!(all_inside(side, &run_model(&mut dir, side, n, 40, seed)));
    }

    #[test]
    fn registry_builds_replay_identically(
        side in 20.0..400.0f64,
        n in 1usize..16,
        pause in 0u32..10,
        seed in any::<u64>(),
    ) {
        let registry = ModelRegistry::<2>::with_builtins();
        let scale = PaperScale::new(side).with_pause(pause);
        for name in ["gauss-markov", "rpgm", "walk-wrap", "direction-bounce"] {
            let mut a = registry.build(name, &scale).unwrap();
            let mut b = registry.build(name, &scale).unwrap();
            let out_a = run_model(&mut a, side, n, 30, seed);
            prop_assert!(all_inside(side, &out_a), "{} escaped", name);
            prop_assert_eq!(out_a, run_model(&mut b, side, n, 30, seed));
        }
    }

    #[test]
    fn p_stationary_extremes(side in 20.0..200.0f64, n in 2usize..15, seed in any::<u64>()) {
        // p = 1: nothing moves, regardless of model.
        let region: Region<2> = Region::new(side).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let pos0 = region.place_uniform(n, &mut rng);
        let mut pos = pos0.clone();
        let mut m = RandomWaypoint::new(0.5, 5.0, 0, 1.0).unwrap();
        m.init(&pos, &region, &mut rng);
        for _ in 0..20 {
            m.step(&mut pos, &region, &mut rng);
        }
        prop_assert_eq!(&pos, &pos0);

        let mut d = Drunkard::new(1.0, 0.0, 5.0).unwrap();
        let mut pos = pos0.clone();
        d.init(&pos, &region, &mut rng);
        for _ in 0..20 {
            d.step(&mut pos, &region, &mut rng);
        }
        prop_assert_eq!(&pos, &pos0);
    }
}

// ---------------------------------------------------------------------------
// The displacement-bound contract behind the incremental step kernel:
// whenever a registry model declares `max_step_displacement`, its
// steady-state steps must respect it (the kernel treats violations as
// fallback-worthy lies). RPGM's first step is the one sanctioned
// exception — it gathers uniformly-placed members onto their leaders.
// ---------------------------------------------------------------------------

#[test]
fn declared_displacement_bounds_hold_on_steady_state_steps() {
    let side = 200.0;
    let region: Region<2> = Region::new(side).unwrap();
    let registry = ModelRegistry::<2>::with_builtins();
    let scale = PaperScale::new(side).with_pause(4);
    let mut bounded_models = 0;
    for name in registry.names() {
        let mut model = registry.build(name, &scale).unwrap();
        let Some(bound) = model.max_step_displacement() else {
            continue;
        };
        bounded_models += 1;
        assert!(bound.is_finite() && bound >= 0.0, "{name}: invalid bound");
        let mut rng = rand::rngs::StdRng::seed_from_u64(2026);
        let mut pos = region.place_uniform(36, &mut rng);
        model.init(&pos, &region, &mut rng);
        let limit = bound * (1.0 + 1e-9);
        for step in 0..150 {
            let prev = pos.clone();
            model.step(&mut pos, &region, &mut rng);
            if step == 0 && name == "rpgm" {
                continue; // the sanctioned gathering step
            }
            for (i, (a, b)) in prev.iter().zip(&pos).enumerate() {
                let d = a.distance(b);
                assert!(
                    d <= limit,
                    "{name}: node {i} moved {d} > declared bound {bound} at step {step}"
                );
            }
        }
    }
    // stationary, waypoint, drunkard, walk, direction, rpgm, and the
    // reflect/bounce wrap variants declare bounds; gauss-markov and
    // the wrap-torus variants do not.
    assert!(bounded_models >= 8, "bounds disappeared from the registry");
}

#[test]
fn wrap_and_gaussian_models_decline_to_declare_bounds() {
    let registry = ModelRegistry::<2>::with_builtins();
    let scale = PaperScale::new(100.0);
    for name in [
        "gauss-markov",
        "walk-wrap",
        "direction-wrap",
        "gauss-markov-wrap",
    ] {
        let model = registry.build(name, &scale).unwrap();
        assert_eq!(
            model.max_step_displacement(),
            None,
            "{name} cannot promise a Euclidean per-step bound"
        );
    }
    for name in ["walk-bounce", "direction-bounce"] {
        let model = registry.build(name, &scale).unwrap();
        assert!(
            model.max_step_displacement().is_some(),
            "{name} folds motion non-expansively and should declare its bound"
        );
    }
}
