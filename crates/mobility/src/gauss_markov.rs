//! Gauss–Markov mobility: velocity-correlated smooth motion.
//!
//! Where the drunkard teleports and the waypoint travels in straight
//! legs, the Gauss–Markov model (Liang & Haas, adapted here to a
//! dimension-free velocity form) evolves each node's **velocity** as a
//! stationary first-order autoregression:
//!
//! ```text
//! v(t+1) = α·v(t) + (1 − α)·v̄ + σ·√(1 − α²)·w(t)
//! ```
//!
//! with `w(t)` i.i.d. standard Gaussian per axis, a per-node drift
//! velocity `v̄` of magnitude `mean_speed` in a random direction, and
//! memory `α ∈ [0, 1]`. `α = 0` degenerates to an uncorrelated
//! Gaussian walk, `α = 1` to straight-line motion; intermediate values
//! give the smooth, turn-averse trajectories real vehicles and
//! pedestrians produce. The `√(1 − α²)` noise scaling keeps the
//! stationary per-axis velocity variance at `σ²` for every `α`, so the
//! *quantity* of mobility is comparable across memory settings.
//!
//! Standalone, the model reflects at the region boundary (mirroring
//! both the velocity and the drift). Wrap and bounce treatments are
//! available through [`crate::Bounded`].

use crate::{validate_positive, validate_probability, FreeMobility, Mobility, ModelError};
use manet_geom::{
    sampling::{sample_standard_normal, sample_unit_vector},
    Point, Region,
};
use rand::{Rng, RngExt};

/// Per-node kinematic state.
#[derive(Debug, Clone, Copy, PartialEq)]
enum NodeState<const D: usize> {
    /// Never moves (selected with probability `p_stationary` at init).
    Stationary,
    /// Mobile node: current velocity and persistent drift velocity.
    Mobile { vel: [f64; D], drift: [f64; D] },
}

/// The Gauss–Markov mobility model.
///
/// Speeds are in distance units per mobility step. The paper-scale
/// defaults used by the model registry are `α = 0.85`,
/// `mean_speed = 0.005·l`, `σ = 0.0025·l`, `p_stationary = 0` — the
/// same per-step displacement scale as the paper's §4.2 waypoint and
/// drunkard settings.
///
/// # Example
///
/// ```
/// use manet_geom::Region;
/// use manet_mobility::{GaussMarkov, Mobility};
/// use rand::SeedableRng;
///
/// let region: Region<2> = Region::new(100.0).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(9);
/// let mut positions = region.place_uniform(16, &mut rng);
///
/// let mut model = GaussMarkov::new(0.85, 0.5, 0.25, 0.0)?;
/// model.init(&positions, &region, &mut rng);
/// for _ in 0..100 {
///     model.step(&mut positions, &region, &mut rng);
/// }
/// assert!(positions.iter().all(|p| region.contains(p)));
/// # Ok::<(), manet_mobility::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GaussMarkov<const D: usize> {
    alpha: f64,
    mean_speed: f64,
    sigma: f64,
    p_stationary: f64,
    state: Vec<NodeState<D>>,
}

impl<const D: usize> GaussMarkov<D> {
    /// Creates the model.
    ///
    /// # Errors
    ///
    /// * [`ModelError::InvalidProbability`] when `alpha` or
    ///   `p_stationary` is outside `[0, 1]`;
    /// * [`ModelError::NonPositive`] when `sigma <= 0` or
    ///   `mean_speed < 0`;
    /// * [`ModelError::NonFinite`] for NaN/infinite parameters.
    pub fn new(
        alpha: f64,
        mean_speed: f64,
        sigma: f64,
        p_stationary: f64,
    ) -> Result<Self, ModelError> {
        validate_probability("alpha", alpha)?;
        validate_positive("sigma", sigma)?;
        if !mean_speed.is_finite() {
            return Err(ModelError::NonFinite { name: "mean_speed" });
        }
        if mean_speed < 0.0 {
            return Err(ModelError::NonPositive {
                name: "mean_speed",
                value: mean_speed,
            });
        }
        validate_probability("p_stationary", p_stationary)?;
        Ok(GaussMarkov {
            alpha,
            mean_speed,
            sigma,
            p_stationary,
            state: Vec::new(),
        })
    }

    /// Paper-scale parameters for region side `l`: `α = 0.85`,
    /// `mean_speed = 0.005·l`, `σ = 0.0025·l`, `p_stationary = 0`,
    /// matching the per-step displacement scale of the paper's §4.2
    /// waypoint and drunkard defaults.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`] for non-positive `l`.
    pub fn paper_defaults(side: f64) -> Result<Self, ModelError> {
        GaussMarkov::new(0.85, 0.005 * side, 0.0025 * side, 0.0)
    }

    /// Velocity memory `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Magnitude of the per-node drift velocity.
    pub fn mean_speed(&self) -> f64 {
        self.mean_speed
    }

    /// Stationary per-axis velocity standard deviation `σ`.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Probability that a node is permanently stationary.
    pub fn p_stationary(&self) -> f64 {
        self.p_stationary
    }

    /// Number of permanently stationary nodes (0 before `init`).
    pub fn stationary_count(&self) -> usize {
        self.state
            .iter()
            .filter(|s| matches!(s, NodeState::Stationary))
            .count()
    }
}

impl<const D: usize> Mobility<D> for GaussMarkov<D> {
    fn init(&mut self, positions: &[Point<D>], _region: &Region<D>, rng: &mut dyn Rng) {
        self.state = positions
            .iter()
            .map(|_| {
                if self.p_stationary > 0.0 && rng.random_bool(self.p_stationary) {
                    NodeState::Stationary
                } else {
                    let mut drift = [0.0; D];
                    if self.mean_speed > 0.0 {
                        let dir: Point<D> = sample_unit_vector(rng);
                        for (d, c) in drift.iter_mut().zip(&dir.coords()) {
                            *d = c * self.mean_speed;
                        }
                    }
                    // Warm start from the stationary velocity law.
                    let mut vel = drift;
                    for v in &mut vel {
                        *v += self.sigma * sample_standard_normal(rng);
                    }
                    NodeState::Mobile { vel, drift }
                }
            })
            .collect();
    }

    fn step(&mut self, positions: &mut [Point<D>], region: &Region<D>, rng: &mut dyn Rng) {
        self.step_free(positions, region, rng);
        for (i, pos) in positions.iter_mut().enumerate() {
            if !region.contains(pos) {
                let (folded, mirrored) = crate::boundary::reflect_tracking(region, pos);
                *pos = folded;
                self.deflect(i, &mirrored);
            }
        }
    }

    fn name(&self) -> &'static str {
        "gauss-markov"
    }

    fn max_step_displacement(&self) -> Option<f64> {
        // Velocities carry unbounded Gaussian innovations: no finite
        // per-step displacement bound exists (the trait default, made
        // explicit here because the omission is load-bearing for the
        // incremental step kernel's contract check).
        None
    }
}

impl<const D: usize> FreeMobility<D> for GaussMarkov<D> {
    fn step_free(&mut self, positions: &mut [Point<D>], _region: &Region<D>, rng: &mut dyn Rng) {
        assert_eq!(
            positions.len(),
            self.state.len(),
            "step called with a different node count than init"
        );
        let noise_scale = self.sigma * (1.0 - self.alpha * self.alpha).sqrt();
        for (pos, state) in positions.iter_mut().zip(&mut self.state) {
            if let NodeState::Mobile { vel, drift } = state {
                let mut out = pos.coords();
                for ((v, d), c) in vel.iter_mut().zip(drift.iter()).zip(&mut out) {
                    *v = self.alpha * *v
                        + (1.0 - self.alpha) * *d
                        + noise_scale * sample_standard_normal(rng);
                    *c += *v;
                }
                *pos = Point::new(out);
            }
        }
    }

    fn deflect(&mut self, i: usize, mirrored: &[bool; D]) {
        if let NodeState::Mobile { vel, drift } = &mut self.state[i] {
            for ((v, d), &m) in vel.iter_mut().zip(drift.iter_mut()).zip(mirrored) {
                if m {
                    *v = -*v;
                    *d = -*d;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn region() -> Region<2> {
        Region::new(100.0).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(GaussMarkov::<2>::new(-0.1, 1.0, 1.0, 0.0).is_err());
        assert!(GaussMarkov::<2>::new(1.1, 1.0, 1.0, 0.0).is_err());
        assert!(GaussMarkov::<2>::new(0.5, -1.0, 1.0, 0.0).is_err());
        assert!(GaussMarkov::<2>::new(0.5, 1.0, 0.0, 0.0).is_err());
        assert!(GaussMarkov::<2>::new(0.5, 1.0, 1.0, 1.5).is_err());
        assert!(GaussMarkov::<2>::new(0.5, f64::NAN, 1.0, 0.0).is_err());
        assert!(GaussMarkov::<2>::new(0.5, 0.0, 1.0, 0.0).is_ok());
        assert!(GaussMarkov::<2>::new(0.5, 1.0, 1.0, 0.3).is_ok());
    }

    #[test]
    fn paper_defaults_scale_with_side() {
        let m = GaussMarkov::<2>::paper_defaults(1024.0).unwrap();
        assert_eq!(m.alpha(), 0.85);
        assert!((m.mean_speed() - 5.12).abs() < 1e-12);
        assert!((m.sigma() - 2.56).abs() < 1e-12);
        assert_eq!(m.p_stationary(), 0.0);
    }

    #[test]
    fn nodes_stay_in_region() {
        let r = region();
        let mut g = rng(41);
        let mut pos = r.place_uniform(20, &mut g);
        // Aggressive speeds to provoke reflections.
        let mut m = GaussMarkov::new(0.9, 10.0, 8.0, 0.0).unwrap();
        m.init(&pos, &r, &mut g);
        for _ in 0..500 {
            m.step(&mut pos, &r, &mut g);
            assert!(pos.iter().all(|p| r.contains(p)));
        }
    }

    #[test]
    fn high_alpha_trajectories_are_smooth() {
        // With α close to 1 and small noise, consecutive displacement
        // vectors stay nearly parallel: the turn angle per step is
        // small, unlike the drunkard's uniform scattering.
        let r: Region<2> = Region::new(10_000.0).unwrap();
        let mut g = rng(42);
        let mut pos = vec![Point::new([5_000.0, 5_000.0])];
        let mut m = GaussMarkov::new(0.98, 5.0, 1.0, 0.0).unwrap();
        m.init(&pos, &r, &mut g);
        let mut prev = pos[0];
        m.step(&mut pos, &r, &mut g);
        let mut cos_sum = 0.0;
        let mut count = 0;
        let mut last_disp = pos[0] - prev;
        prev = pos[0];
        for _ in 0..200 {
            m.step(&mut pos, &r, &mut g);
            let disp = pos[0] - prev;
            prev = pos[0];
            let dot = disp[0] * last_disp[0] + disp[1] * last_disp[1];
            let norms = disp.norm() * last_disp.norm();
            if norms > 0.0 {
                cos_sum += dot / norms;
                count += 1;
            }
            last_disp = disp;
        }
        let mean_cos = cos_sum / count as f64;
        assert!(mean_cos > 0.9, "mean turn cosine {mean_cos}");
    }

    #[test]
    fn alpha_zero_is_uncorrelated() {
        // α = 0 with zero drift: displacements are i.i.d. Gaussian, so
        // the mean turn cosine is near zero.
        let r: Region<2> = Region::new(10_000.0).unwrap();
        let mut g = rng(43);
        let mut pos = vec![Point::new([5_000.0, 5_000.0])];
        let mut m = GaussMarkov::new(0.0, 0.0, 2.0, 0.0).unwrap();
        m.init(&pos, &r, &mut g);
        let mut prev = pos[0];
        m.step(&mut pos, &r, &mut g);
        let mut last_disp = pos[0] - prev;
        prev = pos[0];
        let mut cos_sum = 0.0;
        let n = 400;
        for _ in 0..n {
            m.step(&mut pos, &r, &mut g);
            let disp = pos[0] - prev;
            prev = pos[0];
            let dot = disp[0] * last_disp[0] + disp[1] * last_disp[1];
            cos_sum += dot / (disp.norm() * last_disp.norm());
            last_disp = disp;
        }
        let mean_cos = cos_sum / n as f64;
        assert!(mean_cos.abs() < 0.15, "mean turn cosine {mean_cos}");
    }

    #[test]
    fn stationary_nodes_frozen() {
        let r = region();
        let mut g = rng(44);
        let mut pos = r.place_uniform(10, &mut g);
        let before = pos.clone();
        let mut m = GaussMarkov::new(0.8, 1.0, 1.0, 1.0).unwrap();
        m.init(&pos, &r, &mut g);
        assert_eq!(m.stationary_count(), 10);
        for _ in 0..30 {
            m.step(&mut pos, &r, &mut g);
        }
        assert_eq!(pos, before);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let r = region();
        let run = |seed| {
            let mut g = rng(seed);
            let mut pos = r.place_uniform(8, &mut g);
            let mut m = GaussMarkov::new(0.85, 1.0, 0.5, 0.2).unwrap();
            m.init(&pos, &r, &mut g);
            for _ in 0..80 {
                m.step(&mut pos, &r, &mut g);
            }
            pos
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    #[should_panic(expected = "different node count")]
    fn step_with_wrong_count_panics() {
        let r = region();
        let mut g = rng(45);
        let pos = r.place_uniform(5, &mut g);
        let mut m = GaussMarkov::new(0.8, 1.0, 1.0, 0.0).unwrap();
        m.init(&pos, &r, &mut g);
        let mut other = r.place_uniform(6, &mut g);
        m.step(&mut other, &r, &mut g);
    }

    #[test]
    fn name_is_stable() {
        let m = GaussMarkov::<2>::new(0.5, 1.0, 1.0, 0.0).unwrap();
        assert_eq!(m.name(), "gauss-markov");
    }
}
