//! Reference-point group mobility (RPGM, Hong et al.).
//!
//! Nodes are partitioned into groups of `group_size` consecutive
//! indices; the first node of each group is its **leader** and follows
//! random-waypoint legs across the region. Every other node is
//! tethered to its leader: it keeps a persistent reference offset of
//! norm at most `tether/2` and adds a fresh jitter of norm at most
//! `tether/2` each step, so a member is **never** more than `tether`
//! away from its leader (the member-tether invariant; region clamping
//! can only shrink that distance, since the leader is inside).
//!
//! The model produces the clustered and partitioned connectivity
//! regimes the per-node models cannot: with `tether ≪ l` the network
//! is a set of internally dense clusters whose global connectivity is
//! governed entirely by leader-to-leader distances.

use crate::{validate_positive, Mobility, ModelError};
use manet_geom::{sampling::sample_in_ball, Point, Region};
use rand::{Rng, RngExt};

/// Leader leg state (random-waypoint kinematics).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Leg<const D: usize> {
    Paused { remaining: u32 },
    Moving { dest: Point<D>, speed: f64 },
}

/// Per-node group state.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Role<const D: usize> {
    /// Group leader, moving by waypoint legs.
    Leader(Leg<D>),
    /// Member with a persistent reference offset from its leader.
    Member { offset: [f64; D] },
}

/// The reference-point group mobility model.
///
/// # Example
///
/// ```
/// use manet_geom::Region;
/// use manet_mobility::{Mobility, ReferencePointGroup};
/// use rand::SeedableRng;
///
/// let region: Region<2> = Region::new(100.0).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(9);
/// let mut positions = region.place_uniform(12, &mut rng);
///
/// // Groups of 4, members within 8.0 of their leader.
/// let mut model = ReferencePointGroup::new(4, 8.0, 0.5, 2.0, 10)?;
/// model.init(&positions, &region, &mut rng);
/// for _ in 0..50 {
///     model.step(&mut positions, &region, &mut rng);
/// }
/// assert!(positions.iter().all(|p| region.contains(p)));
/// // The member-tether invariant: node 1 stays within 8.0 of node 0.
/// assert!(positions[0].distance(&positions[1]) <= 8.0);
/// # Ok::<(), manet_mobility::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ReferencePointGroup<const D: usize> {
    group_size: usize,
    tether: f64,
    v_min: f64,
    v_max: f64,
    pause_steps: u32,
    state: Vec<Role<D>>,
}

impl<const D: usize> ReferencePointGroup<D> {
    /// Creates the model: groups of `group_size` consecutive nodes,
    /// members within `tether` of their leader, leaders traveling
    /// waypoint legs at speeds in `[v_min, v_max]` with `pause_steps`
    /// pauses.
    ///
    /// # Errors
    ///
    /// * [`ModelError::NonPositive`] when `group_size == 0`, or when
    ///   `tether` or `v_min` is not strictly positive;
    /// * [`ModelError::EmptySpeedRange`] when `v_min > v_max`;
    /// * [`ModelError::NonFinite`] for NaN/infinite parameters.
    pub fn new(
        group_size: usize,
        tether: f64,
        v_min: f64,
        v_max: f64,
        pause_steps: u32,
    ) -> Result<Self, ModelError> {
        if group_size == 0 {
            return Err(ModelError::NonPositive {
                name: "group_size",
                value: 0.0,
            });
        }
        validate_positive("tether", tether)?;
        validate_positive("v_min", v_min)?;
        validate_positive("v_max", v_max)?;
        if v_min > v_max {
            return Err(ModelError::EmptySpeedRange { v_min, v_max });
        }
        Ok(ReferencePointGroup {
            group_size,
            tether,
            v_min,
            v_max,
            pause_steps,
            state: Vec::new(),
        })
    }

    /// Paper-scale parameters for region side `l`: groups of 4 within
    /// a `0.05·l` tether, leaders at the §4.2 waypoint speeds
    /// (`v_min = 0.1`, `v_max = 0.01·l`) with `pause_steps` pauses.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`] when `0.01·l < 0.1` (regions smaller
    /// than `l = 10` make the leader speed range empty).
    pub fn paper_defaults(side: f64, pause_steps: u32) -> Result<Self, ModelError> {
        ReferencePointGroup::new(4, 0.05 * side, 0.1, 0.01 * side, pause_steps)
    }

    /// Number of consecutive nodes per group.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Maximum member-to-leader distance.
    pub fn tether(&self) -> f64 {
        self.tether
    }

    /// Minimum leader speed (distance per step).
    pub fn v_min(&self) -> f64 {
        self.v_min
    }

    /// Maximum leader speed (distance per step).
    pub fn v_max(&self) -> f64 {
        self.v_max
    }

    /// Leader pause duration in steps.
    pub fn pause_steps(&self) -> u32 {
        self.pause_steps
    }

    /// The group index of node `i`.
    pub fn group_of(&self, i: usize) -> usize {
        i / self.group_size
    }

    /// The leader node index for node `i` (`i` itself for leaders).
    pub fn leader_of(&self, i: usize) -> usize {
        self.group_of(i) * self.group_size
    }

    /// Whether node `i` is a group leader.
    pub fn is_leader(&self, i: usize) -> bool {
        i.is_multiple_of(self.group_size)
    }

    fn new_leg(&self, region: &Region<D>, rng: &mut dyn Rng) -> Leg<D> {
        let dest = region.sample_uniform(rng);
        let speed = if self.v_min == self.v_max {
            self.v_min
        } else {
            rng.random_range(self.v_min..=self.v_max)
        };
        Leg::Moving { dest, speed }
    }
}

impl<const D: usize> Mobility<D> for ReferencePointGroup<D> {
    fn init(&mut self, positions: &[Point<D>], region: &Region<D>, rng: &mut dyn Rng) {
        let origin = Point::new([0.0; D]);
        self.state = (0..positions.len())
            .map(|i| {
                if self.is_leader(i) {
                    Role::Leader(self.new_leg(region, rng))
                } else {
                    let o = sample_in_ball(&origin, self.tether / 2.0, rng)
                        .expect("tether validated at construction"); // lint:allow(R3): tether validated positive and finite at construction
                    Role::Member { offset: o.coords() }
                }
            })
            .collect();
    }

    fn step(&mut self, positions: &mut [Point<D>], region: &Region<D>, rng: &mut dyn Rng) {
        assert_eq!(
            positions.len(),
            self.state.len(),
            "step called with a different node count than init"
        );
        let origin = Point::new([0.0; D]);
        // Leaders precede their members in index order, so a single
        // pass sees every member's leader already advanced this step.
        for i in 0..positions.len() {
            match self.state[i] {
                Role::Leader(leg) => {
                    let mut leg = match leg {
                        Leg::Paused { remaining } if remaining > 0 => {
                            self.state[i] = Role::Leader(Leg::Paused {
                                remaining: remaining - 1,
                            });
                            continue;
                        }
                        Leg::Paused { .. } => self.new_leg(region, rng),
                        moving => moving,
                    };
                    if let Leg::Moving { dest, speed } = leg {
                        let (next, arrived) = positions[i].step_toward(&dest, speed);
                        positions[i] = next;
                        if arrived {
                            leg = Leg::Paused {
                                remaining: self.pause_steps,
                            };
                        }
                    }
                    self.state[i] = Role::Leader(leg);
                }
                Role::Member { offset } => {
                    let leader = positions[self.leader_of(i)];
                    let jitter = sample_in_ball(&origin, self.tether / 2.0, rng)
                        .expect("tether validated at construction"); // lint:allow(R3): tether validated positive and finite at construction
                    let mut out = leader.coords();
                    for ((c, o), j) in out.iter_mut().zip(&offset).zip(&jitter.coords()) {
                        *c += o + j;
                    }
                    // |offset| + |jitter| <= tether, and clamping toward
                    // the (in-region) leader only shrinks the distance:
                    // the tether invariant survives the boundary.
                    positions[i] = region.clamp(&Point::new(out));
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "rpgm"
    }

    fn max_step_displacement(&self) -> Option<f64> {
        // Steady-state bound. A leader moves at most v_max (waypoint
        // leg). A member sits at clamp(leader + offset + jitter) with
        // the persistent offset unchanged across steps, so its
        // displacement is bounded by the leader's move plus the jitter
        // difference: |j_new - j_old| <= tether/2 + tether/2 = tether
        // (clamping is non-expansive). Exception: the *first* step
        // after `init` gathers uniformly-placed members onto their
        // leaders and can move them across the region — the step
        // kernel's contract check detects exactly that step and routes
        // it through its full-diff fallback (see
        // [`Mobility::max_step_displacement`]).
        Some(self.v_max + self.tether)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn region() -> Region<2> {
        Region::new(100.0).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(ReferencePointGroup::<2>::new(0, 5.0, 0.1, 1.0, 0).is_err());
        assert!(ReferencePointGroup::<2>::new(4, 0.0, 0.1, 1.0, 0).is_err());
        assert!(ReferencePointGroup::<2>::new(4, 5.0, 0.0, 1.0, 0).is_err());
        assert!(ReferencePointGroup::<2>::new(4, 5.0, 2.0, 1.0, 0).is_err());
        assert!(ReferencePointGroup::<2>::new(4, f64::NAN, 0.1, 1.0, 0).is_err());
        assert!(ReferencePointGroup::<2>::new(4, 5.0, 0.1, 1.0, 3).is_ok());
    }

    #[test]
    fn paper_defaults_scale_with_side() {
        let m = ReferencePointGroup::<2>::paper_defaults(1024.0, 200).unwrap();
        assert_eq!(m.group_size(), 4);
        assert!((m.tether() - 51.2).abs() < 1e-12);
        assert_eq!(m.v_min(), 0.1);
        assert!((m.v_max() - 10.24).abs() < 1e-12);
        assert_eq!(m.pause_steps(), 200);
        assert!(ReferencePointGroup::<2>::paper_defaults(5.0, 0).is_err());
    }

    #[test]
    fn group_topology_helpers() {
        let m = ReferencePointGroup::<2>::new(3, 5.0, 0.1, 1.0, 0).unwrap();
        assert!(m.is_leader(0) && m.is_leader(3) && !m.is_leader(4));
        assert_eq!(m.group_of(5), 1);
        assert_eq!(m.leader_of(5), 3);
        assert_eq!(m.leader_of(0), 0);
    }

    #[test]
    fn tether_invariant_holds_every_step() {
        let r = region();
        let mut g = rng(61);
        let mut pos = r.place_uniform(14, &mut g); // 4 groups, last partial
        let mut m = ReferencePointGroup::new(4, 9.0, 0.5, 4.0, 2).unwrap();
        m.init(&pos, &r, &mut g);
        for _ in 0..400 {
            m.step(&mut pos, &r, &mut g);
            assert!(pos.iter().all(|p| r.contains(p)));
            for i in 0..pos.len() {
                let d = pos[i].distance(&pos[m.leader_of(i)]);
                assert!(d <= 9.0 + 1e-9, "node {i} strayed {d} from its leader");
            }
        }
    }

    #[test]
    fn groups_cluster_below_tether_scale() {
        // After mixing, the average member-to-leader distance is far
        // below the region scale: the model really clusters.
        let r = region();
        let mut g = rng(62);
        let mut pos = r.place_uniform(16, &mut g);
        let mut m = ReferencePointGroup::new(4, 10.0, 0.5, 2.0, 0).unwrap();
        m.init(&pos, &r, &mut g);
        for _ in 0..100 {
            m.step(&mut pos, &r, &mut g);
        }
        let mut sum = 0.0;
        let mut count = 0;
        for i in 0..pos.len() {
            if !m.is_leader(i) {
                sum += pos[i].distance(&pos[m.leader_of(i)]);
                count += 1;
            }
        }
        let mean = sum / count as f64;
        assert!(mean <= 10.0, "mean member distance {mean}");
        assert!(mean > 0.0);
    }

    #[test]
    fn leaders_travel_the_region() {
        let r = region();
        let mut g = rng(63);
        let mut pos = vec![Point::new([50.0, 50.0]); 8];
        let start = pos.clone();
        let mut m = ReferencePointGroup::new(4, 5.0, 2.0, 5.0, 0).unwrap();
        m.init(&pos, &r, &mut g);
        for _ in 0..200 {
            m.step(&mut pos, &r, &mut g);
        }
        // Both leaders moved substantially.
        assert!(start[0].distance(&pos[0]) > 5.0);
        assert!(start[4].distance(&pos[4]) > 5.0);
    }

    #[test]
    fn group_size_one_is_all_leaders() {
        let r = region();
        let mut g = rng(64);
        let mut pos = r.place_uniform(6, &mut g);
        let mut m = ReferencePointGroup::new(1, 5.0, 0.5, 2.0, 0).unwrap();
        m.init(&pos, &r, &mut g);
        for i in 0..6 {
            assert!(m.is_leader(i));
        }
        for _ in 0..50 {
            m.step(&mut pos, &r, &mut g);
            assert!(pos.iter().all(|p| r.contains(p)));
        }
    }

    #[test]
    fn deterministic_under_same_seed() {
        let r = region();
        let run = |seed| {
            let mut g = rng(seed);
            let mut pos = r.place_uniform(10, &mut g);
            let mut m = ReferencePointGroup::new(3, 7.0, 0.5, 3.0, 1).unwrap();
            m.init(&pos, &r, &mut g);
            for _ in 0..80 {
                m.step(&mut pos, &r, &mut g);
            }
            pos
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    #[should_panic(expected = "different node count")]
    fn step_with_wrong_count_panics() {
        let r = region();
        let mut g = rng(65);
        let pos = r.place_uniform(6, &mut g);
        let mut m = ReferencePointGroup::new(3, 5.0, 0.5, 2.0, 0).unwrap();
        m.init(&pos, &r, &mut g);
        let mut other = r.place_uniform(7, &mut g);
        m.step(&mut other, &r, &mut g);
    }

    #[test]
    fn name_is_stable() {
        let m = ReferencePointGroup::<2>::new(4, 5.0, 0.1, 1.0, 0).unwrap();
        assert_eq!(m.name(), "rpgm");
    }
}
