//! Mobility models for ad hoc network simulation — the scenario zoo.
//!
//! Every model implements the [`Mobility`] trait and is resolved by
//! name through the [`ModelRegistry`]: an extensible name →
//! validated-constructor table with paper-scale defaults, so new
//! families reach every simulation pipeline and every `manet-repro
//! --models` sweep without an enum edit. [`AnyModel`] is the
//! type-erased handle the registry hands out; it still satisfies the
//! `Clone + Send + Sync` bounds the parallel engines require.
//!
//! The zoo spans three kinds of motion:
//!
//! * **Per-node, paper §4.1** — [`RandomWaypoint`] (*intentional*
//!   travel toward uniform destinations with pauses) and [`Drunkard`]
//!   (*non-intentional* uniform jumps in a ball of radius `m`), plus
//!   the classical extensions [`RandomWalk`] and [`RandomDirection`]
//!   and the degenerate [`StationaryModel`];
//! * **Velocity-correlated** — [`GaussMarkov`], a stationary
//!   autoregression on node velocity with tunable memory `α`: smooth,
//!   turn-averse trajectories between the waypoint's straight legs and
//!   the drunkard's scatter;
//! * **Group-structured** — [`ReferencePointGroup`] (RPGM): waypoint
//!   leaders with members tethered within a radius, producing the
//!   clustered/partitioned regimes no per-node model reaches.
//!
//! Free-moving families additionally take a boundary treatment via the
//! [`Bounded`] wrapper and [`BoundaryMode`]: specular reflection,
//! torus wrap-around, or stop-and-reverse bouncing.
//!
//! All models are deterministic functions of the RNG handed to them,
//! `Clone` (so parallel simulation iterations can each own a fresh
//! copy), region-safe, and validated at construction.
//!
//! # Example
//!
//! ```
//! use manet_geom::Region;
//! use manet_mobility::{Mobility, ModelRegistry, PaperScale};
//! use rand::SeedableRng;
//!
//! let region: Region<2> = Region::new(100.0).unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(9);
//! let mut positions = region.place_uniform(16, &mut rng);
//!
//! let registry = ModelRegistry::<2>::with_builtins();
//! let mut model = registry.build("rpgm", &PaperScale::new(100.0).with_pause(20))?;
//! model.init(&positions, &region, &mut rng);
//! for _ in 0..100 {
//!     model.step(&mut positions, &region, &mut rng);
//! }
//! assert!(positions.iter().all(|p| region.contains(p)));
//! # Ok::<(), manet_mobility::ModelError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod boundary;
pub mod direction;
pub mod drunkard;
pub mod gauss_markov;
pub mod group;
pub mod registry;
pub mod stationary;
pub mod walk;
pub mod waypoint;

pub use boundary::{BoundaryMode, Bounded, FreeMobility};
pub use direction::RandomDirection;
pub use drunkard::Drunkard;
pub use gauss_markov::GaussMarkov;
pub use group::ReferencePointGroup;
pub use registry::{AnyModel, ModelRegistry, PaperScale};
pub use stationary::StationaryModel;
pub use walk::RandomWalk;
pub use waypoint::RandomWaypoint;

use manet_geom::{Point, Region};
use rand::Rng;

/// A mobility model: per-node state evolving in discrete steps.
///
/// Usage protocol: call [`Mobility::init`] once with the initial
/// placement, then [`Mobility::step`] once per mobility step. Models
/// must keep every node inside the region.
///
/// Models draw all randomness from the `rng` argument, so a model clone
/// driven by an identically seeded RNG reproduces the same trajectory.
pub trait Mobility<const D: usize> {
    /// Initializes per-node state for `positions.len()` nodes.
    fn init(&mut self, positions: &[Point<D>], region: &Region<D>, rng: &mut dyn Rng);

    /// Advances all nodes by one mobility step, updating `positions`
    /// in place.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `positions.len()` differs from
    /// the length passed to `init` (a logic error in the driver).
    fn step(&mut self, positions: &mut [Point<D>], region: &Region<D>, rng: &mut dyn Rng);

    /// Short human-readable model name for reports.
    fn name(&self) -> &'static str;

    /// An upper bound on any single node's Euclidean displacement in
    /// one [`Mobility::step`], when the model can declare one.
    ///
    /// This is the contract the incremental step kernel
    /// (`DynamicGraph` in `manet-graph`) polices: it measures the true
    /// per-step maximum displacement and falls back to a full
    /// rebuild-and-diff for any step on which a declared bound is
    /// exceeded, so a misdeclaring model costs throughput, never
    /// correctness. Return `None` when displacement is unbounded
    /// (Gaussian velocities) or not meaningful as a Euclidean bound
    /// (torus wrap-around teleports a node across the region).
    ///
    /// The bound is the model's *steady-state* guarantee: a model may
    /// exceed it on rare, structurally special steps (e.g.
    /// [`ReferencePointGroup`]'s first step gathers uniformly-placed
    /// members onto their leaders) — those steps simply take the
    /// kernel's exact fallback path.
    fn max_step_displacement(&self) -> Option<f64> {
        None
    }
}

/// Errors from mobility-model construction.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A probability parameter was outside `[0, 1]`.
    InvalidProbability {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// A speed/radius parameter was not strictly positive.
    NonPositive {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// `v_min > v_max`.
    EmptySpeedRange {
        /// Minimum speed requested.
        v_min: f64,
        /// Maximum speed requested.
        v_max: f64,
    },
    /// A parameter was NaN or infinite.
    NonFinite {
        /// Parameter name.
        name: &'static str,
    },
    /// A model name was not found in the registry.
    UnknownModel {
        /// The unresolved name.
        name: String,
    },
    /// A model name was registered twice.
    DuplicateModel {
        /// The colliding name.
        name: String,
    },
    /// A boundary-mode name was not `reflect`, `wrap`, or `bounce`.
    UnknownBoundaryMode {
        /// The unresolved name.
        name: String,
    },
}

impl core::fmt::Display for ModelError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ModelError::InvalidProbability { name, value } => {
                write!(f, "probability `{name}` must be in [0, 1], got {value}")
            }
            ModelError::NonPositive { name, value } => {
                write!(f, "parameter `{name}` must be positive, got {value}")
            }
            ModelError::EmptySpeedRange { v_min, v_max } => {
                write!(f, "speed range [{v_min}, {v_max}] is empty")
            }
            ModelError::NonFinite { name } => write!(f, "parameter `{name}` must be finite"),
            ModelError::UnknownModel { name } => {
                write!(f, "unknown mobility model `{name}` (not in the registry)")
            }
            ModelError::DuplicateModel { name } => {
                write!(f, "mobility model `{name}` is already registered")
            }
            ModelError::UnknownBoundaryMode { name } => {
                write!(
                    f,
                    "unknown boundary mode `{name}` (valid: reflect, wrap, bounce)"
                )
            }
        }
    }
}

impl std::error::Error for ModelError {}

pub(crate) fn validate_probability(name: &'static str, value: f64) -> Result<(), ModelError> {
    if !value.is_finite() {
        return Err(ModelError::NonFinite { name });
    }
    if !(0.0..=1.0).contains(&value) {
        return Err(ModelError::InvalidProbability { name, value });
    }
    Ok(())
}

pub(crate) fn validate_positive(name: &'static str, value: f64) -> Result<(), ModelError> {
    if !value.is_finite() {
        return Err(ModelError::NonFinite { name });
    }
    if value <= 0.0 {
        return Err(ModelError::NonPositive { name, value });
    }
    Ok(())
}

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn error_display_nonempty() {
        for e in [
            ModelError::InvalidProbability {
                name: "p",
                value: 2.0,
            },
            ModelError::NonPositive {
                name: "m",
                value: 0.0,
            },
            ModelError::EmptySpeedRange {
                v_min: 2.0,
                v_max: 1.0,
            },
            ModelError::NonFinite { name: "v" },
            ModelError::UnknownModel { name: "x".into() },
            ModelError::DuplicateModel { name: "x".into() },
            ModelError::UnknownBoundaryMode { name: "x".into() },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn validators() {
        assert!(validate_probability("p", 0.0).is_ok());
        assert!(validate_probability("p", 1.0).is_ok());
        assert!(validate_probability("p", -0.1).is_err());
        assert!(validate_probability("p", f64::NAN).is_err());
        assert!(validate_positive("x", 0.1).is_ok());
        assert!(validate_positive("x", 0.0).is_err());
        assert!(validate_positive("x", f64::INFINITY).is_err());
    }

    #[test]
    fn trait_is_object_safe() {
        fn _takes_dyn<const D: usize>(_m: &mut dyn Mobility<D>) {}
    }
}
