//! Mobility models for ad hoc network simulation.
//!
//! Section 4.1 of Santi & Blough (DSN 2002) extends their stationary
//! simulator with two mobility models, both reproduced here behind the
//! [`Mobility`] trait:
//!
//! * [`RandomWaypoint`] — *intentional* movement: each node repeatedly
//!   picks a uniform destination in the region, travels toward it at a
//!   speed drawn uniformly from `[v_min, v_max]`, then pauses for
//!   `t_pause` steps. A fraction `p_stationary` of nodes never moves.
//! * [`Drunkard`] — *non-intentional* movement: at each step a mobile
//!   node pauses with probability `p_pause`, otherwise jumps to a point
//!   chosen uniformly at random in the ball of radius `m` around its
//!   current position. Again `p_stationary` of the nodes never move.
//!
//! Two further classical models are provided as extensions (useful for
//! testing the paper's claim that the *pattern* of motion matters less
//! than the *quantity* of motion): [`RandomWalk`] and
//! [`RandomDirection`]. [`StationaryModel`] is the degenerate model of
//! the stationary analysis.
//!
//! All models are deterministic functions of the RNG handed to them,
//! `Clone` (so parallel simulation iterations can each own a fresh
//! copy), and validated at construction.
//!
//! # Example
//!
//! ```
//! use manet_geom::Region;
//! use manet_mobility::{Mobility, RandomWaypoint};
//! use rand::SeedableRng;
//!
//! let region: Region<2> = Region::new(100.0).unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(9);
//! let mut positions = region.place_uniform(16, &mut rng);
//!
//! let mut model = RandomWaypoint::new(0.1, 1.0, 20, 0.0)?;
//! model.init(&positions, &region, &mut rng);
//! for _ in 0..100 {
//!     model.step(&mut positions, &region, &mut rng);
//! }
//! assert!(positions.iter().all(|p| region.contains(p)));
//! # Ok::<(), manet_mobility::ModelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod direction;
pub mod drunkard;
pub mod stationary;
pub mod walk;
pub mod waypoint;

pub use direction::RandomDirection;
pub use drunkard::Drunkard;
pub use stationary::StationaryModel;
pub use walk::RandomWalk;
pub use waypoint::RandomWaypoint;

use manet_geom::{Point, Region};
use rand::Rng;

/// A mobility model: per-node state evolving in discrete steps.
///
/// Usage protocol: call [`Mobility::init`] once with the initial
/// placement, then [`Mobility::step`] once per mobility step. Models
/// must keep every node inside the region.
///
/// Models draw all randomness from the `rng` argument, so a model clone
/// driven by an identically seeded RNG reproduces the same trajectory.
pub trait Mobility<const D: usize> {
    /// Initializes per-node state for `positions.len()` nodes.
    fn init(&mut self, positions: &[Point<D>], region: &Region<D>, rng: &mut dyn Rng);

    /// Advances all nodes by one mobility step, updating `positions`
    /// in place.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `positions.len()` differs from
    /// the length passed to `init` (a logic error in the driver).
    fn step(&mut self, positions: &mut [Point<D>], region: &Region<D>, rng: &mut dyn Rng);

    /// Short human-readable model name for reports.
    fn name(&self) -> &'static str;
}

/// Errors from mobility-model construction.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A probability parameter was outside `[0, 1]`.
    InvalidProbability {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// A speed/radius parameter was not strictly positive.
    NonPositive {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// `v_min > v_max`.
    EmptySpeedRange {
        /// Minimum speed requested.
        v_min: f64,
        /// Maximum speed requested.
        v_max: f64,
    },
    /// A parameter was NaN or infinite.
    NonFinite {
        /// Parameter name.
        name: &'static str,
    },
}

impl core::fmt::Display for ModelError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ModelError::InvalidProbability { name, value } => {
                write!(f, "probability `{name}` must be in [0, 1], got {value}")
            }
            ModelError::NonPositive { name, value } => {
                write!(f, "parameter `{name}` must be positive, got {value}")
            }
            ModelError::EmptySpeedRange { v_min, v_max } => {
                write!(f, "speed range [{v_min}, {v_max}] is empty")
            }
            ModelError::NonFinite { name } => write!(f, "parameter `{name}` must be finite"),
        }
    }
}

impl std::error::Error for ModelError {}

pub(crate) fn validate_probability(name: &'static str, value: f64) -> Result<(), ModelError> {
    if !value.is_finite() {
        return Err(ModelError::NonFinite { name });
    }
    if !(0.0..=1.0).contains(&value) {
        return Err(ModelError::InvalidProbability { name, value });
    }
    Ok(())
}

pub(crate) fn validate_positive(name: &'static str, value: f64) -> Result<(), ModelError> {
    if !value.is_finite() {
        return Err(ModelError::NonFinite { name });
    }
    if value <= 0.0 {
        return Err(ModelError::NonPositive { name, value });
    }
    Ok(())
}

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn error_display_nonempty() {
        for e in [
            ModelError::InvalidProbability {
                name: "p",
                value: 2.0,
            },
            ModelError::NonPositive {
                name: "m",
                value: 0.0,
            },
            ModelError::EmptySpeedRange {
                v_min: 2.0,
                v_max: 1.0,
            },
            ModelError::NonFinite { name: "v" },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn validators() {
        assert!(validate_probability("p", 0.0).is_ok());
        assert!(validate_probability("p", 1.0).is_ok());
        assert!(validate_probability("p", -0.1).is_err());
        assert!(validate_probability("p", f64::NAN).is_err());
        assert!(validate_positive("x", 0.1).is_ok());
        assert!(validate_positive("x", 0.0).is_err());
        assert!(validate_positive("x", f64::INFINITY).is_err());
    }

    #[test]
    fn trait_is_object_safe() {
        fn _takes_dyn<const D: usize>(_m: &mut dyn Mobility<D>) {}
    }
}
