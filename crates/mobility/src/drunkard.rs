//! The drunkard (non-intentional) mobility model.
//!
//! Paper §4.1: "Mobility is modeled using parameters `p_stationary`,
//! `p_pause` and `m`. [...] If a node is moving at step `i`, its
//! position in step `i+1` is chosen uniformly at random in the disk of
//! radius `m` centered at the current node location." `p_pause` is the
//! probability a (mobile) node stays put at any given step, making the
//! motion heterogeneous; `m` plays the role of velocity.
//!
//! The paper leaves the boundary behaviour unspecified. The default
//! here re-draws the jump until it lands inside the region
//! ([`BoundaryPolicy::Resample`], i.e. uniform on the intersection of
//! the disk with the region); reflection and clamping are available
//! for ablation.

use crate::{validate_positive, validate_probability, Mobility, ModelError};
use manet_geom::{sampling::sample_in_ball, BoundaryPolicy, Point, Region};
use rand::{Rng, RngExt};

/// The drunkard mobility model.
///
/// The paper's moderate-mobility defaults are `p_stationary = 0.1`,
/// `p_pause = 0.3`, `m = 0.01·l`.
///
/// # Example
///
/// ```
/// use manet_geom::Region;
/// use manet_mobility::{Drunkard, Mobility};
/// use rand::SeedableRng;
///
/// let region: Region<2> = Region::new(100.0).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(4);
/// let mut positions = region.place_uniform(16, &mut rng);
///
/// let mut model = Drunkard::paper_defaults(100.0)?;
/// model.init(&positions, &region, &mut rng);
/// for _ in 0..100 {
///     model.step(&mut positions, &region, &mut rng);
/// }
/// assert!(positions.iter().all(|p| region.contains(p)));
/// # Ok::<(), manet_mobility::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Drunkard<const D: usize> {
    p_stationary: f64,
    p_pause: f64,
    radius: f64,
    boundary: BoundaryPolicy,
    stationary: Vec<bool>,
}

impl<const D: usize> Drunkard<D> {
    /// Creates the model with the default [`BoundaryPolicy::Resample`].
    ///
    /// # Errors
    ///
    /// * [`ModelError::InvalidProbability`] for `p_stationary` or
    ///   `p_pause` outside `[0, 1]`;
    /// * [`ModelError::NonPositive`] when `radius <= 0`;
    /// * [`ModelError::NonFinite`] for NaN/infinite parameters.
    pub fn new(p_stationary: f64, p_pause: f64, radius: f64) -> Result<Self, ModelError> {
        Drunkard::with_boundary(p_stationary, p_pause, radius, BoundaryPolicy::Resample)
    }

    /// Creates the model with an explicit boundary policy.
    ///
    /// # Errors
    ///
    /// Same as [`Drunkard::new`].
    pub fn with_boundary(
        p_stationary: f64,
        p_pause: f64,
        radius: f64,
        boundary: BoundaryPolicy,
    ) -> Result<Self, ModelError> {
        validate_probability("p_stationary", p_stationary)?;
        validate_probability("p_pause", p_pause)?;
        validate_positive("m", radius)?;
        Ok(Drunkard {
            p_stationary,
            p_pause,
            radius,
            boundary,
            stationary: Vec::new(),
        })
    }

    /// The paper's moderate-mobility parameters for region side `l`:
    /// `p_stationary = 0.1`, `p_pause = 0.3`, `m = 0.01·l`.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`] for non-positive `l`.
    pub fn paper_defaults(side: f64) -> Result<Self, ModelError> {
        Drunkard::new(0.1, 0.3, 0.01 * side)
    }

    /// Probability that a node never moves.
    pub fn p_stationary(&self) -> f64 {
        self.p_stationary
    }

    /// Per-step probability that a mobile node stays put.
    pub fn p_pause(&self) -> f64 {
        self.p_pause
    }

    /// Jump radius `m`.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// The configured boundary policy.
    pub fn boundary(&self) -> BoundaryPolicy {
        self.boundary
    }

    /// Number of permanently stationary nodes (0 before `init`).
    pub fn stationary_count(&self) -> usize {
        self.stationary.iter().filter(|&&s| s).count()
    }
}

impl<const D: usize> Mobility<D> for Drunkard<D> {
    fn init(&mut self, positions: &[Point<D>], _region: &Region<D>, rng: &mut dyn Rng) {
        self.stationary = positions
            .iter()
            .map(|_| self.p_stationary > 0.0 && rng.random_bool(self.p_stationary))
            .collect();
    }

    fn step(&mut self, positions: &mut [Point<D>], region: &Region<D>, rng: &mut dyn Rng) {
        assert_eq!(
            positions.len(),
            self.stationary.len(),
            "step called with a different node count than init"
        );
        for (pos, &frozen) in positions.iter_mut().zip(&self.stationary) {
            if frozen {
                continue;
            }
            if self.p_pause > 0.0 && rng.random_bool(self.p_pause) {
                continue;
            }
            let proposal =
                sample_in_ball(pos, self.radius, rng).expect("radius validated at construction"); // lint:allow(R3): radius validated positive and finite at construction
            *pos = match self.boundary {
                BoundaryPolicy::Resample => {
                    if region.contains(&proposal) {
                        proposal
                    } else {
                        // Re-draw until inside. The current position is
                        // inside the region, so the disk∩region has
                        // positive measure and this terminates quickly.
                        let mut candidate = proposal;
                        while !region.contains(&candidate) {
                            candidate = sample_in_ball(pos, self.radius, rng)
                                .expect("radius validated at construction"); // lint:allow(R3): radius validated positive and finite at construction
                        }
                        candidate
                    }
                }
                BoundaryPolicy::Reflect => region.reflect(&proposal),
                BoundaryPolicy::Clamp => region.clamp(&proposal),
            };
        }
    }

    fn name(&self) -> &'static str {
        "drunkard"
    }

    fn max_step_displacement(&self) -> Option<f64> {
        // Jumps land in the ball of radius m around the current
        // position; both boundary policies only shrink the jump
        // (resampling stays in the ball, clamping projects onto the
        // region, which is non-expansive from an in-region start).
        Some(self.radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn region() -> Region<2> {
        Region::new(50.0).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(Drunkard::<2>::new(-0.1, 0.3, 1.0).is_err());
        assert!(Drunkard::<2>::new(0.1, 1.3, 1.0).is_err());
        assert!(Drunkard::<2>::new(0.1, 0.3, 0.0).is_err());
        assert!(Drunkard::<2>::new(0.1, 0.3, f64::NAN).is_err());
        assert!(Drunkard::<2>::new(0.1, 0.3, 1.0).is_ok());
    }

    #[test]
    fn paper_defaults_match_section_4_2() {
        let m = Drunkard::<2>::paper_defaults(4096.0).unwrap();
        assert_eq!(m.p_stationary(), 0.1);
        assert_eq!(m.p_pause(), 0.3);
        assert!((m.radius() - 40.96).abs() < 1e-12);
        assert_eq!(m.boundary(), BoundaryPolicy::Resample);
    }

    #[test]
    fn nodes_stay_in_region_under_all_policies() {
        for policy in [
            BoundaryPolicy::Resample,
            BoundaryPolicy::Reflect,
            BoundaryPolicy::Clamp,
        ] {
            let r = region();
            let mut g = rng(11);
            let mut pos = r.place_uniform(20, &mut g);
            // Large radius to provoke boundary interactions often.
            let mut m = Drunkard::with_boundary(0.0, 0.0, 30.0, policy).unwrap();
            m.init(&pos, &r, &mut g);
            for _ in 0..300 {
                m.step(&mut pos, &r, &mut g);
                assert!(pos.iter().all(|p| r.contains(p)), "escape under {policy:?}");
            }
        }
    }

    #[test]
    fn jumps_bounded_by_radius_with_resample() {
        let r = region();
        let mut g = rng(12);
        let mut pos = r.place_uniform(10, &mut g);
        let mut m = Drunkard::new(0.0, 0.0, 2.5).unwrap();
        m.init(&pos, &r, &mut g);
        for _ in 0..200 {
            let before = pos.clone();
            m.step(&mut pos, &r, &mut g);
            for (a, b) in before.iter().zip(&pos) {
                assert!(a.distance(b) <= 2.5 + 1e-9);
            }
        }
    }

    #[test]
    fn p_pause_one_freezes_mobile_nodes() {
        let r = region();
        let mut g = rng(13);
        let mut pos = r.place_uniform(10, &mut g);
        let before = pos.clone();
        let mut m = Drunkard::new(0.0, 1.0, 2.0).unwrap();
        m.init(&pos, &r, &mut g);
        for _ in 0..50 {
            m.step(&mut pos, &r, &mut g);
        }
        assert_eq!(pos, before);
    }

    #[test]
    fn stationary_nodes_never_move() {
        let r = region();
        let mut g = rng(14);
        let mut pos = r.place_uniform(200, &mut g);
        let before = pos.clone();
        let mut m = Drunkard::new(1.0, 0.0, 5.0).unwrap();
        m.init(&pos, &r, &mut g);
        assert_eq!(m.stationary_count(), 200);
        for _ in 0..20 {
            m.step(&mut pos, &r, &mut g);
        }
        assert_eq!(pos, before);
    }

    #[test]
    fn pause_fraction_on_average() {
        let r = region();
        let mut g = rng(15);
        let mut pos = r.place_uniform(3000, &mut g);
        let mut m = Drunkard::new(0.0, 0.3, 1.0).unwrap();
        m.init(&pos, &r, &mut g);
        let before = pos.clone();
        m.step(&mut pos, &r, &mut g);
        let moved = before.iter().zip(&pos).filter(|(a, b)| a != b).count() as f64 / 3000.0;
        // Expect ~70% moved; binomial sd ≈ 0.008, allow 5σ.
        assert!((moved - 0.7).abs() < 0.05, "moved fraction {moved}");
    }

    #[test]
    fn deterministic_under_same_seed() {
        let r = region();
        let run = |seed| {
            let mut g = rng(seed);
            let mut pos = r.place_uniform(8, &mut g);
            let mut m = Drunkard::new(0.1, 0.3, 2.0).unwrap();
            m.init(&pos, &r, &mut g);
            for _ in 0..50 {
                m.step(&mut pos, &r, &mut g);
            }
            pos
        };
        assert_eq!(run(21), run(21));
        assert_ne!(run(21), run(22));
    }

    #[test]
    fn name_is_stable() {
        let m = Drunkard::<2>::new(0.1, 0.3, 1.0).unwrap();
        assert_eq!(m.name(), "drunkard");
    }
}
