//! Random-walk mobility (extension model).
//!
//! Each mobile node moves a fixed distance per step in a fresh,
//! uniformly random direction, reflecting off the region boundary.
//! Together with [`crate::RandomDirection`] this extends the paper's
//! two-model comparison: the paper's headline finding — that
//! connectivity depends on the *quantity* rather than the *pattern* of
//! mobility — predicts random walk behaves like the drunkard model at
//! matched displacement scales, which the ablation benches probe.

use crate::{validate_positive, validate_probability, FreeMobility, Mobility, ModelError};
use manet_geom::{sampling::sample_unit_vector, Point, Region};
use rand::{Rng, RngExt};

/// Fixed-step random walk with boundary reflection.
///
/// # Example
///
/// ```
/// use manet_geom::Region;
/// use manet_mobility::{Mobility, RandomWalk};
/// use rand::SeedableRng;
///
/// let region: Region<2> = Region::new(50.0).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut positions = region.place_uniform(10, &mut rng);
///
/// let mut model = RandomWalk::new(2.0, 0.0)?;
/// model.init(&positions, &region, &mut rng);
/// for _ in 0..50 {
///     model.step(&mut positions, &region, &mut rng);
/// }
/// assert!(positions.iter().all(|p| region.contains(p)));
/// # Ok::<(), manet_mobility::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RandomWalk<const D: usize> {
    step_length: f64,
    p_stationary: f64,
    stationary: Vec<bool>,
}

impl<const D: usize> RandomWalk<D> {
    /// Creates a walk moving `step_length` per step; a `p_stationary`
    /// fraction of nodes never moves.
    ///
    /// # Errors
    ///
    /// * [`ModelError::NonPositive`] when `step_length <= 0`;
    /// * [`ModelError::InvalidProbability`] when `p_stationary` is
    ///   outside `[0, 1]`;
    /// * [`ModelError::NonFinite`] for NaN/infinite parameters.
    pub fn new(step_length: f64, p_stationary: f64) -> Result<Self, ModelError> {
        validate_positive("step_length", step_length)?;
        validate_probability("p_stationary", p_stationary)?;
        Ok(RandomWalk {
            step_length,
            p_stationary,
            stationary: Vec::new(),
        })
    }

    /// Distance traveled per step.
    pub fn step_length(&self) -> f64 {
        self.step_length
    }

    /// Probability that a node is permanently stationary.
    pub fn p_stationary(&self) -> f64 {
        self.p_stationary
    }
}

impl<const D: usize> Mobility<D> for RandomWalk<D> {
    fn init(&mut self, positions: &[Point<D>], _region: &Region<D>, rng: &mut dyn Rng) {
        self.stationary = positions
            .iter()
            .map(|_| self.p_stationary > 0.0 && rng.random_bool(self.p_stationary))
            .collect();
    }

    fn step(&mut self, positions: &mut [Point<D>], region: &Region<D>, rng: &mut dyn Rng) {
        self.step_free(positions, region, rng);
        for pos in positions.iter_mut() {
            if !region.contains(pos) {
                *pos = region.reflect(pos);
            }
        }
    }

    fn name(&self) -> &'static str {
        "random-walk"
    }

    fn max_step_displacement(&self) -> Option<f64> {
        // One fixed-length jump; boundary folding is non-expansive.
        Some(self.step_length)
    }
}

impl<const D: usize> FreeMobility<D> for RandomWalk<D> {
    fn step_free(&mut self, positions: &mut [Point<D>], _region: &Region<D>, rng: &mut dyn Rng) {
        assert_eq!(
            positions.len(),
            self.stationary.len(),
            "step called with a different node count than init"
        );
        for (pos, &frozen) in positions.iter_mut().zip(&self.stationary) {
            if frozen {
                continue;
            }
            let dir: Point<D> = sample_unit_vector(rng);
            *pos = *pos + dir * self.step_length;
        }
    }
    // No persistent velocity: the default no-op `deflect` is correct.
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn construction_validates() {
        assert!(RandomWalk::<2>::new(0.0, 0.0).is_err());
        assert!(RandomWalk::<2>::new(1.0, -0.5).is_err());
        assert!(RandomWalk::<2>::new(1.0, 0.5).is_ok());
    }

    #[test]
    fn nodes_stay_in_region() {
        let region: Region<2> = Region::new(20.0).unwrap();
        let mut g = rng(31);
        let mut pos = region.place_uniform(15, &mut g);
        let mut m = RandomWalk::new(7.0, 0.0).unwrap();
        m.init(&pos, &region, &mut g);
        for _ in 0..300 {
            m.step(&mut pos, &region, &mut g);
            assert!(pos.iter().all(|p| region.contains(p)));
        }
    }

    #[test]
    fn interior_steps_have_exact_length() {
        // Big region, small steps: reflection never triggers, so the
        // displacement per step is exactly step_length.
        let region: Region<2> = Region::new(1000.0).unwrap();
        let mut g = rng(32);
        let mut pos = vec![Point::new([500.0, 500.0])];
        let mut m = RandomWalk::new(2.0, 0.0).unwrap();
        m.init(&pos, &region, &mut g);
        for _ in 0..100 {
            let before = pos[0];
            m.step(&mut pos, &region, &mut g);
            assert!((before.distance(&pos[0]) - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn stationary_nodes_frozen() {
        let region: Region<2> = Region::new(20.0).unwrap();
        let mut g = rng(33);
        let mut pos = region.place_uniform(10, &mut g);
        let before = pos.clone();
        let mut m = RandomWalk::new(1.0, 1.0).unwrap();
        m.init(&pos, &region, &mut g);
        for _ in 0..20 {
            m.step(&mut pos, &region, &mut g);
        }
        assert_eq!(pos, before);
    }

    #[test]
    fn walk_diffuses() {
        // Mean displacement after many steps should be substantial.
        let region: Region<2> = Region::new(100.0).unwrap();
        let mut g = rng(34);
        let mut pos = vec![Point::new([50.0, 50.0]); 50];
        let start = pos.clone();
        let mut m = RandomWalk::new(1.0, 0.0).unwrap();
        m.init(&pos, &region, &mut g);
        for _ in 0..400 {
            m.step(&mut pos, &region, &mut g);
        }
        let mean_disp: f64 = start
            .iter()
            .zip(&pos)
            .map(|(a, b)| a.distance(b))
            .sum::<f64>()
            / 50.0;
        // Diffusion scale ≈ step·√steps = 20.
        assert!(mean_disp > 5.0, "walk failed to diffuse: {mean_disp}");
    }
}
